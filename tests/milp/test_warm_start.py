"""Tests for solver warm starting."""

import pytest

from repro.milp.expr import LinExpr
from repro.milp.model import Model
from repro.milp.branch_bound import BranchBoundSolver
from repro.milp.solution import SolveStatus


def knapsack():
    model = Model("k")
    weights = [3, 4, 2, 5]
    values = [10, 13, 7, 16]
    xs = [model.add_binary(f"x{i}") for i in range(4)]
    model.add_constr(
        LinExpr.total(w * x for w, x in zip(weights, xs)) <= 7
    )
    model.maximize(LinExpr.total(v * x for v, x in zip(values, xs)))
    return model, xs


class TestWarmStart:
    def test_feasible_initial_becomes_incumbent(self):
        model, xs = knapsack()
        initial = {xs[0]: 1.0}  # value 10, feasible
        solution = BranchBoundSolver(time_limit_s=30).solve(
            model, initial=initial
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(23)

    def test_infeasible_initial_ignored(self):
        model, xs = knapsack()
        initial = {x: 1.0 for x in xs}  # weight 14 > 7
        solution = BranchBoundSolver(time_limit_s=30).solve(
            model, initial=initial
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(23)

    def test_initial_survives_zero_budget_search(self):
        # With a microscopic budget the warm start may be all we get.
        model, xs = knapsack()
        initial = {xs[1]: 1.0, xs[2]: 1.0}  # value 20, weight 6
        solver = BranchBoundSolver(time_limit_s=30, node_limit=0)
        solution = solver.solve(model, initial=initial)
        assert solution.status.has_solution
        assert solution.objective >= 20 - 1e-9

    def test_fractional_initial_rounded(self):
        model, xs = knapsack()
        initial = {xs[0]: 0.9}  # rounds to 1
        solution = BranchBoundSolver(time_limit_s=30).solve(
            model, initial=initial
        )
        assert solution.status is SolveStatus.OPTIMAL


class TestEncodePlan:
    def test_encoding_matches_plan_overhead(self, six_programs, small_line):
        from repro.core.analyzer import ProgramAnalyzer
        from repro.core.formulation import HermesMilp
        from repro.core.heuristic import GreedyHeuristic
        from repro.network.paths import PathEnumerator

        tdg = ProgramAnalyzer().analyze(six_programs)
        paths = PathEnumerator(small_line)
        greedy = GreedyHeuristic().deploy(tdg, small_line, paths)
        formulation = HermesMilp(max_candidates=3)
        handles = formulation.build(tdg, small_line, paths)
        encoded = formulation.encode_plan(handles, greedy)
        if encoded is None:
            pytest.skip("heuristic used non-candidate switches")
        assert encoded[handles.a_max] == float(
            greedy.max_metadata_bytes()
        )
        # The encoding must satisfy the model.
        assert handles.model.is_feasible(
            {
                var: encoded.get(var, 0.0)
                for var in handles.model.variables
            }
        )

    def test_warm_started_optimal_never_worse(self, six_programs, small_line):
        from repro.core.analyzer import ProgramAnalyzer
        from repro.core.formulation import HermesMilp
        from repro.core.heuristic import GreedyHeuristic

        tdg = ProgramAnalyzer().analyze(six_programs)
        greedy = GreedyHeuristic().deploy(tdg, small_line)
        plan = HermesMilp(time_limit_s=30, max_candidates=3).deploy(
            tdg, small_line, warm_start_plan=greedy
        )
        assert plan.max_metadata_bytes() <= greedy.max_metadata_bytes()
