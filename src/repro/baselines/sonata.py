"""Sonata (Gupta et al., SIGCOMM'18), extended network-wide.

Sonata plans telemetry queries onto a switch by ILP, refining the most
expensive queries first.  We model that as Min-Stage's per-program
stage-minimizing ILP with the programs scheduled in descending order of
total resource demand (query cost), so the heaviest queries claim the
first switch in the chain.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.min_stage import MinStage
from repro.dataplane.program import Program


class Sonata(MinStage):
    """The Sonata baseline: cost-descending program order."""

    name = "Sonata"

    def program_order(self, programs: Sequence[Program]) -> List[Program]:
        return sorted(
            programs,
            key=lambda p: p.total_resource_demand,
            reverse=True,
        )
