"""Framework interface and shared placement machinery.

The single-switch frameworks (Min-Stage, Sonata, FFL, FFLS) were never
designed for networks; following §VI-A they are "extended to deploy
input programs on switches one by one".  We model that extension as a
*virtual pipeline*: the programmable switches are ordered into a chain
(closest-first around an anchor) and their stages concatenated; MATs
are placed into the virtual pipeline in each framework's characteristic
order, spilling onto the next switch whenever the current one is full.
A MAT never straddles two switches, and dependencies are preserved
because placement order is topological and virtual stage numbers only
grow.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analyzer import ProgramAnalyzer
from repro.core.deployment import (
    DeploymentError,
    DeploymentPlan,
    MatPlacement,
)
from repro.core.stages import earliest_window
from repro.dataplane.program import Program
from repro.network.paths import Path, PathEnumerator
from repro.network.topology import Network
from repro.tdg.graph import Tdg
from repro.telemetry import emit


@dataclass
class FrameworkResult:
    """Outcome of one framework's deployment run.

    Attributes:
        framework: Framework display name.
        plan: The validated deployment plan.
        tdg: The TDG the framework deployed (merged or unmerged,
            depending on the framework).
        solve_time_s: Wall-clock placement time (excludes program
            analysis, matching the paper's execution-time metric).
        timed_out: Whether an ILP solve hit its time limit (rendered as
            the paper's off-scale bars in Exp#3).
    """

    framework: str
    plan: DeploymentPlan
    tdg: Tdg
    solve_time_s: float
    timed_out: bool = False

    @property
    def overhead_bytes(self) -> int:
        return self.plan.max_metadata_bytes()


class DeploymentFramework(abc.ABC):
    """Common interface all compared frameworks implement."""

    #: Display name used in tables and figures.
    name: str = "framework"
    #: Whether the framework merges TDGs (redundancy elimination).
    merges: bool = False

    def deploy(
        self,
        programs: Sequence[Program],
        network: Network,
        paths: Optional[PathEnumerator] = None,
    ) -> FrameworkResult:
        """Analyze programs and place them; timing covers placement.

        Emits ``deploy.start`` / ``deploy.done`` telemetry events (see
        :mod:`repro.telemetry`) bracketing the placement, so journals
        can attribute the solver event stream to a framework.
        """
        paths = paths or PathEnumerator(network)
        emit(
            "deploy.start",
            framework=self.name,
            programs=len(programs),
            network=network.name,
        )
        tdg = ProgramAnalyzer(merge=self.merges).analyze(programs)
        start = time.perf_counter()
        plan, timed_out = self._place(tdg, programs, network, paths)
        elapsed = time.perf_counter() - start
        result = FrameworkResult(
            framework=self.name,
            plan=plan,
            tdg=tdg,
            solve_time_s=elapsed,
            timed_out=timed_out,
        )
        emit(
            "deploy.done",
            framework=self.name,
            solve_time_s=elapsed,
            timed_out=timed_out,
            overhead_bytes=result.overhead_bytes,
            occupied_switches=plan.num_occupied_switches(),
        )
        return result

    @abc.abstractmethod
    def _place(
        self,
        tdg: Tdg,
        programs: Sequence[Program],
        network: Network,
        paths: PathEnumerator,
    ) -> Tuple[DeploymentPlan, bool]:
        """Place the analyzed TDG; returns (plan, timed_out)."""


# ----------------------------------------------------------------------
# Virtual-pipeline chain scheduling
# ----------------------------------------------------------------------
def build_switch_chain(
    network: Network, paths: PathEnumerator
) -> List[str]:
    """Programmable switches ordered as a deployment chain.

    The first programmable switch anchors the chain; the rest follow in
    order of shortest-path latency from the anchor (unreachable ones are
    dropped).
    """
    programmable = network.programmable_names()
    if not programmable:
        raise DeploymentError("network has no programmable switches")
    anchor = programmable[0]
    ranked: List[Tuple[float, str]] = [(0.0, anchor)]
    for name in programmable[1:]:
        path = paths.shortest(anchor, name)
        if path is None:
            continue
        ranked.append((path.latency_us, name))
    ranked.sort()
    return [name for _latency, name in ranked]


def schedule_on_chain(
    tdg: Tdg,
    order: Sequence[str],
    network: Network,
    chain: Sequence[str],
) -> Dict[str, MatPlacement]:
    """Place MATs in ``order`` onto the concatenated chain pipeline.

    ``order`` must be topological w.r.t. ``tdg``.  Each MAT takes the
    earliest stage window at or after all its predecessors' stages in
    the virtual (chain-wide) numbering; windows never straddle switch
    boundaries.

    Raises:
        DeploymentError: If the chain's total capacity is exhausted or
            ``order`` is not topological.
    """
    # Per-switch free capacity per stage (0-indexed).
    free: Dict[str, List[float]] = {}
    stage_base: Dict[str, int] = {}
    base = 0
    for name in chain:
        switch = network.switch(name)
        free[name] = [switch.stage_capacity] * switch.num_stages
        stage_base[name] = base
        base += switch.num_stages

    placements: Dict[str, MatPlacement] = {}
    virtual_end: Dict[str, int] = {}  # mat -> last virtual stage index

    for mat_name in order:
        mat = tdg.node(mat_name)
        earliest_virtual = 0
        for pred in tdg.predecessors(mat_name):
            if pred not in virtual_end:
                raise DeploymentError(
                    f"placement order is not topological: {mat_name!r} "
                    f"before its predecessor {pred!r}"
                )
            earliest_virtual = max(earliest_virtual, virtual_end[pred] + 1)

        placed = False
        for switch_name in chain:
            switch = network.switch(switch_name)
            base_idx = stage_base[switch_name]
            # virtual stage = base_idx + local stage (both 1-based
            # locally), so the local constraint is the difference.
            local_earliest = max(1, earliest_virtual - base_idx)
            if local_earliest > switch.num_stages:
                continue
            window = earliest_window(
                free[switch_name],
                mat.resource_demand,
                local_earliest,
                switch.num_stages,
            )
            if window is None:
                continue
            start, end = window
            share = mat.resource_demand / (end - start + 1)
            for stage in range(start, end + 1):
                free[switch_name][stage - 1] -= share
            placements[mat_name] = MatPlacement(
                mat_name, switch_name, tuple(range(start, end + 1))
            )
            virtual_end[mat_name] = base_idx + end
            placed = True
            break
        if not placed:
            raise DeploymentError(
                f"chain of {len(chain)} switches cannot host MAT "
                f"{mat_name!r} (demand {mat.resource_demand:.3f})"
            )
    return placements


def route_all_pairs(
    plan: DeploymentPlan, paths: PathEnumerator
) -> DeploymentPlan:
    """A plan with shortest-path routing for every communicating pair.

    The input plan is left untouched (it used to be mutated in place,
    which aliased routing state between callers); the returned plan
    shares placements — and their already-computed metric caches — with
    the input.
    """
    routing: Dict[Tuple[str, str], Path] = {}
    for pair in plan.pair_metadata_bytes():
        path = paths.shortest(*pair)
        if path is None:
            raise DeploymentError(
                f"no path between communicating switches {pair}"
            )
        routing[pair] = path
    return plan.with_routing(routing)
