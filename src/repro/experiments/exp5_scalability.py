"""Exp#5 (Fig. 9): scalability with the number of concurrent programs.

Deploys 10-50 programs on Table III topology 10 and reports, per
framework and program count, the per-packet overhead, execution time,
and the end-to-end impact — the four panels of Fig. 9.

Since the suite-compiler refactor the experiment lives in the shipped
``repro.suite/v1`` spec (``repro/suite/specs/exp5.json``); :func:`run`
compiles a matching spec through
:func:`repro.suite.compiler.deployment_cells` and :func:`render`
produces the tables (the suite's ``exp5`` aggregator shares it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.baselines.base import DeploymentFramework
from repro.experiments.exp2_overhead import workload, workload_spec
from repro.experiments.harness import DeploymentRecord
from repro.experiments.reporting import Table, pivot_records
from repro.milp.branch_bound import DEFAULT_PROFILE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentRunner

PROGRAM_COUNTS = (10, 20, 30, 40, 50)
TOPOLOGY_ID = 10

__all__ = [
    "PROGRAM_COUNTS",
    "TOPOLOGY_ID",
    "Exp5Point",
    "main",
    "render",
    "run",
    "suite_spec",
    "workload",
]


@dataclass
class Exp5Point:
    num_programs: int
    record: DeploymentRecord


def suite_spec(
    program_counts: Sequence[int] = PROGRAM_COUNTS,
    topology_id: int = TOPOLOGY_ID,
    seed: int = 7,
    ilp_time_limit_s: float = 10.0,
    solver_profile: str = DEFAULT_PROFILE,
):
    """The Exp#5 suite spec for arbitrary sweep parameters (the
    shipped ``exp5.json`` is this at the paper's defaults)."""
    from repro.suite import SuiteSpec

    frameworks = {
        "set": "paper",
        "ilp_time_limit_s": ilp_time_limit_s,
        "per_program_ilp_time_limit_s": max(
            ilp_time_limit_s / 20.0, 0.2
        ),
    }
    if solver_profile != DEFAULT_PROFILE:
        frameworks["solver_profile"] = solver_profile
    return SuiteSpec.from_dict(
        {
            "suite": "repro.suite/v1",
            "name": "exp5",
            "kind": "deployment",
            "axes": {
                "workloads": [
                    {
                        "spec": workload_spec(count, seed),
                        "tag": count,
                    }
                    for count in program_counts
                ],
                "topologies": [
                    {"spec": f"zoo:{topology_id}", "tag": topology_id}
                ],
                "frameworks": frameworks,
            },
            "params": {"tag_axis": "workload"},
            "aggregate": ["exp5"],
        }
    )


def run(
    program_counts: Sequence[int] = PROGRAM_COUNTS,
    topology_id: int = TOPOLOGY_ID,
    frameworks: Optional[Sequence[DeploymentFramework]] = None,
    seed: int = 7,
    ilp_time_limit_s: float = 10.0,
    runner: Optional["ExperimentRunner"] = None,
    solver_profile: str = DEFAULT_PROFILE,
) -> List[Exp5Point]:
    """Sweep the program count; the whole (framework x count) grid is
    one flat cell list so a parallel ``runner`` overlaps every solve,
    and its result cache collapses sweep points shared with earlier
    runs (e.g. the n=50 cells Exp#2 already solved on topology 10)."""
    from repro.experiments.runner import execute_cells
    from repro.suite import deployment_cells

    cells = deployment_cells(
        suite_spec(
            program_counts, topology_id, seed, ilp_time_limit_s,
            solver_profile,
        ),
        frameworks_override=frameworks,
    )
    return [
        Exp5Point(res.cell.tag, res.record)
        for res in execute_cells(cells, runner)
    ]


def _pivot(points: List[Exp5Point], attr: str, title: str) -> Table:
    return pivot_records(
        [(p.num_programs, p.record) for p in points],
        attr,
        title,
        col_label=lambda c: f"n={c}",
    )


def render(points: List[Exp5Point]) -> str:
    """Fig. 9(a)-(d') as six tables (what ``main`` prints)."""
    tables = [
        _pivot(points, "overhead_bytes", "Fig. 9(a): per-packet byte overhead (B)"),
        _pivot(
            points,
            "reported_time_ms",
            "Fig. 9(b): execution time (ms; 1e7 = exceeded limit)",
        ),
        _pivot(points, "fct_ratio", "Fig. 9(c): normalized FCT"),
        _pivot(points, "goodput_ratio", "Fig. 9(d): normalized goodput"),
        _pivot(
            points,
            "plan_fct_ratio",
            "Fig. 9(c'): plan-aware normalized FCT (routed pairs)",
        ),
        _pivot(
            points,
            "plan_goodput_ratio",
            "Fig. 9(d'): plan-aware normalized goodput (routed pairs)",
        ),
    ]
    return "\n\n".join(t.render() for t in tables)


def main(points: Optional[List[Exp5Point]] = None) -> str:
    points = points if points is not None else run()
    output = render(points)
    print(output)
    return output


if __name__ == "__main__":
    main()
