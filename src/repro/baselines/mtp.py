"""MTP (Chen et al., INFOCOM'21).

MTP extends SPEED with control-plane-overload avoidance: a single
switch hosting too many measurement tasks floods its local agent with
rule updates and reports.  We model the guard as a per-switch cap on
hosted MATs, sized so the merged TDG spreads over at least three
switches, on top of SPEED's latency objective.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.baselines.speed import Speed
from repro.core.deployment import DeploymentPlan
from repro.core.formulation import MilpFormulation
from repro.dataplane.program import Program
from repro.milp.branch_bound import DEFAULT_PROFILE
from repro.network.paths import PathEnumerator
from repro.network.topology import Network
from repro.tdg.graph import Tdg


class Mtp(Speed):
    """The MTP baseline: SPEED plus a per-switch MAT-count cap."""

    name = "MTP"

    def __init__(
        self,
        time_limit_s: float = 30.0,
        max_candidates: Optional[int] = 8,
        epsilon2: Optional[int] = None,
        spread_factor: int = 3,
        solver_profile: str = DEFAULT_PROFILE,
    ) -> None:
        super().__init__(
            time_limit_s, max_candidates, epsilon2, solver_profile
        )
        if spread_factor < 1:
            raise ValueError("spread_factor must be >= 1")
        self.spread_factor = spread_factor
        self._mats_cap: Optional[int] = None

    def _formulation(self) -> MilpFormulation:
        return MilpFormulation(
            objective=self.objective,
            epsilon1=math.inf,
            epsilon2=self.epsilon2,
            max_candidates=self.max_candidates,
            time_limit_s=self.time_limit_s,
            max_mats_per_switch=self._mats_cap,
            solver_profile=self.solver_profile,
        )

    def _place(
        self,
        tdg: Tdg,
        programs: Sequence[Program],
        network: Network,
        paths: PathEnumerator,
    ) -> Tuple[DeploymentPlan, bool]:
        self._mats_cap = max(1, math.ceil(len(tdg) / self.spread_factor))
        return super()._place(tdg, programs, network, paths)
