"""Benchmark: solver profiles — fast vs classic on the Exp#3 family.

The ``fast`` profile (presolve + reliability/pseudo-cost branching +
telemetered primal heuristics) must return the exact same deployments
as the byte-for-byte historical ``classic`` profile while exploring no
more branch & bound nodes — and strictly fewer on at least half of the
golden instances.  Node counts come from the ``solver.node`` telemetry
stream, aggregated over every ILP solve in a deployment.

Results are written to ``BENCH_solver.json`` at the repo root so the
node-count contract is auditable across commits.
"""

import json
import os

import pytest

from repro.baselines import HermesOptimal, MinStage, Speed
from repro.experiments.exp2_overhead import workload
from repro.milp.branch_bound import SOLVER_PROFILES
from repro.network.topozoo import topology_zoo_wan
from repro.telemetry import Recorder, attached

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPORT_PATH = os.path.join(_REPO_ROOT, "BENCH_solver.json")

#: Golden Exp#3-family instances:
#: (label, framework factory, topology, workload size).
#: Budgets and workloads are sized so every ILP solve reaches OPTIMAL —
#: node counts then measure tree size, not where the clock expired.
#: SPEED runs on one topology and a smaller workload: its network-wide
#: ILP is by far the most expensive solve in the family.
GOLDEN = [
    ("MinStage/topo1", lambda p: MinStage(time_limit_s=5.0, solver_profile=p), 1, 10),
    ("MinStage/topo5", lambda p: MinStage(time_limit_s=5.0, solver_profile=p), 5, 10),
    ("MinStage/topo10", lambda p: MinStage(time_limit_s=5.0, solver_profile=p), 10, 10),
    ("Optimal/topo1", lambda p: HermesOptimal(time_limit_s=60.0, solver_profile=p), 1, 10),
    ("Optimal/topo5", lambda p: HermesOptimal(time_limit_s=60.0, solver_profile=p), 5, 10),
    ("Optimal/topo10", lambda p: HermesOptimal(time_limit_s=60.0, solver_profile=p), 10, 10),
    ("SPEED/topo1", lambda p: Speed(time_limit_s=60.0, solver_profile=p), 1, 8),
]


def _run_instance(factory, topology_id, num_programs, profile):
    programs = workload(num_programs)
    network = topology_zoo_wan(topology_id)
    rec = Recorder()
    with attached(rec):
        result = factory(profile).deploy(programs, network)
    return {
        "nodes": rec.count("solver.node"),
        "lp_solves": rec.count("solver.lp"),
        "overhead_bytes": result.overhead_bytes,
        "solve_time_s": round(result.solve_time_s, 3),
        "timed_out": result.timed_out,
    }


@pytest.fixture(scope="module")
def solver_records():
    """Both profiles over every golden instance, persisted to JSON."""
    records = []
    for label, factory, topology_id, num_programs in GOLDEN:
        per_profile = {
            profile: _run_instance(factory, topology_id, num_programs, profile)
            for profile in SOLVER_PROFILES
        }
        records.append(
            {
                "instance": label,
                "topology": topology_id,
                "programs": num_programs,
                "classic": per_profile["classic"],
                "fast": per_profile["fast"],
            }
        )
    strict = sum(
        1 for r in records if r["fast"]["nodes"] < r["classic"]["nodes"]
    )
    payload = {
        "instances": records,
        "summary": {
            "instances": len(records),
            "strict_node_wins": strict,
            "classic_nodes_total": sum(
                r["classic"]["nodes"] for r in records
            ),
            "fast_nodes_total": sum(r["fast"]["nodes"] for r in records),
        },
    }
    with open(_REPORT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def test_bench_solver_profiles_agree(solver_records):
    """Both profiles produce identical deployments within budget."""
    for record in solver_records["instances"]:
        classic, fast = record["classic"], record["fast"]
        assert not classic["timed_out"], record["instance"]
        assert not fast["timed_out"], record["instance"]
        assert fast["overhead_bytes"] == classic["overhead_bytes"], (
            record["instance"]
        )


def test_bench_solver_fast_explores_fewer_nodes(solver_records):
    """fast <= classic nodes everywhere; strictly fewer on >= half."""
    for record in solver_records["instances"]:
        assert record["fast"]["nodes"] <= record["classic"]["nodes"], (
            record["instance"]
        )
    summary = solver_records["summary"]
    assert summary["strict_node_wins"] * 2 >= summary["instances"]


def test_bench_solver_report(solver_records):
    from conftest import record_report

    rows = [
        "Solver profiles on the Exp#3 family (B&B nodes per deployment)",
        f"{'instance':<18} {'classic':>9} {'fast':>9} {'classic s':>10} {'fast s':>8}",
    ]
    for record in solver_records["instances"]:
        rows.append(
            f"{record['instance']:<18} "
            f"{record['classic']['nodes']:>9} "
            f"{record['fast']['nodes']:>9} "
            f"{record['classic']['solve_time_s']:>10.2f} "
            f"{record['fast']['solve_time_s']:>8.2f}"
        )
    summary = solver_records["summary"]
    rows.append(
        f"total nodes: classic={summary['classic_nodes_total']} "
        f"fast={summary['fast_nodes_total']} "
        f"(strict wins {summary['strict_node_wins']}/{summary['instances']})"
    )
    record_report("\n".join(rows))
    assert os.path.exists(_REPORT_PATH)
