"""Incremental re-deployment on network change.

Production networks lose switches (failures, drains, upgrades).  The
deployment must follow: MATs hosted by a vanished switch need a new
home, and the overhead-minimizing structure of the surviving placement
may change entirely.  The :class:`MigrationPlanner` re-runs the Hermes
heuristic on the surviving network and reduces the answer to a
*migration diff* — the minimal set of MAT moves and rule replays an
operator (or an automated controller) must execute.

Re-running the global heuristic instead of locally patching the hole is
deliberate: Algorithm 2's placement is chain-structured, so a local
patch can strand heavy-metadata edges across the patch boundary; the
global re-run keeps the byte-overhead guarantee, and the diff keeps the
disruption measurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, List, Optional

from repro.core.deployment import DeploymentError, DeploymentPlan
from repro.core.heuristic import GreedyHeuristic
from repro.dataplane.rules import Rule
from repro.network.topology import Network
from repro.plan.diff import PlanDiff, diff_plans


@dataclass(frozen=True)
class MatMove:
    """One MAT changing its physical location.

    ``source`` is None when the old hosting switch vanished (failure,
    drain, or loss of programmability) — the move was *forced*, not an
    optimization choice, and disruption accounting treats the two
    differently.
    """

    mat_name: str
    source: Optional[str]  # None = the hosting switch is gone
    destination: str
    rules_to_replay: int

    @property
    def forced(self) -> bool:
        """Whether the old host vanished (vs the optimizer choosing)."""
        return self.source is None


@dataclass
class MigrationDiff:
    """Everything needed to transition between two plans.

    Attributes:
        moves: MATs that change switches (including those whose old
            host failed).
        unchanged: MATs that stay put.
        new_plan: The re-deployed plan on the surviving network.
        plan_diff: The full structural delta between the plans —
            placement changes, per-pair byte deltas, reroutes and the
            overhead totals (see :class:`repro.plan.diff.PlanDiff`).
    """

    moves: List[MatMove] = field(default_factory=list)
    unchanged: List[str] = field(default_factory=list)
    new_plan: Optional[DeploymentPlan] = None
    plan_diff: Optional[PlanDiff] = None

    @property
    def old_overhead_bytes(self) -> int:
        """``A_max`` before the event."""
        return self.plan_diff.old_overhead_bytes if self.plan_diff else 0

    @property
    def new_overhead_bytes(self) -> int:
        """``A_max`` after re-deployment."""
        return self.plan_diff.new_overhead_bytes if self.plan_diff else 0

    @property
    def disruption(self) -> float:
        """Fraction of MATs that must move."""
        total = len(self.moves) + len(self.unchanged)
        return len(self.moves) / total if total else 0.0

    @property
    def rules_to_replay(self) -> int:
        return sum(move.rules_to_replay for move in self.moves)

    @property
    def forced_moves(self) -> List[MatMove]:
        """Moves whose old host vanished — the event *made* them move."""
        return [move for move in self.moves if move.forced]

    @property
    def optimization_moves(self) -> List[MatMove]:
        """Moves the re-run heuristic chose while the old host lived."""
        return [move for move in self.moves if not move.forced]


def surviving_network(network: Network, failed: str) -> Network:
    """The network minus one switch and its incident links."""
    if failed not in network:
        raise DeploymentError(f"unknown switch {failed!r}")
    result = Network(f"{network.name}-minus-{failed}")
    for switch in network.switches:
        if switch.name != failed:
            result.add_switch(switch)
    for link in network.links:
        if failed not in (link.u, link.v):
            result.add_link(link)
    return result


class MigrationPlanner:
    """Plans re-deployments after switch failures or drains.

    Args:
        epsilon1: Latency bound for the re-deployment.
        epsilon2: Occupied-switch bound for the re-deployment.
        replicate_hubs: Hub-replication policy forwarded to the
            heuristic.
    """

    def __init__(
        self,
        epsilon1: float = math.inf,
        epsilon2: Optional[int] = None,
        replicate_hubs=False,
    ) -> None:
        self.epsilon1 = epsilon1
        self.epsilon2 = epsilon2
        self.replicate_hubs = replicate_hubs

    def handle_switch_failure(
        self,
        plan: DeploymentPlan,
        failed_switch: str,
        installed_rules: Optional[Dict[str, List[Rule]]] = None,
    ) -> MigrationDiff:
        """Re-deploy after losing ``failed_switch``.

        Args:
            plan: The currently active plan.
            failed_switch: The switch that vanished.
            installed_rules: Optional runtime table contents (from
                :meth:`repro.control.Controller.rules_to_replay`); used
                to count rule replays per moved MAT.  Defaults to the
                MATs' static rule sets.

        Returns:
            The migration diff, including the new validated plan.

        Raises:
            DeploymentError: If the surviving network cannot host the
                merged TDG at all.
        """
        network = surviving_network(plan.network, failed_switch)
        if not network.programmable_switches():
            raise DeploymentError(
                "no programmable switches survive the failure"
            )
        heuristic = GreedyHeuristic(
            epsilon1=self.epsilon1,
            epsilon2=self.epsilon2,
            replicate_hubs=self.replicate_hubs,
        )
        new_plan = heuristic.deploy(plan.tdg, network)
        return self.diff(plan, new_plan, installed_rules, failed_switch)

    def diff(
        self,
        old_plan: DeploymentPlan,
        new_plan: DeploymentPlan,
        installed_rules: Optional[Dict[str, List[Rule]]] = None,
        failed_switch: Optional[str] = None,
    ) -> MigrationDiff:
        """Compute the move set between two plans over the same TDG."""
        if set(old_plan.placements) != set(new_plan.placements):
            raise DeploymentError(
                "plans deploy different MAT sets; cannot diff"
            )
        vanished = {failed_switch} if failed_switch is not None else set()
        diff = MigrationDiff(
            new_plan=new_plan,
            plan_diff=diff_plans(old_plan, new_plan),
        )
        moves, unchanged = compute_moves(
            old_plan, new_plan, installed_rules, vanished
        )
        diff.moves.extend(moves)
        diff.unchanged.extend(unchanged)
        return diff


def compute_moves(
    old_plan: DeploymentPlan,
    new_plan: DeploymentPlan,
    installed_rules: Optional[Dict[str, List[Rule]]] = None,
    vanished: AbstractSet[str] = frozenset(),
) -> "tuple[List[MatMove], List[str]]":
    """The (moves, unchanged) split over the plans' *common* MATs.

    Unlike :meth:`MigrationPlanner.diff`, this tolerates workload
    changes between the plans (added/removed MATs simply don't appear)
    — the lifecycle reconciler's case, where a ``workload_add`` event
    and a switch failure can land in the same replan batch.

    ``vanished`` names switches that can no longer host MATs; a MAT
    leaving one of them becomes a *forced* move (``source=None``).
    """
    moves: List[MatMove] = []
    unchanged: List[str] = []
    common = set(old_plan.placements) & set(new_plan.placements)
    for mat_name in old_plan.placements:
        if mat_name not in common:
            continue
        old_switch = old_plan.switch_of(mat_name)
        new_switch = new_plan.switch_of(mat_name)
        if old_switch == new_switch and old_switch not in vanished:
            unchanged.append(mat_name)
            continue
        if installed_rules is not None:
            replay = len(installed_rules.get(mat_name, []))
        else:
            replay = len(old_plan.tdg.node(mat_name).rules)
        moves.append(
            MatMove(
                mat_name=mat_name,
                source=None if old_switch in vanished else old_switch,
                destination=new_switch,
                rules_to_replay=replay,
            )
        )
    return moves, unchanged
