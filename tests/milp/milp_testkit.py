"""Shared machinery for the solver's differential test suites.

Two pieces:

* :func:`enumerate_oracle` — the trusted reference: exhaustive
  enumeration of every integral assignment of a small pure-integer
  model.  It shares no code with the branch & bound solver (it never
  solves an LP), so agreement between the two is genuine evidence.
* :func:`random_milp` — a seeded generator of small pure-integer
  models (<= 8 variables, bounded domains) spanning minimize and
  maximize senses, <=/>=/== constraints, negative bounds and a
  deliberate mix of feasible and infeasible instances.

Both the differential tests and the Hypothesis presolve properties
import from here, so the oracle and the instance distribution are
pinned in exactly one place.
"""

import itertools
import math
import random
from typing import Optional

import numpy as np

from repro.milp.expr import LinExpr
from repro.milp.model import Model

#: Cap on the enumeration grid; the generator shrinks domains to stay
#: under it so the oracle stays sub-second per instance.
MAX_GRID = 6000

_FEAS_TOL = 1e-9


def enumerate_oracle(model: Model) -> Optional[float]:
    """Optimal objective of a small pure-integer model, by brute force.

    Returns the optimum in the model's own sense (un-negated for
    maximization), or ``None`` when no integral assignment is feasible.
    Requires every variable to be integral with finite bounds.
    """
    c, a_ub, b_ub, a_eq, b_eq, bounds = model.to_arrays()
    for var, (lo, hi) in zip(model.variables, bounds):
        if not var.is_integral or math.isinf(lo) or math.isinf(hi):
            raise ValueError(
                f"oracle needs bounded integer vars, got {var.name!r}"
            )
    ranges = [
        range(math.ceil(lo), math.floor(hi) + 1) for lo, hi in bounds
    ]
    best = None  # in minimize space (to_arrays negates maximization)
    for combo in itertools.product(*ranges):
        x = np.asarray(combo, dtype=float)
        if a_ub is not None and (a_ub @ x > b_ub + _FEAS_TOL).any():
            continue
        if a_eq is not None and (np.abs(a_eq @ x - b_eq) > _FEAS_TOL).any():
            continue
        value = float(c @ x)
        if best is None or value < best:
            best = value
    if best is None:
        return None
    return -best if model.maximize_objective else best


def random_milp(seed: int) -> Model:
    """A seeded random pure-integer model the oracle can enumerate."""
    rng = random.Random(seed)
    model = Model(f"rand{seed}")
    n = rng.randint(2, 8)
    grid = 1
    xs = []
    domains = []
    for i in range(n):
        if rng.random() < 0.5 or grid * 4 > MAX_GRID:
            lo, hi = 0, 1
            xs.append(model.add_binary(f"b{i}"))
        else:
            lo = rng.randint(-2, 1)
            hi = lo + rng.randint(1, 3)
            xs.append(model.add_integer(f"z{i}", lo, hi))
        domains.append((lo, hi))
        grid *= hi - lo + 1

    # Anchor each constraint's rhs near the activity of a random box
    # point, so instances are mostly feasible but == rows (offset by
    # -1/0/+1) still produce a steady stream of infeasible models.
    reference = [float(rng.randint(lo, hi)) for lo, hi in domains]
    for _ in range(rng.randint(1, min(6, n + 2))):
        terms = sorted(rng.sample(range(n), rng.randint(1, n)))
        coefs = {
            i: rng.choice([-5, -4, -3, -2, -1, 1, 2, 3, 4, 5])
            for i in terms
        }
        expr = LinExpr.total(coefs[i] * xs[i] for i in terms)
        activity = sum(coefs[i] * reference[i] for i in terms)
        sense = rng.choice(("<=", ">=", "=="))
        if sense == "<=":
            model.add_constr(expr <= activity + rng.randint(0, 4))
        elif sense == ">=":
            model.add_constr(expr >= activity - rng.randint(0, 4))
        else:
            model.add_constr(expr == activity + rng.randint(-1, 1))

    objective = LinExpr.total(rng.randint(-9, 9) * x for x in xs)
    if rng.random() < 0.5:
        model.minimize(objective)
    else:
        model.maximize(objective)
    return model
