"""Unit tests for coordination analysis and the backend."""

import pytest

from repro.core.analyzer import ProgramAnalyzer
from repro.core.backend import Backend
from repro.core.coordination import CoordinationAnalysis, edge_metadata_fields
from repro.core.heuristic import GreedyHeuristic
from repro.dataplane.actions import modify, no_op
from repro.dataplane.fields import header_field, metadata_field
from repro.dataplane.mat import Mat
from repro.network.generators import linear_topology
from repro.tdg.dependencies import DependencyType
from tests.conftest import make_sketch_program


@pytest.fixture
def split_plan():
    """A deployment guaranteed to cross switches."""
    programs = [make_sketch_program(f"p{i}", index_bytes=4) for i in range(4)]
    tdg = ProgramAnalyzer().analyze(programs)
    # Two stages per switch but three-MAT chains: every program is
    # forced to split across switches.
    net = linear_topology(8, num_stages=2, stage_capacity=1.0)
    plan = GreedyHeuristic().deploy(tdg, net)
    assert plan.max_metadata_bytes() > 0, "fixture must cross switches"
    return plan


class TestEdgeMetadataFields:
    def test_match_returns_upstream_metadata(self):
        meta = metadata_field("m.x", 32)
        hdr = header_field("h", 32)
        up = Mat("u", actions=[modify(meta), modify(hdr)])
        down = Mat("d", match_fields=[meta], actions=[no_op()])
        fields = edge_metadata_fields(up, down, DependencyType.MATCH)
        assert fields.names == frozenset({"m.x"})

    def test_reverse_returns_empty(self):
        up = Mat("u", actions=[no_op()])
        down = Mat("d", actions=[no_op()])
        assert not edge_metadata_fields(up, down, DependencyType.REVERSE)


class TestCoordinationAnalysis:
    def test_declared_matches_plan_metric(self, split_plan):
        analysis = CoordinationAnalysis(split_plan)
        assert (
            analysis.max_declared_bytes()
            == split_plan.max_metadata_bytes()
        )
        assert (
            analysis.total_declared_bytes()
            == split_plan.total_metadata_bytes()
        )

    def test_channels_cover_all_communicating_pairs(self, split_plan):
        analysis = CoordinationAnalysis(split_plan)
        assert set(analysis.channels) == set(
            split_plan.pair_metadata_bytes()
        )

    def test_layout_never_exceeds_declared(self, split_plan):
        analysis = CoordinationAnalysis(split_plan)
        for channel in analysis.channels.values():
            assert channel.layout_bytes <= channel.declared_bytes
            # Offsets are contiguous and ordered.
            offset = 0
            for field, off in channel.layout:
                assert off == offset
                offset += field.size_bytes
            assert offset == channel.layout_bytes

    def test_channel_lookup(self, split_plan):
        analysis = CoordinationAnalysis(split_plan)
        pair = next(iter(analysis.channels))
        assert analysis.channel(*pair) is analysis.channels[pair]
        with pytest.raises(KeyError):
            analysis.channel("ghost", "ghost2")

    def test_empty_plan_has_no_channels(self):
        programs = [make_sketch_program("solo")]
        tdg = ProgramAnalyzer().analyze(programs)
        net = linear_topology(1, num_stages=4)
        plan = GreedyHeuristic().deploy(tdg, net)
        analysis = CoordinationAnalysis(plan)
        assert len(analysis) == 0
        assert analysis.max_declared_bytes() == 0
        assert analysis.max_layout_bytes() == 0


class TestBackend:
    def test_configs_for_every_occupied_switch(self, split_plan):
        configs = Backend().compile(split_plan)
        assert set(configs) == set(split_plan.occupied_switches())

    def test_stage_programs_match_placements(self, split_plan):
        configs = Backend().compile(split_plan)
        for name, config in configs.items():
            stage_mats = [
                m for sp in config.stages for m in sp.mat_names
            ]
            assert sorted(set(stage_mats)) == sorted(
                split_plan.mats_on(name)
            )

    def test_emit_and_extract_are_symmetric(self, split_plan):
        configs = Backend().compile(split_plan)
        for name, config in configs.items():
            for peer, layout in config.emit_headers.items():
                assert configs[peer].extract_headers[name] == layout

    def test_forwarding_next_hop_on_path(self, split_plan):
        configs = Backend().compile(split_plan)
        for config in configs.values():
            for entry in config.forwarding:
                assert entry.path[0] == config.switch
                assert entry.next_hop == entry.path[1]
                assert entry.path[-1] == entry.destination_switch

    def test_to_dict_is_json_ready(self, split_plan):
        import json

        configs = Backend().compile(split_plan)
        for config in configs.values():
            json.dumps(config.to_dict())

    def test_stage_loads_within_capacity(self, split_plan):
        configs = Backend().compile(split_plan)
        for name, config in configs.items():
            capacity = split_plan.network.switch(name).stage_capacity
            for stage_program in config.stages:
                assert stage_program.load <= capacity + 1e-9
