"""TDG merging with redundancy elimination (SPEED-style).

Different programs exhibit redundancy: e.g. several sketch programs all
compute the same hash index.  Following SPEED (and Algorithm 1 lines
4-8), merging proceeds pairwise — two TDGs are taken from the pool,
merged, and the result returned to the pool until one graph remains.

Merging two TDGs ``T1`` and ``T2``:

1. identify redundant MATs — node pairs whose MATs have identical
   structural signatures;
2. initialize the merged graph as the union of nodes and edges;
3. eliminate each redundant node by redirecting its edges onto its
   canonical twin, skipping any elimination that would create a cycle
   (redundant tables reachable from each other in opposite directions
   cannot be shared without breaking program order).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.tdg.graph import CycleError, Tdg


def _union(t1: Tdg, t2: Tdg, name: str) -> Tdg:
    merged = Tdg(name)
    for source in (t1, t2):
        for mat in source.mats:
            merged.add_node(mat)
        for edge in source.edges:
            if not merged.has_edge(edge.upstream, edge.downstream):
                merged.add_edge(
                    edge.upstream,
                    edge.downstream,
                    edge.dep_type,
                    edge.metadata_bytes,
                )
    return merged


def _redundant_pairs(t1: Tdg, t2: Tdg) -> List[Tuple[str, str]]:
    """Pairs ``(canonical, duplicate)`` of same-signature MATs across graphs."""
    by_signature: Dict[Tuple, str] = {}
    for mat in t1.mats:
        by_signature.setdefault(mat.signature(), mat.name)
    pairs: List[Tuple[str, str]] = []
    for mat in t2.mats:
        canonical = by_signature.get(mat.signature())
        if canonical is not None and canonical != mat.name:
            pairs.append((canonical, mat.name))
    return pairs


def _eliminate(merged: Tdg, canonical: str, duplicate: str) -> bool:
    """Redirect ``duplicate``'s edges onto ``canonical`` and drop it.

    Returns False (leaving the graph untouched) if any redirected edge
    would create a cycle.
    """
    if canonical not in merged or duplicate not in merged:
        return False
    incoming = merged.in_edges(duplicate)
    outgoing = merged.out_edges(duplicate)

    # Dry-run cycle check: canonical must not sit on the wrong side of
    # any neighbour of duplicate.
    for edge in incoming:
        if edge.upstream != canonical and merged.has_path(
            canonical, edge.upstream
        ):
            return False
    for edge in outgoing:
        if edge.downstream != canonical and merged.has_path(
            edge.downstream, canonical
        ):
            return False

    for edge in incoming:
        if edge.upstream == canonical:
            continue
        if not merged.has_edge(edge.upstream, canonical):
            try:
                merged.add_edge(
                    edge.upstream, canonical, edge.dep_type, edge.metadata_bytes
                )
            except CycleError:
                return False
    for edge in outgoing:
        if edge.downstream == canonical:
            continue
        if not merged.has_edge(canonical, edge.downstream):
            try:
                merged.add_edge(
                    canonical, edge.downstream, edge.dep_type, edge.metadata_bytes
                )
            except CycleError:
                return False
    merged.remove_node(duplicate)
    return True


def merge_pair(t1: Tdg, t2: Tdg, name: str = "merged") -> Tdg:
    """Merge two TDGs, eliminating redundant MATs where safe."""
    merged = _union(t1, t2, name)
    for canonical, duplicate in _redundant_pairs(t1, t2):
        _eliminate(merged, canonical, duplicate)
    return merged


def merge_tdgs(tdgs: Sequence[Tdg], name: str = "merged") -> Tdg:
    """Merge a set of TDGs into one (Algorithm 1, ``TDG_MERGING``).

    Args:
        tdgs: Non-empty sequence of TDGs with disjoint node names
            (use :func:`repro.tdg.builder.build_tdg`, which qualifies
            node names with the program name).
        name: Name of the resulting merged graph.

    Returns:
        The merged TDG ``T_m``.
    """
    pool: List[Tdg] = list(tdgs)
    if not pool:
        raise ValueError("merge_tdgs needs at least one TDG")
    while len(pool) > 1:
        t1 = pool.pop(0)
        t2 = pool.pop(0)
        pool.append(merge_pair(t1, t2, name))
    result = pool[0]
    result.name = name
    return result
