"""Benchmark: Exp#5 (Fig. 9) — scalability with the program count."""

from conftest import fast_frameworks

from repro.experiments.exp5_scalability import main, run


def test_bench_exp5_scalability(benchmark):
    points = benchmark.pedantic(
        run,
        kwargs=dict(
            program_counts=(10, 30, 50),
            topology_id=10,
            frameworks=fast_frameworks(),
        ),
        rounds=1,
        iterations=1,
    )
    from conftest import record_report

    record_report(main(points))

    def series(name, attr):
        pts = [p for p in points if p.record.framework == name]
        pts.sort(key=lambda p: p.num_programs)
        return [getattr(p.record, attr) for p in pts]

    # Hermes stays at or below the first-fit baselines at every scale.
    for attr in ("overhead_bytes", "fct_ratio"):
        hermes = series("Hermes", attr)
        ffl = series("FFL", attr)
        assert all(h <= f for h, f in zip(hermes, ffl))
    # And its solve time stays in the sub-second regime.
    assert max(series("Hermes", "solve_time_s")) < 5.0
