#!/usr/bin/env python3
"""Quickstart: deploy two small programs with Hermes.

Builds a flow-counting program and a routing program, deploys them on a
three-switch line with the greedy heuristic, and prints the placement,
the per-packet byte overhead and the generated switch configurations.

Run:  python examples/quickstart.py
"""

import json

from repro.core import Backend, CoordinationAnalysis, Hermes
from repro.dataplane import (
    Mat,
    Program,
    counter_update,
    forward,
    hash_compute,
    metadata_field,
    modify,
    standard_headers,
)
from repro.network import linear_topology


def build_flow_counter() -> Program:
    """hash the 5-tuple -> update a counter -> mark heavy flows."""
    hdr = standard_headers()
    index = metadata_field("fc.index", 32)
    count = metadata_field("fc.count", 32)
    return Program(
        "flow_counter",
        [
            Mat(
                "hash",
                match_fields=[hdr["ipv4.protocol"]],
                actions=[
                    hash_compute(
                        index, [hdr["ipv4.src_addr"], hdr["ipv4.dst_addr"]]
                    )
                ],
                capacity=16,
                resource_demand=0.3,
            ),
            Mat(
                "count",
                match_fields=[index],
                actions=[counter_update(index, count)],
                capacity=65536,
                resource_demand=0.5,
            ),
            Mat(
                "mark",
                match_fields=[count],
                actions=[modify(hdr["ipv4.dscp"], name="mark_heavy")],
                capacity=16,
                resource_demand=0.2,
            ),
        ],
    )


def build_router() -> Program:
    """LPM lookup -> egress port selection."""
    hdr = standard_headers()
    egress = metadata_field("rt.egress", 16)
    return Program(
        "router",
        [
            Mat(
                "lpm",
                match_fields=[hdr["ipv4.dst_addr"]],
                actions=[modify(egress, name="set_port")],
                capacity=16384,
                resource_demand=0.4,
            ),
            Mat(
                "send",
                match_fields=[egress],
                actions=[forward(egress)],
                capacity=64,
                resource_demand=0.2,
            ),
        ],
    )


def main() -> None:
    programs = [build_flow_counter(), build_router()]
    network = linear_topology(3, num_stages=2, stage_capacity=0.8)

    result = Hermes().deploy(programs, network)
    plan = result.plan

    print(f"deployed {len(plan.placements)} MATs on "
          f"{plan.num_occupied_switches()} switches "
          f"in {result.total_time_s * 1000:.1f} ms")
    print(f"per-packet byte overhead (A_max): {plan.max_metadata_bytes()} B\n")

    for switch in plan.occupied_switches():
        mats = ", ".join(plan.mats_on(switch))
        print(f"  {switch}: {mats}")

    coordination = CoordinationAnalysis(plan)
    if coordination.channels:
        print("\nmetadata channels:")
        for (u, v), channel in coordination.channels.items():
            fields = ", ".join(channel.field_names)
            print(f"  {u} -> {v}: {channel.declared_bytes} B ({fields})")
    else:
        print("\nno inter-switch metadata needed")

    configs = Backend().compile(plan)
    first = plan.occupied_switches()[0]
    print(f"\nswitch config for {first}:")
    print(json.dumps(configs[first].to_dict(), indent=2))


if __name__ == "__main__":
    main()
