"""Exp#7: disruption under churn — the lifecycle runtime experiment.

The paper's experiments measure *static* deployments; Exp#7 measures
what churn does to a *live* one.  A corpus of seeded scenarios (switch
failures/recoveries, drains, link retunes, programmability flips,
workload changes) is replayed by the :class:`repro.runtime.Reconciler`
against deployments of the ten real switch.p4 slices, and each run's
:class:`~repro.runtime.report.DisruptionReport` is collected: forced vs
optimization MAT moves, rules replayed, time-to-converge, and how often
a replan degrades vs improves ``A_max``.

Scenario generation and replay are fully seeded, so the experiment is
deterministic: the per-scenario plan-history digests printed in the
table double as regression fingerprints.

Runs fan out across the experiment runner's process pool (one scenario
per worker) and the ``runtime.*`` telemetry of every run is serialized
into the runner's JSONL journal in scenario order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.experiments.reporting import Table
from repro.runtime.report import DisruptionReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentRunner

#: Default corpus: one scenario per seed, each on its own seeded WAN.
SCENARIO_SEEDS = (0, 1, 2, 3, 4)
NUM_EVENTS = 8
WORKLOAD_SPEC = "real:10"


def topology_spec_for(seed: int) -> str:
    """The seeded WAN each scenario runs on (CLI topology grammar)."""
    return f"wan:16:24:{seed + 1}"


def make_scenario(
    seed: int,
    num_events: int = NUM_EVENTS,
    workload_spec: str = WORKLOAD_SPEC,
    topology_spec: Optional[str] = None,
):
    """Generate one corpus scenario (self-contained, replayable)."""
    from repro.cli import parse_topology
    from repro.runtime import generate_scenario

    topology_spec = topology_spec or topology_spec_for(seed)
    network = parse_topology(topology_spec)
    return generate_scenario(
        network,
        num_events=num_events,
        seed=seed,
        workload_spec=workload_spec,
        topology_spec=topology_spec,
        name=f"exp7-seed{seed}",
    )


def replay_scenario_doc(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Replay one serialized scenario; module-level so pools can pickle.

    Returns the disruption report document plus the run's recorded
    ``runtime.*`` telemetry events.
    """
    from repro.cli import parse_topology, parse_workload
    from repro.runtime import Reconciler, Scenario, seed_rules
    from repro.telemetry import Recorder, attached

    scenario = Scenario.from_dict(doc)
    programs = parse_workload(scenario.workload_spec)
    network = parse_topology(scenario.topology_spec)
    recorder = Recorder()
    with attached(recorder):
        result = Reconciler(
            programs, network, prepare_fn=seed_rules
        ).run(scenario)
    return {
        "report": result.report().to_dict(),
        "events": recorder.events,
    }


@dataclass
class Exp7Point:
    """One scenario of the churn corpus."""

    seed: int
    topology_spec: str
    report: DisruptionReport
    workload_spec: str = WORKLOAD_SPEC


def run(
    seeds: Sequence[int] = SCENARIO_SEEDS,
    num_events: int = NUM_EVENTS,
    workload_spec: str = WORKLOAD_SPEC,
    runner: Optional["ExperimentRunner"] = None,
) -> List[Exp7Point]:
    """Replay the scenario corpus, one reconciler run per scenario."""
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.runner.telemetry import JournalWriter

    scenarios = [
        make_scenario(seed, num_events, workload_spec) for seed in seeds
    ]
    runner = runner or ExperimentRunner()
    outputs = runner.map(
        replay_scenario_doc, [s.to_dict() for s in scenarios]
    )
    if runner.config.journal:
        with JournalWriter(runner.config.journal) as journal:
            for i, output in enumerate(outputs):
                journal.write(
                    {"kind": "runtime.scenario", "index": i,
                     "seed": scenarios[i].seed}
                )
                for event in output["events"]:
                    line = dict(event)
                    line["scenario"] = i
                    journal.write(line)
    return [
        Exp7Point(
            seed=scenario.seed,
            topology_spec=scenario.topology_spec,
            report=DisruptionReport.from_dict(output["report"]),
            workload_spec=scenario.workload_spec,
        )
        for scenario, output in zip(scenarios, outputs)
    ]


def table(points: List[Exp7Point]) -> Table:
    """The per-scenario disruption summary table."""
    events = points[0].report.num_events if points else NUM_EVENTS
    workload = points[0].workload_spec if points else WORKLOAD_SPEC
    out = Table(
        title="Exp#7: disruption under churn "
        f"({workload} workload, {events} events/scenario)",
        headers=[
            "seed", "topology", "batches", "conv", "forced", "opt",
            "rules", "degraded", "improved", "peak transient (B)",
            "mean conv (ms)", "digest",
        ],
    )
    for p in points:
        r = p.report
        out.add_row(
            [
                p.seed,
                p.topology_spec,
                r.num_batches,
                r.num_converged,
                r.forced_moves,
                r.optimization_moves,
                r.rules_replayed,
                r.degraded_batches,
                r.improved_batches,
                r.peak_transient_amax_bytes,
                f"{r.mean_convergence_s * 1e3:.1f}",
                r.history_digest[:12],
            ]
        )
    return out


def main(points: Optional[List[Exp7Point]] = None) -> str:
    points = points if points is not None else run()
    output = table(points).render()
    print(output)
    return output


if __name__ == "__main__":
    main()
