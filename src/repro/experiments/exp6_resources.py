"""Exp#6: switch resource consumption of the inter-switch coordination.

The SDM scenario: ten sketches deployed concurrently.  Ground truth is
the accumulated resource consumption of each sketch deployed alone on a
single switch (coordination inactive).  Hermes and SPEED then deploy
all ten together; the difference between a plan's total consumption and
the ground truth is the resource cost of coordination.  The paper's
finding — Hermes adds no switch resources beyond the deployment itself
— holds by construction here too, because the metadata rides in packet
headers, not in MAT memory; merging may even *reduce* consumption by
deduplicating shared hash MATs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.baselines import HermesHeuristic, Speed
from repro.baselines.base import DeploymentFramework
from repro.experiments.reporting import Table
from repro.network.generators import linear_topology
from repro.network.topology import Network
from repro.workloads.sketches import sketch_programs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentRunner


@dataclass
class Exp6Row:
    """Resource accounting for one deployment strategy."""

    strategy: str
    total_stage_units: float
    num_mats: int
    extra_vs_ground_truth: float


def ground_truth_units(num_sketches: int = 10) -> float:
    """Sum of standalone per-sketch resource demands (no coordination)."""
    return sum(
        p.total_resource_demand for p in sketch_programs(num_sketches)
    )


def _framework_row(
    job: Tuple[DeploymentFramework, Tuple, Network, float]
) -> Exp6Row:
    """One framework's resource accounting (module-level: pool-safe)."""
    framework, programs, network, truth = job
    result = framework.deploy(list(programs), network)
    total = sum(mat.resource_demand for mat in result.tdg.mats)
    return Exp6Row(
        strategy=framework.name,
        total_stage_units=total,
        num_mats=len(result.tdg),
        extra_vs_ground_truth=total - truth,
    )


def run(
    num_sketches: int = 10,
    frameworks: Optional[List[DeploymentFramework]] = None,
    runner: Optional["ExperimentRunner"] = None,
) -> List[Exp6Row]:
    programs = tuple(sketch_programs(num_sketches))
    network = linear_topology(3, link_latency_ms=0.001)
    truth = ground_truth_units(num_sketches)

    rows = [
        Exp6Row(
            strategy="standalone (ground truth)",
            total_stage_units=truth,
            num_mats=sum(len(p) for p in programs),
            extra_vs_ground_truth=0.0,
        )
    ]
    frameworks = frameworks or [Speed(time_limit_s=20.0), HermesHeuristic()]
    jobs = [(framework, programs, network, truth) for framework in frameworks]
    if runner is not None:
        rows.extend(runner.map(_framework_row, jobs))
    else:
        rows.extend(_framework_row(job) for job in jobs)
    return rows


def render(rows: List[Exp6Row]) -> str:
    """The resource-accounting table (what ``main`` prints; the
    suite's ``exp6`` aggregator shares it)."""
    table = Table(
        "Exp#6: switch resource consumption (normalized stage units)",
        ["strategy", "stage units", "MATs", "extra vs ground truth"],
    )
    for row in rows:
        table.add_row(
            [
                row.strategy,
                row.total_stage_units,
                row.num_mats,
                row.extra_vs_ground_truth,
            ]
        )
    return table.render()


def main(
    rows: Optional[List[Exp6Row]] = None,
    runner: Optional["ExperimentRunner"] = None,
) -> str:
    rows = rows if rows is not None else run(runner=runner)
    output = render(rows)
    print(output)
    return output


if __name__ == "__main__":
    main()
