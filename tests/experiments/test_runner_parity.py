"""Regression layer for the parallel experiment runner.

Locks in the runner's core guarantee: for a fixed workload/topology the
:class:`DeploymentRecord` outcomes are identical across ``workers=1``,
``workers=4`` and cache-warm re-runs, and a warm cache skips every LP
solve (verified through the journal's solver event counts).

The golden snapshot in ``golden_records.json`` pins the serial
baseline itself, so a behaviour change in any framework or in the
harness shows up as a diff against checked-in numbers, not just as a
serial-vs-parallel mismatch.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.baselines import Ffl, Ffls, HermesHeuristic, MinStage
from repro.experiments.exp2_overhead import run as run_exp2
from repro.experiments.runner import (
    Cell,
    ExperimentRunner,
    count_events,
    read_journal,
)
from repro.network.generators import linear_topology
from repro.workloads import sketch_programs, synthetic_programs

GOLDEN_PATH = Path(__file__).parent / "golden_records.json"

#: Generous limit: the per-program MS ILPs here solve in milliseconds,
#: so ``timed_out`` is deterministically False on any machine.
MS_TIME_LIMIT_S = 30.0


def parity_programs():
    """Small fixed workload: 3 sketches + 2 seeded synthetic programs."""
    return tuple(sketch_programs(3)) + tuple(synthetic_programs(2, seed=11))


def parity_network():
    return linear_topology(4, num_stages=4, stage_capacity=2.0)


def parity_frameworks():
    """Three pure heuristics plus one ILP framework (solver coverage)."""
    return [
        HermesHeuristic(),
        Ffl(),
        Ffls(),
        MinStage(time_limit_s=MS_TIME_LIMIT_S),
    ]


def parity_cells():
    programs = parity_programs()
    network = parity_network()
    return [
        Cell(programs=programs, network=network, framework=framework)
        for framework in parity_frameworks()
    ]


def deterministic(results):
    """Submission-ordered deterministic fields of a cell-result list."""
    return [res.record.deterministic_fields() for res in results]


class TestGoldenSnapshots:
    def test_serial_run_matches_golden(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        results = ExperimentRunner().run_cells(parity_cells())
        assert len(results) == len(golden)
        for res, expected in zip(results, golden):
            got = res.record.deterministic_fields()
            assert got["framework"] == expected["framework"]
            assert got["overhead_bytes"] == expected["overhead_bytes"]
            assert got["timed_out"] == expected["timed_out"]
            assert (
                got["occupied_switches"] == expected["occupied_switches"]
            )
            assert got["fct_ratio"] == pytest.approx(
                expected["fct_ratio"], rel=1e-9
            )
            assert got["goodput_ratio"] == pytest.approx(
                expected["goodput_ratio"], rel=1e-9
            )


class TestWorkerParity:
    def test_parallel_matches_serial(self):
        serial = ExperimentRunner(workers=1).run_cells(parity_cells())
        parallel = ExperimentRunner(workers=4).run_cells(parity_cells())
        assert deterministic(serial) == deterministic(parallel)

    def test_results_keep_submission_order(self):
        results = ExperimentRunner(workers=4).run_cells(parity_cells())
        assert [res.cell.framework.name for res in results] == [
            f.name for f in parity_frameworks()
        ]


class TestCacheWarmParity:
    def test_warm_rerun_returns_identical_records_without_solving(
        self, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        cold_journal = tmp_path / "cold.jsonl"
        warm_journal = tmp_path / "warm.jsonl"

        cold = ExperimentRunner(
            workers=1, cache_dir=str(cache_dir), journal=str(cold_journal)
        ).run_cells(parity_cells())
        warm = ExperimentRunner(
            workers=4, cache_dir=str(cache_dir), journal=str(warm_journal)
        ).run_cells(parity_cells())

        # Identical down to the recorded solve time: cached cells
        # return the stored record, not a re-measured one.
        assert [dataclasses.asdict(r.record) for r in cold] == [
            dataclasses.asdict(r.record) for r in warm
        ]
        assert all(res.cached for res in warm)
        assert not any(res.cached for res in cold)

        cold_events = read_journal(cold_journal)
        warm_events = read_journal(warm_journal)
        # The MS ILP solved LPs on the cold run; the warm run solved
        # none at all and hit the cache once per cell.
        assert count_events(cold_events, "solver.lp") > 0
        assert count_events(cold_events, "cache.hit") == 0
        assert count_events(warm_events, "solver.lp") == 0
        assert count_events(warm_events, "deploy.start") == 0
        assert count_events(warm_events, "cache.hit") == len(parity_cells())

    def test_identical_cells_within_one_run_solve_once(self, tmp_path):
        cells = parity_cells()[:1] * 3
        journal = tmp_path / "dedup.jsonl"
        results = ExperimentRunner(
            workers=1, cache_dir=str(tmp_path / "c"), journal=str(journal)
        ).run_cells(cells)
        assert [r.cached for r in results] == [False, True, True]
        events = read_journal(journal)
        assert count_events(events, "deploy.start") == 1
        assert count_events(events, "cache.hit") == 2

    def test_journal_interleaves_cell_markers(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        ExperimentRunner(workers=1, journal=str(journal)).run_cells(
            parity_cells()
        )
        events = read_journal(journal)
        starts = [e for e in events if e["kind"] == "cell.start"]
        dones = [e for e in events if e["kind"] == "cell.done"]
        assert [e["cell"] for e in starts] == list(
            range(len(parity_cells()))
        )
        assert len(dones) == len(parity_cells())
        assert all("record" in e for e in dones)


class TestExp2Parity:
    """Reduced-scale version of the acceptance criterion: ``repro exp2
    --workers 4`` is record-identical to the serial run, and a
    cache-warm repeat skips every LP solve."""

    FRAMEWORKS = staticmethod(
        lambda: [HermesHeuristic(), Ffl(), MinStage(time_limit_s=30.0)]
    )

    def test_exp2_workers4_matches_serial_and_caches(self, tmp_path):
        kwargs = dict(topology_ids=(2,), num_programs=4)
        serial = run_exp2(frameworks=self.FRAMEWORKS(), **kwargs)

        cache_dir = str(tmp_path / "cache")
        cold_j, warm_j = tmp_path / "cold.jsonl", tmp_path / "warm.jsonl"
        parallel = run_exp2(
            frameworks=self.FRAMEWORKS(),
            runner=ExperimentRunner(
                workers=4, cache_dir=cache_dir, journal=str(cold_j)
            ),
            **kwargs,
        )
        warm = run_exp2(
            frameworks=self.FRAMEWORKS(),
            runner=ExperimentRunner(
                workers=4, cache_dir=cache_dir, journal=str(warm_j)
            ),
            **kwargs,
        )

        def fields(points):
            return [
                (p.topology_id, p.record.deterministic_fields())
                for p in points
            ]

        assert fields(serial) == fields(parallel) == fields(warm)
        assert count_events(read_journal(cold_j), "solver.lp") > 0
        warm_events = read_journal(warm_j)
        assert count_events(warm_events, "solver.lp") == 0
        assert count_events(warm_events, "cache.hit") == len(
            self.FRAMEWORKS()
        )
