"""Sketch-based measurement programs (the SDM scenario, Exp#6).

Each sketch follows the canonical three-phase data plane shape the
paper describes: compute hash indexes, update counter arrays at those
indexes, post-process the read-back values.  Several sketches share the
*same* 5-tuple hash MAT (same match key, actions and capacity), so
SPEED/Hermes TDG merging can eliminate the redundancy — the effect
Exp#6 measures.
"""

from __future__ import annotations

from typing import List

from repro.dataplane.actions import (
    counter_update,
    hash_compute,
    modify,
    no_op,
)
from repro.dataplane.fields import Field, metadata_field, standard_headers
from repro.dataplane.mat import Mat
from repro.dataplane.program import Program

_HDR = standard_headers()

#: The flow-key hash shared by sketches that index on the 5-tuple.
_SHARED_INDEX = metadata_field("sdm.flow_index", 32)


def _shared_hash_mat() -> Mat:
    """The redundancy-bearing MAT: identical across sharing sketches."""
    return Mat(
        "flow_hash",
        match_fields=[_HDR["ipv4.protocol"]],
        actions=[
            hash_compute(
                _SHARED_INDEX,
                [
                    _HDR["ipv4.src_addr"],
                    _HDR["ipv4.dst_addr"],
                    _HDR["tcp.src_port"],
                    _HDR["tcp.dst_port"],
                    _HDR["ipv4.protocol"],
                ],
            )
        ],
        capacity=16,
        resource_demand=0.20,
    )


def _sketch(
    name: str,
    rows: int,
    update_demand: float,
    shares_hash: bool,
    result_bits: int = 32,
) -> Program:
    """A generic sketch: hash -> per-row updates -> report."""
    if shares_hash:
        index: Field = _SHARED_INDEX
        hash_mat = _shared_hash_mat()
    else:
        index = metadata_field(f"{name}.index", 32)
        hash_mat = Mat(
            "flow_hash",
            match_fields=[_HDR["ipv4.protocol"]],
            actions=[
                hash_compute(index, [_HDR["ipv4.src_addr"], _HDR["ipv4.dst_addr"]])
            ],
            capacity=16,
            resource_demand=0.20,
        )
    mats = [hash_mat]
    prev_value: Field = index
    for row in range(rows):
        value = metadata_field(f"{name}.row{row}_value", result_bits)
        mats.append(
            Mat(
                f"row{row}_update",
                match_fields=[prev_value],
                actions=[counter_update(index, value, name=f"update_row{row}")],
                capacity=65536,
                resource_demand=update_demand,
            )
        )
        prev_value = value
    mats.append(
        Mat(
            "report",
            match_fields=[prev_value],
            actions=[modify(_HDR["ipv4.dscp"], name="mark"), no_op("skip")],
            capacity=16,
            resource_demand=0.10,
        )
    )
    return Program(name, mats)


def count_min() -> Program:
    """Count-Min: d=3 rows of conservative-update counters."""
    return _sketch("count_min", rows=3, update_demand=0.35, shares_hash=True)


def count_sketch() -> Program:
    """Count-Sketch: 3 rows with signed updates."""
    return _sketch("count_sketch", rows=3, update_demand=0.35, shares_hash=True)


def bloom_filter() -> Program:
    """Bloom filter membership: 2 bit-array rows."""
    return _sketch(
        "bloom_filter", rows=2, update_demand=0.20, shares_hash=True,
        result_bits=8,
    )


def hyperloglog() -> Program:
    """Cardinality estimation: single register row, own hash."""
    return _sketch("hyperloglog", rows=1, update_demand=0.30, shares_hash=False)


def univmon() -> Program:
    """UnivMon-style universal sketch: 4 layered rows."""
    return _sketch("univmon", rows=4, update_demand=0.30, shares_hash=True)


def elastic_sketch() -> Program:
    """Elastic sketch: heavy part + light part."""
    return _sketch("elastic", rows=2, update_demand=0.40, shares_hash=True)


def mv_sketch() -> Program:
    """MV-Sketch: majority-vote heavy flow detection, 3 rows."""
    return _sketch("mv_sketch", rows=3, update_demand=0.35, shares_hash=True)


def flowradar() -> Program:
    """FlowRadar-style encoded flowset: 3 coupled rows, own hash."""
    return _sketch("flowradar", rows=3, update_demand=0.30, shares_hash=False)


def ld_sketch() -> Program:
    """LD-Sketch: local-deviation tracking, 2 rows."""
    return _sketch("ld_sketch", rows=2, update_demand=0.35, shares_hash=True)


def fm_sketch() -> Program:
    """Flajolet-Martin distinct counting: 1 row, own hash."""
    return _sketch("fm_sketch", rows=1, update_demand=0.25, shares_hash=False)


_FACTORIES = (
    count_min,
    count_sketch,
    bloom_filter,
    hyperloglog,
    univmon,
    elastic_sketch,
    mv_sketch,
    flowradar,
    ld_sketch,
    fm_sketch,
)


def sketch_programs(count: int = 10) -> List[Program]:
    """The first ``count`` (max 10) sketch programs."""
    if not 1 <= count <= len(_FACTORIES):
        raise ValueError(
            f"count must be in [1, {len(_FACTORIES)}], got {count}"
        )
    return [factory() for factory in _FACTORIES[:count]]
