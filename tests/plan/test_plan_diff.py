"""Tests for structural plan diffing (repro.plan.diff)."""

import json

from repro.dataplane.actions import no_op
from repro.dataplane.mat import Mat
from repro.network.paths import PathEnumerator
from repro.network.switch import Switch
from repro.network.topology import Link, Network
from repro.plan import PlanBuilder, diff_plans
from repro.tdg.dependencies import DependencyType
from repro.tdg.graph import Tdg


def make_network():
    net = Network("difnet")
    for name in ("s0", "s1", "s2"):
        net.add_switch(Switch(name, num_stages=8, stage_capacity=4.0))
    net.add_link(Link("s0", "s1", 1.0, 10.0))
    net.add_link(Link("s1", "s2", 2.0, 10.0))
    return net


def make_tdg():
    tdg = Tdg("dif")
    for name in ("a", "b", "c"):
        tdg.add_node(Mat(name, actions=[no_op()], resource_demand=0.2))
    tdg.add_edge("a", "b", DependencyType.MATCH, 16)
    tdg.add_edge("b", "c", DependencyType.MATCH, 8)
    return tdg


def build_plan(hosts, stages=None):
    net = make_network()
    builder = PlanBuilder(make_tdg(), net)
    order = {"a": 1, "b": 2, "c": 3}
    for name, switch in hosts.items():
        builder.place(name, switch, (stages or {}).get(name, (order[name],)))
    builder.route_shortest(PathEnumerator(net))
    return builder.build()


class TestIdenticalPlans:
    def test_empty_diff(self):
        plan = build_plan({"a": "s0", "b": "s0", "c": "s1"})
        diff = diff_plans(plan, plan)
        assert diff.is_empty
        assert not diff.moved and not diff.added and not diff.removed
        assert diff.overhead_delta_bytes == 0
        assert "identical" in diff.summary()


class TestMoves:
    def test_move_detected_with_pair_and_route_changes(self):
        old = build_plan({"a": "s0", "b": "s0", "c": "s1"})
        new = build_plan({"a": "s0", "b": "s1", "c": "s1"})
        diff = diff_plans(old, new)
        assert [c.mat_name for c in diff.moved] == ["b"]
        assert diff.moved[0].old_switch == "s0"
        assert diff.moved[0].new_switch == "s1"
        assert diff.moved[0].moved
        # Old cut: b->c across (s0, s1) = 8 B; new cut: a->b = 16 B.
        assert diff.changed_pairs == {("s0", "s1"): (8, 16)}
        assert diff.old_overhead_bytes == 8
        assert diff.new_overhead_bytes == 16
        assert diff.overhead_delta_bytes == 8
        assert "1 MAT(s) moved" in diff.summary()

    def test_restage_in_place_is_not_a_move(self):
        old = build_plan({"a": "s0", "b": "s0", "c": "s1"})
        new = build_plan(
            {"a": "s0", "b": "s0", "c": "s1"}, stages={"b": (3,)}
        )
        diff = diff_plans(old, new)
        assert not diff.moved
        assert [c.mat_name for c in diff.restaged] == ["b"]
        assert not diff.restaged[0].moved
        assert not diff.is_empty
        assert "re-staged" in diff.summary()


class TestAddedRemoved:
    def test_new_none_reports_everything_removed(self):
        old = build_plan({"a": "s0", "b": "s1", "c": "s2"})
        diff = diff_plans(old, None)
        assert diff.removed == ("a", "b", "c")
        assert diff.new_overhead_bytes == 0
        assert diff.old_overhead_bytes == old.max_metadata_bytes()
        assert all(new == 0 for _, new in diff.changed_pairs.values())


class TestSerialization:
    def test_to_dict_is_json_serializable(self):
        old = build_plan({"a": "s0", "b": "s0", "c": "s1"})
        new = build_plan({"a": "s0", "b": "s1", "c": "s1"})
        doc = diff_plans(old, new).to_dict()
        json.dumps(doc)
        assert doc["identical"] is False
        assert doc["moved"][0]["mat"] == "b"
        assert doc["overhead_delta_bytes"] == 8

    def test_identity_flag_round_trips(self):
        plan = build_plan({"a": "s0", "b": "s0", "c": "s1"})
        assert diff_plans(plan, plan).to_dict()["identical"] is True


class TestRerouted:
    def test_changed_path_reported(self):
        plan = build_plan({"a": "s0", "b": "s1", "c": "s1"})
        # Same placements, but route (s0, s1) the long way around.
        from repro.network.paths import Path

        detour = Path(("s0", "s1"), latency_us=999.0)
        rerouted = plan.with_routing({("s0", "s1"): detour})
        # Identical switch sequence => not a reroute, just a latency
        # difference the diff ignores by design.
        assert diff_plans(plan, rerouted).rerouted == ()
        # A genuinely different switch sequence is a reroute.
        detour = Path(("s0", "s2", "s1"), latency_us=999.0)
        rerouted = plan.with_routing({("s0", "s1"): detour})
        assert diff_plans(plan, rerouted).rerouted == (("s0", "s1"),)
