"""Match-action tables (MATs).

The MAT is the unit of placement in network-wide program deployment.
Following the paper, each MAT ``a`` carries five properties:

* ``match_fields`` — the set ``F^m_a`` of fields the table matches on;
* ``actions`` — the set ``A_a`` of actions it may perform;
* ``modified_fields`` — the set ``F^a_a`` of fields written by those
  actions (derived);
* ``rules`` — the user-specified rule set ``R_a``;
* ``capacity`` — ``C_a``, the maximum number of rules.

In addition each MAT exposes a *resource demand*: how much of a pipeline
stage it occupies.  The optimization framework treats per-stage capacity
as a single scalar ``C_res`` (the paper's simplification), so the demand
is normalized to stage fractions; a detailed SRAM/TCAM/ALU breakdown is
kept for the resource-consumption experiment (Exp#6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.dataplane.actions import Action
from repro.dataplane.fields import Field, FieldSet
from repro.dataplane.rules import Rule

#: Reference per-stage capacities used to normalize detailed demands.
#: Loosely modeled on one Tofino MAU stage.
STAGE_SRAM_BITS = 128 * 8 * 1024 * 8  # 128 blocks x 8 KiB
STAGE_TCAM_BITS = 24 * 512 * 44  # 24 blocks x 512 rows x 44 bits
STAGE_ALUS = 4


@dataclass(frozen=True)
class ResourceDemand:
    """Detailed per-resource demand of one MAT.

    Attributes:
        sram_bits: Exact-match table + register memory.
        tcam_bits: Ternary/LPM match memory.
        alus: Arithmetic units used by the MAT's actions.
    """

    sram_bits: int = 0
    tcam_bits: int = 0
    alus: int = 0

    def __post_init__(self) -> None:
        for name in ("sram_bits", "tcam_bits", "alus"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def normalized(self) -> float:
        """The stage fraction this demand occupies.

        The binding resource determines the fraction: a MAT that needs
        30% of a stage's TCAM and 10% of its SRAM occupies 30% of the
        stage for placement purposes.
        """
        return max(
            self.sram_bits / STAGE_SRAM_BITS,
            self.tcam_bits / STAGE_TCAM_BITS,
            self.alus / STAGE_ALUS,
        )

    def __add__(self, other: "ResourceDemand") -> "ResourceDemand":
        return ResourceDemand(
            self.sram_bits + other.sram_bits,
            self.tcam_bits + other.tcam_bits,
            self.alus + other.alus,
        )


class Mat:
    """A match-action table.

    Args:
        name: Table name, unique within the merged TDG.
        match_fields: The fields the table matches on (``F^m``).
        actions: The table's actions (``A``).
        capacity: Maximum number of rules (``C_a``).
        rules: Installed rules; must not exceed ``capacity`` and must
            reference declared actions and match fields.
        resource_demand: Normalized stage fraction in ``(0, +inf)``.
            If omitted it is derived from capacity, key width and match
            kinds via the reference stage model.
        detailed_demand: Optional SRAM/TCAM/ALU breakdown; derived when
            omitted.
    """

    def __init__(
        self,
        name: str,
        match_fields: Iterable[Field] = (),
        actions: Iterable[Action] = (),
        capacity: int = 1024,
        rules: Iterable[Rule] = (),
        resource_demand: Optional[float] = None,
        detailed_demand: Optional[ResourceDemand] = None,
    ) -> None:
        if not name:
            raise ValueError("MAT name must be non-empty")
        if capacity <= 0:
            raise ValueError(f"MAT {name!r}: capacity must be positive")
        self.name = name
        self.match_fields = FieldSet(match_fields)
        self.actions: Tuple[Action, ...] = tuple(actions)
        if not self.actions:
            raise ValueError(f"MAT {name!r} needs at least one action")
        action_names = [a.name for a in self.actions]
        if len(action_names) != len(set(action_names)):
            raise ValueError(f"MAT {name!r} has duplicate action names")
        self.capacity = capacity
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self._validate_rules()
        self._detailed = detailed_demand or self._derive_detailed_demand()
        if resource_demand is None:
            resource_demand = self._detailed.normalized()
        if resource_demand <= 0:
            # Every MAT occupies some nonzero slice of a stage (match
            # crossbar, gateway logic) even with an empty rule set.
            resource_demand = 0.01
        self.resource_demand = float(resource_demand)

    def _validate_rules(self) -> None:
        if len(self.rules) > self.capacity:
            raise ValueError(
                f"MAT {self.name!r}: {len(self.rules)} rules exceed "
                f"capacity {self.capacity}"
            )
        known_actions = {a.name for a in self.actions}
        known_fields = self.match_fields.names
        for rule in self.rules:
            if rule.action_name not in known_actions:
                raise ValueError(
                    f"MAT {self.name!r}: rule references unknown action "
                    f"{rule.action_name!r}"
                )
            for spec in rule.matches:
                if spec.field_name not in known_fields:
                    raise ValueError(
                        f"MAT {self.name!r}: rule matches undeclared "
                        f"field {spec.field_name!r}"
                    )

    def _derive_detailed_demand(self) -> ResourceDemand:
        key_bits = sum(f.width_bits for f in self.match_fields)
        uses_tcam = any(
            spec.kind.needs_tcam
            for rule in self.rules
            for spec in rule.matches
        )
        # Without installed rules, infer TCAM use from wide keys being
        # typical LPM/ternary candidates only if explicitly ruled; keep
        # SRAM as the default residence.
        entry_bits = max(key_bits, 1) + 32  # key + action data
        total_bits = entry_bits * self.capacity
        alus = sum(a.alu_cost for a in self.actions)
        if uses_tcam:
            return ResourceDemand(tcam_bits=total_bits, alus=alus)
        return ResourceDemand(sram_bits=total_bits, alus=alus)

    @property
    def detailed_demand(self) -> ResourceDemand:
        return self._detailed

    @property
    def modified_fields(self) -> FieldSet:
        """``F^a``: the union of fields written by the MAT's actions."""
        result = FieldSet()
        for action in self.actions:
            result = result.union(action.write_set)
        return result

    @property
    def read_fields(self) -> FieldSet:
        """Fields consumed either as match key or as action inputs."""
        result = self.match_fields
        for action in self.actions:
            result = result.union(action.read_set)
        return result

    def signature(self) -> Tuple:
        """A structural fingerprint for redundancy detection.

        Two MATs with equal signatures implement the same processing
        (same match key, same action read/write behaviour, same rules
        and capacity) and can be deduplicated during TDG merging.
        """
        action_sig = tuple(
            sorted(
                (a.name, a.primitive.value, a.read_set.names, a.write_set.names)
                for a in self.actions
            )
        )
        rule_sig = tuple(
            sorted(
                (
                    tuple(
                        (m.field_name, m.kind.value, m.value, m.mask_or_prefix)
                        for m in rule.matches
                    ),
                    rule.action_name,
                    rule.priority,
                )
                for rule in self.rules
            )
        )
        return (self.match_fields.names, action_sig, self.capacity, rule_sig)

    def is_redundant_with(self, other: "Mat") -> bool:
        """Whether ``other`` performs identical processing (see paper §IV)."""
        return self.signature() == other.signature()

    def action(self, name: str) -> Action:
        for act in self.actions:
            if act.name == name:
                return act
        raise KeyError(f"MAT {self.name!r} has no action {name!r}")

    def uses_tcam(self) -> bool:
        return self._detailed.tcam_bits > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Mat({self.name!r}, key={sorted(self.match_fields.names)}, "
            f"demand={self.resource_demand:.3f})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mat):
            return NotImplemented
        return self.name == other.name and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash((self.name, self.signature()))
