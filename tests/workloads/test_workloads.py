"""Unit tests for the bundled workloads."""

import pytest

from repro.core.analyzer import ProgramAnalyzer
from repro.tdg.builder import build_tdg
from repro.workloads.metadata_catalog import (
    METADATA_SIZES,
    counter_index,
    queue_lengths,
    switch_identifier,
    timestamps,
)
from repro.workloads.sketches import sketch_programs
from repro.workloads.switchp4 import program_catalog, real_programs
from repro.workloads.synthetic import (
    SyntheticConfig,
    synthetic_program,
    synthetic_programs,
)


class TestMetadataCatalog:
    def test_table_i_sizes(self):
        assert switch_identifier("x").size_bytes == 4
        assert queue_lengths("x").size_bytes == 6
        assert timestamps("x").size_bytes == 12
        assert counter_index("x").size_bytes == 4
        assert METADATA_SIZES == {
            "switch_id": 4,
            "queue_lengths": 6,
            "timestamps": 12,
            "counter_index": 4,
        }

    def test_fields_are_metadata(self):
        for ctor in (switch_identifier, queue_lengths, timestamps,
                     counter_index):
            assert ctor("ns").is_metadata

    def test_namespacing(self):
        assert counter_index("a").name != counter_index("b").name


class TestRealPrograms:
    def test_ten_available(self):
        programs = real_programs(10)
        assert len(programs) == 10
        assert len({p.name for p in programs}) == 10

    def test_count_validation(self):
        with pytest.raises(ValueError):
            real_programs(0)
        with pytest.raises(ValueError):
            real_programs(99)

    def test_all_build_valid_tdgs(self):
        for program in real_programs(10):
            tdg = build_tdg(program)
            tdg.topological_order()
            assert len(tdg) == len(program)

    def test_each_has_internal_dependencies(self):
        for program in real_programs(10):
            tdg = build_tdg(program)
            assert tdg.edges, f"{program.name} should have dependencies"

    def test_metadata_flows_are_costed(self):
        from repro.tdg.analysis import annotate_metadata_sizes

        for program in real_programs(10):
            tdg = annotate_metadata_sizes(build_tdg(program))
            assert any(e.metadata_bytes > 0 for e in tdg.edges), program.name

    def test_ten_programs_overflow_one_switch(self):
        total = sum(p.total_resource_demand for p in real_programs(10))
        assert total > 12.0  # a single Tofino-like pipeline

    def test_catalog_keys(self):
        catalog = program_catalog()
        assert "l3_routing" in catalog
        assert "int_telemetry" in catalog

    def test_int_program_carries_heavy_metadata(self):
        from repro.tdg.analysis import annotate_metadata_sizes

        catalog = program_catalog()
        tdg = annotate_metadata_sizes(build_tdg(catalog["int_telemetry"]))
        assert max(e.metadata_bytes for e in tdg.edges) >= 12


class TestSketches:
    def test_ten_available(self):
        assert len(sketch_programs(10)) == 10

    def test_count_validation(self):
        with pytest.raises(ValueError):
            sketch_programs(0)

    def test_sharing_enables_dedup(self):
        programs = sketch_programs(10)
        merged = ProgramAnalyzer(merge=True).analyze(programs)
        total_mats = sum(len(p) for p in programs)
        assert len(merged) < total_mats

    def test_non_sharing_sketches_keep_own_hash(self):
        programs = {p.name: p for p in sketch_programs(10)}
        own = programs["hyperloglog"].mat("flow_hash")
        shared = programs["count_min"].mat("flow_hash")
        assert not own.is_redundant_with(shared)


class TestSynthetic:
    def test_deterministic(self):
        a = synthetic_program("s", seed=42)
        b = synthetic_program("s", seed=42)
        assert len(a) == len(b)
        assert [m.name for m in a] == [m.name for m in b]
        assert [m.resource_demand for m in a] == [
            m.resource_demand for m in b
        ]

    def test_seeds_differ(self):
        a = synthetic_program("s", seed=1)
        b = synthetic_program("s", seed=2)
        assert [m.resource_demand for m in a] != [
            m.resource_demand for m in b
        ]

    def test_paper_distribution(self):
        config = SyntheticConfig()
        sizes = []
        demands = []
        for i in range(30):
            program = synthetic_program(f"s{i}", seed=i, config=config)
            own_mats = [m for m in program if not m.name.startswith("shared")]
            sizes.append(len(own_mats))
            demands.extend(m.resource_demand for m in own_mats)
        assert all(10 <= n <= 20 for n in sizes)
        assert all(0.10 <= d <= 0.50 for d in demands)

    def test_dependency_probability_extremes(self):
        dense = SyntheticConfig(
            dependency_probability=1.0, shared_pool_size=0
        )
        sparse = SyntheticConfig(
            dependency_probability=0.0, shared_pool_size=0
        )
        dense_tdg = build_tdg(synthetic_program("d", 1, dense))
        sparse_tdg = build_tdg(synthetic_program("s", 1, sparse))
        n = len(dense_tdg)
        assert len(dense_tdg.edges) == n * (n - 1) // 2
        assert not sparse_tdg.edges

    def test_shared_pool_creates_cross_program_redundancy(self):
        programs = synthetic_programs(6, seed=3)
        merged = ProgramAnalyzer(merge=True).analyze(programs)
        unmerged = ProgramAnalyzer(merge=False).analyze(programs)
        assert len(merged) < len(unmerged)

    def test_tdgs_are_valid(self):
        for program in synthetic_programs(10, seed=5):
            tdg = build_tdg(program)
            tdg.topological_order()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(min_mats=0)
        with pytest.raises(ValueError):
            SyntheticConfig(dependency_probability=1.5)
        with pytest.raises(ValueError):
            SyntheticConfig(min_demand=0.0)
        with pytest.raises(ValueError):
            SyntheticConfig(shared_probability=-0.1)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            synthetic_programs(-1)
        assert synthetic_programs(0) == []


class TestExtendedRealPrograms:
    def test_sixteen_available(self):
        programs = real_programs(16)
        assert len({p.name for p in programs}) == 16

    def test_new_slices_have_costed_metadata(self):
        from repro.tdg.analysis import annotate_metadata_sizes

        catalog = program_catalog()
        for name in (
            "ipv6_routing",
            "mpls_lsr",
            "sflow_sampling",
            "ddos_mitigation",
            "rate_limiter",
        ):
            tdg = annotate_metadata_sizes(build_tdg(catalog[name]))
            assert tdg.edges, name
            assert any(e.metadata_bytes > 0 for e in tdg.edges), name

    def test_new_slices_deploy_and_verify(self):
        from repro.core import Hermes, verify_dataflow
        from repro.network.generators import linear_topology

        programs = real_programs(16)
        network = linear_topology(6)
        result = Hermes().deploy(programs, network)
        result.plan.validate()
        verify_dataflow(result.plan)
