"""Compiler semantics: cell plans, frameworks, caching, reports."""

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.suite import (
    SuiteReport,
    SuiteSpec,
    build_frameworks,
    cell_plan,
    deployment_cells,
    load_spec,
    run_suite,
    shipped_specs,
)
from repro.telemetry import Recorder, attached

#: The shipped specs' resolved matrix sizes (axes cross-products).
SHIPPED_CELL_COUNTS = {
    "exp1": 50,     # 5 counts x 1 topology x 10 frameworks
    "exp2": 100,    # 1 workload x 10 topologies x 10 frameworks
    "exp3": 100,
    "exp4": 100,
    "exp5": 50,     # 5 counts x 1 topology x 10 frameworks
    "exp6": 2,      # speed + hermes
    "exp7": 5,      # 5 seeds
    "fig2": 15,     # 3 packet sizes x 5 overheads
    "smoke": 8,     # 2 workloads x 2 topologies x 2 frameworks
    "diurnal": 16,  # 8 hours x 2 overheads
}


def tiny_spec(**overrides):
    """A two-cell deployment suite that solves in well under a second."""
    doc = {
        "suite": "repro.suite/v1",
        "name": "tiny",
        "kind": "deployment",
        "axes": {
            "workloads": [{"spec": "real:2", "tag": 2}],
            "topologies": ["linear-3"],
            "frameworks": ["ffl", "ffls"],
        },
    }
    doc.update(overrides)
    return SuiteSpec.from_dict(doc)


class TestCellPlan:
    def test_shipped_matrix_sizes(self):
        for name, spec in shipped_specs().items():
            assert len(cell_plan(spec)) == SHIPPED_CELL_COUNTS[name], name

    def test_deployment_coordinates(self):
        coords = cell_plan(load_spec("smoke"))
        assert coords[0] == {
            "workload": 2, "topology": "linear-3", "framework": "Hermes",
        }
        # workload -> topology -> framework nesting, workload slowest
        assert [c["workload"] for c in coords] == [2] * 4 + [3] * 4

    def test_churn_and_sweep_coordinates(self):
        assert cell_plan(load_spec("exp7")) == [
            {"seed": s} for s in range(5)
        ]
        fig2 = cell_plan(load_spec("fig2"))
        assert fig2[0] == {"packet_size": 512, "overhead": 28}
        assert len(fig2) == 15


class TestFrameworks:
    def test_paper_set_matches_default_frameworks(self):
        from repro.experiments.harness import default_frameworks

        spec = tiny_spec(
            axes={
                "workloads": ["real:2"],
                "topologies": ["linear-3"],
                "frameworks": {"set": "paper"},
            }
        )
        names = [f.name for f in build_frameworks(spec)]
        assert names == [f.name for f in default_frameworks()]

    def test_list_form_kwargs_pass_through(self):
        from repro.baselines import Speed

        spec = tiny_spec(
            axes={
                "workloads": ["real:2"],
                "topologies": ["linear-3"],
                "frameworks": [
                    {"name": "speed", "time_limit_s": 1.5},
                    "hermes",
                ],
            }
        )
        frameworks = build_frameworks(spec)
        assert isinstance(frameworks[0], Speed)
        assert frameworks[0].time_limit_s == 1.5
        assert frameworks[1].name == "Hermes"

    def test_deployment_cells_share_instances(self):
        cells = deployment_cells(load_spec("smoke"))
        assert len(cells) == 8
        # one network instance per unique topology spec
        assert cells[0].network is cells[4].network
        assert cells[2].network is cells[6].network
        assert cells[0].network is not cells[2].network
        # tags follow the workload axis
        assert [c.tag for c in cells] == [2] * 4 + [3] * 4

    def test_deployment_cells_rejects_other_kinds(self):
        with pytest.raises(ValueError, match="deployment"):
            deployment_cells(load_spec("exp7"))


class TestRunSuite:
    def test_rerun_hits_the_cache_and_is_byte_identical(self, tmp_path):
        spec = tiny_spec()
        cold = run_suite(
            spec, runner=ExperimentRunner(cache_dir=str(tmp_path))
        )
        assert cold.num_cells == 2
        assert cold.cached_cells == 0

        warm = run_suite(
            spec, runner=ExperimentRunner(cache_dir=str(tmp_path))
        )
        assert warm.cached_cells == warm.num_cells == 2
        assert warm.render() == cold.render()
        assert warm.tables == cold.tables
        # identical except the cache flags
        strip = lambda cells: [
            {k: v for k, v in c.items() if k != "cached"} for c in cells
        ]
        assert strip(warm.cells) == strip(cold.cells)

    def test_default_aggregator_is_the_pivot(self):
        report = run_suite(tiny_spec())
        assert report.meta["aggregators"] == ["pivot"]
        assert "tiny: per-packet byte overhead (B)" in report.tables[0]
        assert "FFL" in report.tables[0]

    def test_telemetry_stream(self):
        recorder = Recorder()
        with attached(recorder):
            run_suite(tiny_spec())
        kinds = [e["kind"] for e in recorder.events]
        assert kinds.count("suite.start") == 1
        assert kinds.count("suite.cell") == 2
        assert kinds.count("suite.done") == 1
        start = next(e for e in recorder.events if e["kind"] == "suite.start")
        assert start["suite"] == "tiny"
        assert start["suite_kind"] == "deployment"
        assert start["cells"] == 2

    def test_traffic_suite_applies_the_diurnal_model(self):
        from repro.simulation.spec import DiurnalLoad

        spec = SuiteSpec.from_dict(
            {
                "suite": "repro.suite/v1",
                "name": "t",
                "kind": "traffic",
                "axes": {"hours": [0, 6], "overheads": [48]},
                "params": {
                    "flows": 20,
                    "load": {"base": 0.5, "amplitude": 0.4},
                },
            }
        )
        report = run_suite(spec)
        assert report.num_cells == 2
        model = DiurnalLoad(base=0.5, amplitude=0.4)
        by_hour = {c["hour"]: c for c in report.cells}
        assert by_hour[0]["load"] == model.load_at(0)
        assert by_hour[6]["load"] == model.load_at(6)
        # peak hour carries more contention than the trough
        assert by_hour[6]["load"] > by_hour[0]["load"]

    def test_resources_suite_uses_the_frameworks_axis(self):
        spec = SuiteSpec.from_dict(
            {
                "suite": "repro.suite/v1",
                "name": "r",
                "kind": "resources",
                "axes": {"frameworks": ["ffl", "hermes"]},
                "params": {"num_sketches": 3},
            }
        )
        report = run_suite(spec)
        assert [c["strategy"] for c in report.cells] == [
            "standalone (ground truth)", "FFL", "Hermes",
        ]


class TestReport:
    def test_round_trip(self):
        report = run_suite(tiny_spec())
        doc = report.to_dict()
        again = SuiteReport.from_dict(doc)
        assert again == report
        assert again.dumps() == report.dumps()

    def test_save_and_load(self, tmp_path):
        report = run_suite(tiny_spec())
        path = tmp_path / "report.json"
        report.save(str(path))
        assert SuiteReport.load(str(path)) == report

    def test_version_and_unknown_keys(self):
        report = run_suite(tiny_spec())
        doc = report.to_dict()
        doc["version"] = "repro.suite-report/v0"
        with pytest.raises(ValueError, match="version"):
            SuiteReport.from_dict(doc)
        doc = report.to_dict()
        doc["bogus"] = 1
        with pytest.raises(ValueError, match="unknown"):
            SuiteReport.from_dict(doc)
