"""Selective hub replication (extension).

TDG merging deduplicates MATs shared by several programs, saving switch
resources — but the surviving *hub* MAT (typically a hash/index
computation) now feeds many programs, and every segment boundary that
separates the hub from a consumer costs coordination bytes.

The paper's node-deployment constraint (Eq. 6) is ``sum x(a,i,u) >= 1``
— a MAT may legally run on *several* switches.  This module exploits
that freedom in a targeted way: hub MATs that are cheap (small resource
demand) and source-like (no predecessors) are cloned, one copy per
consumer program, so each program carries its own instance and the
hub's cross-program edges disappear from every cut.  The cost is the
duplicated resource demand — exactly the merge savings given back for
those MATs — which is why replication is reserved for hubs whose demand
is below a threshold.

This is an extension knob (off by default) benchmarked in
``benchmarks/test_bench_ablation.py``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dataplane.mat import Mat
from repro.tdg.graph import Tdg

#: Hubs costing more than this many stage fractions are not worth
#: duplicating: the byte savings rarely justify burning half a stage
#: per consumer program.
DEFAULT_MAX_REPLICA_DEMAND = 0.25


def _program_of(name: str) -> str:
    return name.split(".", 1)[0]


def _clone(mat: Mat, new_name: str) -> Mat:
    return Mat(
        name=new_name,
        match_fields=mat.match_fields,
        actions=mat.actions,
        capacity=mat.capacity,
        rules=mat.rules,
        resource_demand=mat.resource_demand,
        detailed_demand=mat.detailed_demand,
    )


def replicate_cheap_hubs(
    tdg: Tdg,
    max_demand: float = DEFAULT_MAX_REPLICA_DEMAND,
) -> Tdg:
    """Clone qualifying hub MATs per consumer program.

    A node qualifies when it has no predecessors (source), consumers in
    at least two programs, and resource demand at most ``max_demand``.
    Clones keep the original MAT's structure (they write the same
    metadata fields, so consumers' match keys remain valid) under names
    ``"<program>.<original>~replica"``.

    Args:
        tdg: The merged TDG; not modified.
        max_demand: Per-replica demand ceiling.

    Returns:
        A new TDG in which every qualifying hub is replaced by
        per-program replicas.
    """
    result = tdg.copy(tdg.name)
    for name in list(result.node_names):
        mat = result.node(name)
        if result.predecessors(name):
            continue
        if mat.resource_demand > max_demand:
            continue
        consumers = result.out_edges(name)
        programs = sorted(
            {_program_of(e.downstream) for e in consumers}
        )
        if len(programs) < 2:
            continue

        by_program: Dict[str, List] = {}
        for edge in consumers:
            by_program.setdefault(_program_of(edge.downstream), []).append(
                edge
            )
        result.remove_node(name)
        base = name.split(".", 1)[1] if "." in name else name
        for program, edges in by_program.items():
            replica = _clone(mat, f"{program}.{base}~replica")
            result.add_node(replica)
            for edge in edges:
                result.add_edge(
                    replica.name,
                    edge.downstream,
                    edge.dep_type,
                    edge.metadata_bytes,
                )
    return result


def replication_cost(original: Tdg, replicated: Tdg) -> float:
    """Extra stage units the replicas consume vs. the merged graph."""
    return (
        replicated.total_resource_demand()
        - original.total_resource_demand()
    )
