"""Flow metrics and the paper's normalized presentation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlowMetrics:
    """Measured outcome of one flow transfer.

    Attributes:
        fct_us: Flow completion time in microseconds.
        goodput_gbps: Application-byte throughput over the FCT.
        num_packets: Packets the message required.
        wire_bytes_per_hop: Total bytes serialized on each hop.
        wait_us: Queueing wait folded into ``fct_us`` — nonzero only
            under the contention engine's shared output queues; the
            independent-flow engines always report 0.0.
    """

    fct_us: float
    goodput_gbps: float
    num_packets: int
    wire_bytes_per_hop: int
    wait_us: float = 0.0

    def __post_init__(self) -> None:
        if self.fct_us <= 0:
            raise ValueError("fct_us must be positive")
        if self.num_packets <= 0:
            raise ValueError("num_packets must be positive")


@dataclass(frozen=True)
class NormalizedMetrics:
    """Metrics relative to a zero-overhead baseline (Fig. 2's y-axes).

    ``fct_ratio`` > 1 means the overhead inflated completion time;
    ``goodput_ratio`` < 1 means it depressed throughput.
    """

    fct_ratio: float
    goodput_ratio: float

    @property
    def fct_increase_pct(self) -> float:
        return (self.fct_ratio - 1.0) * 100.0

    @property
    def goodput_decrease_pct(self) -> float:
        return (1.0 - self.goodput_ratio) * 100.0


def normalized_against(
    measured: FlowMetrics, baseline: FlowMetrics
) -> NormalizedMetrics:
    """Normalize ``measured`` against a no-metadata ``baseline`` run."""
    return NormalizedMetrics(
        fct_ratio=measured.fct_us / baseline.fct_us,
        goodput_ratio=measured.goodput_gbps / baseline.goodput_gbps,
    )
