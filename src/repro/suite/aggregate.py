"""Aggregators: fold a suite's outcome into rendered tables.

Each aggregator is ``fn(spec, outcome) -> str`` where ``outcome`` is
what :func:`~repro.suite.compiler.run_suite` produced for the spec's
kind (deployment: ``CellResult`` list; churn: ``Exp7Point`` list;
resources: ``Exp6Row`` list; overhead_sweep: ``Fig2Row`` list;
traffic: row dicts).  The experiment aggregators delegate to the
refactored experiment modules' ``render`` functions, so a suite run
of a shipped spec prints byte-identical tables to the historical
``python -m repro expN``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.experiments.reporting import Table
from repro.suite.spec import SuiteSpec


def _exp1(spec: SuiteSpec, results: List[Any]) -> str:
    from repro.experiments import exp1_testbed

    points = [
        exp1_testbed.Exp1Point(res.cell.tag, res.record)
        for res in results
    ]
    return exp1_testbed.render(points)


def _exp2(spec: SuiteSpec, results: List[Any]) -> str:
    from repro.experiments import exp2_overhead

    return exp2_overhead.render(_exp2_points(results))


def _exp2_points(results: List[Any]) -> List[Any]:
    from repro.experiments import exp2_overhead

    return [
        exp2_overhead.Exp2Point(res.cell.tag, res.record)
        for res in results
    ]


def _exp3(spec: SuiteSpec, results: List[Any]) -> str:
    from repro.experiments import exp3_exectime

    return exp3_exectime.render(_exp2_points(results))


def _exp4(spec: SuiteSpec, results: List[Any]) -> str:
    from repro.experiments import exp4_endtoend

    return exp4_endtoend.render(_exp2_points(results))


def _exp5(spec: SuiteSpec, results: List[Any]) -> str:
    from repro.experiments import exp5_scalability

    points = [
        exp5_scalability.Exp5Point(res.cell.tag, res.record)
        for res in results
    ]
    return exp5_scalability.render(points)


def _exp6(spec: SuiteSpec, rows: List[Any]) -> str:
    from repro.experiments import exp6_resources

    return exp6_resources.render(rows)


def _exp7(spec: SuiteSpec, points: List[Any]) -> str:
    from repro.experiments import exp7_churn

    return exp7_churn.table(points).render()


def _fig2(spec: SuiteSpec, rows: List[Any]) -> str:
    from repro.experiments import fig2_motivation

    return fig2_motivation.render(rows)


#: Record attributes the generic deployment pivot reports.
_PIVOT_ATTRS = (
    ("overhead_bytes", "per-packet byte overhead (B)"),
    ("reported_time_ms", "execution time (ms; 1e7 = exceeded limit)"),
    ("fct_ratio", "normalized FCT"),
    ("goodput_ratio", "normalized goodput"),
)


def _pivot(spec: SuiteSpec, results: List[Any]) -> str:
    """Generic framework x tag pivots over the deterministic record
    columns — the default view of an ad-hoc deployment suite."""
    from repro.experiments.reporting import pivot_records

    heading = spec.title or spec.name
    points = [(res.cell.tag, res.record) for res in results]
    tables = [
        pivot_records(points, attr, f"{heading}: {label}")
        for attr, label in _PIVOT_ATTRS
    ]
    return "\n\n".join(t.render() for t in tables)


def _traffic(spec: SuiteSpec, rows: List[Dict[str, Any]]) -> str:
    """Hour x overhead table of the contention engine's columns."""
    heading = spec.title or spec.name
    table = Table(
        f"{heading}: diurnal contention sweep",
        [
            "hour", "overhead(B)", "load", "FCT ratio",
            "goodput ratio", "mean wait (us)", "contended",
        ],
    )
    for row in rows:
        table.add_row(
            [
                row["hour"],
                row["overhead"],
                row["load"],
                row["fct_ratio"],
                row["goodput_ratio"],
                row["mean_wait_us"],
                row["contended_fraction"],
            ]
        )
    return table.render()


AGGREGATORS: Dict[str, Callable[[SuiteSpec, Any], str]] = {
    "exp1": _exp1,
    "exp2": _exp2,
    "exp3": _exp3,
    "exp4": _exp4,
    "exp5": _exp5,
    "exp6": _exp6,
    "exp7": _exp7,
    "fig2": _fig2,
    "pivot": _pivot,
    "traffic": _traffic,
}

_DEFAULTS = {
    "deployment": ("pivot",),
    "churn": ("exp7",),
    "resources": ("exp6",),
    "overhead_sweep": ("fig2",),
    "traffic": ("traffic",),
}


def default_aggregators(kind: str):
    """The aggregator names a kind falls back to when the spec names
    none."""
    return _DEFAULTS[kind]


__all__ = ["AGGREGATORS", "default_aggregators"]
