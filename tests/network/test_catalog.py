"""The named topology catalog: presets, grammar passthrough, errors."""

import pytest

from repro.network.catalog import catalog_names, describe, resolve
from repro.network.topozoo import TABLE_III_TOPOLOGIES, topology_zoo_wan


def _names(net):
    return sorted(s.name for s in net.switches)


def _edges(net):
    return sorted(link.key for link in net.links)


def test_catalog_names_sorted_and_complete():
    names = catalog_names()
    assert names == sorted(names)
    assert "testbed" in names
    for tid in TABLE_III_TOPOLOGIES:
        assert f"topozoo-{tid}" in names
    assert "linear-3" in names and "fattree-4" in names


def test_testbed_preset_is_exp1_network():
    net = resolve("testbed")
    assert len(net.switches) == 3
    assert all(s.programmable for s in net.switches)


def test_topozoo_preset_matches_generator():
    preset = resolve("topozoo-1")
    direct = topology_zoo_wan(1)
    assert len(preset.switches) == len(direct.switches) == 79
    assert preset.name == direct.name
    assert _edges(preset) == _edges(direct)


def test_linear_and_fattree_presets():
    assert len(resolve("linear-5").switches) == 5
    assert len(resolve("fattree-4").switches) == 20


def test_grammar_passthrough():
    assert len(resolve("zoo:1").switches) == 79
    assert len(resolve("linear:4").switches) == 4
    assert len(resolve("fattree:4").switches) == 20
    assert len(resolve("wan:12:16:3").switches) == 12


def test_wan_seed_parameter():
    # seed= applies only when the spec does not pin its own seed
    a = resolve("wan:10:14", seed=5)
    b = resolve("wan:10:14:5")
    assert _names(a) == _names(b)
    assert _edges(a) == _edges(b)


def test_describe_known_and_unknown():
    assert "Table III" in describe("topozoo-3")
    with pytest.raises(ValueError, match="topology preset"):
        describe("nope")


def test_unknown_kind_raises():
    with pytest.raises(ValueError, match="topology kind"):
        resolve("ring:5")


def test_preset_resolution_is_deterministic():
    a, b = resolve("topozoo-7"), resolve("topozoo-7")
    assert _names(a) == _names(b)
    assert _edges(a) == _edges(b)
