"""P4All (Hogan et al., NSDI'22).

P4All lets programmers compose modular P4 elements and solves an ILP
that sizes and places them, hiding deployment details.  Modules are
planned per program (no cross-program redundancy elimination); the
placement objective maximizes packet-processing performance, which we
model as the latency-minimizing ILP on the unmerged TDG.
"""

from __future__ import annotations

from repro.baselines.speed import Speed
from repro.core.formulation import OBJECTIVE_LATENCY


class P4All(Speed):
    """The P4All baseline: unmerged TDG, latency objective."""

    name = "P4All"
    merges = False
    objective = OBJECTIVE_LATENCY
