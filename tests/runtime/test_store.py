"""Unit tests for the versioned plan store."""

import json

import pytest

from repro.control import MigrationPlanner
from repro.core import Hermes
from repro.network.generators import random_wan
from repro.plan import read_plan
from repro.runtime import PlanStore
from tests.conftest import make_sketch_program


@pytest.fixture(scope="module")
def plans():
    """Three consecutive plans: initial, after a failure, after another."""
    programs = [
        make_sketch_program(f"p{i}", index_bytes=2 + i) for i in range(6)
    ]
    network = random_wan(12, 18, seed=4, num_stages=4)
    first = Hermes().deploy(programs, network).plan
    planner = MigrationPlanner()
    second = planner.handle_switch_failure(
        first, first.occupied_switches()[0]
    ).new_plan
    third = planner.handle_switch_failure(
        second, second.occupied_switches()[0]
    ).new_plan
    return [first, second, third]


@pytest.fixture
def store(plans):
    store = PlanStore()
    store.append(plans[0], time_s=0.0, reason="initial")
    store.append(plans[1], time_s=1.0, reason="replan")
    store.append(plans[2], time_s=2.0, reason="replan")
    return store


class TestStore:
    def test_versions_ordered(self, store, plans):
        assert len(store) == 3
        assert [v.version for v in store.versions] == [0, 1, 2]
        assert [v.plan for v in store.versions] == plans
        assert store.latest.plan is plans[2]

    def test_fingerprints_match_plans(self, store, plans):
        assert store.fingerprints() == [p.fingerprint() for p in plans]

    def test_lookup_by_fingerprint(self, store, plans):
        assert store.get(plans[1].fingerprint()) is plans[1]
        with pytest.raises(KeyError):
            store.get("0" * 64)

    def test_consecutive_diffs(self, store):
        diffs = store.diffs()
        assert len(diffs) == 2
        assert not diffs[0].is_empty
        assert not diffs[1].is_empty

    def test_history_digest_stable_and_sensitive(self, plans):
        a, b = PlanStore(), PlanStore()
        for s in (a, b):
            s.append(plans[0], 0.0, "initial")
            s.append(plans[1], 1.0, "replan")
        assert a.history_digest() == b.history_digest()
        b.append(plans[2], 2.0, "replan")
        assert a.history_digest() != b.history_digest()

    def test_empty_store(self):
        store = PlanStore()
        assert store.latest is None
        assert len(store) == 0
        with pytest.raises(ValueError):
            store.end_to_end_diff()

    def test_write_dir(self, store, plans, tmp_path):
        directory = str(tmp_path / "plans")
        paths = store.write_dir(directory)
        assert len(paths) == 4  # 3 versions + history.json
        # Every plan document round-trips through repro.plan/v1.
        for path, plan in zip(paths[:3], plans):
            loaded = read_plan(path)
            assert loaded.fingerprint() == plan.fingerprint()
        with open(paths[3]) as fh:
            history = json.load(fh)
        assert history["history_digest"] == store.history_digest()
        assert [v["reason"] for v in history["versions"]] == [
            "initial", "replan", "replan",
        ]

    def test_to_dict_summary(self, store):
        doc = store.to_dict()
        assert len(doc["versions"]) == 3
        assert len(doc["diffs"]) == 2
        for version in doc["versions"]:
            assert "a_max_bytes" in version
            assert "occupied_switches" in version
