"""Exp#5 (Fig. 9): scalability with the number of concurrent programs.

Deploys 10-50 programs on Table III topology 10 and reports, per
framework and program count, the per-packet overhead, execution time,
and the end-to-end impact — the four panels of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.baselines.base import DeploymentFramework
from repro.experiments.exp2_overhead import workload
from repro.experiments.harness import (
    DeploymentRecord,
    default_frameworks,
)
from repro.experiments.reporting import Table
from repro.milp.branch_bound import DEFAULT_PROFILE
from repro.network.topozoo import topology_zoo_wan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentRunner

PROGRAM_COUNTS = (10, 20, 30, 40, 50)
TOPOLOGY_ID = 10


@dataclass
class Exp5Point:
    num_programs: int
    record: DeploymentRecord


def run(
    program_counts: Sequence[int] = PROGRAM_COUNTS,
    topology_id: int = TOPOLOGY_ID,
    frameworks: Optional[Sequence[DeploymentFramework]] = None,
    seed: int = 7,
    ilp_time_limit_s: float = 10.0,
    runner: Optional["ExperimentRunner"] = None,
    solver_profile: str = DEFAULT_PROFILE,
) -> List[Exp5Point]:
    """Sweep the program count; the whole (framework x count) grid is
    one flat cell list so a parallel ``runner`` overlaps every solve,
    and its result cache collapses sweep points shared with earlier
    runs (e.g. the n=50 cells Exp#2 already solved on topology 10)."""
    from repro.experiments.runner import Cell, execute_cells

    cells: List[Cell] = []
    for count in program_counts:
        programs = tuple(workload(count, seed))
        network = topology_zoo_wan(topology_id)
        sweep_frameworks = (
            list(frameworks)
            if frameworks is not None
            else default_frameworks(
                ilp_time_limit_s=ilp_time_limit_s,
                per_program_ilp_time_limit_s=max(
                    ilp_time_limit_s / 20.0, 0.2
                ),
                solver_profile=solver_profile,
            )
        )
        for framework in sweep_frameworks:
            cells.append(
                Cell(
                    programs=programs,
                    network=network,
                    framework=framework,
                    tag=count,
                )
            )
    return [
        Exp5Point(res.cell.tag, res.record)
        for res in execute_cells(cells, runner)
    ]


def _pivot(points: List[Exp5Point], attr: str, title: str) -> Table:
    counts = sorted({p.num_programs for p in points})
    names: List[str] = []
    for p in points:
        if p.record.framework not in names:
            names.append(p.record.framework)
    table = Table(title, ["framework"] + [f"n={c}" for c in counts])
    for name in names:
        row: List = [name]
        for count in counts:
            record = next(
                p.record
                for p in points
                if p.record.framework == name and p.num_programs == count
            )
            row.append(getattr(record, attr))
        table.add_row(row)
    return table


def main(points: Optional[List[Exp5Point]] = None) -> str:
    points = points if points is not None else run()
    tables = [
        _pivot(points, "overhead_bytes", "Fig. 9(a): per-packet byte overhead (B)"),
        _pivot(
            points,
            "reported_time_ms",
            "Fig. 9(b): execution time (ms; 1e7 = exceeded limit)",
        ),
        _pivot(points, "fct_ratio", "Fig. 9(c): normalized FCT"),
        _pivot(points, "goodput_ratio", "Fig. 9(d): normalized goodput"),
        _pivot(
            points,
            "plan_fct_ratio",
            "Fig. 9(c'): plan-aware normalized FCT (routed pairs)",
        ),
        _pivot(
            points,
            "plan_goodput_ratio",
            "Fig. 9(d'): plan-aware normalized goodput (routed pairs)",
        ),
    ]
    output = "\n\n".join(t.render() for t in tables)
    print(output)
    return output


if __name__ == "__main__":
    main()
