"""Exp#1 (Fig. 5): testbed experiments.

The testbed is three Tofino switches in a line with a sender and a
receiver at the edges.  2-10 real programs (switch.p4 feature slices)
are deployed concurrently by every framework; we report, per framework
and program count:

* (a) per-packet byte overhead — the max metadata between any pair of
  testbed switches;
* (b) execution time of the deployment decision;
* (c)/(d) normalized FCT and goodput of a flow crossing the testbed
  carrying that overhead.

Since the suite-compiler refactor this module is a thin shim: the
experiment itself is the shipped ``repro.suite/v1`` spec
(``repro/suite/specs/exp1.json``), :func:`run` compiles a matching
spec through :func:`repro.suite.compiler.deployment_cells`, and the
tables come from :func:`render` (the suite's ``exp1`` aggregator calls
it too, so ``repro suite run exp1`` prints byte-identical output).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.baselines.base import DeploymentFramework
from repro.experiments.harness import DeploymentRecord
from repro.experiments.reporting import Table, pivot_records
from repro.network.generators import linear_topology
from repro.network.topology import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentRunner

#: The paper sweeps 2..10 concurrent programs.
PROGRAM_COUNTS = (2, 4, 6, 8, 10)


def testbed_network() -> Network:
    """Three 32x100G Tofino-like switches in a line (§VI-A)."""
    return linear_topology(3, programmable=True, link_latency_ms=0.001)


@dataclass
class Exp1Point:
    """One (framework, #programs) cell of Fig. 5."""

    num_programs: int
    record: DeploymentRecord


def suite_spec(
    program_counts: Sequence[int] = PROGRAM_COUNTS,
    packet_payload_bytes: int = 1024,
):
    """The Exp#1 suite spec for an arbitrary count sweep (the shipped
    ``exp1.json`` is this at the paper's defaults)."""
    from repro.suite import SuiteSpec

    return SuiteSpec.from_dict(
        {
            "suite": "repro.suite/v1",
            "name": "exp1",
            "kind": "deployment",
            "axes": {
                "workloads": [
                    {"spec": f"real:{count}", "tag": count}
                    for count in program_counts
                ],
                "topologies": ["testbed"],
                "frameworks": {
                    "set": "paper",
                    "ilp_time_limit_s": 20.0,
                    "per_program_ilp_time_limit_s": 2.0,
                },
            },
            "params": {
                "tag_axis": "workload",
                "packet_payload_bytes": packet_payload_bytes,
            },
            "aggregate": ["exp1"],
        }
    )


def run(
    program_counts: Sequence[int] = PROGRAM_COUNTS,
    frameworks: Optional[Sequence[DeploymentFramework]] = None,
    packet_payload_bytes: int = 1024,
    runner: Optional["ExperimentRunner"] = None,
) -> List[Exp1Point]:
    """Deploy 2-10 real programs on the 3-switch testbed."""
    from repro.experiments.runner import execute_cells
    from repro.suite import deployment_cells

    cells = deployment_cells(
        suite_spec(program_counts, packet_payload_bytes),
        frameworks_override=frameworks,
    )
    return [
        Exp1Point(res.cell.tag, res.record)
        for res in execute_cells(cells, runner)
    ]


def _pivot(
    points: List[Exp1Point], attr: str, title: str
) -> Table:
    return pivot_records(
        [(p.num_programs, p.record) for p in points],
        attr,
        title,
        col_label=lambda c: f"n={c}",
    )


def render(points: List[Exp1Point]) -> str:
    """Fig. 5(a)-(d') as six tables (what ``main`` prints)."""
    out = [
        _pivot(points, "overhead_bytes", "Fig. 5(a): per-packet byte overhead (B)"),
        _pivot(
            points,
            "reported_time_ms",
            "Fig. 5(b): execution time (ms; 1e7 = exceeded limit)",
        ),
        _pivot(points, "fct_ratio", "Fig. 5(c): normalized FCT"),
        _pivot(points, "goodput_ratio", "Fig. 5(d): normalized goodput"),
        _pivot(
            points,
            "plan_fct_ratio",
            "Fig. 5(c'): plan-aware normalized FCT (routed pairs)",
        ),
        _pivot(
            points,
            "plan_goodput_ratio",
            "Fig. 5(d'): plan-aware normalized goodput (routed pairs)",
        ),
    ]
    return "\n\n".join(t.render() for t in out)


def main(points: Optional[List[Exp1Point]] = None) -> str:
    """Print Fig. 5(a)-(d) as four tables."""
    points = points if points is not None else run()
    output = render(points)
    print(output)
    return output


if __name__ == "__main__":
    main()
