"""Tests for the ASCII plan visualizer."""

from repro.core import Hermes
from repro.experiments.visualize import render_plan, switch_box
from repro.network import linear_topology
from tests.conftest import make_sketch_program


def split_plan():
    programs = [make_sketch_program(f"p{i}", index_bytes=2 + i) for i in range(3)]
    net = linear_topology(6, num_stages=2, stage_capacity=1.0)
    return Hermes().deploy(programs, net).plan


class TestSwitchBox:
    def test_box_contains_every_mat(self):
        plan = split_plan()
        for switch in plan.occupied_switches():
            box = "\n".join(switch_box(plan, switch))
            for mat_name in plan.mats_on(switch):
                assert mat_name[:12] in box

    def test_box_has_borders(self):
        plan = split_plan()
        box = switch_box(plan, plan.occupied_switches()[0])
        assert box[0].startswith("+")
        assert box[-1].startswith("+")


class TestRenderPlan:
    def test_mentions_all_switches_and_summary(self):
        plan = split_plan()
        out = render_plan(plan)
        for switch in plan.occupied_switches():
            assert f"- {switch} " in out
        assert f"A_max = {plan.max_metadata_bytes()} B" in out

    def test_channels_labelled_with_bytes(self):
        plan = split_plan()
        out = render_plan(plan)
        for (u, v), total in plan.pair_metadata_bytes().items():
            assert f"={total}B=> {v}" in out

    def test_single_switch_plan(self):
        programs = [make_sketch_program("solo")]
        net = linear_topology(1, num_stages=4)
        plan = Hermes().deploy(programs, net).plan
        out = render_plan(plan)
        assert "0 channels" in out

    def test_cli_diagram_flag(self, capsys):
        from repro.cli import main

        main(
            [
                "deploy",
                "--workload",
                "sketches:3",
                "--topology",
                "linear:2",
                "--diagram",
            ]
        )
        out = capsys.readouterr().out
        assert "A_max =" in out
