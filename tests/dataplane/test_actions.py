"""Unit tests for repro.dataplane.actions."""

import pytest

from repro.dataplane.actions import (
    Action,
    ActionPrimitive,
    counter_update,
    drop,
    forward,
    hash_compute,
    modify,
    no_op,
)
from repro.dataplane.fields import header_field, metadata_field


class TestAction:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            Action("")

    def test_read_write_sets(self):
        src = header_field("ipv4.src", 32)
        out = metadata_field("m.out", 32)
        action = Action(
            "a", ActionPrimitive.MODIFY_FIELD, reads=(src,), writes=(out,)
        )
        assert action.read_set.names == frozenset({"ipv4.src"})
        assert action.write_set.names == frozenset({"m.out"})

    def test_alu_costs_ordered(self):
        assert ActionPrimitive.NO_OP.alu_cost == 0
        assert ActionPrimitive.MODIFY_FIELD.alu_cost == 1
        assert ActionPrimitive.HASH.alu_cost == 2
        assert Action("x", ActionPrimitive.HASH).alu_cost == 2

    def test_every_primitive_has_a_cost(self):
        for primitive in ActionPrimitive:
            assert primitive.alu_cost >= 0


class TestConstructors:
    def test_no_op_touches_nothing(self):
        action = no_op()
        assert not action.reads
        assert not action.writes

    def test_forward_writes_port(self):
        port = metadata_field("m.port", 16)
        action = forward(port)
        assert action.primitive is ActionPrimitive.FORWARD
        assert action.write_set.names == frozenset({"m.port"})

    def test_drop(self):
        assert drop().primitive is ActionPrimitive.DROP

    def test_modify_reads_sources_writes_target(self):
        a = header_field("a", 8)
        b = metadata_field("b", 8)
        action = modify(b, [a])
        assert action.read_set.names == frozenset({"a"})
        assert action.write_set.names == frozenset({"b"})

    def test_modify_generates_name(self):
        target = metadata_field("meta.x", 8)
        assert modify(target).name == "set_meta_x"

    def test_hash_compute(self):
        out = metadata_field("m.idx", 32)
        src = header_field("ipv4.src", 32)
        action = hash_compute(out, [src])
        assert action.primitive is ActionPrimitive.HASH
        assert action.write_set.names == frozenset({"m.idx"})
        assert action.read_set.names == frozenset({"ipv4.src"})

    def test_counter_update_with_result(self):
        idx = metadata_field("m.idx", 32)
        val = metadata_field("m.val", 32)
        action = counter_update(idx, val)
        assert action.primitive is ActionPrimitive.COUNTER
        assert action.read_set.names == frozenset({"m.idx"})
        assert action.write_set.names == frozenset({"m.val"})

    def test_counter_update_without_result_writes_nothing(self):
        idx = metadata_field("m.idx", 32)
        assert not counter_update(idx).writes
