"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dataplane import (
    Mat,
    Program,
    counter_update,
    hash_compute,
    metadata_field,
    modify,
    standard_headers,
)
from repro.network import linear_topology


@pytest.fixture
def headers():
    return standard_headers()


def make_sketch_program(
    name: str,
    index_bytes: int = 4,
    value_bytes: int = 4,
    demands=(0.4, 0.5, 0.3),
) -> Program:
    """hash -> update -> report, the canonical three-MAT chain.

    Metadata sizes are parameterizable so tests can control A(a, b):
    the hash->update edge carries ``index_bytes`` and update->report
    carries ``value_bytes``.
    """
    hdr = standard_headers()
    index = metadata_field(f"meta.{name}.idx", 8 * index_bytes)
    value = metadata_field(f"meta.{name}.val", 8 * value_bytes)
    return Program(
        name,
        [
            Mat(
                "hash",
                match_fields=[hdr["ipv4.src_addr"], hdr["ipv4.dst_addr"]],
                actions=[hash_compute(index, [hdr["ipv4.src_addr"]])],
                capacity=16,
                resource_demand=demands[0],
            ),
            Mat(
                "update",
                match_fields=[index],
                actions=[counter_update(index, value)],
                capacity=1024,
                resource_demand=demands[1],
            ),
            Mat(
                "report",
                match_fields=[value],
                actions=[modify(hdr["ipv4.dscp"], [value])],
                capacity=64,
                resource_demand=demands[2],
            ),
        ],
    )


@pytest.fixture
def sketch_program():
    return make_sketch_program("sk")


@pytest.fixture
def six_programs():
    return [make_sketch_program(f"p{i}", index_bytes=2 + i) for i in range(6)]


@pytest.fixture
def small_line():
    """Three programmable switches, four stages each."""
    return linear_topology(3, num_stages=4, stage_capacity=1.0)


@pytest.fixture
def tiny_line():
    """Three programmable switches, two small stages each."""
    return linear_topology(3, num_stages=2, stage_capacity=1.0)
