"""Ablation benchmarks for the design choices DESIGN.md calls out.

* split criterion — Hermes' min-metadata-cut splitting vs. a naive
  capacity-balanced splitter that ignores edge weights;
* epsilon sensitivity — how the occupied-switch bound trades off
  against the byte overhead;
* TDG merging — redundancy elimination on vs. off.
"""

from repro.core.analyzer import ProgramAnalyzer
from repro.core.heuristic import GreedyHeuristic, split_tdg
from repro.core.stages import segment_fits
from repro.experiments.reporting import Table
from repro.network.generators import linear_topology
from repro.network.topozoo import topology_zoo_wan
from repro.workloads.sketches import sketch_programs
from repro.workloads.switchp4 import real_programs
from repro.workloads.synthetic import synthetic_programs


def naive_balanced_split(tdg, reference):
    """Capacity-driven splitter that is blind to metadata weights."""
    segments = []
    remaining = tdg
    piece = 0
    while not segment_fits(remaining, reference):
        topo = remaining.topological_order(strategy="kahn")
        demand = 0.0
        size = 0
        for name in topo[:-1]:
            next_demand = demand + remaining.node(name).resource_demand
            if size > 0 and next_demand > reference.total_capacity:
                break
            demand = next_demand
            size += 1
        size = max(size, 1)
        prefix = remaining.subgraph(topo[:size], name=f"naive/{piece}")
        while size > 1 and not segment_fits(prefix, reference):
            size -= 1
            prefix = remaining.subgraph(topo[:size], name=f"naive/{piece}")
        segments.append(prefix)
        remaining = remaining.subgraph(topo[size:], name="naive/rest")
        piece += 1
    segments.append(remaining)
    return segments


def _workload():
    return real_programs(10) + synthetic_programs(10, seed=7)


def test_bench_ablation_split_criterion(benchmark):
    """Min-cut splitting should beat weight-blind balanced splitting."""
    programs = _workload()
    network = topology_zoo_wan(10)
    tdg = ProgramAnalyzer().analyze(programs)

    def run_min_cut():
        return GreedyHeuristic(splitter=split_tdg).deploy(tdg, network)

    plan_min_cut = benchmark.pedantic(run_min_cut, rounds=3, iterations=1)
    plan_naive = GreedyHeuristic(splitter=naive_balanced_split).deploy(
        tdg, network
    )

    table = Table(
        "Ablation: split criterion",
        ["splitter", "A_max (B)", "occupied switches"],
    )
    table.add_row(
        [
            "min-metadata-cut (Hermes)",
            plan_min_cut.max_metadata_bytes(),
            plan_min_cut.num_occupied_switches(),
        ]
    )
    table.add_row(
        [
            "capacity-balanced (naive)",
            plan_naive.max_metadata_bytes(),
            plan_naive.num_occupied_switches(),
        ]
    )
    from conftest import record_report

    record_report(table.render())
    assert (
        plan_min_cut.max_metadata_bytes()
        <= plan_naive.max_metadata_bytes()
    )


def test_bench_ablation_epsilon_sensitivity(benchmark):
    """Tightening epsilon2 concentrates MATs and changes the overhead."""
    programs = real_programs(10)
    # 21.5 stage units over 6-stage switches: stage packing reaches
    # ~80% fill, so five switches is the tightest feasible budget.
    network = linear_topology(8, num_stages=6, stage_capacity=1.0)
    tdg = ProgramAnalyzer().analyze(programs)

    budgets = (5, 6, 8, None)

    def sweep():
        results = {}
        for epsilon2 in budgets:
            plan = GreedyHeuristic(epsilon2=epsilon2).deploy(tdg, network)
            results[epsilon2] = plan
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "Ablation: epsilon2 sensitivity",
        ["epsilon2", "A_max (B)", "occupied switches"],
    )
    for epsilon2, plan in results.items():
        table.add_row(
            [
                str(epsilon2),
                plan.max_metadata_bytes(),
                plan.num_occupied_switches(),
            ]
        )
        if epsilon2 is not None:
            assert plan.num_occupied_switches() <= epsilon2
    from conftest import record_report

    record_report(table.render())


def test_bench_ablation_merging(benchmark):
    """Redundancy elimination shrinks the TDG and its footprint."""
    programs = sketch_programs(10)
    network = linear_topology(3)

    def deploy(merge):
        tdg = ProgramAnalyzer(merge=merge).analyze(programs)
        plan = GreedyHeuristic().deploy(tdg, network)
        return tdg, plan

    merged_tdg, merged_plan = benchmark.pedantic(
        deploy, args=(True,), rounds=3, iterations=1
    )
    unmerged_tdg, unmerged_plan = deploy(False)

    table = Table(
        "Ablation: TDG merging",
        ["merging", "MATs", "stage units", "A_max (B)"],
    )
    for label, tdg, plan in (
        ("on (SPEED-style)", merged_tdg, merged_plan),
        ("off", unmerged_tdg, unmerged_plan),
    ):
        table.add_row(
            [
                label,
                len(tdg),
                round(tdg.total_resource_demand(), 2),
                plan.max_metadata_bytes(),
            ]
        )
    from conftest import record_report

    record_report(table.render())
    assert len(merged_tdg) < len(unmerged_tdg)
    assert (
        merged_tdg.total_resource_demand()
        < unmerged_tdg.total_resource_demand()
    )


def test_bench_ablation_hub_replication(benchmark):
    """The Eq. 6 replication extension: clone cheap hubs per program."""
    from repro.core.replication import (
        replicate_cheap_hubs,
        replication_cost,
    )

    programs = real_programs(10) + synthetic_programs(40, seed=7)
    network = topology_zoo_wan(1)
    tdg = ProgramAnalyzer().analyze(programs)

    def run_replicated():
        return GreedyHeuristic(replicate_hubs=True).deploy(tdg, network)

    replicated_plan = benchmark.pedantic(
        run_replicated, rounds=1, iterations=1
    )
    base_plan = GreedyHeuristic().deploy(tdg, network)
    extra_units = replication_cost(tdg, replicate_cheap_hubs(tdg))

    table = Table(
        "Ablation: hub replication (extension)",
        ["policy", "A_max (B)", "occupied switches", "extra stage units"],
    )
    table.add_row(
        [
            "merged hubs (paper)",
            base_plan.max_metadata_bytes(),
            base_plan.num_occupied_switches(),
            0.0,
        ]
    )
    table.add_row(
        [
            "replicated hubs",
            replicated_plan.max_metadata_bytes(),
            replicated_plan.num_occupied_switches(),
            round(extra_units, 1),
        ]
    )
    from conftest import record_report

    record_report(table.render())
    # At this scale hub edges dominate the cuts, so replication wins.
    assert (
        replicated_plan.max_metadata_bytes()
        <= base_plan.max_metadata_bytes()
    )
