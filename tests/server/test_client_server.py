"""Live daemon tests: dispatch, sessions, streaming, recovery."""

import json
import socket

import pytest

from repro.server import protocol
from repro.server.client import ReproClient, ServerError, parse_address

WORKLOAD = {"workload": "real:6", "topology": "wan:12:18", "seed": 3}


class TestBasics:
    def test_ping(self, server):
        with ReproClient.connect(server.address) as client:
            assert client.ping() == {
                "pong": True,
                "protocol": protocol.PROTOCOL,
            }

    def test_invalid_params_error_envelope(self, server):
        with ReproClient.connect(server.address) as client:
            with pytest.raises(ServerError) as err:
                client.request("deploy", {"bogus": 1})
            assert err.value.code == "invalid_params"
            assert "bogus" in err.value.server_message
            # The connection survives an op error.
            assert client.ping()["pong"] is True

    def test_unknown_op_and_bad_frame(self, server):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(server.address)
        rfile = sock.makefile("rb")
        try:
            sock.sendall(
                json.dumps(
                    {"proto": protocol.PROTOCOL, "id": 1, "op": "teleport"}
                ).encode()
                + b"\n"
            )
            reply = json.loads(rfile.readline())
            assert reply["ok"] is False
            assert reply["error"]["code"] == "unknown_op"

            sock.sendall(b"this is not json\n")
            reply = json.loads(rfile.readline())
            assert reply["error"]["code"] == "bad_frame"
            assert reply["id"] is None

            # Still alive afterwards.
            sock.sendall(
                protocol.encode_frame(protocol.request(2, "ping"))
            )
            assert json.loads(rfile.readline())["ok"] is True
        finally:
            rfile.close()
            sock.close()


class TestSessions:
    def test_warm_repeat_deploy(self, server):
        with ReproClient.connect(server.address) as client:
            first = client.request("deploy", WORKLOAD)
            second = client.request("deploy", WORKLOAD)
            assert first["session"]["source"] == "cold"
            assert second["session"]["source"] == "warm:rebase"
            assert second["fingerprint"] == first["fingerprint"]
            info = client.request("session_info")
            assert info["cold_solves"] == 1
            assert info["warm_hits"] == 1
            assert info["plan_version"] == 1

    def test_changed_params_go_cold(self, server):
        with ReproClient.connect(server.address) as client:
            client.request("deploy", WORKLOAD)
            changed = client.request(
                "deploy", {**WORKLOAD, "workload": "real:7"}
            )
            assert changed["session"]["source"] == "cold"

    def test_sessions_are_isolated(self, server):
        with ReproClient.connect(server.address) as a:
            a.request("deploy", WORKLOAD)
            with ReproClient.connect(server.address) as b:
                # b has no history: its first deploy is cold and its
                # session counters start at zero.
                info = b.request("session_info")
                assert info["deploys"] == 0
                doc = b.request("deploy", WORKLOAD)
                assert doc["session"]["source"] == "cold"
            assert a.request("session_info")["deploys"] == 1

    def test_plan_diff_defaults_to_session_plan(self, server):
        with ReproClient.connect(server.address) as client:
            client.request("deploy", WORKLOAD)
            diff = client.request("plan_diff", {})
            assert diff["is_empty"] is True

    def test_plan_diff_without_plan_is_invalid(self, server):
        with ReproClient.connect(server.address) as client:
            with pytest.raises(ServerError) as err:
                client.request("plan_diff", {})
            assert err.value.code == "invalid_params"


class TestStreaming:
    def test_subscribe_streams_telemetry(self, server):
        events = []
        with ReproClient.connect(server.address) as client:
            client.subscribe()
            client.request(
                "churn_run",
                {**WORKLOAD, "events": 3},
                on_event=events.append,
            )
        assert events, "no telemetry streamed"
        kinds = {frame["data"]["kind"] for frame in events}
        assert "runtime.converged" in kinds
        seqs = [frame["seq"] for frame in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_unsubscribed_connections_get_no_events(self, server):
        events = []
        with ReproClient.connect(server.address) as client:
            client.request(
                "churn_run",
                {**WORKLOAD, "events": 3},
                on_event=events.append,
            )
        assert events == []


class TestJournalAndRecovery:
    def test_server_journal_collects_session_events(
        self, server_factory, tmp_path
    ):
        journal = tmp_path / "server.jsonl"
        server = server_factory(journal=str(journal))
        with ReproClient.connect(server.address) as client:
            client.request("deploy", WORKLOAD)
        lines = [
            json.loads(line)
            for line in journal.read_text().splitlines()
            if line.strip()
        ]
        assert any(e["kind"] == "server.deploy" for e in lines)
        assert all("session" in e for e in lines)

    def test_session_recovery_across_restart(
        self, server_factory, tmp_path
    ):
        state = str(tmp_path / "state")
        first = server_factory(state_dir=state)
        with ReproClient.connect(first.address) as client:
            before = client.request("deploy", WORKLOAD)
        first.stop_threadsafe()

        second = server_factory(state_dir=state)
        with ReproClient.connect(second.address) as client:
            info = client.request("session_info")
            assert info["recovered"] is True
            assert info["plan_version"] == 0
            after = client.request("deploy", WORKLOAD)
        # The restarted session resumes the history warm and lands on
        # the same plan.
        assert after["session"]["source"] == "warm:rebase"
        assert after["session"]["recovered"] is True
        assert after["fingerprint"] == before["fingerprint"]


class TestShutdown:
    def test_shutdown_op_stops_the_server(self, server_factory):
        server = server_factory()
        with ReproClient.connect(server.address) as client:
            assert client.shutdown_server() == {"stopping": True}
        # The socket stops accepting (poll briefly: close is async).
        import time

        deadline = time.time() + 10
        while time.time() < deadline:
            try:
                ReproClient.connect(server.address).close()
            except (ConnectionError, OSError):
                return
            time.sleep(0.05)
        pytest.fail("server still accepting after shutdown")


class TestParseAddress:
    def test_tcp(self):
        assert parse_address("127.0.0.1:7421") == ("127.0.0.1", 7421)
        assert parse_address(":7421") == ("127.0.0.1", 7421)

    def test_unix(self):
        assert parse_address("/tmp/x.sock") == "/tmp/x.sock"
        assert parse_address("unix:/tmp/x.sock") == "/tmp/x.sock"
        assert parse_address("./repro.sock") == "./repro.sock"
