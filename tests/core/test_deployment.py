"""Unit tests for deployment plans and their validation."""

import pytest

from repro.core.deployment import (
    DeploymentError,
    DeploymentPlan,
    MatPlacement,
)
from repro.dataplane.actions import no_op
from repro.dataplane.mat import Mat
from repro.network.generators import linear_topology
from repro.network.paths import PathEnumerator
from repro.tdg.dependencies import DependencyType
from repro.tdg.graph import Tdg


def two_mat_tdg(meta_bytes=8):
    tdg = Tdg("t")
    tdg.add_node(Mat("a", actions=[no_op()], resource_demand=0.4))
    tdg.add_node(Mat("b", actions=[no_op()], resource_demand=0.4))
    tdg.add_edge("a", "b", DependencyType.MATCH, meta_bytes)
    return tdg


def plan_with(tdg, network, placements, route=True):
    routing = None
    if route:
        paths = PathEnumerator(network)
        probe = DeploymentPlan(tdg, network, placements)
        routing = {
            pair: paths.shortest(*pair)
            for pair in probe.pair_metadata_bytes()
        }
    return DeploymentPlan(tdg, network, placements, routing)


class TestMatPlacement:
    def test_stage_accessors(self):
        p = MatPlacement("a", "s0", (2, 3, 4))
        assert p.first_stage == 2
        assert p.last_stage == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            MatPlacement("a", "s0", ())
        with pytest.raises(ValueError):
            MatPlacement("a", "s0", (3, 2))
        with pytest.raises(ValueError):
            MatPlacement("a", "s0", (0,))


class TestMetrics:
    def test_same_switch_has_no_overhead(self):
        tdg = two_mat_tdg()
        net = linear_topology(2)
        plan = plan_with(
            tdg,
            net,
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s0", (2,)),
            },
        )
        assert plan.max_metadata_bytes() == 0
        assert plan.num_occupied_switches() == 1
        plan.validate()

    def test_cross_switch_overhead_charged_to_pair(self):
        tdg = two_mat_tdg(meta_bytes=12)
        net = linear_topology(2)
        plan = plan_with(
            tdg,
            net,
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s1", (1,)),
            },
        )
        assert plan.pair_metadata_bytes() == {("s0", "s1"): 12}
        assert plan.max_metadata_bytes() == 12
        assert plan.total_metadata_bytes() == 12
        assert plan.cross_switch_edges() == [("a", "b")]
        plan.validate()

    def test_max_is_per_pair_not_total(self):
        tdg = Tdg("t")
        for name in "abcd":
            tdg.add_node(Mat(name, actions=[no_op()], resource_demand=0.2))
        tdg.add_edge("a", "b", DependencyType.MATCH, 10)
        tdg.add_edge("c", "d", DependencyType.MATCH, 6)
        net = linear_topology(3)
        plan = plan_with(
            tdg,
            net,
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s1", (1,)),
                "c": MatPlacement("c", "s1", (2,)),
                "d": MatPlacement("d", "s2", (1,)),
            },
        )
        assert plan.pair_metadata_bytes() == {
            ("s0", "s1"): 10,
            ("s1", "s2"): 6,
        }
        assert plan.max_metadata_bytes() == 10

    def test_end_to_end_latency_sums_routed_paths(self):
        tdg = two_mat_tdg()
        net = linear_topology(2, link_latency_ms=1.0)
        plan = plan_with(
            tdg,
            net,
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s1", (1,)),
            },
        )
        # 2 switches x 1 us + 1 link x 1000 us
        assert plan.end_to_end_latency_us() == pytest.approx(1002.0)

    def test_stage_utilization_splits_spanning_demand(self):
        tdg = Tdg("t")
        tdg.add_node(Mat("a", actions=[no_op()], resource_demand=1.0))
        net = linear_topology(1)
        plan = plan_with(
            tdg, net, {"a": MatPlacement("a", "s0", (1, 2))}, route=False
        )
        util = plan.stage_utilization("s0")
        assert util == {1: pytest.approx(0.5), 2: pytest.approx(0.5)}

    def test_end_to_end_latency_missing_path_raises(self):
        # A communicating pair without a routed path must fail loudly,
        # not silently contribute zero latency.
        tdg = two_mat_tdg()
        net = linear_topology(2)
        plan = plan_with(
            tdg,
            net,
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s1", (1,)),
            },
            route=False,
        )
        with pytest.raises(DeploymentError, match="no routed path"):
            plan.end_to_end_latency_us()

    def test_stage_utilization_sums_sharing_mats(self):
        # Two MATs sharing stage 2 add up; a spanning MAT contributes
        # its per-stage share to each stage it touches.
        tdg = Tdg("t")
        tdg.add_node(Mat("a", actions=[no_op()], resource_demand=0.6))
        tdg.add_node(Mat("b", actions=[no_op()], resource_demand=0.3))
        tdg.add_node(Mat("c", actions=[no_op()], resource_demand=0.4))
        net = linear_topology(1)
        plan = plan_with(
            tdg,
            net,
            {
                "a": MatPlacement("a", "s0", (1, 2)),
                "b": MatPlacement("b", "s0", (2,)),
                "c": MatPlacement("c", "s0", (3,)),
            },
            route=False,
        )
        util = plan.stage_utilization("s0")
        assert util == {
            1: pytest.approx(0.3),
            2: pytest.approx(0.3 + 0.3),
            3: pytest.approx(0.4),
        }
        assert plan.stage_utilization("nowhere") == {}

    def test_plan_is_immutable(self):
        tdg = two_mat_tdg()
        net = linear_topology(2)
        plan = plan_with(
            tdg,
            net,
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s0", (2,)),
            },
        )
        with pytest.raises(AttributeError, match="immutable"):
            plan.placements = {}
        with pytest.raises(TypeError):
            plan.placements["a"] = MatPlacement("a", "s1", (1,))
        with pytest.raises(TypeError):
            plan.routing[("s0", "s1")] = None

    def test_with_routing_returns_sibling(self):
        tdg = two_mat_tdg(meta_bytes=4)
        net = linear_topology(2)
        plan = plan_with(
            tdg,
            net,
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s1", (1,)),
            },
            route=False,
        )
        paths = PathEnumerator(net)
        routed = plan.with_routing(
            {("s0", "s1"): paths.shortest("s0", "s1")}
        )
        assert routed is not plan
        assert not plan.routing and routed.routing
        assert routed.max_metadata_bytes() == plan.max_metadata_bytes()
        routed.validate()

    def test_mats_on_orders_by_stage(self):
        tdg = two_mat_tdg()
        net = linear_topology(1)
        plan = plan_with(
            tdg,
            net,
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s0", (3,)),
            },
        )
        assert plan.mats_on("s0") == ["a", "b"]


class TestValidation:
    def make(self, placements, net=None, tdg=None, route=True):
        return plan_with(
            tdg or two_mat_tdg(), net or linear_topology(2), placements, route
        )

    def test_missing_mat(self):
        plan = self.make({"a": MatPlacement("a", "s0", (1,))}, route=False)
        with pytest.raises(DeploymentError, match="unplaced"):
            plan.validate()

    def test_unknown_mat(self):
        plan = self.make(
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s0", (2,)),
                "ghost": MatPlacement("ghost", "s0", (3,)),
            }
        )
        with pytest.raises(DeploymentError, match="unknown MATs"):
            plan.validate()

    def test_non_programmable_host(self):
        net = linear_topology(2, programmable=False)
        plan = self.make(
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s0", (2,)),
            },
            net=net,
        )
        with pytest.raises(DeploymentError, match="non-programmable"):
            plan.validate()

    def test_stage_out_of_range(self):
        plan = self.make(
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s0", (99,)),
            }
        )
        with pytest.raises(DeploymentError, match="stage"):
            plan.validate()

    def test_stage_overload(self):
        tdg = Tdg("t")
        tdg.add_node(Mat("a", actions=[no_op()], resource_demand=0.8))
        tdg.add_node(Mat("b", actions=[no_op()], resource_demand=0.8))
        plan = self.make(
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s0", (1,)),
            },
            tdg=tdg,
        )
        with pytest.raises(DeploymentError, match="overloaded"):
            plan.validate()

    def test_intra_switch_order_violation(self):
        plan = self.make(
            {
                "a": MatPlacement("a", "s0", (2,)),
                "b": MatPlacement("b", "s0", (1,)),
            }
        )
        with pytest.raises(DeploymentError, match="rho_end"):
            plan.validate()

    def test_missing_route(self):
        plan = self.make(
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s1", (1,)),
            },
            route=False,
        )
        with pytest.raises(DeploymentError, match="no routed path"):
            plan.validate()

    def test_wrong_direction_route(self):
        net = linear_topology(2)
        paths = PathEnumerator(net)
        plan = self.make(
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s1", (1,)),
            },
            net=net,
            route=False,
        )
        with pytest.warns(DeprecationWarning, match="routing"):
            # The historical mutation pattern still works for one
            # release, with a warning.
            plan.routing = {("s0", "s1"): paths.shortest("s1", "s0")}
        with pytest.raises(DeploymentError, match="runs"):
            plan.validate()

    def test_switch_of_unknown(self):
        plan = self.make(
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s0", (2,)),
            }
        )
        with pytest.raises(KeyError):
            plan.switch_of("ghost")
