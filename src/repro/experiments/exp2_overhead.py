"""Exp#2 (Fig. 6): per-packet byte overhead in the large-scale simulation.

50 concurrent programs (the 10 real switch.p4 slices plus 40 synthetic
programs with the §VI-A distribution) are deployed on each of the ten
Table III WAN topologies; the per-packet byte overhead of every
framework is reported per topology.

Exp#3 (execution time) and Exp#4 (end-to-end impact) read the same runs,
so :func:`run` is shared by all three experiment modules.

Since the suite-compiler refactor the experiment lives in the shipped
``repro.suite/v1`` spec (``repro/suite/specs/exp2.json``); :func:`run`
compiles a matching spec through
:func:`repro.suite.compiler.deployment_cells` and :func:`render`
produces the table (the suite's ``exp2`` aggregator shares it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.baselines.base import DeploymentFramework
from repro.experiments.harness import DeploymentRecord
from repro.experiments.reporting import Table, pivot_records
from repro.milp.branch_bound import DEFAULT_PROFILE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentRunner
from repro.network.topozoo import TABLE_III_TOPOLOGIES
from repro.workloads.switchp4 import real_programs
from repro.workloads.synthetic import synthetic_programs

NUM_PROGRAMS = 50
TOPOLOGY_IDS = tuple(sorted(TABLE_III_TOPOLOGIES))


def workload(num_programs: int = NUM_PROGRAMS, seed: int = 7):
    """The Exp#2 workload: 10 real programs + synthetic fill."""
    reals = real_programs(min(num_programs, 10))
    remainder = max(num_programs - len(reals), 0)
    return reals + synthetic_programs(remainder, seed=seed)


def workload_spec(num_programs: int = NUM_PROGRAMS, seed: int = 7) -> str:
    """:func:`workload` as a workload-grammar string (suite specs use
    this form; ``parse_workload`` reproduces the same programs)."""
    spec = f"real:{min(num_programs, 10)}"
    if num_programs > 10:
        spec += f"+synthetic:{num_programs - 10}:{seed}"
    return spec


@dataclass
class Exp2Point:
    """One (framework, topology) cell of Figs. 6-8."""

    topology_id: int
    record: DeploymentRecord


def suite_spec(
    topology_ids: Sequence[int] = TOPOLOGY_IDS,
    num_programs: int = NUM_PROGRAMS,
    seed: int = 7,
    ilp_time_limit_s: float = 10.0,
    solver_profile: str = DEFAULT_PROFILE,
):
    """The Exp#2 suite spec for arbitrary sweep parameters (the
    shipped ``exp2.json`` is this at the paper's defaults)."""
    from repro.suite import SuiteSpec

    frameworks = {
        "set": "paper",
        "ilp_time_limit_s": ilp_time_limit_s,
        "per_program_ilp_time_limit_s": max(
            ilp_time_limit_s / 20.0, 0.2
        ),
    }
    if solver_profile != DEFAULT_PROFILE:
        frameworks["solver_profile"] = solver_profile
    return SuiteSpec.from_dict(
        {
            "suite": "repro.suite/v1",
            "name": "exp2",
            "kind": "deployment",
            "axes": {
                "workloads": [
                    {
                        "spec": workload_spec(num_programs, seed),
                        "tag": num_programs,
                    }
                ],
                "topologies": [
                    {"spec": f"zoo:{tid}", "tag": tid}
                    for tid in topology_ids
                ],
                "frameworks": frameworks,
            },
            "params": {"tag_axis": "topology"},
            "aggregate": ["exp2"],
        }
    )


def run(
    topology_ids: Sequence[int] = TOPOLOGY_IDS,
    num_programs: int = NUM_PROGRAMS,
    frameworks: Optional[Sequence[DeploymentFramework]] = None,
    seed: int = 7,
    ilp_time_limit_s: float = 10.0,
    runner: Optional["ExperimentRunner"] = None,
    solver_profile: str = DEFAULT_PROFILE,
) -> List[Exp2Point]:
    """Deploy the 50-program workload on each selected topology.

    The whole (framework x topology) sweep is one flat cell list, so a
    parallel ``runner`` overlaps deployments across topologies, not
    just within one; results are ordered and valued identically to the
    serial run.
    """
    from repro.experiments.runner import execute_cells
    from repro.suite import deployment_cells

    cells = deployment_cells(
        suite_spec(
            topology_ids, num_programs, seed, ilp_time_limit_s,
            solver_profile,
        ),
        frameworks_override=frameworks,
    )
    return [
        Exp2Point(res.cell.tag, res.record)
        for res in execute_cells(cells, runner)
    ]


def pivot(
    points: List[Exp2Point], attr: str, title: str
) -> Table:
    """Framework x topology table of one record attribute."""
    return pivot_records(
        [(p.topology_id, p.record) for p in points],
        attr,
        title,
        col_label=lambda t: f"topo{t}",
    )


def render(points: List[Exp2Point]) -> str:
    """Fig. 6 as one table (what ``main`` prints)."""
    return pivot(
        points, "overhead_bytes", "Fig. 6: per-packet byte overhead (B)"
    ).render()


def main(points: Optional[List[Exp2Point]] = None) -> str:
    points = points if points is not None else run()
    output = render(points)
    print(output)
    return output


if __name__ == "__main__":
    main()
