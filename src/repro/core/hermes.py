"""The Hermes facade: programs + network in, deployment out.

Usage:

    from repro.core import Hermes
    result = Hermes().deploy(programs, network)
    print(result.plan.max_metadata_bytes(), result.solve_time_s)

``mode="heuristic"`` (default) runs Algorithm 2; ``mode="optimal"``
solves P#1 exactly with the branch & bound solver (the paper's
Gurobi-based "Optimal" configuration).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.analyzer import ProgramAnalyzer
from repro.core.deployment import DeploymentPlan
from repro.core.formulation import HermesMilp
from repro.core.heuristic import GreedyHeuristic
from repro.dataplane.program import Program
from repro.milp.branch_bound import DEFAULT_PROFILE
from repro.network.paths import PathEnumerator
from repro.network.topology import Network
from repro.tdg.graph import Tdg

MODE_HEURISTIC = "heuristic"
MODE_OPTIMAL = "optimal"


@dataclass
class HermesResult:
    """A deployment together with its provenance and timing.

    Attributes:
        plan: The validated deployment plan.
        tdg: The merged TDG that was deployed.
        mode: Which solver produced the plan.
        analyze_time_s: Program-analysis wall time (Algorithm 1).
        solve_time_s: Placement wall time (Algorithm 2 or P#1 solve).
    """

    plan: DeploymentPlan
    tdg: Tdg
    mode: str
    analyze_time_s: float
    solve_time_s: float

    @property
    def total_time_s(self) -> float:
        return self.analyze_time_s + self.solve_time_s

    @property
    def overhead_bytes(self) -> int:
        """The headline metric: per-packet byte overhead ``A_max``."""
        return self.plan.max_metadata_bytes()


class Hermes:
    """The end-to-end framework (Figure 3).

    Args:
        epsilon1: ``t_e2e`` bound in microseconds (Eq. 4); the
            evaluation uses loose bounds, the default is unbounded.
        epsilon2: Occupied-switch bound (Eq. 5).
        mode: ``"heuristic"`` (Algorithm 2) or ``"optimal"`` (P#1 via
            branch & bound).
        merge: Run SPEED-style TDG merging in the analyzer.
        time_limit_s: Solver budget for optimal mode.
        max_candidates: Candidate-switch cap for optimal mode.
        replicate_hubs: Hub-replication policy for heuristic mode
            (False | True | "auto"; see
            :mod:`repro.core.replication`).
        solver_profile: Branch & bound search profile for optimal mode
            (``"fast"`` or ``"classic"``).
    """

    def __init__(
        self,
        epsilon1: float = math.inf,
        epsilon2: Optional[int] = None,
        mode: str = MODE_HEURISTIC,
        merge: bool = True,
        time_limit_s: float = 60.0,
        max_candidates: Optional[int] = 8,
        replicate_hubs=False,
        solver_profile: str = DEFAULT_PROFILE,
    ) -> None:
        if mode not in (MODE_HEURISTIC, MODE_OPTIMAL):
            raise ValueError(f"unknown mode {mode!r}")
        self.epsilon1 = epsilon1
        self.epsilon2 = epsilon2
        self.mode = mode
        self.analyzer = ProgramAnalyzer(merge=merge)
        self.time_limit_s = time_limit_s
        self.max_candidates = max_candidates
        self.replicate_hubs = replicate_hubs
        self.solver_profile = solver_profile

    def analyze(self, programs: Sequence[Program]) -> Tdg:
        """Step 1 only: run the program analyzer."""
        return self.analyzer.analyze(programs)

    def deploy(
        self,
        programs: Sequence[Program],
        network: Network,
        paths: Optional[PathEnumerator] = None,
    ) -> HermesResult:
        """Run the full three-step workflow of Figure 3."""
        start = time.perf_counter()
        tdg = self.analyzer.analyze(programs)
        analyze_time = time.perf_counter() - start
        plan, solve_time = self.deploy_tdg(tdg, network, paths)
        return HermesResult(
            plan=plan,
            tdg=tdg,
            mode=self.mode,
            analyze_time_s=analyze_time,
            solve_time_s=solve_time,
        )

    def deploy_tdg(
        self,
        tdg: Tdg,
        network: Network,
        paths: Optional[PathEnumerator] = None,
    ):
        """Steps 2-3 only: place an already-analyzed TDG.

        Returns ``(plan, solve_time_s)``.
        """
        paths = paths or PathEnumerator(network)
        start = time.perf_counter()
        if self.mode == MODE_HEURISTIC:
            solver = GreedyHeuristic(
                epsilon1=self.epsilon1,
                epsilon2=self.epsilon2,
                replicate_hubs=self.replicate_hubs,
            )
            plan = solver.deploy(tdg, network, paths)
        else:
            formulation = HermesMilp(
                epsilon1=self.epsilon1,
                epsilon2=self.epsilon2,
                time_limit_s=self.time_limit_s,
                max_candidates=self.max_candidates,
                solver_profile=self.solver_profile,
            )
            plan = formulation.deploy(tdg, network, paths)
        return plan, time.perf_counter() - start
