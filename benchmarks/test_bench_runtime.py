"""Benchmark: lifecycle reconciler latency and event throughput.

Times the runtime subsystem's two operational paths on seeded churn
scenarios over the real switch.p4 workload:

* **reconcile latency** — wall time per event batch through the full
  replan -> move-computation -> rebind -> store pipeline (the cost an
  operator pays per churn event);
* **events/sec** — end-to-end scenario replay throughput;
* **patch latency** — the cheapest-patch fallback alone, the degraded
  path a replan time budget buys.

Results are written to ``BENCH_runtime.json`` at the repo root so the
reconcile-latency contract is auditable across commits (the weekly
solver-sweep workflow uploads it as an artifact).
"""

import json
import os
import time

import pytest

from repro.cli import parse_topology, parse_workload
from repro.plan.artifact import DeploymentError
from repro.runtime import (
    EventKind,
    Reconciler,
    WorldState,
    cheapest_patch,
    generate_scenario,
    seed_rules,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPORT_PATH = os.path.join(_REPO_ROOT, "BENCH_runtime.json")

#: Golden churn instances: (label, workload, topology, events, seed).
GOLDEN = [
    ("wan12/real6/e8", "real:6", "wan:12:18:4", 8, 11),
    ("wan16/real10/e8", "real:10", "wan:16:24:1", 8, 1),
    ("wan16/real10/e16", "real:10", "wan:16:24:2", 16, 2),
]

REPS = 3


@pytest.fixture(scope="module")
def runtime_records():
    records = []
    for label, workload_spec, topology_spec, num_events, seed in GOLDEN:
        programs = parse_workload(workload_spec)
        network = parse_topology(topology_spec)
        scenario = generate_scenario(
            network,
            num_events=num_events,
            seed=seed,
            workload_spec=workload_spec,
            topology_spec=topology_spec,
        )
        reconciler = Reconciler(programs, network, prepare_fn=seed_rules)
        best_s = float("inf")
        result = None
        for _ in range(REPS):
            start = time.perf_counter()
            result = reconciler.run(scenario)
            best_s = min(best_s, time.perf_counter() - start)
        report = result.report()
        batch_times = [
            o.convergence_time_s for o in result.outcomes if o.converged
        ]
        # The patch fallback path, timed on the first failure plan.
        initial_plan = result.store.versions[0].plan
        patch_s = None
        failed = next(
            (
                o
                for o in result.outcomes
                if any(e.kind == EventKind.SWITCH_FAIL for e in o.events)
            ),
            None,
        )
        if failed is not None:
            world = WorldState(network, programs)
            for outcome in result.outcomes:
                for event in outcome.events:
                    world.apply(event)
                if outcome is failed:
                    break
            try:
                start = time.perf_counter()
                cheapest_patch(initial_plan, world.current_network())
                patch_s = time.perf_counter() - start
            except DeploymentError:
                patch_s = None
        records.append(
            {
                "instance": label,
                "events": num_events,
                "batches": report.num_batches,
                "converged": report.num_converged,
                "wall_s": round(best_s, 4),
                "events_per_s": round(num_events / max(best_s, 1e-9), 1),
                "mean_reconcile_ms": round(
                    (sum(batch_times) / len(batch_times)) * 1e3, 2
                )
                if batch_times
                else None,
                "max_reconcile_ms": round(max(batch_times) * 1e3, 2)
                if batch_times
                else None,
                "patch_ms": round(patch_s * 1e3, 2)
                if patch_s is not None
                else None,
                "forced_moves": report.forced_moves,
                "rules_replayed": report.rules_replayed,
                "history_digest": report.history_digest[:16],
            }
        )
    payload = {
        "instances": records,
        "summary": {
            "instances": len(records),
            "wall_s_total": round(
                sum(r["wall_s"] for r in records), 4
            ),
            "events_total": sum(r["events"] for r in records),
        },
    }
    with open(_REPORT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def test_bench_runtime_all_converge(runtime_records):
    """Every golden scenario fully reconciles."""
    for record in runtime_records["instances"]:
        assert record["converged"] == record["batches"], (
            record["instance"]
        )


def test_bench_runtime_replay_deterministic(runtime_records):
    """Re-running a golden instance reproduces its history digest."""
    label, workload_spec, topology_spec, num_events, seed = GOLDEN[0]
    programs = parse_workload(workload_spec)
    network = parse_topology(topology_spec)
    scenario = generate_scenario(
        network,
        num_events=num_events,
        seed=seed,
        workload_spec=workload_spec,
        topology_spec=topology_spec,
    )
    result = Reconciler(programs, network, prepare_fn=seed_rules).run(
        scenario
    )
    recorded = next(
        r
        for r in runtime_records["instances"]
        if r["instance"] == label
    )
    assert result.store.history_digest().startswith(
        recorded["history_digest"]
    )


def test_bench_runtime_report(runtime_records):
    from conftest import record_report

    rows = [
        f"Lifecycle reconciler on golden churn scenarios (best of {REPS})",
        f"{'instance':<18} {'wall s':>7} {'ev/s':>7} {'mean ms':>8} "
        f"{'max ms':>7} {'patch ms':>9} {'forced':>7}",
    ]
    for r in runtime_records["instances"]:
        rows.append(
            f"{r['instance']:<18} {r['wall_s']:>7.3f} "
            f"{r['events_per_s']:>7.1f} "
            f"{(r['mean_reconcile_ms'] or 0):>8.2f} "
            f"{(r['max_reconcile_ms'] or 0):>7.2f} "
            f"{(r['patch_ms'] or 0):>9.2f} {r['forced_moves']:>7}"
        )
    record_report("\n".join(rows))
    assert os.path.exists(_REPORT_PATH)
