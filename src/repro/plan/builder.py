"""Mutable plan construction with incremental metrics.

:class:`PlanBuilder` is the editing counterpart of the immutable
:class:`~repro.plan.artifact.DeploymentPlan`.  It maintains the plan
metrics the optimizers query in their hot loops — per-pair metadata
byte totals, the ``A_max`` extremum, total coordination bytes and
per-stage resource loads — *incrementally*: each
:meth:`place`/:meth:`unplace`/:meth:`move` updates them in
O(degree(MAT)) instead of the O(|E|) full recompute the historical
``DeploymentPlan`` paid per metric call.  That turns the refine local
search and the heuristic portfolio comparison from quadratic metric
recomputation into linear work (ROADMAP: "make a hot path measurably
faster"; benchmarked in ``benchmarks/test_bench_plan.py``).

Every mutator returns an :class:`UndoToken`; :meth:`undo` restores the
exact prior state, giving the refine search cheap apply/undo move
semantics without copying the plan.

The builder does **not** validate while editing — intermediate states
(a MAT parked on a switch with too few stages, an unrouted pair) are
legal scratch states.  Constraints are enforced when the artifact is
frozen via :meth:`build`, which runs
:meth:`DeploymentPlan.validate` by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.network.paths import Path, PathEnumerator
from repro.network.topology import Network
from repro.plan.artifact import DeploymentError, DeploymentPlan, MatPlacement
from repro.tdg.graph import Tdg

#: Stage loads smaller than this are treated as vacated (floating-point
#: dust left by place/unplace round trips).
_LOAD_EPS = 1e-9


@dataclass
class UndoToken:
    """Inverse of one builder mutation (LIFO list of primitive ops)."""

    ops: List[Tuple] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.ops)


class PlanBuilder:
    """Incrementally evaluated, mutable deployment-plan state.

    Args:
        tdg: The TDG being deployed.
        network: The substrate network.
        placements: Optional initial placements (applied via
            :meth:`place`, so the incremental state is exercised from
            the start).
        routing: Optional initial routing.
    """

    def __init__(
        self,
        tdg: Tdg,
        network: Network,
        placements: Optional[Mapping[str, MatPlacement]] = None,
        routing: Optional[Mapping[Tuple[str, str], Path]] = None,
    ) -> None:
        self.tdg = tdg
        self.network = network
        self._placements: Dict[str, MatPlacement] = {}
        self._routing: Dict[Tuple[str, str], Path] = dict(routing or {})
        # Incremental metric state.
        self._pair_bytes: Dict[Tuple[str, str], int] = {}
        self._pair_edges: Dict[Tuple[str, str], int] = {}
        self._total_bytes = 0
        self._stage_load: Dict[str, Dict[int, float]] = {}
        self._mats_per_switch: Dict[str, int] = {}
        self._amax = 0
        self._amax_valid = True
        for placement in (placements or {}).values():
            self.place(
                placement.mat_name, placement.switch, placement.stages
            )

    @classmethod
    def from_plan(cls, plan: DeploymentPlan) -> "PlanBuilder":
        """A builder seeded with an existing plan's state."""
        return cls(plan.tdg, plan.network, plan.placements, plan.routing)

    # ------------------------------------------------------------------
    # Mutators (each returns an UndoToken)
    # ------------------------------------------------------------------
    def place(
        self, mat_name: str, switch: str, stages: Sequence[int]
    ) -> UndoToken:
        """Place an unplaced MAT; returns the inverse operation."""
        if mat_name in self._placements:
            raise DeploymentError(
                f"MAT {mat_name!r} is already placed; use move()"
            )
        placement = MatPlacement(mat_name, switch, tuple(stages))
        self._apply_place(placement)
        return UndoToken([("unplace", mat_name)])

    def unplace(self, mat_name: str) -> UndoToken:
        """Remove a MAT's placement; returns the inverse operation."""
        placement = self._placements.get(mat_name)
        if placement is None:
            raise DeploymentError(f"MAT {mat_name!r} is not placed")
        self._apply_unplace(placement)
        return UndoToken([("place", placement)])

    def move(
        self,
        mat_name: str,
        switch: str,
        stages: Optional[Sequence[int]] = None,
    ) -> UndoToken:
        """Relocate a placed MAT (keeping its stages unless given).

        The byte metrics depend only on the hosting switch, so a move
        that keeps the old stage tuple is the cheap "what would A_max
        become" probe the refine search uses; a real relocation passes
        the target's stage layout.
        """
        old = self._placements.get(mat_name)
        if old is None:
            raise DeploymentError(f"MAT {mat_name!r} is not placed")
        new_stages = tuple(stages) if stages is not None else old.stages
        self._apply_unplace(old)
        self._apply_place(MatPlacement(mat_name, switch, new_stages))
        return UndoToken([("unplace", mat_name), ("place", old)])

    def set_route(self, pair: Tuple[str, str], path: Path) -> UndoToken:
        """Route one ordered switch pair; returns the inverse."""
        previous = self._routing.get(pair)
        self._routing[pair] = path
        if previous is None:
            return UndoToken([("clear_route", pair)])
        return UndoToken([("set_route", pair, previous)])

    def clear_route(self, pair: Tuple[str, str]) -> UndoToken:
        previous = self._routing.pop(pair, None)
        if previous is None:
            return UndoToken()
        return UndoToken([("set_route", pair, previous)])

    def undo(self, token: UndoToken) -> None:
        """Apply the inverse operations recorded in ``token``."""
        for op in token.ops:
            kind = op[0]
            if kind == "place":
                self._apply_place(op[1])
            elif kind == "unplace":
                self._apply_unplace(self._placements[op[1]])
            elif kind == "set_route":
                self._routing[op[1]] = op[2]
            elif kind == "clear_route":
                self._routing.pop(op[1], None)
            else:  # pragma: no cover - internal invariant
                raise AssertionError(f"unknown undo op {kind!r}")

    # ------------------------------------------------------------------
    # Incremental bookkeeping
    # ------------------------------------------------------------------
    def _apply_place(self, placement: MatPlacement) -> None:
        name = placement.mat_name
        mat = self.tdg.node(name)
        self._placements[name] = placement
        share = mat.resource_demand / len(placement.stages)
        loads = self._stage_load.setdefault(placement.switch, {})
        for stage in placement.stages:
            loads[stage] = loads.get(stage, 0.0) + share
        self._mats_per_switch[placement.switch] = (
            self._mats_per_switch.get(placement.switch, 0) + 1
        )
        for edge in self.tdg.out_edges(name):
            down = self._placements.get(edge.downstream)
            if down is not None:
                self._pair_add(
                    placement.switch, down.switch, edge.metadata_bytes
                )
        for edge in self.tdg.in_edges(name):
            up = self._placements.get(edge.upstream)
            if up is not None:
                self._pair_add(
                    up.switch, placement.switch, edge.metadata_bytes
                )

    def _apply_unplace(self, placement: MatPlacement) -> None:
        name = placement.mat_name
        mat = self.tdg.node(name)
        for edge in self.tdg.out_edges(name):
            down = self._placements.get(edge.downstream)
            if down is not None and edge.downstream != name:
                self._pair_remove(
                    placement.switch, down.switch, edge.metadata_bytes
                )
        for edge in self.tdg.in_edges(name):
            up = self._placements.get(edge.upstream)
            if up is not None and edge.upstream != name:
                self._pair_remove(
                    up.switch, placement.switch, edge.metadata_bytes
                )
        del self._placements[name]
        share = mat.resource_demand / len(placement.stages)
        loads = self._stage_load[placement.switch]
        for stage in placement.stages:
            remaining = loads[stage] - share
            if abs(remaining) < _LOAD_EPS:
                del loads[stage]
            else:
                loads[stage] = remaining
        count = self._mats_per_switch[placement.switch] - 1
        if count:
            self._mats_per_switch[placement.switch] = count
        else:
            del self._mats_per_switch[placement.switch]
            self._stage_load.pop(placement.switch, None)

    def _pair_add(self, u: str, v: str, metadata_bytes: int) -> None:
        if u == v:
            return
        key = (u, v)
        self._pair_edges[key] = self._pair_edges.get(key, 0) + 1
        new_total = self._pair_bytes.get(key, 0) + metadata_bytes
        self._pair_bytes[key] = new_total
        self._total_bytes += metadata_bytes
        if self._amax_valid and new_total > self._amax:
            self._amax = new_total

    def _pair_remove(self, u: str, v: str, metadata_bytes: int) -> None:
        if u == v:
            return
        key = (u, v)
        old_total = self._pair_bytes[key]
        edges_left = self._pair_edges[key] - 1
        self._total_bytes -= metadata_bytes
        if edges_left:
            self._pair_edges[key] = edges_left
            self._pair_bytes[key] = old_total - metadata_bytes
        else:
            del self._pair_edges[key]
            del self._pair_bytes[key]
        # The extremum only needs recomputing when the pair that held
        # it shrinks; growth is handled eagerly in _pair_add.
        if self._amax_valid and old_total >= self._amax:
            self._amax_valid = False

    # ------------------------------------------------------------------
    # Metrics (mirror DeploymentPlan, served from incremental state)
    # ------------------------------------------------------------------
    @property
    def placements(self) -> Dict[str, MatPlacement]:
        return dict(self._placements)

    @property
    def routing(self) -> Dict[Tuple[str, str], Path]:
        return dict(self._routing)

    def switch_of(self, mat_name: str) -> str:
        try:
            return self._placements[mat_name].switch
        except KeyError:
            raise KeyError(f"MAT {mat_name!r} is not placed") from None

    def pair_metadata_bytes(self) -> Dict[Tuple[str, str], int]:
        return dict(self._pair_bytes)

    def max_metadata_bytes(self) -> int:
        if not self._amax_valid:
            self._amax = (
                max(self._pair_bytes.values()) if self._pair_bytes else 0
            )
            self._amax_valid = True
        return self._amax

    def total_metadata_bytes(self) -> int:
        return self._total_bytes

    def occupied_switches(self) -> List[str]:
        return list(self._mats_per_switch)

    def num_occupied_switches(self) -> int:
        return len(self._mats_per_switch)

    def stage_utilization(self, switch: str) -> Dict[int, float]:
        return dict(self._stage_load.get(switch, {}))

    def communicating_pairs(self) -> Iterable[Tuple[str, str]]:
        return list(self._pair_bytes)

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------
    def route_shortest(self, paths: PathEnumerator) -> None:
        """Route every unrouted communicating pair via shortest path.

        Raises:
            DeploymentError: When a communicating pair has no path.
        """
        for pair in self._pair_bytes:
            if pair in self._routing:
                continue
            path = paths.shortest(*pair)
            if path is None:
                raise DeploymentError(
                    f"no path between communicating switches {pair}"
                )
            self._routing[pair] = path

    def prune_routes(self) -> None:
        """Drop routes for pairs that no longer exchange metadata."""
        for pair in list(self._routing):
            if pair not in self._pair_bytes:
                del self._routing[pair]

    # ------------------------------------------------------------------
    # Freezing
    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> DeploymentPlan:
        """Freeze the current state into an immutable plan.

        Args:
            validate: Run :meth:`DeploymentPlan.validate` on the result
                (default).  Pass ``False`` for intermediate artifacts a
                caller validates itself.
        """
        plan = DeploymentPlan(
            self.tdg,
            self.network,
            dict(self._placements),
            dict(self._routing),
        )
        if validate:
            plan.validate()
        return plan

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PlanBuilder({len(self._placements)}/{len(self.tdg)} MATs, "
            f"A_max={self.max_metadata_bytes()}B)"
        )
