"""Substrate network model.

Models the network Hermes deploys onto: an undirected graph
``G = (V_G, E_G)`` of switches and links.  Each switch carries the four
properties the paper uses — programmability ``P(u)``, stage count
``C_stage``, per-stage resource capacity ``C_res`` and transmission
latency ``t_s(u)`` — and each link carries its latency ``t_l(u, v)``.

The package also provides path enumeration (``P(u, v)`` with latency
``t_p(p)``) and topology generators: the linear testbed, fat-trees,
seeded random WANs, and the ten Table III WAN topologies.
"""

from repro.network.switch import Switch, DEFAULT_NUM_STAGES, DEFAULT_STAGE_CAPACITY
from repro.network.topology import Link, Network
from repro.network.paths import Path, PathEnumerator, shortest_path
from repro.network.generators import (
    fat_tree,
    linear_topology,
    random_wan,
)
from repro.network.topozoo import TABLE_III_TOPOLOGIES, topology_zoo_wan

__all__ = [
    "DEFAULT_NUM_STAGES",
    "DEFAULT_STAGE_CAPACITY",
    "Link",
    "Network",
    "Path",
    "PathEnumerator",
    "Switch",
    "TABLE_III_TOPOLOGIES",
    "fat_tree",
    "linear_topology",
    "random_wan",
    "shortest_path",
    "topology_zoo_wan",
]
