"""The greedy-based heuristic (Algorithm 2).

Key idea (§V-E): keep the TDG edges that carry *large* metadata inside
a single switch, so only small-``A(a, b)`` edges cross switches.  The
heuristic recursively splits the merged TDG at the prefix (in
topological order) whose cut ships the fewest metadata bytes, until
every segment fits on one switch; segments are then laid out on a chain
of nearby programmable switches.

Implementation notes:

* The prefix sweep is computed incrementally (moving node ``a`` from
  the right side to the left changes the cut by ``out_bytes(a) -
  in_bytes(a)``), giving the ``O((|V| + |E|) log |V|)`` split cost of
  Theorem 2.
* Segment feasibility uses the exact stage scheduler
  (:func:`repro.core.stages.segment_fits`), which is sound where the
  paper's aggregate ``sum R(a) <= C_stage * C_res`` test can accept
  segments whose dependency chains exceed the stage count.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.deployment import DeploymentError, DeploymentPlan
from repro.core.stages import StageAssignmentError, assign_stages, segment_fits
from repro.network.paths import PathEnumerator
from repro.plan.builder import PlanBuilder
from repro.network.switch import Switch
from repro.network.topology import Network
from repro.tdg.graph import Tdg


#: Lower edge of the fill band: a peeled prefix should occupy at least
#: this fraction of a switch, bounding the segment count by
#: ``demand / (FILL_FLOOR * capacity)``.  0.5 admits every other
#: program boundary of typical workloads as a candidate position, which
#: measurably lowers the realized A_max versus tighter bands.
FILL_FLOOR = 0.5


def split_order(tdg: Tdg) -> List[str]:
    """The node order the prefix sweep runs over.

    Plain DFS order loses program contiguity once merged hub MATs
    (shared hashes) connect many programs into one component — DFS then
    interleaves their consumers, and every in-band split position cuts
    several programs mid-chain.  This order is a grouped Kahn walk:
    nodes are grouped by their originating program (the ``"<program>."``
    prefix of qualified node names) and the walk stays inside the
    current group while it has ready nodes, jumping to the group of the
    earliest-ranked ready node otherwise.  The result is always
    topological, and program boundaries reappear as cheap split
    positions even in hub-connected merged TDGs.
    """
    dfs = tdg.topological_order(strategy="dfs")
    rank = {name: i for i, name in enumerate(dfs)}

    def program_of(name: str) -> str:
        return name.split(".", 1)[0]

    # Merged hub MATs (shared hashes) feed several programs but are
    # owned — by naming accident of the merge — by one of them.  Left
    # in that group they stall every consumer program until their
    # owner's turn, shredding contiguity.  Nodes whose successors span
    # other programs form their own leading group instead.
    hubs = {
        name
        for name in dfs
        if any(
            program_of(s) != program_of(name)
            for s in tdg.successors(name)
        )
    }
    for hub in hubs:
        rank[hub] = -len(dfs) + rank[hub]  # emit hubs first

    def group_of(name: str) -> str:
        return "__hubs__" if name in hubs else program_of(name)

    in_deg = {name: len(tdg.predecessors(name)) for name in dfs}
    ready: Dict[str, List[str]] = {}
    for name in dfs:
        if in_deg[name] == 0:
            ready.setdefault(group_of(name), []).append(name)
    for bucket in ready.values():
        bucket.sort(key=lambda n: rank[n], reverse=True)  # pop() = min

    order: List[str] = []
    current: Optional[str] = None
    while ready:
        if current not in ready:
            # Jump to the group holding the earliest-ranked ready node.
            current = min(
                ready, key=lambda g: rank[ready[g][-1]]
            )
        node = ready[current].pop()
        if not ready[current]:
            del ready[current]
        order.append(node)
        for succ in sorted(tdg.successors(node), key=lambda n: rank[n]):
            in_deg[succ] -= 1
            if in_deg[succ] == 0:
                bucket = ready.setdefault(group_of(succ), [])
                bucket.append(succ)
                bucket.sort(key=lambda n: rank[n], reverse=True)
    return order


def _prefix_candidates(
    tdg: Tdg, topo: List[str]
) -> List[Tuple[int, float, float]]:
    """Sweep all prefixes: (size, cut_bytes, prefix_demand).

    The cut is updated incrementally — moving node ``a`` from the
    suffix to the prefix changes it by ``out_bytes(a) - in_bytes(a)`` —
    so the whole sweep is ``O(|V| + |E|)``.  The final position (empty
    suffix) is excluded.
    """
    out_bytes = {
        name: sum(e.metadata_bytes for e in tdg.out_edges(name))
        for name in topo
    }
    in_bytes = {
        name: sum(e.metadata_bytes for e in tdg.in_edges(name))
        for name in topo
    }
    candidates: List[Tuple[int, float, float]] = []
    cut = 0.0
    demand = 0.0
    for idx, name in enumerate(topo[:-1]):
        cut += out_bytes[name] - in_bytes[name]
        demand += tdg.node(name).resource_demand
        candidates.append((idx + 1, cut, demand))
    return candidates


def _choose_prefix_size(
    candidates: List[Tuple[int, float, float]],
    capacity: float,
    fill_floor: float = None,
) -> int:
    """Pick the split position: min cut within the fill band.

    Preference order:

    1. prefixes whose demand lies in ``[fill_floor * capacity,
       capacity]`` — well-filled and single-switch feasible;
    2. otherwise any prefix with demand ``<= capacity``;
    3. otherwise the first position (always exists).

    Within the chosen set the minimum cut wins; ties go to the largest
    prefix (fewest segments overall).
    """
    if fill_floor is None:
        fill_floor = FILL_FLOOR
    in_band = [
        c
        for c in candidates
        if fill_floor * capacity <= c[2] <= capacity
    ]
    pool = in_band or [c for c in candidates if c[2] <= capacity]
    if not pool:
        return candidates[0][0]
    best_cut = min(c[1] for c in pool)
    at_min = [c for c in pool if c[1] == best_cut]
    return max(at_min, key=lambda c: c[0])[0]


def split_tdg(
    tdg: Tdg, reference: Switch, fill_floor: float = None
) -> List[Tdg]:
    """Split ``tdg`` into single-switch segments (Algorithm 2 lines 1-17).

    Repeatedly peels off the prefix (in grouped topological order, which
    keeps programs contiguous) with the minimum metadata cut among
    well-filled, switch-fitting positions; when a chosen prefix admits
    no stage layout (dependency chains deeper than the pipeline),
    progressively smaller prefixes are tried.

    Args:
        tdg: The merged TDG ``T_m`` (metadata sizes annotated).
        reference: The switch model segments must fit (Algorithm 2's
            uniform ``C_stage``/``C_res``).
        fill_floor: Override of :data:`FILL_FLOOR`; raising it packs
            segments denser, reducing their count when an occupied-
            switch budget binds.

    Returns:
        Segments in chain order: every TDG edge runs within a segment
        or from an earlier segment to a later one.
    """
    segments: List[Tdg] = []
    remaining = tdg
    piece = 0
    while not segment_fits(remaining, reference):
        topo = split_order(remaining)
        if len(topo) < 2:
            raise DeploymentError(
                f"MAT {topo[0]!r} alone does not fit switch "
                f"{reference.name!r}"
            )
        candidates = _prefix_candidates(remaining, topo)
        size = _choose_prefix_size(
            candidates, reference.total_capacity, fill_floor
        )
        prefix = remaining.subgraph(
            topo[:size], name=f"{tdg.name}/{piece}"
        )
        # Aggregate capacity can admit prefixes whose dependency chains
        # exceed the stage count; shrink until a stage layout exists.
        while size > 1 and not segment_fits(prefix, reference):
            size -= 1
            prefix = remaining.subgraph(
                topo[:size], name=f"{tdg.name}/{piece}"
            )
        if size == 1 and not segment_fits(prefix, reference):
            raise DeploymentError(
                f"MAT {topo[0]!r} alone does not fit switch "
                f"{reference.name!r}"
            )
        segments.append(prefix)
        remaining = remaining.subgraph(
            topo[size:], name=f"{tdg.name}/rest"
        )
        piece += 1
    remaining.name = f"{tdg.name}/{piece}" if segments else tdg.name
    segments.append(remaining)
    return segments


def select_switches(
    start: str,
    network: Network,
    paths: PathEnumerator,
    epsilon1: float = math.inf,
    epsilon2: Optional[int] = None,
) -> List[str]:
    """Candidate chain around ``start`` (Algorithm 2 line 23).

    Returns ``start`` plus the closest programmable switches reachable
    from it within latency ``epsilon1``, capped at ``epsilon2`` total,
    ordered by shortest-path latency from ``start``.
    """
    ranked: List[Tuple[float, str]] = [(0.0, start)]
    for name in network.programmable_names():
        if name == start:
            continue
        path = paths.shortest(start, name)
        if path is None:
            continue
        if path.latency_us <= epsilon1:
            ranked.append((path.latency_us, name))
    ranked.sort()
    names = [name for _latency, name in ranked]
    if epsilon2 is not None:
        names = names[:epsilon2]
    return names


class GreedyHeuristic:
    """Algorithm 2: timely, near-optimal deployment.

    Args:
        epsilon1: Latency bound for candidate selection (µs).
        epsilon2: Bound on occupied switches.
        reference_switch: Switch model used by the splitter; defaults
            to the weakest programmable switch in the network so every
            candidate can host every segment.
        splitter: The TDG splitting strategy, ``(tdg, reference) ->
            [segments]``; defaults to the min-cut :func:`split_tdg`.
            Exposed so ablations can swap in alternative criteria.
        replicate_hubs: Clone cheap shared hub MATs per consumer
            program before splitting (the Eq. 6 replication extension;
            see :mod:`repro.core.replication`).  ``False`` (default)
            matches the paper's single-placement behaviour, ``True``
            always replicates, ``"auto"`` deploys both ways and keeps
            the plan with the lower byte overhead.
        refine: Polish the chosen plan with boundary-move local search
            (:mod:`repro.core.refine`); on by default.
    """

    def __init__(
        self,
        epsilon1: float = math.inf,
        epsilon2: Optional[int] = None,
        reference_switch: Optional[Switch] = None,
        splitter=None,
        replicate_hubs=False,
        refine: bool = True,
    ) -> None:
        if epsilon1 <= 0:
            raise ValueError("epsilon1 must be positive")
        if epsilon2 is not None and epsilon2 <= 0:
            raise ValueError("epsilon2 must be positive")
        self.epsilon1 = epsilon1
        self.epsilon2 = epsilon2
        self.reference_switch = reference_switch
        self.splitter = splitter or split_tdg
        if replicate_hubs not in (False, True, "auto"):
            raise ValueError(
                "replicate_hubs must be False, True or 'auto'"
            )
        self.replicate_hubs = replicate_hubs
        self.refine = refine

    def _reference(self, network: Network) -> Switch:
        if self.reference_switch is not None:
            return self.reference_switch
        programmable = network.programmable_switches()
        if not programmable:
            raise DeploymentError("network has no programmable switches")
        return min(programmable, key=lambda s: s.total_capacity)

    def deploy(
        self,
        tdg: Tdg,
        network: Network,
        paths: Optional[PathEnumerator] = None,
    ) -> DeploymentPlan:
        """Run Algorithm 2 and return a validated deployment plan.

        Enumerates programmable switches as chain anchors; the first
        anchor whose candidate set can host every segment wins, exactly
        like the paper's first-feasible enumeration.
        """
        paths = paths or PathEnumerator(network)
        if self.replicate_hubs == "auto":
            return self._deploy_auto(tdg, network, paths)
        plans: List[DeploymentPlan] = []
        try:
            plans.append(self._deploy_min_cut(tdg, network, paths))
        except DeploymentError as exc:
            split_error: Optional[Exception] = exc
        else:
            split_error = None
        chain_plan = self._deploy_chain(tdg, network, paths)
        if chain_plan is not None:
            plans.append(chain_plan)
        if not plans:
            raise DeploymentError(
                "greedy heuristic found no feasible deployment"
                + (f": {split_error}" if split_error else "")
            )
        # Portfolio: the min-cut split minimizes total boundary bytes;
        # the interleaving chain schedule spreads crossings over more
        # switch pairs, which can lower the per-pair *max*.  Keep the
        # cheaper plan, then polish it with boundary-move local search.
        best = min(plans, key=lambda p: p.max_metadata_bytes())
        if self.refine:
            from repro.core.refine import refine_plan

            best = refine_plan(best, paths)
        return best

    def _deploy_min_cut(
        self,
        tdg: Tdg,
        network: Network,
        paths: PathEnumerator,
    ) -> DeploymentPlan:
        """Algorithm 2: min-cut split + candidate-chain placement."""
        reference = self._reference(network)
        if self.replicate_hubs:
            from repro.core.replication import replicate_cheap_hubs

            tdg = replicate_cheap_hubs(tdg)
        segments = self.splitter(tdg, reference)
        if (
            self.epsilon2 is not None
            and len(segments) > self.epsilon2
            and self.splitter is split_tdg
        ):
            # The default fill band produced more segments than the
            # occupied-switch budget allows; re-split with the floor
            # raised to the average fill the budget implies.
            needed = tdg.total_resource_demand() / (
                self.epsilon2 * reference.total_capacity
            )
            if needed <= 1.0:
                segments = split_tdg(
                    tdg,
                    reference,
                    fill_floor=min(0.98, max(needed, FILL_FLOOR)),
                )

        last_error: Optional[Exception] = None
        for anchor in network.programmable_names():
            candidates = select_switches(
                anchor, network, paths, self.epsilon1, self.epsilon2
            )
            if len(segments) > len(candidates):
                continue
            try:
                return self._place(tdg, network, paths, segments, candidates)
            except (StageAssignmentError, DeploymentError) as exc:
                last_error = exc
                continue
        raise DeploymentError(
            "greedy heuristic found no feasible anchor switch"
            + (f": {last_error}" if last_error else "")
        )

    def _deploy_chain(
        self,
        tdg: Tdg,
        network: Network,
        paths: PathEnumerator,
    ) -> Optional[DeploymentPlan]:
        """First-fit chain placement over the candidate switches.

        The complementary portfolio member: MATs in Kahn (level) order
        packed into consecutive switches.  Interleaving programs at the
        boundaries spreads the cut edges across several switch pairs,
        so the per-pair maximum can undercut the min-cut split even
        when the total crossing bytes are higher.
        """
        from repro.baselines.base import route_all_pairs, schedule_on_chain

        order = tdg.topological_order(strategy="kahn")
        for anchor in network.programmable_names():
            chain = select_switches(
                anchor, network, paths, self.epsilon1, self.epsilon2
            )
            if not chain:
                continue
            try:
                placements = schedule_on_chain(tdg, order, network, chain)
                plan = route_all_pairs(
                    DeploymentPlan(tdg, network, placements), paths
                )
                plan.validate()
                return plan
            except (StageAssignmentError, DeploymentError):
                continue
        return None

    def _deploy_auto(
        self,
        tdg: Tdg,
        network: Network,
        paths: PathEnumerator,
    ) -> DeploymentPlan:
        """Deploy with and without hub replication; keep the cheaper.

        Replication removes hub cut bytes but inflates demand, which
        can shift split positions for the worse — so "auto" simply
        measures both.  Replication failures (capacity exhausted by the
        clones) silently fall back to the merged deployment.
        """
        base_solver = GreedyHeuristic(
            self.epsilon1, self.epsilon2, self.reference_switch,
            self.splitter, replicate_hubs=False, refine=self.refine,
        )
        plan = base_solver.deploy(tdg, network, paths)
        replica_solver = GreedyHeuristic(
            self.epsilon1, self.epsilon2, self.reference_switch,
            self.splitter, replicate_hubs=True, refine=self.refine,
        )
        try:
            replicated = replica_solver.deploy(tdg, network, paths)
        except DeploymentError:
            return plan
        if replicated.max_metadata_bytes() < plan.max_metadata_bytes():
            return replicated
        return plan

    def _place(
        self,
        tdg: Tdg,
        network: Network,
        paths: PathEnumerator,
        segments: Sequence[Tdg],
        candidates: Sequence[str],
    ) -> DeploymentPlan:
        builder = PlanBuilder(tdg, network)
        for segment, host in zip(segments, candidates):
            layout = assign_stages(segment, network.switch(host))
            for placement in layout.values():
                builder.place(
                    placement.mat_name, placement.switch, placement.stages
                )
        # Consecutive chain hops (Algorithm 2 lines 26-29) plus any
        # skip-level pairs created by edges spanning non-adjacent
        # segments: every communicating pair gets its shortest path.
        builder.route_shortest(paths)
        return builder.build()
