"""The wire protocol of the control-plane daemon: ``repro.server/v1``.

Framing is JSON lines: every frame is one canonically serialized JSON
object (sorted keys, compact separators — :func:`repro.plan.serialize.
canonical_dumps`) terminated by a single ``\\n``, UTF-8 encoded.  A
connection carries exactly three frame shapes:

* **request** (client -> server)::

      {"proto": "repro.server/v1", "id": 7, "op": "deploy",
       "params": {...}}

  ``id`` is a client-chosen correlation token (any JSON scalar);
  ``op`` is one of :data:`OPS`; ``params`` is op-specific and
  optional.

* **response** (server -> client), exactly one per request::

      {"proto": "repro.server/v1", "id": 7, "ok": true,
       "result": {...}}
      {"proto": "repro.server/v1", "id": 7, "ok": false,
       "error": {"code": "invalid_params", "message": "..."}}

  Error codes are :data:`ERROR_CODES`; anything the server raises
  outside those maps to ``internal``.

* **event** (server -> client, only after ``subscribe``)::

      {"proto": "repro.server/v1", "event": "telemetry", "seq": 3,
       "data": {"kind": "solver.lp", ...}}

  Events interleave with responses on the same stream; clients route
  by the presence of the ``event`` key.  ``seq`` increases by one per
  event on a session, so a client can detect drops.

Responses to the same request are byte-deterministic: the
*deterministic view* of each op's result (see
:func:`repro.server.ops.deterministic_view`) is the server/CLI
differential contract — equal inputs must produce equal bytes whether
a request runs through a server session or a one-shot CLI run.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.plan.serialize import canonical_dumps

#: Protocol identifier carried by every frame.
PROTOCOL = "repro.server/v1"

#: The operations a server session dispatches.
OPS = frozenset(
    {
        "ping",
        "deploy",
        "plan_diff",
        "simulate",
        "churn_run",
        "suite_run",
        "subscribe",
        "session_info",
        "shutdown",
    }
)

#: Machine-readable error codes of the error envelope.
ERROR_CODES = frozenset(
    {
        "bad_frame",       # not a JSON object / wrong proto / oversized
        "unknown_op",      # op not in OPS
        "invalid_params",  # op rejected its params
        "internal",        # unexpected server-side failure
        "shutting_down",   # request raced a shutdown
    }
)

#: Hard cap on one frame's encoded size (a full plan document on a
#: large WAN is ~1 MB; 64 MB leaves two orders of headroom while still
#: bounding a hostile connection).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed or invalid frame.

    Attributes:
        code: One of :data:`ERROR_CODES`, ready for the error
            envelope.
    """

    def __init__(self, code: str, message: str) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """Serialize one frame to its canonical wire form."""
    blob = canonical_dumps(frame).encode("utf-8") + b"\n"
    if len(blob) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "bad_frame", f"frame of {len(blob)} bytes exceeds cap"
        )
    return blob


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a frame dict.

    Validates only the envelope (shape, protocol marker) — op-level
    validation is :func:`validate_request`'s job.
    """
    import json

    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "bad_frame", f"frame of {len(line)} bytes exceeds cap"
        )
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad_frame", f"not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError("bad_frame", "frame is not a JSON object")
    if frame.get("proto") != PROTOCOL:
        raise ProtocolError(
            "bad_frame",
            f"unknown protocol {frame.get('proto')!r}; "
            f"this server speaks {PROTOCOL}",
        )
    return frame


def validate_request(frame: Mapping[str, Any]) -> None:
    """Check a decoded frame is a well-formed request."""
    if "id" not in frame:
        raise ProtocolError("bad_frame", "request has no id")
    if not isinstance(
        frame["id"], (str, int, float, bool, type(None))
    ):
        raise ProtocolError("bad_frame", "request id must be a scalar")
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad_frame", "request has no op")
    if op not in OPS:
        raise ProtocolError(
            "unknown_op",
            f"unknown op {op!r}; supported: {', '.join(sorted(OPS))}",
        )
    params = frame.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("invalid_params", "params must be an object")


# ----------------------------------------------------------------------
# Frame constructors
# ----------------------------------------------------------------------
def request(
    request_id: Any, op: str, params: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    frame: Dict[str, Any] = {"proto": PROTOCOL, "id": request_id, "op": op}
    if params:
        frame["params"] = dict(params)
    return frame


def response(request_id: Any, result: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "proto": PROTOCOL,
        "id": request_id,
        "ok": True,
        "result": dict(result),
    }


def error_response(
    request_id: Any, code: str, message: str
) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        code = "internal"
    return {
        "proto": PROTOCOL,
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def event_frame(
    kind: str, seq: int, data: Mapping[str, Any]
) -> Dict[str, Any]:
    return {
        "proto": PROTOCOL,
        "event": kind,
        "seq": seq,
        "data": dict(data),
    }


def is_event(frame: Mapping[str, Any]) -> bool:
    """Whether a received server frame is an event (vs a response)."""
    return "event" in frame
