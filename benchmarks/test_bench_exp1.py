"""Benchmark: Exp#1 (Fig. 5) — testbed deployment of real programs."""

from conftest import representative_frameworks

from repro.experiments import exp1_testbed


def test_bench_exp1_testbed(benchmark):
    points = benchmark.pedantic(
        exp1_testbed.run,
        kwargs=dict(
            program_counts=(2, 6, 10),
            frameworks=representative_frameworks(ilp_time_limit_s=8.0),
        ),
        rounds=1,
        iterations=1,
    )
    from conftest import record_report

    record_report(exp1_testbed.main(points))

    def overhead(name, count):
        return next(
            p.record.overhead_bytes
            for p in points
            if p.record.framework == name and p.num_programs == count
        )

    # Paper shape: Hermes matches Optimal on the small testbed and never
    # exceeds the overhead-oblivious baselines.
    for count in (2, 6, 10):
        hermes = overhead("Hermes", count)
        assert hermes <= overhead("FFL", count)
        assert hermes <= overhead("FFLS", count)
        assert hermes <= overhead("MS", count)
        assert overhead("Optimal", count) <= hermes
