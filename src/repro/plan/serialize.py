"""Canonical, versioned JSON serialization of deployment plans.

A serialized plan is a *complete* artifact: it embeds the merged TDG
(MATs with fields, actions, rules and demands; dependency edges with
their metadata byte annotations) and the substrate network alongside
the placement and routing decisions, so a plan document can be
reloaded, re-validated and diffed in a process that never saw the
original workload objects.

Canonical form: placements are sorted by MAT name, routing by switch
pair, network switches/links by name; TDG nodes and edges keep their
*insertion order* — the legacy metric code iterates edges in that
order, so preserving it keeps tie-breaks (e.g. which pair
``max_metadata_bytes`` picks among equals) byte-identical across a
round trip.  :func:`canonical_dumps` fixes separators and key order so
equal plans serialize to equal byte strings, which is what
:func:`plan_fingerprint` hashes and what the result cache stores.

The ``schema``/``version`` header gates compatibility: documents from
a different major schema raise :class:`PlanSchemaError` instead of
deserializing garbage.  Bump :data:`SCHEMA_VERSION` whenever the
document layout changes shape.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping

from repro.dataplane.actions import Action, ActionPrimitive
from repro.dataplane.fields import Field, FieldKind
from repro.dataplane.mat import Mat, ResourceDemand
from repro.dataplane.rules import MatchKind, MatchSpec, Rule
from repro.network.paths import Path
from repro.network.switch import Switch
from repro.network.topology import Link, Network
from repro.plan.artifact import DeploymentError, DeploymentPlan, MatPlacement
from repro.tdg.dependencies import DependencyType
from repro.tdg.graph import Tdg

#: Schema identifier embedded in every document.
SCHEMA = "repro.plan/v1"
#: Document layout revision within the schema.
SCHEMA_VERSION = 1


class PlanSchemaError(ValueError):
    """Raised when a plan document cannot be (de)serialized."""


# ----------------------------------------------------------------------
# Data-plane model
# ----------------------------------------------------------------------
def _field_to_dict(field: Field) -> Dict[str, Any]:
    return {
        "name": field.name,
        "width_bits": field.width_bits,
        "kind": field.kind.value,
    }


def _field_from_dict(data: Mapping[str, Any]) -> Field:
    return Field(data["name"], data["width_bits"], FieldKind(data["kind"]))


def _action_to_dict(action: Action) -> Dict[str, Any]:
    return {
        "name": action.name,
        "primitive": action.primitive.value,
        "reads": [_field_to_dict(f) for f in action.reads],
        "writes": [_field_to_dict(f) for f in action.writes],
    }


def _action_from_dict(data: Mapping[str, Any]) -> Action:
    return Action(
        data["name"],
        ActionPrimitive(data["primitive"]),
        tuple(_field_from_dict(f) for f in data["reads"]),
        tuple(_field_from_dict(f) for f in data["writes"]),
    )


def _rule_to_dict(rule: Rule) -> Dict[str, Any]:
    return {
        "matches": [
            {
                "field_name": m.field_name,
                "kind": m.kind.value,
                "value": m.value,
                "mask_or_prefix": m.mask_or_prefix,
            }
            for m in rule.matches
        ],
        "action_name": rule.action_name,
        "priority": rule.priority,
        "action_data": [[name, value] for name, value in rule.action_data],
    }


def _rule_from_dict(data: Mapping[str, Any]) -> Rule:
    return Rule(
        tuple(
            MatchSpec(
                m["field_name"],
                MatchKind(m["kind"]),
                m["value"],
                m["mask_or_prefix"],
            )
            for m in data["matches"]
        ),
        data["action_name"],
        data["priority"],
        tuple((name, value) for name, value in data["action_data"]),
    )


def _mat_to_dict(mat: Mat) -> Dict[str, Any]:
    detailed = mat.detailed_demand
    return {
        "name": mat.name,
        "match_fields": [_field_to_dict(f) for f in mat.match_fields],
        "actions": [_action_to_dict(a) for a in mat.actions],
        "capacity": mat.capacity,
        "rules": [_rule_to_dict(r) for r in mat.rules],
        "resource_demand": mat.resource_demand,
        "detailed_demand": {
            "sram_bits": detailed.sram_bits,
            "tcam_bits": detailed.tcam_bits,
            "alus": detailed.alus,
        },
    }


def _mat_from_dict(data: Mapping[str, Any]) -> Mat:
    detailed = data["detailed_demand"]
    return Mat(
        data["name"],
        match_fields=[_field_from_dict(f) for f in data["match_fields"]],
        actions=[_action_from_dict(a) for a in data["actions"]],
        capacity=data["capacity"],
        rules=[_rule_from_dict(r) for r in data["rules"]],
        resource_demand=data["resource_demand"],
        detailed_demand=ResourceDemand(
            detailed["sram_bits"], detailed["tcam_bits"], detailed["alus"]
        ),
    )


# ----------------------------------------------------------------------
# TDG and network
# ----------------------------------------------------------------------
def _tdg_to_dict(tdg: Tdg) -> Dict[str, Any]:
    # Node and edge order is insertion order on purpose — the metric
    # code iterates edges in that order and downstream tie-breaks
    # depend on it, so a round trip must not re-sort.
    return {
        "name": tdg.name,
        "nodes": [_mat_to_dict(mat) for mat in tdg.mats],
        "edges": [
            {
                "upstream": e.upstream,
                "downstream": e.downstream,
                "dep_type": e.dep_type.value,
                "metadata_bytes": e.metadata_bytes,
            }
            for e in tdg.edges
        ],
    }


def _tdg_from_dict(data: Mapping[str, Any]) -> Tdg:
    tdg = Tdg(data["name"])
    for node in data["nodes"]:
        tdg.add_node(_mat_from_dict(node))
    for edge in data["edges"]:
        tdg.add_edge(
            edge["upstream"],
            edge["downstream"],
            DependencyType(edge["dep_type"]),
            edge["metadata_bytes"],
        )
    return tdg


def _network_to_dict(network: Network) -> Dict[str, Any]:
    return {
        "name": network.name,
        "switches": [
            {
                "name": s.name,
                "programmable": s.programmable,
                "num_stages": s.num_stages,
                "stage_capacity": s.stage_capacity,
                "latency_us": s.latency_us,
                "ports": s.ports,
                "port_speed_gbps": s.port_speed_gbps,
            }
            for s in sorted(network.switches, key=lambda s: s.name)
        ],
        "links": [
            {
                "u": link.u,
                "v": link.v,
                "latency_ms": link.latency_ms,
                "bandwidth_gbps": link.bandwidth_gbps,
            }
            for link in sorted(network.links, key=lambda link: link.key)
        ],
    }


def _network_from_dict(data: Mapping[str, Any]) -> Network:
    network = Network(data["name"])
    for s in data["switches"]:
        network.add_switch(
            Switch(
                s["name"],
                s["programmable"],
                s["num_stages"],
                s["stage_capacity"],
                s["latency_us"],
                s["ports"],
                s["port_speed_gbps"],
            )
        )
    for link in data["links"]:
        network.add_link(
            Link(
                link["u"],
                link["v"],
                link["latency_ms"],
                link["bandwidth_gbps"],
            )
        )
    return network


# ----------------------------------------------------------------------
# Plan document
# ----------------------------------------------------------------------
def plan_to_dict(plan: DeploymentPlan) -> Dict[str, Any]:
    """The canonical JSON-serializable document for a plan."""
    placements = [
        {
            "mat": p.mat_name,
            "switch": p.switch,
            "stages": list(p.stages),
        }
        for p in sorted(
            plan.placements.values(), key=lambda p: p.mat_name
        )
    ]
    routing = [
        {
            "pair": list(pair),
            "switches": list(path.switches),
            "latency_us": path.latency_us,
        }
        for pair, path in sorted(plan.routing.items())
    ]
    try:
        e2e: Any = plan.end_to_end_latency_us()
    except DeploymentError:
        # Partially routed plans export with a null latency; validate()
        # still reports the missing pair on reload.
        e2e = None
    return {
        "schema": SCHEMA,
        "version": SCHEMA_VERSION,
        "tdg": _tdg_to_dict(plan.tdg),
        "network": _network_to_dict(plan.network),
        "placements": placements,
        "routing": routing,
        "metrics": {
            "max_metadata_bytes": plan.max_metadata_bytes(),
            "total_metadata_bytes": plan.total_metadata_bytes(),
            "num_occupied_switches": plan.num_occupied_switches(),
            "end_to_end_latency_us": e2e,
        },
    }


def plan_from_dict(data: Mapping[str, Any]) -> DeploymentPlan:
    """Reconstruct a plan from :func:`plan_to_dict` output.

    Raises:
        PlanSchemaError: On a missing/foreign schema header, an
            unsupported version, or a structurally broken document.
    """
    if not isinstance(data, Mapping):
        raise PlanSchemaError(
            f"plan document must be an object, got {type(data).__name__}"
        )
    schema = data.get("schema")
    if schema != SCHEMA:
        raise PlanSchemaError(
            f"not a plan document: schema is {schema!r}, expected {SCHEMA!r}"
        )
    version = data.get("version")
    if version != SCHEMA_VERSION:
        raise PlanSchemaError(
            f"unsupported plan schema version {version!r} "
            f"(this reader handles version {SCHEMA_VERSION})"
        )
    try:
        tdg = _tdg_from_dict(data["tdg"])
        network = _network_from_dict(data["network"])
        placements = {
            p["mat"]: MatPlacement(p["mat"], p["switch"], tuple(p["stages"]))
            for p in data["placements"]
        }
        routing = {
            (entry["pair"][0], entry["pair"][1]): Path(
                tuple(entry["switches"]), entry["latency_us"]
            )
            for entry in data["routing"]
        }
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise PlanSchemaError(f"malformed plan document: {exc}") from exc
    return DeploymentPlan(tdg, network, placements, routing)


def canonical_dumps(document: Mapping[str, Any]) -> str:
    """Deterministic JSON text: sorted keys, fixed separators."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def plan_fingerprint(plan: DeploymentPlan) -> str:
    """SHA-256 hex digest of the plan's canonical serialization."""
    blob = canonical_dumps(plan_to_dict(plan))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def write_plan(plan: DeploymentPlan, path: str) -> None:
    """Write the canonical plan document to ``path`` (pretty-printed)."""
    with open(path, "w") as fh:
        json.dump(plan.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_plan(path: str) -> DeploymentPlan:
    """Load a plan document written by :func:`write_plan`."""
    with open(path) as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise PlanSchemaError(f"{path}: not valid JSON: {exc}") from exc
    return plan_from_dict(data)
