"""Unit tests for flows, packetization and packets."""

import pytest

from repro.simulation.flow import DEFAULT_MTU, Flow, packet_list
from repro.simulation.packet import BASE_HEADER_BYTES, Packet


class TestPacket:
    def test_wire_bytes(self):
        p = Packet(1, 0, payload_bytes=1000, overhead_bytes=48)
        assert p.wire_bytes == 1000 + 48 + BASE_HEADER_BYTES

    def test_validation(self):
        with pytest.raises(ValueError):
            Packet(1, 0, payload_bytes=-1)
        with pytest.raises(ValueError):
            Packet(1, 0, payload_bytes=1, overhead_bytes=-1)


class TestFlow:
    def test_packet_count_without_overhead(self):
        flow = Flow(1, message_bytes=10_240, packet_payload_bytes=1024)
        assert flow.num_packets == 10

    def test_overhead_within_mtu_keeps_payload(self):
        flow = Flow(
            1, message_bytes=10_240, packet_payload_bytes=1024,
            overhead_bytes=100,
        )
        # 1024 + 100 + 54 < 1500: payload unchanged, wire grows.
        assert flow.effective_payload_bytes == 1024
        assert flow.num_packets == 10

    def test_overhead_at_mtu_shrinks_payload(self):
        payload = DEFAULT_MTU - BASE_HEADER_BYTES  # fills the MTU
        flow = Flow(
            1,
            message_bytes=payload * 10,
            packet_payload_bytes=payload,
            overhead_bytes=100,
        )
        assert flow.effective_payload_bytes == payload - 100
        assert flow.num_packets > 10

    def test_rejects_overhead_that_fills_mtu(self):
        with pytest.raises(ValueError, match="no payload room"):
            Flow(
                1,
                message_bytes=1000,
                packet_payload_bytes=100,
                overhead_bytes=DEFAULT_MTU,
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            Flow(1, message_bytes=0, packet_payload_bytes=100)
        with pytest.raises(ValueError):
            Flow(1, message_bytes=100, packet_payload_bytes=0)

    def test_total_wire_bytes(self):
        flow = Flow(
            1, message_bytes=2500, packet_payload_bytes=1000,
            overhead_bytes=20,
        )
        # 3 packets: 1000, 1000, 500 payload + 74B framing each.
        assert flow.total_wire_bytes == 2500 + 3 * 74


class TestPacketize:
    def test_packets_cover_message_exactly(self):
        flow = Flow(1, message_bytes=2500, packet_payload_bytes=1000)
        packets = packet_list(flow)
        assert len(packets) == 3
        assert sum(p.payload_bytes for p in packets) == 2500
        assert packets[-1].payload_bytes == 500

    def test_sequence_numbers_increase(self):
        flow = Flow(1, message_bytes=5000, packet_payload_bytes=1000)
        packets = packet_list(flow)
        assert [p.seq for p in packets] == list(range(5))

    def test_every_packet_carries_overhead(self):
        flow = Flow(
            1, message_bytes=2500, packet_payload_bytes=1000,
            overhead_bytes=32,
        )
        assert all(p.overhead_bytes == 32 for p in packet_list(flow))

    def test_count_matches_num_packets(self):
        for message in (1, 999, 1000, 1001, 12345):
            flow = Flow(1, message_bytes=message, packet_payload_bytes=1000)
            assert len(packet_list(flow)) == flow.num_packets
