"""Unit tests for Session (no daemon) and the ops param layer."""

import pytest

from repro.runtime import StoreReloadError
from repro.server.ops import (
    DEPLOY_DEFAULTS,
    OpError,
    resolve_params,
)
from repro.server.session import Session, solve_key

PARAMS = {"workload": "real:6", "topology": "wan:12:18", "seed": 3}


class TestResolveParams:
    def test_defaults_fill_in(self):
        p = resolve_params(None, DEPLOY_DEFAULTS)
        assert p["workload"] == "real:10"
        assert p["verify"] is False

    def test_explicit_values_win(self):
        p = resolve_params({"workload": "real:2"}, DEPLOY_DEFAULTS)
        assert p["workload"] == "real:2"

    def test_unknown_keys_rejected(self):
        with pytest.raises(OpError, match="unknown params: bogus"):
            resolve_params({"bogus": 1}, DEPLOY_DEFAULTS)


class TestSolveKey:
    def test_decoration_params_excluded(self):
        a = resolve_params(PARAMS, DEPLOY_DEFAULTS)
        b = resolve_params(
            {**PARAMS, "verify": True, "configs": True}, DEPLOY_DEFAULTS
        )
        assert solve_key(a) == solve_key(b)

    def test_solve_params_included(self):
        a = resolve_params(PARAMS, DEPLOY_DEFAULTS)
        b = resolve_params({**PARAMS, "seed": 4}, DEPLOY_DEFAULTS)
        assert solve_key(a) != solve_key(b)


class TestSessionWarmPath:
    def test_repeat_deploy_is_warm_and_identical(self):
        session = Session("t0")
        first = session.deploy(PARAMS)
        second = session.deploy(PARAMS)
        assert first["session"]["source"] == "cold"
        assert second["session"]["source"] == "warm:rebase"
        assert second["fingerprint"] == first["fingerprint"]
        assert session.warm_hits == 1 and session.cold_solves == 1

    def test_changed_params_resolve_cold(self):
        session = Session("t1")
        session.deploy(PARAMS)
        changed = session.deploy({**PARAMS, "seed": 4})
        assert changed["session"]["source"] == "cold"
        assert session.cold_solves == 2

    def test_history_versions_accumulate(self):
        session = Session("t2")
        session.deploy(PARAMS)
        session.deploy(PARAMS)
        session.deploy({**PARAMS, "workload": "real:7"})
        reasons = [v.reason for v in session.store.versions]
        assert reasons == ["initial", "incremental", "replan"]

    def test_info_shape(self):
        session = Session("t3")
        assert session.info()["plan_version"] is None
        session.deploy(PARAMS)
        info = session.info()
        assert info["plan_version"] == 0
        assert info["history_digest"]
        assert info["recovered"] is False


class TestSessionPersistence:
    def test_recovery_resumes_history_and_warmth(self, tmp_path):
        state = str(tmp_path / "sess")
        original = Session("a", state_dir=state)
        first = original.deploy(PARAMS)

        resumed = Session("b", state_dir=state)
        assert resumed.info()["recovered"] is True
        assert resumed.store.fingerprints() == original.store.fingerprints()
        again = resumed.deploy(PARAMS)
        assert again["session"]["source"] == "warm:rebase"
        assert again["fingerprint"] == first["fingerprint"]

    def test_recovery_continues_the_digest(self, tmp_path):
        state = str(tmp_path / "sess")
        original = Session("a", state_dir=state)
        original.deploy(PARAMS)
        original.deploy(PARAMS)

        resumed = Session("b", state_dir=state)
        assert (
            resumed.store.history_digest()
            == original.store.history_digest()
        )

    def test_corrupt_state_raises_not_restarts(self, tmp_path):
        state = tmp_path / "sess"
        Session("a", state_dir=str(state)).deploy(PARAMS)
        (state / "session.json").write_text("{broken")
        with pytest.raises(StoreReloadError):
            Session("b", state_dir=str(state))

    def test_fresh_state_dir_starts_cold(self, tmp_path):
        session = Session("a", state_dir=str(tmp_path / "new"))
        assert session.info()["recovered"] is False
        assert session.deploy(PARAMS)["session"]["source"] == "cold"
