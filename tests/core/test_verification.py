"""Unit tests for dataflow verification."""

import pytest

from repro.core.analyzer import ProgramAnalyzer
from repro.core.deployment import DeploymentPlan, MatPlacement
from repro.core.heuristic import GreedyHeuristic
from repro.core.verification import (
    DataflowError,
    verify_dataflow,
)
from repro.dataplane.actions import modify, no_op
from repro.dataplane.fields import metadata_field
from repro.dataplane.mat import Mat
from repro.network.generators import linear_topology
from repro.network.paths import PathEnumerator
from repro.tdg.dependencies import DependencyType
from repro.tdg.graph import Tdg
from tests.conftest import make_sketch_program


def cross_switch_plan():
    """a (writes meta) on s0  ->  b (reads meta) on s1, routed."""
    meta = metadata_field("m.x", 32)
    tdg = Tdg("t")
    tdg.add_node(Mat("a", actions=[modify(meta)], resource_demand=0.2))
    tdg.add_node(
        Mat("b", match_fields=[meta], actions=[no_op()], resource_demand=0.2)
    )
    tdg.add_edge("a", "b", DependencyType.MATCH, 4)
    net = linear_topology(2)
    paths = PathEnumerator(net)
    plan = DeploymentPlan(
        tdg,
        net,
        {
            "a": MatPlacement("a", "s0", (1,)),
            "b": MatPlacement("b", "s1", (1,)),
        },
        {("s0", "s1"): paths.shortest("s0", "s1")},
    )
    return plan


class TestVerifyDataflow:
    def test_cross_switch_delivery(self):
        report = verify_dataflow(cross_switch_plan())
        assert report.single_pass
        assert report.shipped_fields[("s0", "s1")] == ["m.x"]
        assert report.reads_checked >= 1

    def test_same_switch_plan(self, six_programs, small_line):
        tdg = ProgramAnalyzer().analyze(six_programs)
        plan = GreedyHeuristic().deploy(tdg, small_line)
        report = verify_dataflow(plan)
        assert report.single_pass
        assert len(report.execution_order) == len(tdg)

    def test_reversed_placement_still_delivers_via_channel(self):
        # Placing the reader's switch "before" the writer's is fine as
        # long as the channel exists: the packet simply visits the
        # writer's switch first.
        base = cross_switch_plan()
        paths = PathEnumerator(base.network)
        plan = DeploymentPlan(
            base.tdg,
            base.network,
            {
                "a": MatPlacement("a", "s1", (1,)),
                "b": MatPlacement("b", "s0", (1,)),
            },
            {("s1", "s0"): paths.shortest("s1", "s0")},
        )
        report = verify_dataflow(plan)
        assert report.shipped_fields[("s1", "s0")] == ["m.x"]

    def test_detects_missing_channel(self):
        # A broken TDG that *omits* the a -> b data edge produces no
        # coordination channel, so b's read can never be satisfied
        # across switches.
        meta = metadata_field("m.x", 32)
        tdg = Tdg("broken")
        tdg.add_node(Mat("a", actions=[modify(meta)], resource_demand=0.2))
        tdg.add_node(
            Mat(
                "b",
                match_fields=[meta],
                actions=[no_op()],
                resource_demand=0.2,
            )
        )
        net = linear_topology(2)
        plan = DeploymentPlan(
            tdg,
            net,
            {
                "a": MatPlacement("a", "s0", (1,)),
                "b": MatPlacement("b", "s1", (1,)),
            },
        )
        with pytest.raises(DataflowError, match="stuck"):
            verify_dataflow(plan)

    def test_execution_order_respects_dependencies(self):
        programs = [make_sketch_program(f"p{i}") for i in range(3)]
        tdg = ProgramAnalyzer().analyze(programs)
        net = linear_topology(6, num_stages=2, stage_capacity=1.0)
        plan = GreedyHeuristic().deploy(tdg, net)
        report = verify_dataflow(plan)
        position = {m: i for i, m in enumerate(report.execution_order)}
        for edge in tdg.edges:
            assert position[edge.upstream] < position[edge.downstream]

    def test_all_frameworks_verify(self, six_programs, small_line):
        from repro.baselines import Ffl, Ffls, HermesHeuristic, MinStage

        for framework in (
            HermesHeuristic(),
            Ffl(),
            Ffls(),
            MinStage(time_limit_s=1.0),
        ):
            result = framework.deploy(six_programs, small_line)
            verify_dataflow(result.plan)

    def test_recirculation_counted(self):
        # a1(s0) -> b1(s1) and a2(s1) -> b2(s0): cyclic switch flow
        # needs a second round.
        m1 = metadata_field("m.one", 32)
        m2 = metadata_field("m.two", 32)
        tdg = Tdg("t")
        tdg.add_node(Mat("a1", actions=[modify(m1)], resource_demand=0.1))
        tdg.add_node(
            Mat("b1", match_fields=[m1], actions=[no_op()], resource_demand=0.1)
        )
        tdg.add_node(Mat("a2", actions=[modify(m2)], resource_demand=0.1))
        tdg.add_node(
            Mat("b2", match_fields=[m2], actions=[no_op()], resource_demand=0.1)
        )
        tdg.add_edge("a1", "b1", DependencyType.MATCH, 4)
        tdg.add_edge("a2", "b2", DependencyType.MATCH, 4)
        net = linear_topology(2)
        paths = PathEnumerator(net)
        plan = DeploymentPlan(
            tdg,
            net,
            {
                "a1": MatPlacement("a1", "s0", (1,)),
                "b1": MatPlacement("b1", "s1", (2,)),
                "a2": MatPlacement("a2", "s1", (1,)),
                "b2": MatPlacement("b2", "s0", (2,)),
            },
            {
                ("s0", "s1"): paths.shortest("s0", "s1"),
                ("s1", "s0"): paths.shortest("s1", "s0"),
            },
        )
        report = verify_dataflow(plan)
        assert report.rounds == 2
        assert not report.single_pass


class TestVisitScopedSemantics:
    def test_flow_ordered_visits_allow_single_pass(self):
        """Acyclic channel flow -> the verifier visits upstream
        switches first and one pass suffices."""
        hub_out = metadata_field("m.hub", 32)
        remote = metadata_field("m.remote", 32)
        tdg = Tdg("loop")
        # s1: hub writes m.hub; s0: producer writes m.remote;
        # s1: consumer needs BOTH -> must run on a second s1 visit,
        # by which time m.hub (never shipped via any channel that
        # returns to s1) is gone.
        tdg.add_node(Mat("hub", actions=[modify(hub_out)], resource_demand=0.2))
        tdg.add_node(
            Mat("producer", actions=[modify(remote)], resource_demand=0.2)
        )
        tdg.add_node(
            Mat(
                "consumer",
                match_fields=[hub_out, remote],
                actions=[no_op()],
                resource_demand=0.2,
            )
        )
        tdg.add_edge("hub", "consumer", DependencyType.MATCH, 4)
        tdg.add_edge("producer", "consumer", DependencyType.MATCH, 4)
        net = linear_topology(2)
        paths = PathEnumerator(net)
        plan = DeploymentPlan(
            tdg,
            net,
            {
                "hub": MatPlacement("hub", "s1", (1,)),
                "producer": MatPlacement("producer", "s0", (1,)),
                "consumer": MatPlacement("consumer", "s1", (2,)),
            },
            {("s0", "s1"): paths.shortest("s0", "s1")},
        )
        # Structurally fine AND single-pass executable: the verifier
        # orders visits along the channel flow (s0 first), so the
        # consumer sees the shipped remote field and the hub output of
        # its own visit.
        plan.validate()
        report = verify_dataflow(plan)
        assert report.single_pass

    def test_cyclic_same_switch_production_rejected(self):
        """The refinement regression: consumer blocked on a remote
        field whose switch visit happens after the local producer's
        output has died."""
        hub_out = metadata_field("m2.hub", 32)
        remote = metadata_field("m2.remote", 32)
        back = metadata_field("m2.back", 32)
        tdg = Tdg("loop2")
        tdg.add_node(Mat("hub", actions=[modify(hub_out)], resource_demand=0.2))
        # remote producer on s0 depends on hub (so s1 must run first),
        tdg.add_node(
            Mat(
                "producer",
                match_fields=[hub_out],
                actions=[modify(remote)],
                resource_demand=0.2,
            )
        )
        # and the consumer back on s1 needs hub's output again.
        tdg.add_node(
            Mat(
                "consumer",
                match_fields=[hub_out, remote],
                actions=[no_op()],
                resource_demand=0.2,
            )
        )
        tdg.add_edge("hub", "producer", DependencyType.MATCH, 4)
        tdg.add_edge("hub", "consumer", DependencyType.MATCH, 4)
        tdg.add_edge("producer", "consumer", DependencyType.MATCH, 4)
        net = linear_topology(2)
        paths = PathEnumerator(net)
        plan = DeploymentPlan(
            tdg,
            net,
            {
                "hub": MatPlacement("hub", "s1", (1,)),
                "producer": MatPlacement("producer", "s0", (1,)),
                "consumer": MatPlacement("consumer", "s1", (2,)),
            },
            {
                ("s1", "s0"): paths.shortest("s1", "s0"),
                ("s0", "s1"): paths.shortest("s0", "s1"),
            },
        )
        plan.validate()
        # Channel s1->s0 carries m2.hub (edge hub->producer); channel
        # s0->s1 carries m2.remote but NOT m2.hub... unless the edge
        # hub->consumer provides it?  hub and consumer share s1, so no
        # channel exists for it: the consumer can never see m2.hub on
        # its (second) visit.
        with pytest.raises(DataflowError, match="stuck"):
            verify_dataflow(plan)
