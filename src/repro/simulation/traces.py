"""Synthetic DCN flow traces.

Fig. 2 measures one flow at a time.  Real data-center traffic is a mix
of many mice and few elephants (heavy-tailed flow sizes — the paper's
own 512-byte packet choice follows the Facebook DCN study it cites), so
the *aggregate* cost of per-packet overhead depends on the size
distribution: small flows pay the per-packet tax on every one of their
few packets, elephants amortize propagation but not serialization.

This module generates seeded flow traces with the standard empirical
shape (log-normal body, Pareto tail, Poisson arrivals) and evaluates a
whole trace under a given byte overhead — the trace-weighted companion
to :func:`repro.simulation.netsim.analytic_fct`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Union

from repro.simulation.netsim import HopSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.engine import Engine


@dataclass(frozen=True)
class TraceFlow:
    """One flow of a trace."""

    flow_id: int
    arrival_us: float
    message_bytes: int


@dataclass(frozen=True)
class TraceConfig:
    """Flow-size / arrival model knobs.

    Defaults approximate published DCN measurements: median flow around
    a few kilobytes, a Pareto tail supplying the elephants, arrivals
    Poisson at ``flows_per_second``.
    """

    num_flows: int = 1000
    median_bytes: int = 4 * 1024
    sigma: float = 1.5  # log-normal shape of the body
    tail_probability: float = 0.05
    tail_alpha: float = 1.3  # Pareto tail exponent
    tail_min_bytes: int = 1 * 1024 * 1024
    max_bytes: int = 100 * 1024 * 1024
    flows_per_second: float = 2000.0

    def __post_init__(self) -> None:
        if self.num_flows <= 0:
            raise ValueError("num_flows must be positive")
        if not 0.0 <= self.tail_probability <= 1.0:
            raise ValueError("tail_probability must be in [0, 1]")
        if self.tail_alpha <= 1.0:
            raise ValueError("tail_alpha must exceed 1 (finite mean)")
        if self.flows_per_second <= 0:
            raise ValueError("flows_per_second must be positive")


def generate_trace(seed: int, config: TraceConfig = TraceConfig()) -> List[TraceFlow]:
    """A seeded flow trace (deterministic per seed)."""
    rng = random.Random(seed)
    mu = math.log(config.median_bytes)
    flows: List[TraceFlow] = []
    clock_us = 0.0
    for flow_id in range(config.num_flows):
        clock_us += rng.expovariate(config.flows_per_second) * 1e6
        if rng.random() < config.tail_probability:
            size = int(config.tail_min_bytes * rng.paretovariate(config.tail_alpha))
        else:
            size = int(rng.lognormvariate(mu, config.sigma))
        size = max(64, min(size, config.max_bytes))
        flows.append(TraceFlow(flow_id, clock_us, size))
    return flows


@dataclass(frozen=True)
class TraceMetrics:
    """Aggregate outcome of a trace under one overhead setting.

    Attributes:
        mean_fct_us / p99_fct_us: FCT statistics over the trace.
        mean_slowdown: Mean per-flow FCT ratio against zero overhead —
            the "small flows pay more" statistic.
        total_wire_bytes: Bytes serialized per hop for the whole trace.
    """

    mean_fct_us: float
    p99_fct_us: float
    mean_slowdown: float
    total_wire_bytes: int


def evaluate_trace(
    trace: Sequence[TraceFlow],
    path: Sequence[HopSpec],
    overhead_bytes: int,
    packet_payload_bytes: int = 1024,
    engine: Union[str, "Engine"] = "analytic",
) -> TraceMetrics:
    """Evaluate every flow of a trace under an overhead setting.

    Flows are evaluated independently (the model assumes an
    uncongested path; queueing interactions are out of scope, as in
    the paper's own testbed methodology of one flow at a time).

    Now a thin wrapper building a :class:`SimulationSpec` and
    dispatching it to the chosen engine (``"analytic"`` reproduces the
    legacy per-flow closed-form loop bit-for-bit; ``"batch"`` is the
    vectorized fast path for large traces; ``"exact"`` runs the
    packet-level DES).
    """
    from repro.simulation.engine import get_engine
    from repro.simulation.spec import SimulationSpec

    spec = SimulationSpec.from_trace(
        trace, path, overhead_bytes, packet_payload_bytes
    )
    result = get_engine(engine).evaluate(spec)
    return TraceMetrics(
        mean_fct_us=result.mean_fct_us,
        p99_fct_us=result.p99_fct_us,
        mean_slowdown=result.mean_slowdown,
        total_wire_bytes=result.total_wire_bytes,
    )
