"""Path enumeration: the path sets ``P(u, v)`` and latencies ``t_p(p)``.

The MILP formulation routes inter-switch traffic over explicit paths,
so the framework needs, for every ordered switch pair, a set of
candidate paths together with their latencies.  Enumerating *all*
simple paths is exponential; following standard practice we enumerate
the ``k`` shortest loop-free paths by latency (Yen's algorithm on top
of Dijkstra) and let ``k`` bound the decision-variable blow-up.

``t_p(p)`` sums the switch latencies ``t_s`` and link latencies ``t_l``
along the path, matching the paper's definition.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.network.topology import Network


@dataclass(frozen=True)
class Path:
    """A loop-free switch sequence with its total latency.

    Attributes:
        switches: Ordered switch names from source to destination.
        latency_us: ``t_p(p)`` — sum of ``t_s`` over switches and
            ``t_l`` over links, in microseconds.
    """

    switches: Tuple[str, ...]
    latency_us: float

    def __post_init__(self) -> None:
        if len(self.switches) < 1:
            raise ValueError("a path needs at least one switch")
        if len(set(self.switches)) != len(self.switches):
            raise ValueError(f"path revisits a switch: {self.switches}")

    @property
    def source(self) -> str:
        return self.switches[0]

    @property
    def destination(self) -> str:
        return self.switches[-1]

    @property
    def hop_count(self) -> int:
        return len(self.switches) - 1

    def links(self) -> List[Tuple[str, str]]:
        return [
            (self.switches[i], self.switches[i + 1])
            for i in range(len(self.switches) - 1)
        ]

    def contains(self, element: str) -> bool:
        """Whether a switch name lies on this path (``E(a, p)`` = 1)."""
        return element in self.switches

    def contains_link(self, u: str, v: str) -> bool:
        pairs = set(self.links())
        return (u, v) in pairs or (v, u) in pairs


def path_latency_us(network: Network, switches: Sequence[str]) -> float:
    """``t_p`` for an explicit switch sequence."""
    total = sum(network.switch(s).latency_us for s in switches)
    for i in range(len(switches) - 1):
        total += network.link(switches[i], switches[i + 1]).latency_us
    return total


def _dijkstra(
    network: Network,
    source: str,
    target: str,
    banned_nodes: Optional[Set[str]] = None,
    banned_links: Optional[Set[Tuple[str, str]]] = None,
) -> Optional[List[str]]:
    """Latency-shortest path avoiding banned nodes/links, or None."""
    banned_nodes = banned_nodes or set()
    banned_links = banned_links or set()
    if source in banned_nodes or target in banned_nodes:
        return None
    # Node cost model: entering a switch costs t_s, traversing a link
    # costs t_l; the source's t_s is added up front.
    dist: Dict[str, float] = {source: network.switch(source).latency_us}
    prev: Dict[str, str] = {}
    heap: List[Tuple[float, str]] = [(dist[source], source)]
    visited: Set[str] = set()
    while heap:
        d, current = heapq.heappop(heap)
        if current in visited:
            continue
        visited.add(current)
        if current == target:
            break
        for nxt in network.neighbors(current):
            if nxt in banned_nodes or nxt in visited:
                continue
            key = (current, nxt) if current <= nxt else (nxt, current)
            if key in banned_links:
                continue
            link = network.link(current, nxt)
            cand = d + link.latency_us + network.switch(nxt).latency_us
            if cand < dist.get(nxt, float("inf")):
                dist[nxt] = cand
                prev[nxt] = current
                heapq.heappush(heap, (cand, nxt))
    if target not in visited:
        return None
    order = [target]
    while order[-1] != source:
        order.append(prev[order[-1]])
    order.reverse()
    return order


def shortest_path(network: Network, source: str, target: str) -> Optional[Path]:
    """The latency-shortest path between two switches, or None."""
    nodes = _dijkstra(network, source, target)
    if nodes is None:
        return None
    return Path(tuple(nodes), path_latency_us(network, nodes))


def k_shortest_paths(
    network: Network, source: str, target: str, k: int
) -> List[Path]:
    """Yen's algorithm: up to ``k`` loop-free shortest paths by latency."""
    if k <= 0:
        return []
    first = shortest_path(network, source, target)
    if first is None:
        return []
    found: List[Path] = [first]
    candidates: List[Tuple[float, Tuple[str, ...]]] = []
    seen: Set[Tuple[str, ...]] = {first.switches}

    while len(found) < k:
        last = found[-1].switches
        for i in range(len(last) - 1):
            spur_node = last[i]
            root = last[: i + 1]
            banned_links: Set[Tuple[str, str]] = set()
            for path in found:
                if path.switches[: i + 1] == root and len(path.switches) > i + 1:
                    u, v = path.switches[i], path.switches[i + 1]
                    banned_links.add((u, v) if u <= v else (v, u))
            banned_nodes = set(root[:-1])
            spur = _dijkstra(
                network, spur_node, target, banned_nodes, banned_links
            )
            if spur is None:
                continue
            total = root[:-1] + tuple(spur)
            if total in seen:
                continue
            seen.add(total)
            heapq.heappush(
                candidates, (path_latency_us(network, total), total)
            )
        if not candidates:
            break
        latency, nodes = heapq.heappop(candidates)
        found.append(Path(nodes, latency))
    return found


class PathEnumerator:
    """Cached per-pair path enumeration.

    Args:
        network: The substrate network.
        k: Maximum candidate paths per ordered switch pair.
    """

    def __init__(self, network: Network, k: int = 3) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.network = network
        self.k = k
        self._cache: Dict[Tuple[str, str], List[Path]] = {}

    def paths(self, source: str, target: str) -> List[Path]:
        """``P(u, v)`` — candidate paths, shortest first.

        ``P(u, u)`` is the trivial single-switch path.
        """
        key = (source, target)
        if key not in self._cache:
            if source == target:
                self._cache[key] = [
                    Path(
                        (source,),
                        self.network.switch(source).latency_us,
                    )
                ]
            else:
                self._cache[key] = k_shortest_paths(
                    self.network, source, target, self.k
                )
        return self._cache[key]

    def shortest(self, source: str, target: str) -> Optional[Path]:
        paths = self.paths(source, target)
        return paths[0] if paths else None

    def reachable(self, source: str, target: str) -> bool:
        return bool(self.paths(source, target))
