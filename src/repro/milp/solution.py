"""Solver results."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.milp.model import Var


class SolveStatus(enum.Enum):
    """Terminal state of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # time limit hit with an incumbent in hand
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"  # time limit hit with no incumbent

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class Solution:
    """The outcome of solving a model.

    Attributes:
        status: Terminal solver status.
        objective: Objective value of the incumbent (in the model's own
            sense, i.e. un-negated for maximization); None if no
            incumbent.
        values: Variable assignment of the incumbent.
        nodes_explored: Branch & bound nodes processed.
        lp_solves: LP relaxations solved.
        wall_time_s: Wall-clock solve time.
        gap: Relative optimality gap of the incumbent.  Invariant:
            always exactly ``0.0`` on OPTIMAL (normalized at
            construction, so no OPTIMAL solution ever carries ``None``);
            a non-negative float on FEASIBLE; ``None`` only when there
            is no incumbent to measure (INFEASIBLE / UNBOUNDED /
            TIME_LIMIT).
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: Dict[Var, float] = field(default_factory=dict)
    nodes_explored: int = 0
    lp_solves: int = 0
    wall_time_s: float = 0.0
    gap: Optional[float] = None

    def __post_init__(self) -> None:
        # A proven-optimal solution has, by definition, zero gap; the
        # None-vs-0.0 ambiguity previously leaked to callers comparing
        # gaps across solves.
        if self.status is SolveStatus.OPTIMAL and self.gap is None:
            self.gap = 0.0

    def __getitem__(self, var: Var) -> float:
        return self.values[var]

    def value(self, var: Var, default: float = 0.0) -> float:
        return self.values.get(var, default)

    def rounded(self, var: Var) -> int:
        """Integer value of an integral variable in the incumbent."""
        return int(round(self.values[var]))

    def summary(self) -> Dict[str, object]:
        """Scalar solve statistics (telemetry / journal payload)."""
        return {
            "status": self.status.value,
            "objective": self.objective,
            "nodes_explored": self.nodes_explored,
            "lp_solves": self.lp_solves,
            "wall_time_s": self.wall_time_s,
            "gap": self.gap,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        obj = f"{self.objective:.6g}" if self.objective is not None else "-"
        return (
            f"Solution({self.status.value}, obj={obj}, "
            f"nodes={self.nodes_explored}, time={self.wall_time_s:.3f}s)"
        )
