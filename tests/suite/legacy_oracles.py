"""Verbatim pre-refactor copies of the exp1-exp7/fig2 pipelines.

The suite-compiler refactor (Issue 10) turned each experiment module
into a thin ``repro.suite/v1`` spec plus an aggregator; this module
freezes the *original* cell-building loops and table rendering exactly
as they stood before the refactor, so ``test_golden_suites.py`` can
require the refactored path to be byte-identical.  Nothing here may
track the refactor: it is the oracle, copied, not imported.

Import as a plain module (``from legacy_oracles import ...``); it
deliberately contains no tests of its own.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import default_frameworks
from repro.experiments.reporting import Table
from repro.network.generators import linear_topology
from repro.network.topozoo import topology_zoo_wan
from repro.runtime.report import DisruptionReport
from repro.workloads.switchp4 import real_programs
from repro.workloads.synthetic import synthetic_programs

# ----------------------------------------------------------------------
# Exp#1 (Fig. 5) — pre-refactor exp1_testbed.run/_pivot/main
# ----------------------------------------------------------------------

EXP1_PROGRAM_COUNTS = (2, 4, 6, 8, 10)


def exp1_testbed_network():
    return linear_topology(3, programmable=True, link_latency_ms=0.001)


def exp1_cells(
    program_counts: Sequence[int] = EXP1_PROGRAM_COUNTS,
    frameworks=None,
    packet_payload_bytes: int = 1024,
):
    """The original Exp#1 cell-building loop (count -> framework)."""
    from repro.experiments.runner import Cell

    cells: List[Cell] = []
    for count in program_counts:
        programs = tuple(real_programs(count))
        network = exp1_testbed_network()
        sweep_frameworks = (
            list(frameworks)
            if frameworks is not None
            else default_frameworks(
                ilp_time_limit_s=20.0, per_program_ilp_time_limit_s=2.0
            )
        )
        for framework in sweep_frameworks:
            cells.append(
                Cell(
                    programs=programs,
                    network=network,
                    framework=framework,
                    packet_payload_bytes=packet_payload_bytes,
                    tag=count,
                )
            )
    return cells


def exp1_run(
    program_counts: Sequence[int] = EXP1_PROGRAM_COUNTS,
    frameworks=None,
    packet_payload_bytes: int = 1024,
    runner=None,
) -> List[Tuple[int, Any]]:
    """(num_programs, record) points, original execution order."""
    from repro.experiments.runner import execute_cells

    cells = exp1_cells(program_counts, frameworks, packet_payload_bytes)
    return [
        (res.cell.tag, res.record) for res in execute_cells(cells, runner)
    ]


def _count_pivot(
    points: List[Tuple[int, Any]], attr: str, title: str
) -> Table:
    """The original exp1/exp5 count-keyed pivot (headers ``n=c``)."""
    counts = sorted({count for count, _ in points})
    names: List[str] = []
    for _, record in points:
        if record.framework not in names:
            names.append(record.framework)
    table = Table(title, ["framework"] + [f"n={c}" for c in counts])
    for name in names:
        row: List = [name]
        for count in counts:
            cell = next(
                record
                for c, record in points
                if record.framework == name and c == count
            )
            row.append(getattr(cell, attr))
        table.add_row(row)
    return table


def exp1_render(points: List[Tuple[int, Any]]) -> str:
    """The original exp1 main() output (six Fig. 5 tables)."""
    out = [
        _count_pivot(
            points, "overhead_bytes", "Fig. 5(a): per-packet byte overhead (B)"
        ),
        _count_pivot(
            points,
            "reported_time_ms",
            "Fig. 5(b): execution time (ms; 1e7 = exceeded limit)",
        ),
        _count_pivot(points, "fct_ratio", "Fig. 5(c): normalized FCT"),
        _count_pivot(points, "goodput_ratio", "Fig. 5(d): normalized goodput"),
        _count_pivot(
            points,
            "plan_fct_ratio",
            "Fig. 5(c'): plan-aware normalized FCT (routed pairs)",
        ),
        _count_pivot(
            points,
            "plan_goodput_ratio",
            "Fig. 5(d'): plan-aware normalized goodput (routed pairs)",
        ),
    ]
    return "\n\n".join(t.render() for t in out)


# ----------------------------------------------------------------------
# Exp#2/3/4 (Figs. 6-8) — pre-refactor exp2_overhead pipeline
# ----------------------------------------------------------------------

EXP2_NUM_PROGRAMS = 50


def exp2_workload(num_programs: int = EXP2_NUM_PROGRAMS, seed: int = 7):
    reals = real_programs(min(num_programs, 10))
    remainder = max(num_programs - len(reals), 0)
    return reals + synthetic_programs(remainder, seed=seed)


def exp2_cells(
    topology_ids: Sequence[int],
    num_programs: int = EXP2_NUM_PROGRAMS,
    frameworks=None,
    seed: int = 7,
    ilp_time_limit_s: float = 10.0,
    solver_profile: Optional[str] = None,
):
    """The original Exp#2 cell loop (topology -> framework)."""
    from repro.experiments.runner import Cell
    from repro.milp.branch_bound import DEFAULT_PROFILE

    programs = tuple(exp2_workload(num_programs, seed))
    cells: List[Cell] = []
    for topology_id in topology_ids:
        network = topology_zoo_wan(topology_id)
        sweep_frameworks = (
            list(frameworks)
            if frameworks is not None
            else default_frameworks(
                ilp_time_limit_s=ilp_time_limit_s,
                per_program_ilp_time_limit_s=max(
                    ilp_time_limit_s / 20.0, 0.2
                ),
                solver_profile=solver_profile or DEFAULT_PROFILE,
            )
        )
        for framework in sweep_frameworks:
            cells.append(
                Cell(
                    programs=programs,
                    network=network,
                    framework=framework,
                    tag=topology_id,
                )
            )
    return cells


def exp2_run(
    topology_ids: Sequence[int],
    num_programs: int = EXP2_NUM_PROGRAMS,
    frameworks=None,
    seed: int = 7,
    runner=None,
) -> List[Tuple[int, Any]]:
    from repro.experiments.runner import execute_cells

    cells = exp2_cells(topology_ids, num_programs, frameworks, seed)
    return [
        (res.cell.tag, res.record) for res in execute_cells(cells, runner)
    ]


def _topo_pivot(
    points: List[Tuple[int, Any]], attr: str, title: str
) -> Table:
    """The original exp2 pivot (headers ``topoN``)."""
    ids = sorted({tid for tid, _ in points})
    names: List[str] = []
    for _, record in points:
        if record.framework not in names:
            names.append(record.framework)
    table = Table(title, ["framework"] + [f"topo{t}" for t in ids])
    for name in names:
        row: List = [name]
        for topology_id in ids:
            record = next(
                rec
                for tid, rec in points
                if rec.framework == name and tid == topology_id
            )
            row.append(getattr(record, attr))
        table.add_row(row)
    return table


def exp2_render(points: List[Tuple[int, Any]]) -> str:
    return _topo_pivot(
        points, "overhead_bytes", "Fig. 6: per-packet byte overhead (B)"
    ).render()


def exp3_render(points: List[Tuple[int, Any]]) -> str:
    return _topo_pivot(
        points,
        "reported_time_ms",
        "Fig. 7: execution time (ms; 1e7 = exceeded limit)",
    ).render()


def exp4_render(points: List[Tuple[int, Any]]) -> str:
    tables = [
        _topo_pivot(
            points, "fct_ratio", "Fig. 8(a): normalized FCT (1024B packets)"
        ),
        _topo_pivot(
            points,
            "goodput_ratio",
            "Fig. 8(b): normalized goodput (1024B packets)",
        ),
        _topo_pivot(
            points,
            "plan_fct_ratio",
            "Fig. 8(a'): plan-aware normalized FCT (routed pairs)",
        ),
        _topo_pivot(
            points,
            "plan_goodput_ratio",
            "Fig. 8(b'): plan-aware normalized goodput (routed pairs)",
        ),
    ]
    return "\n\n".join(t.render() for t in tables)


# ----------------------------------------------------------------------
# Exp#5 (Fig. 9) — pre-refactor exp5_scalability pipeline
# ----------------------------------------------------------------------

EXP5_TOPOLOGY_ID = 10


def exp5_cells(
    program_counts: Sequence[int],
    topology_id: int = EXP5_TOPOLOGY_ID,
    frameworks=None,
    seed: int = 7,
    ilp_time_limit_s: float = 10.0,
):
    """The original Exp#5 cell loop (count -> framework)."""
    from repro.experiments.runner import Cell

    cells: List[Cell] = []
    for count in program_counts:
        programs = tuple(exp2_workload(count, seed))
        network = topology_zoo_wan(topology_id)
        sweep_frameworks = (
            list(frameworks)
            if frameworks is not None
            else default_frameworks(
                ilp_time_limit_s=ilp_time_limit_s,
                per_program_ilp_time_limit_s=max(
                    ilp_time_limit_s / 20.0, 0.2
                ),
            )
        )
        for framework in sweep_frameworks:
            cells.append(
                Cell(
                    programs=programs,
                    network=network,
                    framework=framework,
                    tag=count,
                )
            )
    return cells


def exp5_run(
    program_counts: Sequence[int],
    topology_id: int = EXP5_TOPOLOGY_ID,
    frameworks=None,
    seed: int = 7,
    runner=None,
) -> List[Tuple[int, Any]]:
    from repro.experiments.runner import execute_cells

    cells = exp5_cells(program_counts, topology_id, frameworks, seed)
    return [
        (res.cell.tag, res.record) for res in execute_cells(cells, runner)
    ]


def exp5_render(points: List[Tuple[int, Any]]) -> str:
    tables = [
        _count_pivot(
            points, "overhead_bytes", "Fig. 9(a): per-packet byte overhead (B)"
        ),
        _count_pivot(
            points,
            "reported_time_ms",
            "Fig. 9(b): execution time (ms; 1e7 = exceeded limit)",
        ),
        _count_pivot(points, "fct_ratio", "Fig. 9(c): normalized FCT"),
        _count_pivot(points, "goodput_ratio", "Fig. 9(d): normalized goodput"),
        _count_pivot(
            points,
            "plan_fct_ratio",
            "Fig. 9(c'): plan-aware normalized FCT (routed pairs)",
        ),
        _count_pivot(
            points,
            "plan_goodput_ratio",
            "Fig. 9(d'): plan-aware normalized goodput (routed pairs)",
        ),
    ]
    return "\n\n".join(t.render() for t in tables)


# ----------------------------------------------------------------------
# Exp#6 — pre-refactor exp6_resources pipeline
# ----------------------------------------------------------------------


def exp6_rows(num_sketches: int = 10, frameworks=None):
    """The original Exp#6 run(): ground-truth row + one per framework."""
    from repro.baselines import HermesHeuristic, Speed
    from repro.workloads.sketches import sketch_programs

    programs = tuple(sketch_programs(num_sketches))
    network = linear_topology(3, link_latency_ms=0.001)
    truth = sum(p.total_resource_demand for p in programs)

    rows = [
        (
            "standalone (ground truth)",
            truth,
            sum(len(p) for p in programs),
            0.0,
        )
    ]
    frameworks = frameworks or [Speed(time_limit_s=20.0), HermesHeuristic()]
    for framework in frameworks:
        result = framework.deploy(list(programs), network)
        total = sum(mat.resource_demand for mat in result.tdg.mats)
        rows.append(
            (framework.name, total, len(result.tdg), total - truth)
        )
    return rows


def exp6_render(rows) -> str:
    table = Table(
        "Exp#6: switch resource consumption (normalized stage units)",
        ["strategy", "stage units", "MATs", "extra vs ground truth"],
    )
    for row in rows:
        table.add_row(list(row))
    return table.render()


# ----------------------------------------------------------------------
# Exp#7 — pre-refactor exp7_churn pipeline
# ----------------------------------------------------------------------

EXP7_NUM_EVENTS = 8
EXP7_WORKLOAD_SPEC = "real:10"


def exp7_topology_spec_for(seed: int) -> str:
    return f"wan:16:24:{seed + 1}"


def exp7_make_scenario(
    seed: int,
    num_events: int = EXP7_NUM_EVENTS,
    workload_spec: str = EXP7_WORKLOAD_SPEC,
):
    from repro.cli import parse_topology
    from repro.runtime import generate_scenario

    topology_spec = exp7_topology_spec_for(seed)
    network = parse_topology(topology_spec)
    return generate_scenario(
        network,
        num_events=num_events,
        seed=seed,
        workload_spec=workload_spec,
        topology_spec=topology_spec,
        name=f"exp7-seed{seed}",
    )


def exp7_replay(doc: Dict[str, Any]) -> Dict[str, Any]:
    from repro.cli import parse_topology, parse_workload
    from repro.runtime import Reconciler, Scenario, seed_rules
    from repro.telemetry import Recorder, attached

    scenario = Scenario.from_dict(doc)
    programs = parse_workload(scenario.workload_spec)
    network = parse_topology(scenario.topology_spec)
    recorder = Recorder()
    with attached(recorder):
        result = Reconciler(
            programs, network, prepare_fn=seed_rules
        ).run(scenario)
    return {
        "report": result.report().to_dict(),
        "events": recorder.events,
    }


def exp7_run(
    seeds: Sequence[int],
    num_events: int = EXP7_NUM_EVENTS,
    workload_spec: str = EXP7_WORKLOAD_SPEC,
):
    """(seed, topology_spec, report, workload_spec) points, serially."""
    scenarios = [
        exp7_make_scenario(seed, num_events, workload_spec)
        for seed in seeds
    ]
    outputs = [exp7_replay(s.to_dict()) for s in scenarios]
    return [
        (
            scenario.seed,
            scenario.topology_spec,
            DisruptionReport.from_dict(output["report"]),
            scenario.workload_spec,
        )
        for scenario, output in zip(scenarios, outputs)
    ]


def exp7_render(points) -> str:
    events = points[0][2].num_events if points else EXP7_NUM_EVENTS
    workload = points[0][3] if points else EXP7_WORKLOAD_SPEC
    out = Table(
        title="Exp#7: disruption under churn "
        f"({workload} workload, {events} events/scenario)",
        headers=[
            "seed", "topology", "batches", "conv", "forced", "opt",
            "rules", "degraded", "improved", "peak transient (B)",
            "mean conv (ms)", "digest",
        ],
    )
    for seed, topology_spec, r, _workload in points:
        out.add_row(
            [
                seed,
                topology_spec,
                r.num_batches,
                r.num_converged,
                r.forced_moves,
                r.optimization_moves,
                r.rules_replayed,
                r.degraded_batches,
                r.improved_batches,
                r.peak_transient_amax_bytes,
                f"{r.mean_convergence_s * 1e3:.1f}",
                r.history_digest[:12],
            ]
        )
    return out.render()


# ----------------------------------------------------------------------
# Fig. 2 — pre-refactor fig2_motivation pipeline
# ----------------------------------------------------------------------

FIG2_OVERHEAD_SWEEP = (28, 48, 68, 88, 108)
FIG2_PACKET_SIZES = (512, 1024, 1500)


def fig2_rows(
    overheads: Sequence[int] = FIG2_OVERHEAD_SWEEP,
    packet_sizes: Sequence[int] = FIG2_PACKET_SIZES,
    message_bytes: int = 1_000_000,
    hops: int = 5,
    use_des: bool = False,
):
    """(packet_size, overhead, fct_ratio, goodput_ratio) rows."""
    from repro.simulation.engine import get_engine
    from repro.simulation.packet import BASE_HEADER_BYTES
    from repro.simulation.spec import SimulationSpec

    rows = []
    for packet_size in packet_sizes:
        payload = max(packet_size - BASE_HEADER_BYTES, 1)
        spec = SimulationSpec.uniform_sweep(
            tuple(overheads),
            packet_payload_bytes=payload,
            hops=hops,
            message_bytes=message_bytes,
        )
        result = get_engine(
            "exact" if use_des else "analytic"
        ).evaluate(spec)
        rows.extend(
            (
                packet_size,
                overhead,
                result.fct_ratios[i],
                result.goodput_ratios[i],
            )
            for i, overhead in enumerate(overheads)
        )
    return rows


def fig2_render(
    rows,
    overheads: Sequence[int] = FIG2_OVERHEAD_SWEEP,
    packet_sizes: Sequence[int] = FIG2_PACKET_SIZES,
) -> str:
    fct = Table(
        "Fig. 2(a): normalized FCT vs per-packet overhead",
        ["overhead(B)"] + [f"{s}B pkts" for s in packet_sizes],
    )
    goodput = Table(
        "Fig. 2(b): normalized goodput vs per-packet overhead",
        ["overhead(B)"] + [f"{s}B pkts" for s in packet_sizes],
    )
    for overhead in overheads:
        per_size = sorted(
            (r for r in rows if r[1] == overhead), key=lambda r: r[0]
        )
        fct.add_row([overhead] + [r[2] for r in per_size])
        goodput.add_row([overhead] + [r[3] for r in per_size])
    return fct.render() + "\n\n" + goodput.render()
