"""Tests for the stage-granular P#1 oracle."""

import pytest

from repro.core.analyzer import ProgramAnalyzer
from repro.core.deployment import DeploymentError
from repro.core.formulation import HermesMilp
from repro.core.formulation_stagewise import StagewiseMilp
from repro.core.heuristic import GreedyHeuristic
from repro.core.verification import verify_dataflow
from repro.dataplane.actions import no_op
from repro.dataplane.mat import Mat
from repro.dataplane.program import Program
from repro.network.generators import linear_topology
from tests.conftest import make_sketch_program


@pytest.fixture
def small_tdg():
    programs = [
        make_sketch_program("a", index_bytes=2),
        make_sketch_program("b", index_bytes=6),
    ]
    return ProgramAnalyzer().analyze(programs)


@pytest.fixture
def tiny_net():
    return linear_topology(2, num_stages=4, stage_capacity=1.0)


class TestStagewiseMilp:
    def test_produces_valid_plan(self, small_tdg, tiny_net):
        plan = StagewiseMilp(time_limit_s=60).deploy(small_tdg, tiny_net)
        plan.validate()
        verify_dataflow(plan)
        assert len(plan.placements) == len(small_tdg)

    def test_each_mat_on_exactly_one_stage(self, small_tdg, tiny_net):
        plan = StagewiseMilp(time_limit_s=60).deploy(small_tdg, tiny_net)
        for placement in plan.placements.values():
            assert len(placement.stages) == 1

    def test_matches_switch_level_optimum(self, small_tdg, tiny_net):
        """The oracle certifies the two-level pipeline's objective."""
        stagewise = StagewiseMilp(time_limit_s=120).deploy(
            small_tdg, tiny_net
        )
        two_level = HermesMilp(time_limit_s=120, max_candidates=2).deploy(
            small_tdg, tiny_net
        )
        assert (
            stagewise.max_metadata_bytes()
            == two_level.max_metadata_bytes()
        )

    def test_no_worse_than_heuristic(self, small_tdg, tiny_net):
        stagewise = StagewiseMilp(time_limit_s=120).deploy(
            small_tdg, tiny_net
        )
        greedy = GreedyHeuristic().deploy(small_tdg, tiny_net)
        assert (
            stagewise.max_metadata_bytes() <= greedy.max_metadata_bytes()
        )

    def test_epsilon2_respected(self, small_tdg, tiny_net):
        plan = StagewiseMilp(epsilon2=1, time_limit_s=60).deploy(
            small_tdg, tiny_net
        )
        assert plan.num_occupied_switches() == 1

    def test_rejects_stage_spanning_mats(self, tiny_net):
        big = Mat("big", actions=[no_op()], resource_demand=1.5)
        tdg = ProgramAnalyzer().analyze([Program("p", [big])])
        with pytest.raises(DeploymentError, match="stage spanning"):
            StagewiseMilp().deploy(tdg, tiny_net)

    def test_ordering_constraint_enforced(self, tiny_net):
        # A 4-deep chain on 4-stage switches: stages must strictly
        # increase along the chain wherever MATs share a switch.
        program = make_sketch_program("c")
        tdg = ProgramAnalyzer().analyze([program])
        plan = StagewiseMilp(time_limit_s=60).deploy(tdg, tiny_net)
        for edge in tdg.edges:
            up = plan.placements[edge.upstream]
            down = plan.placements[edge.downstream]
            if up.switch == down.switch:
                assert up.last_stage < down.first_stage
