"""Tests for DisruptionReport traffic-impact attachment and round trip."""

import pytest

from repro.core import Hermes
from repro.network.generators import random_wan
from repro.runtime import (
    EventKind,
    NetworkEvent,
    Reconciler,
    Scenario,
)
from repro.runtime.report import REPORT_SCHEMA, DisruptionReport
from repro.simulation.engine import overhead_impact
from tests.conftest import make_sketch_program


@pytest.fixture(scope="module")
def network():
    return random_wan(12, 18, seed=4, num_stages=4)


@pytest.fixture(scope="module")
def programs():
    return [
        make_sketch_program(f"p{i}", index_bytes=2 + i) for i in range(6)
    ]


@pytest.fixture(scope="module")
def report(programs, network):
    plan = Hermes().deploy(programs, network).plan
    scenario = Scenario(
        name="unit",
        seed=0,
        workload_spec="sketches:6",
        topology_spec="wan:12:18:4",
        events=(
            NetworkEvent(
                1.0, EventKind.SWITCH_FAIL, plan.occupied_switches()[0]
            ),
        ),
    )
    result = Reconciler(programs, network).run(scenario)
    return DisruptionReport.from_result(result)


class TestAttachTraffic:
    def test_attach_populates_summary_fields(self, report):
        assert not report.has_traffic
        returned = report.attach_traffic(engine="analytic")
        assert returned is report
        assert report.has_traffic
        assert report.traffic_engine == "analytic"
        assert report.initial_fct_ratio == (
            overhead_impact(report.initial_amax_bytes)[0]
        )
        assert report.final_fct_ratio == (
            overhead_impact(report.final_amax_bytes)[0]
        )
        assert report.peak_transient_fct_ratio >= max(
            report.initial_fct_ratio, 1.0
        ) - 1e-12

    def test_converged_rows_gain_fct_columns(self, report):
        report.attach_traffic()
        for row in report.rows:
            if row["converged"]:
                assert row["fct_ratio"] == (
                    overhead_impact(row["new_amax_bytes"])[0]
                )
                assert row["transient_fct_ratio"] >= row["fct_ratio"] - 1e-12

    def test_render_shows_traffic_columns(self, report):
        report.attach_traffic()
        text = report.render()
        assert "Traffic impact (analytic engine)" in text
        assert "FCT x" in text
        assert "transient FCT x" in text

    def test_render_without_traffic_omits_columns(self, programs, network):
        result = Reconciler(programs, network).run(
            Scenario(
                name="empty",
                seed=0,
                workload_spec="sketches:6",
                topology_spec="wan:12:18:4",
                events=(),
            )
        )
        fresh = DisruptionReport.from_result(result)
        text = fresh.render()
        assert "Traffic impact" not in text
        assert "transient FCT x" not in text

    def test_batch_engine_matches_analytic(self, report):
        analytic = report.attach_traffic(engine="analytic")
        a = (
            analytic.initial_fct_ratio,
            analytic.final_fct_ratio,
            analytic.peak_transient_fct_ratio,
        )
        batch = report.attach_traffic(engine="batch")
        assert batch.traffic_engine == "batch"
        b = (
            batch.initial_fct_ratio,
            batch.final_fct_ratio,
            batch.peak_transient_fct_ratio,
        )
        assert b == pytest.approx(a, rel=1e-6)


class TestRoundTrip:
    def test_to_from_dict_preserves_traffic(self, report):
        report.attach_traffic()
        doc = report.to_dict()
        assert doc["schema"] == REPORT_SCHEMA
        loaded = DisruptionReport.from_dict(doc)
        assert loaded.has_traffic
        assert loaded.traffic_engine == report.traffic_engine
        assert loaded.initial_fct_ratio == report.initial_fct_ratio
        assert loaded.final_fct_ratio == report.final_fct_ratio
        assert (
            loaded.peak_transient_fct_ratio
            == report.peak_transient_fct_ratio
        )
        assert loaded.rows == report.rows

    def test_pre_traffic_documents_still_load(self, report):
        """Reports saved before the traffic columns existed (same v1
        schema, missing keys) must load with neutral defaults."""
        doc = report.to_dict()
        for key in (
            "traffic_engine",
            "initial_fct_ratio",
            "final_fct_ratio",
            "peak_transient_fct_ratio",
        ):
            doc.pop(key)
        loaded = DisruptionReport.from_dict(doc)
        assert not loaded.has_traffic
        assert loaded.initial_fct_ratio == 1.0
        assert loaded.peak_transient_fct_ratio == 1.0
