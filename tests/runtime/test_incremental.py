"""Tests for the warm incremental rung of the reconciler ladder."""

import pytest

from repro.core import Hermes
from repro.network.generators import random_wan
from repro.network.topology import Network
from repro.runtime import (
    EventKind,
    IncrementalEscalation,
    IncrementalReplanner,
    NetworkEvent,
    Reconciler,
    ReconcilerPolicy,
    Scenario,
    find_orphans,
    generate_scenario,
)
from repro.telemetry import Recorder, attached
from tests.conftest import make_sketch_program


@pytest.fixture(scope="module")
def network():
    return random_wan(12, 18, seed=4, num_stages=4)


@pytest.fixture(scope="module")
def programs():
    return [
        make_sketch_program(f"p{i}", index_bytes=2 + i) for i in range(6)
    ]


def scenario_of(*events):
    return Scenario(
        name="unit",
        seed=0,
        workload_spec="sketches:6",
        topology_spec="wan:12:18:4",
        events=tuple(events),
    )


def drop_switch(network, victim):
    out = Network(network.name)
    for switch in network.switches:
        if switch.name != victim:
            out.add_switch(switch)
    for link in network.links:
        if victim not in link.key:
            out.add_link(link)
    return out


WARM = ReconcilerPolicy(incremental=True)


class TestIncrementalReplanner:
    def test_rebase_mode_when_no_orphans(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        occupied = set(plan.occupied_switches())
        victim = next(
            s.name for s in network.switches if s.name not in occupied
        )
        shrunk = drop_switch(network, victim)
        assert find_orphans(plan, shrunk) == []
        repaired, mode = IncrementalReplanner().replan(
            programs, shrunk, plan
        )
        assert mode == "rebase"
        assert repaired.placements == plan.placements
        assert (
            repaired.max_metadata_bytes() == plan.max_metadata_bytes()
        )

    def test_delta_mode_when_a_host_dies(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        victim = plan.occupied_switches()[0]
        shrunk = drop_switch(network, victim)
        orphans = find_orphans(plan, shrunk)
        assert orphans
        replanner = IncrementalReplanner(max_blast_fraction=1.0)
        repaired, mode = replanner.replan(programs, shrunk, plan)
        assert mode == "delta"
        repaired.validate()
        assert victim not in repaired.occupied_switches()
        for name, placement in plan.placements.items():
            if name not in set(orphans):
                assert repaired.placements[name] == placement

    def test_workload_change_escalates(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        with pytest.raises(IncrementalEscalation) as exc:
            IncrementalReplanner().replan(programs[:-1], network, plan)
        assert exc.value.reason == "workload_changed"

    def test_blast_fraction_escalates(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        victim = plan.occupied_switches()[0]
        shrunk = drop_switch(network, victim)
        with pytest.raises(IncrementalEscalation) as exc:
            IncrementalReplanner(max_blast_fraction=0.0).replan(
                programs, shrunk, plan
            )
        assert exc.value.reason == "blast_fraction"

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            IncrementalReplanner(max_blast_fraction=1.5)
        with pytest.raises(ValueError):
            ReconcilerPolicy(max_blast_fraction=-0.1)


class TestWarmLadder:
    def test_incremental_rung_recorded(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        occupied = set(plan.occupied_switches())
        spare = next(
            s.name for s in network.switches if s.name not in occupied
        )
        scenario = scenario_of(
            NetworkEvent(1.0, EventKind.SWITCH_FAIL, spare)
        )
        recorder = Recorder()
        with attached(recorder):
            result = Reconciler(
                programs, network, policy=WARM
            ).run(scenario)
        (outcome,) = result.outcomes
        assert outcome.converged
        assert outcome.rung == "incremental"
        assert outcome.attempts == 1
        assert result.store.latest.reason == "incremental"
        assert recorder.count("runtime.replan.incremental") == 1
        doc = outcome.to_dict()
        assert doc["rung"] == "incremental"
        assert doc["backoff_s"] == 0.0

    def test_workload_event_escalates_to_full(self, programs, network):
        scenario = scenario_of(
            NetworkEvent(1.0, EventKind.WORKLOAD_ADD, "churn0", 42.0)
        )
        recorder = Recorder()
        with attached(recorder):
            result = Reconciler(
                programs, network, policy=WARM
            ).run(scenario)
        (outcome,) = result.outcomes
        assert outcome.converged
        assert outcome.rung == "full"
        assert result.store.latest.reason == "replan"
        escalations = recorder.of_kind("runtime.replan.escalate")
        assert [e["reason"] for e in escalations] == [
            "workload_changed"
        ]

    def test_default_policy_never_runs_incremental(
        self, programs, network
    ):
        plan = Hermes().deploy(programs, network).plan
        scenario = scenario_of(
            NetworkEvent(
                1.0, EventKind.SWITCH_FAIL, plan.occupied_switches()[0]
            )
        )
        recorder = Recorder()
        with attached(recorder):
            result = Reconciler(programs, network).run(scenario)
        assert all(o.rung == "full" for o in result.outcomes)
        assert recorder.count("runtime.replan.incremental") == 0

    def test_warm_history_replays_deterministically(
        self, programs, network
    ):
        scenario = generate_scenario(network, num_events=10, seed=11)
        a = Reconciler(programs, network, policy=WARM).run(scenario)
        b = Reconciler(programs, network, policy=WARM).run(scenario)
        assert a.store.history_digest() == b.store.history_digest()
        assert [o.rung for o in a.outcomes] == [
            o.rung for o in b.outcomes
        ]

    def test_report_counts_rungs(self, programs, network):
        scenario = generate_scenario(network, num_events=10, seed=11)
        result = Reconciler(programs, network, policy=WARM).run(scenario)
        report = result.report()
        converged = [o for o in result.outcomes if o.converged]
        assert report.incremental_batches == sum(
            1 for o in converged if o.rung == "incremental"
        )
        assert (
            report.incremental_batches
            + report.full_batches
            + report.patch_batches
            == report.num_converged
        )
        rendered = report.render()
        assert "Rungs:" in rendered
        assert "incremental" in rendered
        doc = report.to_dict()
        assert doc["incremental_batches"] == report.incremental_batches
        from repro.runtime.report import DisruptionReport

        assert (
            DisruptionReport.from_dict(doc).incremental_batches
            == report.incremental_batches
        )


class TestDeployFnArity:
    def test_legacy_two_arg_deploy_fn_still_works(
        self, programs, network
    ):
        hermes = Hermes()
        calls = {"n": 0}

        def legacy(progs, net):
            calls["n"] += 1
            return hermes.deploy(progs, net).plan

        scenario = scenario_of(
            NetworkEvent(1.0, EventKind.WORKLOAD_ADD, "churn0", 42.0)
        )
        result = Reconciler(
            programs, network, deploy_fn=legacy
        ).run(scenario)
        assert result.outcomes[0].converged
        assert calls["n"] == 2  # initial + one replan

    def test_three_arg_deploy_fn_receives_old_plan(
        self, programs, network
    ):
        hermes = Hermes()
        seen = []

        def warm_aware(progs, net, old_plan):
            seen.append(old_plan)
            return hermes.deploy(progs, net).plan

        scenario = scenario_of(
            NetworkEvent(1.0, EventKind.WORKLOAD_ADD, "churn0", 42.0)
        )
        Reconciler(
            programs, network, deploy_fn=warm_aware
        ).run(scenario)
        assert seen[0] is None
        assert seen[1] is not None
        assert seen[1].placements
