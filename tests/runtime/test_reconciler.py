"""Unit tests for the reconciler loop and its policies.

The timeout, retry and debounce policies each get a dedicated test, as
does byte-identical replay determinism — the subsystem's core
contracts.
"""

import time

import pytest

from repro.core import Hermes
from repro.network.generators import random_wan
from repro.plan.artifact import DeploymentError
from repro.runtime import (
    EventKind,
    NetworkEvent,
    Reconciler,
    ReconcilerPolicy,
    Scenario,
    generate_scenario,
    seed_rules,
)
from repro.telemetry import Recorder, attached
from tests.conftest import make_sketch_program


@pytest.fixture(scope="module")
def network():
    return random_wan(12, 18, seed=4, num_stages=4)


@pytest.fixture(scope="module")
def programs():
    return [
        make_sketch_program(f"p{i}", index_bytes=2 + i) for i in range(6)
    ]


def scenario_of(*events):
    return Scenario(
        name="unit",
        seed=0,
        workload_spec="sketches:6",
        topology_spec="wan:12:18:4",
        events=tuple(events),
    )


def fail_first_host(plan):
    return NetworkEvent(
        1.0, EventKind.SWITCH_FAIL, plan.occupied_switches()[0]
    )


class TestReconcilerBasics:
    def test_failure_forces_moves_and_rebinds(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        scenario = scenario_of(fail_first_host(plan))
        result = Reconciler(programs, network).run(scenario)
        (outcome,) = result.outcomes
        assert outcome.converged
        assert outcome.forced_moves > 0
        assert len(result.store) == 2
        assert outcome.fingerprint_after == result.store.latest.fingerprint
        # The controller follows the new plan.
        victim = scenario.events[0].target
        assert victim not in result.final_plan.occupied_switches()
        for name in result.final_plan.placements:
            switch, _ = result.controller.resolve(name)
            assert switch == result.final_plan.switch_of(name)

    def test_rules_replayed_with_prepare_hook(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        scenario = scenario_of(fail_first_host(plan))
        result = Reconciler(
            programs, network, prepare_fn=seed_rules
        ).run(scenario)
        (outcome,) = result.outcomes
        assert outcome.rules_replayed > 0

    def test_transient_window_bounds(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        scenario = scenario_of(fail_first_host(plan))
        result = Reconciler(programs, network).run(scenario)
        (outcome,) = result.outcomes
        assert outcome.transient_amax_bytes >= outcome.old_amax_bytes
        assert outcome.transient_amax_bytes >= outcome.new_amax_bytes

    def test_empty_scenario(self, programs, network):
        result = Reconciler(programs, network).run(scenario_of())
        assert len(result.store) == 1
        assert result.outcomes == []

    def test_telemetry_stream(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        scenario = scenario_of(fail_first_host(plan))
        recorder = Recorder()
        with attached(recorder):
            Reconciler(programs, network).run(scenario)
        assert recorder.count("runtime.scenario.start") == 1
        assert recorder.count("runtime.event") == 1
        assert recorder.count("runtime.replan.start") == 1
        assert recorder.count("runtime.rebind") == 1
        assert recorder.count("runtime.converged") == 1
        assert recorder.count("runtime.scenario.done") == 1


class TestDeterminism:
    def test_byte_identical_replay(self, programs, network):
        """Same scenario, two runs: identical fingerprints and diffs."""
        scenario = generate_scenario(network, num_events=8, seed=11)
        a = Reconciler(programs, network).run(scenario)
        b = Reconciler(programs, network).run(scenario)
        assert a.store.fingerprints() == b.store.fingerprints()
        assert [d.to_dict() for d in a.store.diffs()] == [
            d.to_dict() for d in b.store.diffs()
        ]
        assert a.store.history_digest() == b.store.history_digest()


class TestRetryPolicy:
    def test_bounded_retry_recovers(self, programs, network):
        hermes = Hermes()
        calls = {"n": 0}

        def flaky_deploy(progs, net):
            calls["n"] += 1
            if 2 <= calls["n"] <= 3:  # initial deploy succeeds
                raise DeploymentError("transient backend failure")
            return hermes.deploy(progs, net).plan

        plan = hermes.deploy(programs, network).plan
        scenario = scenario_of(fail_first_host(plan))
        policy = ReconcilerPolicy(max_retries=2, retry_backoff_s=0.25)
        result = Reconciler(
            programs, network, policy=policy, deploy_fn=flaky_deploy
        ).run(scenario)
        (outcome,) = result.outcomes
        assert outcome.converged
        assert outcome.attempts == 3
        # Virtual backoff: 0.25 * 2**0 + 0.25 * 2**1 on two failures.
        assert outcome.convergence_time_s >= 0.75

    def test_retries_exhausted_keeps_old_plan(self, programs, network):
        hermes = Hermes()
        state = {"deployed": False}

        def dying_deploy(progs, net):
            if state["deployed"]:
                raise DeploymentError("backend gone")
            state["deployed"] = True
            return hermes.deploy(progs, net).plan

        plan = hermes.deploy(programs, network).plan
        scenario = scenario_of(fail_first_host(plan))
        policy = ReconcilerPolicy(max_retries=1)
        recorder = Recorder()
        with attached(recorder):
            result = Reconciler(
                programs, network, policy=policy, deploy_fn=dying_deploy
            ).run(scenario)
        (outcome,) = result.outcomes
        assert not outcome.converged
        assert outcome.attempts == 2
        assert "backend gone" in outcome.error
        # The old plan stays active and the store gains no version.
        assert len(result.store) == 1
        assert outcome.fingerprint_after == outcome.fingerprint_before
        assert recorder.count("runtime.replan.retry") == 2
        assert recorder.count("runtime.replan.failed") == 1


class TestTimeoutPolicy:
    def test_budget_overrun_falls_back_to_patch(self, programs, network):
        hermes = Hermes()

        def slow_deploy(progs, net):
            time.sleep(0.02)
            return hermes.deploy(progs, net).plan

        plan = hermes.deploy(programs, network).plan
        scenario = scenario_of(fail_first_host(plan))
        policy = ReconcilerPolicy(replan_budget_s=0.0)
        recorder = Recorder()
        with attached(recorder):
            result = Reconciler(
                programs, network, policy=policy, deploy_fn=slow_deploy
            ).run(scenario)
        (outcome,) = result.outcomes
        assert outcome.converged
        assert outcome.used_patch
        assert recorder.count("runtime.replan.fallback") == 1
        assert result.store.latest.reason == "patch"
        # The patch is a valid plan with the victim evacuated.
        result.final_plan.validate()
        victim = scenario.events[0].target
        assert victim not in result.final_plan.occupied_switches()
        # Patch keeps every surviving placement in place: no
        # optimization moves, only forced ones.
        assert outcome.forced_moves > 0
        assert outcome.optimization_moves == 0

    def test_patch_failure_keeps_over_budget_plan(
        self, programs, network, monkeypatch
    ):
        """When no local repair exists, the slow full plan still wins."""
        hermes = Hermes()

        def slow_deploy(progs, net):
            time.sleep(0.02)
            return hermes.deploy(progs, net).plan

        def no_patch(old_plan, network, paths=None):
            raise DeploymentError("no feasible local repair")

        monkeypatch.setattr(
            "repro.runtime.reconciler.cheapest_patch", no_patch
        )
        plan = hermes.deploy(programs, network).plan
        scenario = scenario_of(fail_first_host(plan))
        policy = ReconcilerPolicy(replan_budget_s=0.0)
        recorder = Recorder()
        with attached(recorder):
            result = Reconciler(
                programs, network, policy=policy, deploy_fn=slow_deploy
            ).run(scenario)
        (outcome,) = result.outcomes
        assert outcome.converged
        assert not outcome.used_patch
        assert outcome.rung == "full"
        assert recorder.count("runtime.replan.fallback") == 1
        assert recorder.count("runtime.replan.patch_failed") == 1
        assert result.store.latest.reason == "replan"
        result.final_plan.validate()
        victim = scenario.events[0].target
        assert victim not in result.final_plan.occupied_switches()

    def test_no_budget_never_patches(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        scenario = scenario_of(fail_first_host(plan))
        result = Reconciler(programs, network).run(scenario)
        assert not any(o.used_patch for o in result.outcomes)
        assert all(
            v.reason in ("initial", "replan")
            for v in result.store.versions
        )

    def test_workload_change_skips_patch(self, programs, network):
        """The patch fallback only applies when the TDG is unchanged."""
        plan = Hermes().deploy(programs, network).plan
        events = (
            NetworkEvent(
                1.0, EventKind.WORKLOAD_ADD, "churn0", 42.0
            ),
        )
        scenario = scenario_of(*events)
        policy = ReconcilerPolicy(replan_budget_s=0.0)
        result = Reconciler(
            programs, network, policy=policy
        ).run(scenario)
        (outcome,) = result.outcomes
        assert outcome.converged
        assert not outcome.used_patch
        assert "churn0" in {
            name.split(".")[0]
            for name in result.final_plan.placements
        }


class TestDebouncePolicy:
    def test_burst_triggers_single_replan(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        occupied = plan.occupied_switches()
        events = (
            NetworkEvent(1.00, EventKind.SWITCH_FAIL, occupied[0]),
            NetworkEvent(1.01, EventKind.SWITCH_FAIL, occupied[1]),
            NetworkEvent(3.00, EventKind.LINK_LATENCY,
                         f"{occupied[0]}|{occupied[1]}"),
        )
        # The link event targets failed switches; replace with a live
        # link from the network to keep the scenario valid.
        link = next(
            l for l in network.links
            if l.u not in occupied[:2] and l.v not in occupied[:2]
        )
        events = events[:2] + (
            NetworkEvent(
                3.00, EventKind.LINK_LATENCY, f"{link.u}|{link.v}", 9.0
            ),
        )
        scenario = scenario_of(*events)
        policy = ReconcilerPolicy(debounce_s=0.5)
        recorder = Recorder()
        with attached(recorder):
            result = Reconciler(
                programs, network, policy=policy
            ).run(scenario)
        # Two batches: the 10 ms burst coalesced, the link event alone.
        assert len(result.outcomes) == 2
        assert recorder.count("runtime.replan.start") == 2
        assert len(result.outcomes[0].events) == 2
        # Both burst failures are reflected in the single replan.
        final = result.outcomes[0]
        assert final.converged
        survivors = result.store.versions[1].plan.occupied_switches()
        assert occupied[0] not in survivors
        assert occupied[1] not in survivors

    def test_zero_debounce_replans_every_event(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        occupied = plan.occupied_switches()
        events = (
            NetworkEvent(1.00, EventKind.SWITCH_FAIL, occupied[0]),
            NetworkEvent(1.01, EventKind.SWITCH_FAIL, occupied[1]),
        )
        result = Reconciler(programs, network).run(scenario_of(*events))
        assert len(result.outcomes) == 2


class TestPolicyValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ReconcilerPolicy(replan_budget_s=-1.0)
        with pytest.raises(ValueError):
            ReconcilerPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ReconcilerPolicy(retry_backoff_s=-0.1)
        with pytest.raises(ValueError):
            ReconcilerPolicy(debounce_s=-0.5)
