"""The server/CLI byte differential.

The contract (:func:`repro.server.ops.deterministic_view`): for equal
params, the deterministic portion of every op's result document is
byte-identical whether it was produced by

* a one-shot in-process op call (what the CLI runs without
  ``--connect``),
* a cold server session,
* a warm server session (repeat deploy through the incremental
  rebase), or
* a recovered server session after a daemon restart.

Each test canonicalizes with the plan-artifact ``canonical_dumps`` and
compares raw bytes — no approx, no field cherry-picking.
"""

from repro.plan.serialize import canonical_dumps
from repro.server.client import ReproClient
from repro.server.ops import (
    churn_op,
    deploy_op,
    deterministic_view,
    plan_diff_op,
    simulate_op,
)

DEPLOY = {"workload": "real:6", "topology": "wan:12:18", "seed": 3}
SIMULATE = {
    "workload": "real:6",
    "topology": "linear:3",
    "flows": 200,
    "engine": "batch",
}
CHURN = {"workload": "real:6", "topology": "wan:12:18", "seed": 2, "events": 3}


def view_bytes(op, doc):
    return canonical_dumps(deterministic_view(op, doc)).encode()


class TestDeployDifferential:
    def test_cold_warm_and_oneshot_agree(self, server):
        local = view_bytes("deploy", deploy_op(DEPLOY))
        with ReproClient.connect(server.address) as client:
            cold = client.request("deploy", DEPLOY)
            warm = client.request("deploy", DEPLOY)
        assert cold["session"]["source"] == "cold"
        assert warm["session"]["source"] == "warm:rebase"
        assert view_bytes("deploy", cold) == local
        assert view_bytes("deploy", warm) == local

    def test_decorated_deploy_agrees(self, server):
        params = {**DEPLOY, "verify": True, "configs": True}
        local = view_bytes("deploy", deploy_op(params))
        with ReproClient.connect(server.address) as client:
            client.request("deploy", DEPLOY)  # prime the warm path
            warm = client.request("deploy", params)
        # verify/configs do not affect the solve, so the second deploy
        # stays warm yet still byte-matches the decorated one-shot.
        assert warm["session"]["source"] == "warm:rebase"
        assert view_bytes("deploy", warm) == local

    def test_recovered_session_agrees(self, server_factory, tmp_path):
        local = view_bytes("deploy", deploy_op(DEPLOY))
        state = str(tmp_path / "state")
        first = server_factory(state_dir=state)
        with ReproClient.connect(first.address) as client:
            client.request("deploy", DEPLOY)
        first.stop_threadsafe()
        second = server_factory(state_dir=state)
        with ReproClient.connect(second.address) as client:
            recovered = client.request("deploy", DEPLOY)
        assert recovered["session"]["source"] == "warm:rebase"
        assert view_bytes("deploy", recovered) == local


class TestSimulateDifferential:
    def test_server_and_oneshot_agree(self, server):
        local = view_bytes("simulate", simulate_op(SIMULATE))
        with ReproClient.connect(server.address) as client:
            remote = client.request("simulate", SIMULATE)
        assert view_bytes("simulate", remote) == local

    def test_scalar_overhead_mode_agrees(self, server):
        params = {"overhead": 48, "flows": 100}
        local = view_bytes("simulate", simulate_op(params))
        with ReproClient.connect(server.address) as client:
            remote = client.request("simulate", params)
        assert view_bytes("simulate", remote) == local


class TestChurnDifferential:
    def test_generated_scenario_agrees(self, server):
        local = view_bytes("churn_run", churn_op(CHURN))
        with ReproClient.connect(server.address) as client:
            remote = client.request("churn_run", CHURN)
        assert view_bytes("churn_run", remote) == local

    def test_replay_agrees_with_generation(self, server):
        generated = churn_op(CHURN)
        with ReproClient.connect(server.address) as client:
            replayed = client.request(
                "churn_run",
                {"scenario": generated["scenario"], "seed": CHURN["seed"]},
            )
        assert view_bytes("churn_run", replayed) == view_bytes(
            "churn_run", generated
        )


class TestPlanDiffDifferential:
    def test_server_and_oneshot_agree(self, server):
        old = deploy_op(DEPLOY)["plan"]
        new = deploy_op({**DEPLOY, "workload": "real:7"})["plan"]
        params = {"old": old, "new": new}
        local = view_bytes("plan_diff", plan_diff_op(params))
        with ReproClient.connect(server.address) as client:
            remote = client.request("plan_diff", params)
        assert view_bytes("plan_diff", remote) == local
