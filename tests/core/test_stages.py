"""Unit tests for intra-switch stage assignment."""

import pytest

from repro.core.stages import (
    StageAssignmentError,
    assign_stages,
    earliest_window,
    segment_fits,
)
from repro.dataplane.actions import no_op
from repro.dataplane.mat import Mat
from repro.network.switch import Switch
from repro.tdg.dependencies import DependencyType
from repro.tdg.graph import Tdg


def chain_tdg(demands, bytes_per_edge=4):
    tdg = Tdg("seg")
    names = [f"m{i}" for i in range(len(demands))]
    for name, demand in zip(names, demands):
        tdg.add_node(Mat(name, actions=[no_op()], resource_demand=demand))
    for up, down in zip(names, names[1:]):
        tdg.add_edge(up, down, DependencyType.MATCH, bytes_per_edge)
    return tdg


def parallel_tdg(demands):
    tdg = Tdg("par")
    for i, demand in enumerate(demands):
        tdg.add_node(Mat(f"m{i}", actions=[no_op()], resource_demand=demand))
    return tdg


class TestAssignStages:
    def test_chain_occupies_consecutive_stages(self):
        tdg = chain_tdg([0.5, 0.5, 0.5])
        placements = assign_stages(tdg, Switch("s", num_stages=4))
        assert placements["m0"].last_stage < placements["m1"].first_stage
        assert placements["m1"].last_stage < placements["m2"].first_stage

    def test_independent_mats_share_a_stage(self):
        tdg = parallel_tdg([0.4, 0.4])
        placements = assign_stages(tdg, Switch("s", num_stages=4))
        assert placements["m0"].stages == placements["m1"].stages == (1,)

    def test_capacity_forces_next_stage(self):
        tdg = parallel_tdg([0.7, 0.7])
        placements = assign_stages(tdg, Switch("s", num_stages=4))
        stages = sorted(p.first_stage for p in placements.values())
        assert stages == [1, 2]

    def test_large_mat_spans_stages(self):
        tdg = parallel_tdg([1.8])
        placements = assign_stages(tdg, Switch("s", num_stages=4))
        assert len(placements["m0"].stages) >= 2

    def test_chain_deeper_than_pipeline_fails(self):
        tdg = chain_tdg([0.1] * 5)
        with pytest.raises(StageAssignmentError, match="stage"):
            assign_stages(tdg, Switch("s", num_stages=4))

    def test_demand_exceeding_switch_fails(self):
        tdg = parallel_tdg([5.0])
        with pytest.raises(StageAssignmentError):
            assign_stages(tdg, Switch("s", num_stages=4))

    def test_non_programmable_rejected(self):
        tdg = parallel_tdg([0.1])
        with pytest.raises(StageAssignmentError, match="programmable"):
            assign_stages(tdg, Switch("s", programmable=False))

    def test_bad_explicit_order_rejected(self):
        tdg = chain_tdg([0.2, 0.2])
        with pytest.raises(StageAssignmentError, match="order"):
            assign_stages(tdg, Switch("s"), order=["m1", "m0"])

    def test_respects_explicit_order(self):
        tdg = parallel_tdg([0.9, 0.9])
        placements = assign_stages(
            tdg, Switch("s", num_stages=4), order=["m1", "m0"]
        )
        assert placements["m1"].first_stage <= placements["m0"].first_stage

    def test_placements_respect_capacity(self):
        tdg = parallel_tdg([0.3] * 10)
        switch = Switch("s", num_stages=4)
        placements = assign_stages(tdg, switch)
        load = {}
        for p in placements.values():
            mat = tdg.node(p.mat_name)
            share = mat.resource_demand / len(p.stages)
            for stage in p.stages:
                load[stage] = load.get(stage, 0.0) + share
        assert all(v <= switch.stage_capacity + 1e-9 for v in load.values())


class TestEarliestWindow:
    """The shared window-picking rule (intra-switch layout and the
    virtual-pipeline chain scheduler must agree on it)."""

    def test_fits_single_free_stage(self):
        assert earliest_window([1.0, 1.0], 0.5, 1, 2) == (1, 1)

    def test_skips_full_stages(self):
        assert earliest_window([0.0, 1.0], 0.5, 1, 2) == (2, 2)

    def test_respects_earliest_bound(self):
        assert earliest_window([1.0, 1.0, 1.0], 0.5, 2, 3) == (2, 2)

    def test_spans_stages_when_demand_exceeds_one(self):
        # 1.5 demand over 1.0-free stages needs a 2-stage window
        # (0.75 per stage).
        assert earliest_window([1.0, 1.0, 1.0], 1.5, 1, 3) == (1, 2)

    def test_prefers_smallest_end_stage(self):
        # A 2-stage window ending at stage 2 beats a 1-stage window
        # ending at stage 3: chains stay short.
        assert earliest_window([0.5, 0.5, 1.0], 0.8, 1, 3) == (1, 2)

    def test_none_when_nothing_fits(self):
        assert earliest_window([0.1, 0.1], 1.0, 1, 2) is None

    def test_none_when_earliest_past_pipeline(self):
        assert earliest_window([1.0, 1.0], 0.5, 3, 2) is None

    def test_tolerance_admits_exact_fill(self):
        free = [0.3000000000000001]
        assert earliest_window(free, 0.3, 1, 1) == (1, 1)

    def test_shared_with_chain_scheduler(self):
        # The baselines' virtual-pipeline scheduler must use this exact
        # function — a drift between the two would let a segment "fit"
        # on a lone switch but not on the same switch inside a chain.
        from repro.baselines import base

        assert base.earliest_window is earliest_window


class TestSegmentFits:
    def test_fits_small_segment(self):
        assert segment_fits(chain_tdg([0.2, 0.2]), Switch("s"))

    def test_rejects_aggregate_overflow(self):
        assert not segment_fits(
            parallel_tdg([1.0] * 20), Switch("s", num_stages=4)
        )

    def test_rejects_deep_chain(self):
        assert not segment_fits(
            chain_tdg([0.01] * 13), Switch("s", num_stages=12)
        )

    def test_rejects_non_programmable(self):
        assert not segment_fits(
            chain_tdg([0.1]), Switch("s", programmable=False)
        )
