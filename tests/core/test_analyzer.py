"""Unit tests for the program analyzer (Algorithm 1)."""

import pytest

from repro.core.analyzer import ProgramAnalyzer
from tests.conftest import make_sketch_program


class TestProgramAnalyzer:
    def test_requires_programs(self):
        with pytest.raises(ValueError, match="at least one"):
            ProgramAnalyzer().analyze([])

    def test_rejects_duplicate_program_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            ProgramAnalyzer().analyze(
                [make_sketch_program("p"), make_sketch_program("p")]
            )

    def test_single_program_roundtrip(self, sketch_program):
        tdg = ProgramAnalyzer().analyze([sketch_program])
        assert len(tdg) == 3
        assert tdg.name == "T_m"
        # Edges are annotated.
        assert all(
            e.metadata_bytes > 0 or e.dep_type.value == "R"
            for e in tdg.edges
        )

    def test_merges_all_programs(self, six_programs):
        tdg = ProgramAnalyzer().analyze(six_programs)
        assert len(tdg) == sum(len(p) for p in six_programs)

    def test_merge_disabled_keeps_all_nodes(self):
        from repro.workloads.sketches import sketch_programs

        programs = sketch_programs(4)
        merged = ProgramAnalyzer(merge=True).analyze(programs)
        unmerged = ProgramAnalyzer(merge=False).analyze(programs)
        assert len(unmerged) == sum(len(p) for p in programs)
        assert len(merged) < len(unmerged)

    def test_annotations_match_field_sizes(self, six_programs):
        tdg = ProgramAnalyzer().analyze(six_programs)
        # p0 uses a 2-byte index (see conftest), p3 a 5-byte one.
        assert tdg.edge("p0.hash", "p0.update").metadata_bytes == 2
        assert tdg.edge("p3.hash", "p3.update").metadata_bytes == 5

    def test_result_is_acyclic(self, six_programs):
        ProgramAnalyzer().analyze(six_programs).topological_order()
