"""MILP model objects: variables, constraints, and the model container."""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np
from scipy import sparse

from repro.milp.expr import LinExpr, Number


class VarType(enum.Enum):
    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Sense(enum.Enum):
    LE = "<="
    GE = ">="
    EQ = "=="


class Var:
    """A decision variable.

    Variables are created through :meth:`Model.add_var`; each gets a
    stable index inside its model which the solver uses for columns.
    """

    __slots__ = ("name", "index", "var_type", "lb", "ub")

    def __init__(
        self,
        name: str,
        index: int,
        var_type: VarType,
        lb: float,
        ub: float,
    ) -> None:
        self.name = name
        self.index = index
        self.var_type = var_type
        self.lb = lb
        self.ub = ub

    @property
    def is_integral(self) -> bool:
        return self.var_type in (VarType.INTEGER, VarType.BINARY)

    # Arithmetic: delegate to LinExpr.
    def _expr(self) -> LinExpr:
        return LinExpr.from_term(self)

    def __add__(self, other: Union["Var", LinExpr, Number]) -> LinExpr:
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other: Union["Var", LinExpr, Number]) -> LinExpr:
        return self._expr() - other

    def __rsub__(self, other: Union["Var", LinExpr, Number]) -> LinExpr:
        return other - self._expr()

    def __mul__(self, factor: Number) -> LinExpr:
        return self._expr() * factor

    __rmul__ = __mul__

    def __neg__(self) -> LinExpr:
        return self._expr() * -1.0

    def __le__(self, other: Union["Var", LinExpr, Number]) -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other: Union["Var", LinExpr, Number]) -> "Constraint":
        return self._expr() >= other

    def __eq__(self, other: object) -> object:  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, int, float)):
            return self._expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Var({self.name!r})"


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` with an optional name.

    Stored in normalized form: all variable terms and the constant on
    the left, zero on the right.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(
        self, expr: LinExpr, sense: Sense, name: Optional[str] = None
    ) -> None:
        self.expr = expr
        self.sense = sense
        self.name = name

    def named(self, name: str) -> "Constraint":
        self.name = name
        return self

    def satisfied_by(
        self, assignment: Dict[Var, float], tol: float = 1e-6
    ) -> bool:
        value = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return value <= tol
        if self.sense is Sense.GE:
            return value >= -tol
        return abs(value) <= tol

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense.value} 0{label})"


class Model:
    """An MILP model: variables, linear constraints, a linear objective.

    Usage:
        model = Model("deploy")
        x = model.add_binary("x")
        y = model.add_var("y", lb=0, ub=10)
        model.add_constr(x + y <= 5, name="cap")
        model.minimize(2 * x + y)
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Var] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.maximize_objective = False
        self._names: Dict[str, Var] = {}
        self._anon = itertools.count()

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_var(
        self,
        name: Optional[str] = None,
        lb: float = 0.0,
        ub: float = float("inf"),
        var_type: VarType = VarType.CONTINUOUS,
    ) -> Var:
        if name is None:
            name = f"_v{next(self._anon)}"
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        if var_type is VarType.BINARY:
            lb, ub = max(lb, 0.0), min(ub, 1.0)
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} exceeds ub {ub}")
        var = Var(name, len(self.variables), var_type, float(lb), float(ub))
        self.variables.append(var)
        self._names[name] = var
        return var

    def add_binary(self, name: Optional[str] = None) -> Var:
        return self.add_var(name, 0.0, 1.0, VarType.BINARY)

    def add_integer(
        self,
        name: Optional[str] = None,
        lb: float = 0.0,
        ub: float = float("inf"),
    ) -> Var:
        return self.add_var(name, lb, ub, VarType.INTEGER)

    def var(self, name: str) -> Var:
        try:
            return self._names[name]
        except KeyError:
            raise KeyError(f"model {self.name!r} has no variable {name!r}") from None

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_vars(self) -> int:
        return sum(1 for v in self.variables if v.is_integral)

    # ------------------------------------------------------------------
    # Constraints / objective
    # ------------------------------------------------------------------
    def add_constr(
        self, constraint: Constraint, name: Optional[str] = None
    ) -> Constraint:
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constr expects a Constraint (built from expression "
                f"comparisons), got {type(constraint).__name__}"
            )
        if name is not None:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def add_constrs(self, constraints: Iterable[Constraint]) -> None:
        for constraint in constraints:
            self.add_constr(constraint)

    def minimize(self, expr: Union[LinExpr, Var, Number]) -> None:
        self.objective = LinExpr() + expr
        self.maximize_objective = False

    def maximize(self, expr: Union[LinExpr, Var, Number]) -> None:
        self.objective = LinExpr() + expr
        self.maximize_objective = True

    # ------------------------------------------------------------------
    # Standard-form export (for the LP solver)
    # ------------------------------------------------------------------
    def to_arrays(
        self,
    ) -> Tuple[
        np.ndarray,  # c
        Optional[sparse.csr_matrix],  # A_ub
        Optional[np.ndarray],  # b_ub
        Optional[sparse.csr_matrix],  # A_eq
        Optional[np.ndarray],  # b_eq
        List[Tuple[float, float]],  # bounds
    ]:
        """Export to ``scipy.optimize.linprog`` arrays (minimization).

        Constraint matrices are CSR-sparse — deployment models routinely
        reach 10^5 x 10^5 with a handful of nonzeros per row, far beyond
        dense storage.  A maximization objective is negated; callers
        must negate the optimum back.  GE rows are flipped into LE rows.
        """
        n = len(self.variables)
        c = np.zeros(n)
        for var, coef in self.objective.coefs.items():
            c[var.index] += coef
        if self.maximize_objective:
            c = -c

        ub_data: List[float] = []
        ub_rows: List[int] = []
        ub_cols: List[int] = []
        ub_rhs: List[float] = []
        eq_data: List[float] = []
        eq_rows: List[int] = []
        eq_cols: List[int] = []
        eq_rhs: List[float] = []
        for constraint in self.constraints:
            rhs = -constraint.expr.constant
            if constraint.sense is Sense.EQ:
                row_idx = len(eq_rhs)
                for var, coef in constraint.expr.coefs.items():
                    eq_rows.append(row_idx)
                    eq_cols.append(var.index)
                    eq_data.append(coef)
                eq_rhs.append(rhs)
            else:
                sign = 1.0 if constraint.sense is Sense.LE else -1.0
                row_idx = len(ub_rhs)
                for var, coef in constraint.expr.coefs.items():
                    ub_rows.append(row_idx)
                    ub_cols.append(var.index)
                    ub_data.append(sign * coef)
                ub_rhs.append(sign * rhs)

        a_ub = (
            sparse.csr_matrix(
                (ub_data, (ub_rows, ub_cols)), shape=(len(ub_rhs), n)
            )
            if ub_rhs
            else None
        )
        b_ub = np.asarray(ub_rhs) if ub_rhs else None
        a_eq = (
            sparse.csr_matrix(
                (eq_data, (eq_rows, eq_cols)), shape=(len(eq_rhs), n)
            )
            if eq_rhs
            else None
        )
        b_eq = np.asarray(eq_rhs) if eq_rhs else None
        bounds = [(v.lb, v.ub) for v in self.variables]
        return c, a_ub, b_ub, a_eq, b_eq, bounds

    def objective_value(self, assignment: Dict[Var, float]) -> float:
        return self.objective.value(assignment)

    def is_feasible(
        self, assignment: Dict[Var, float], tol: float = 1e-6
    ) -> bool:
        """Check an assignment against bounds, integrality, constraints."""
        for var in self.variables:
            value = assignment[var]
            if value < var.lb - tol or value > var.ub + tol:
                return False
            if var.is_integral and abs(value - round(value)) > tol:
                return False
        return all(c.satisfied_by(assignment, tol) for c in self.constraints)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Model({self.name!r}, {self.num_vars} vars "
            f"({self.num_integer_vars} int), {self.num_constraints} constrs)"
        )
