"""Stable content hashing of deployment problems.

The result cache must return a hit exactly when *the same computation*
would be repeated: same programs (structure, field widths, demands,
order), same network (switches, links, capacities, latencies), same
framework (class and configuration) and same harness parameters.
Python's built-in ``hash`` is salted per process and object identities
change between runs, so the key is built from an explicit canonical
walk of the problem structure, serialized to JSON and digested with
SHA-256.

Everything that can influence a :class:`DeploymentRecord` must appear
in the fingerprint; anything that cannot (e.g. transient solver state)
must not, or the cache would never hit.  The property tests in
``tests/experiments/test_cache_key.py`` pin both directions.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Mapping, Sequence, Tuple

from repro.baselines.base import DeploymentFramework
from repro.dataplane.mat import Mat
from repro.dataplane.program import Program
from repro.network.topology import Network

#: Bump when the record layout or fingerprint scheme changes; old cache
#: entries then miss instead of deserializing garbage.  v2: ILP-backed
#: frameworks grew a ``solver_profile`` attribute, so their
#: fingerprints changed shape.  v3: cache entries store the serialized
#: deployment plan (``repro.plan`` canonical document) alongside the
#: record, so v2 entries lack the plan payload.  v4: records carry the
#: plan-aware end-to-end metrics (``plan_fct_ratio`` /
#: ``plan_goodput_ratio``), so v3 entries would deserialize with stale
#: defaults.
CACHE_KEY_VERSION = 4


def _canon(value: Any) -> Any:
    """Recursively convert ``value`` into a JSON-stable structure."""
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canon(v) for v in value)
    if hasattr(value, "value") and value.__class__.__module__ != "builtins":
        # Enum members hash by their wire value.
        return _canon(value.value)
    return repr(value)


def _field_fp(field) -> Tuple:
    return (field.name, field.width_bits, field.kind.value)


def _mat_fp(mat: Mat) -> Tuple:
    detailed = mat.detailed_demand
    return (
        mat.name,
        mat.capacity,
        mat.resource_demand,
        (detailed.sram_bits, detailed.tcam_bits, detailed.alus),
        sorted(_field_fp(f) for f in mat.match_fields),
        sorted(
            (
                a.name,
                a.primitive.value,
                sorted(_field_fp(f) for f in a.read_set),
                sorted(_field_fp(f) for f in a.write_set),
            )
            for a in mat.actions
        ),
        sorted(
            (
                tuple(
                    (m.field_name, m.kind.value, m.value, m.mask_or_prefix)
                    for m in rule.matches
                ),
                rule.action_name,
                rule.priority,
                rule.action_data,
            )
            for rule in mat.rules
        ),
    )


def program_fingerprint(program: Program) -> Tuple:
    """Canonical structure of one program; MAT order is significant."""
    return (
        program.name,
        tuple(_mat_fp(mat) for mat in program.mats),
        sorted(program.conditional_edges),
    )


def network_fingerprint(network: Network) -> Tuple:
    """Canonical structure of the substrate network."""
    switches = sorted(
        (
            s.name,
            s.programmable,
            s.num_stages,
            s.stage_capacity,
            s.latency_us,
            s.ports,
            s.port_speed_gbps,
        )
        for s in network.switches
    )
    links = sorted(
        (link.u, link.v, link.latency_ms, link.bandwidth_gbps)
        for link in network.links
    )
    return (network.name, switches, links)


def framework_fingerprint(framework: DeploymentFramework) -> Tuple:
    """Framework identity: class plus full constructor configuration."""
    config = {k: _canon(v) for k, v in sorted(vars(framework).items())}
    return (
        type(framework).__module__,
        type(framework).__qualname__,
        framework.name,
        framework.merges,
        config,
    )


def cache_key(
    programs: Sequence[Program],
    network: Network,
    framework: DeploymentFramework,
    harness_params: Mapping[str, Any],
) -> str:
    """SHA-256 hex digest naming one (framework x problem) cell."""
    payload = _canon(
        (
            CACHE_KEY_VERSION,
            [program_fingerprint(p) for p in programs],
            network_fingerprint(network),
            framework_fingerprint(framework),
            dict(harness_params),
        )
    )
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
