"""The TDG data structure.

A :class:`Tdg` is a directed acyclic multigraph-free graph: at most one
edge per ordered MAT pair, carrying a :class:`DependencyType` and the
metadata byte count ``A(a, b)``.  Nodes are identified by their (unique)
MAT names; the :class:`~repro.dataplane.mat.Mat` objects themselves are
stored as node payloads.

The structure is deliberately self-contained (no networkx dependency)
so its invariants — acyclicity, consistent adjacency, edge uniqueness —
are enforced locally and are easy to property-test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.dataplane.mat import Mat
from repro.tdg.dependencies import DependencyType


class CycleError(ValueError):
    """Raised when an operation would make the TDG cyclic."""


@dataclass
class TdgEdge:
    """A dependency edge ``(upstream -> downstream)``.

    Attributes:
        upstream: Name of the upstream MAT (``a``).
        downstream: Name of the downstream MAT (``b``).
        dep_type: The dependency type ``T(a, b)``.
        metadata_bytes: ``A(a, b)`` — metadata bytes that must ride on
            each packet if the endpoints are placed on different
            switches.  Computed by the analyzer; defaults to 0 until
            :func:`repro.tdg.analysis.annotate_metadata_sizes` runs.
    """

    upstream: str
    downstream: str
    dep_type: DependencyType
    metadata_bytes: int = 0

    @property
    def key(self) -> Tuple[str, str]:
        return (self.upstream, self.downstream)


class Tdg:
    """A table dependency graph."""

    def __init__(self, name: str = "tdg") -> None:
        self.name = name
        self._nodes: Dict[str, Mat] = {}
        self._edges: Dict[Tuple[str, str], TdgEdge] = {}
        self._succ: Dict[str, Set[str]] = {}
        self._pred: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, mat: Mat) -> None:
        """Add a MAT node; re-adding the identical MAT is a no-op."""
        existing = self._nodes.get(mat.name)
        if existing is not None:
            if existing is mat or (
                existing == mat
                and existing.resource_demand == mat.resource_demand
            ):
                return
            raise ValueError(
                f"TDG {self.name!r} already has a different MAT named "
                f"{mat.name!r}"
            )
        self._nodes[mat.name] = mat
        self._succ[mat.name] = set()
        self._pred[mat.name] = set()

    def add_edge(
        self,
        upstream: str,
        downstream: str,
        dep_type: DependencyType,
        metadata_bytes: int = 0,
    ) -> TdgEdge:
        """Add a dependency edge, preserving acyclicity.

        Raises:
            KeyError: If either endpoint is not a node.
            CycleError: If the edge would create a cycle (including
                self-loops).
            ValueError: If an edge between the pair already exists.
        """
        if upstream not in self._nodes:
            raise KeyError(f"unknown upstream MAT {upstream!r}")
        if downstream not in self._nodes:
            raise KeyError(f"unknown downstream MAT {downstream!r}")
        if upstream == downstream:
            raise CycleError(f"self-dependency on {upstream!r}")
        key = (upstream, downstream)
        if key in self._edges:
            raise ValueError(f"edge {key} already present")
        if self.has_path(downstream, upstream):
            raise CycleError(
                f"edge {upstream!r}->{downstream!r} would create a cycle"
            )
        if metadata_bytes < 0:
            raise ValueError("metadata_bytes must be non-negative")
        edge = TdgEdge(upstream, downstream, dep_type, metadata_bytes)
        self._edges[key] = edge
        self._succ[upstream].add(downstream)
        self._pred[downstream].add(upstream)
        return edge

    def remove_node(self, name: str) -> Mat:
        """Remove a node and all its incident edges."""
        mat = self._nodes.pop(name, None)
        if mat is None:
            raise KeyError(f"unknown MAT {name!r}")
        for succ in list(self._succ[name]):
            del self._edges[(name, succ)]
            self._pred[succ].discard(name)
        for pred in list(self._pred[name]):
            del self._edges[(pred, name)]
            self._succ[pred].discard(name)
        del self._succ[name]
        del self._pred[name]
        return mat

    def remove_edge(self, upstream: str, downstream: str) -> TdgEdge:
        edge = self._edges.pop((upstream, downstream), None)
        if edge is None:
            raise KeyError(f"no edge {upstream!r}->{downstream!r}")
        self._succ[upstream].discard(downstream)
        self._pred[downstream].discard(upstream)
        return edge

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def node_names(self) -> List[str]:
        return list(self._nodes)

    @property
    def mats(self) -> List[Mat]:
        return list(self._nodes.values())

    @property
    def edges(self) -> List[TdgEdge]:
        return list(self._edges.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Mat:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"TDG {self.name!r} has no MAT {name!r}") from None

    def edge(self, upstream: str, downstream: str) -> TdgEdge:
        try:
            return self._edges[(upstream, downstream)]
        except KeyError:
            raise KeyError(f"no edge {upstream!r}->{downstream!r}") from None

    def has_edge(self, upstream: str, downstream: str) -> bool:
        return (upstream, downstream) in self._edges

    def successors(self, name: str) -> Set[str]:
        return set(self._succ[name])

    def predecessors(self, name: str) -> Set[str]:
        return set(self._pred[name])

    def out_edges(self, name: str) -> List[TdgEdge]:
        return [self._edges[(name, s)] for s in sorted(self._succ[name])]

    def in_edges(self, name: str) -> List[TdgEdge]:
        return [self._edges[(p, name)] for p in sorted(self._pred[name])]

    def sources(self) -> List[str]:
        """Nodes with no predecessors, in insertion order."""
        return [n for n in self._nodes if not self._pred[n]]

    def sinks(self) -> List[str]:
        """Nodes with no successors, in insertion order."""
        return [n for n in self._nodes if not self._succ[n]]

    def has_path(self, start: str, goal: str) -> bool:
        """Whether ``goal`` is reachable from ``start`` (inclusive)."""
        if start not in self._nodes or goal not in self._nodes:
            return False
        if start == goal:
            return True
        stack = [start]
        seen = {start}
        while stack:
            current = stack.pop()
            for nxt in self._succ[current]:
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def topological_order(self, strategy: str = "kahn") -> List[str]:
        """A topological order of the nodes.

        Args:
            strategy: ``"kahn"`` (default) gives breadth-first level
                order; ``"dfs"`` gives depth-first reverse postorder,
                which keeps independent components and chains
                contiguous — the property the greedy splitter relies on
                to find zero-metadata cut points between unrelated
                programs.
        """
        if strategy == "kahn":
            return self._topological_kahn()
        if strategy == "dfs":
            return self._topological_dfs()
        raise ValueError(f"unknown topological strategy {strategy!r}")

    def _topological_kahn(self) -> List[str]:
        in_deg = {n: len(self._pred[n]) for n in self._nodes}
        ready = [n for n in self._nodes if in_deg[n] == 0]
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for nxt in sorted(self._succ[current]):
                in_deg[nxt] -= 1
                if in_deg[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self._nodes):
            raise CycleError(f"TDG {self.name!r} contains a cycle")
        return order

    def _topological_dfs(self) -> List[str]:
        postorder: List[str] = []
        visited: Set[str] = set()
        for root in self._nodes:
            if root in visited:
                continue
            stack: List[Tuple[str, Iterator[str]]] = [
                (root, iter(sorted(self._succ[root])))
            ]
            visited.add(root)
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if child not in visited:
                        visited.add(child)
                        stack.append(
                            (child, iter(sorted(self._succ[child])))
                        )
                        advanced = True
                        break
                if not advanced:
                    postorder.append(node)
                    stack.pop()
        order = list(reversed(postorder))
        # A DAG's reverse postorder is always topological; edges were
        # checked for cycles at insertion, so no recheck is needed.
        return order

    def total_resource_demand(self) -> float:
        """``sum_a R(a)`` over every MAT in the graph."""
        return sum(m.resource_demand for m in self._nodes.values())

    def total_metadata_bytes(self) -> int:
        """Sum of ``A(a, b)`` across all edges."""
        return sum(e.metadata_bytes for e in self._edges.values())

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Tdg":
        clone = Tdg(name or self.name)
        for mat in self._nodes.values():
            clone.add_node(mat)
        for edge in self._edges.values():
            clone.add_edge(
                edge.upstream, edge.downstream, edge.dep_type, edge.metadata_bytes
            )
        return clone

    def subgraph(self, names: Iterable[str], name: str = "segment") -> "Tdg":
        """The induced subgraph on ``names`` (edges inside the set only)."""
        keep = set(names)
        missing = keep - set(self._nodes)
        if missing:
            raise KeyError(f"unknown MATs in subgraph request: {sorted(missing)}")
        sub = Tdg(name)
        for node_name in self._nodes:
            if node_name in keep:
                sub.add_node(self._nodes[node_name])
        for edge in self._edges.values():
            if edge.upstream in keep and edge.downstream in keep:
                sub.add_edge(
                    edge.upstream,
                    edge.downstream,
                    edge.dep_type,
                    edge.metadata_bytes,
                )
        return sub

    def cut_bytes(self, left: Iterable[str], right: Iterable[str]) -> int:
        """Metadata bytes crossing from ``left`` to ``right``.

        This is the quantity the greedy heuristic minimizes when
        choosing where to split a TDG: ``sum A(a, b)`` over edges with
        ``a`` in ``left`` and ``b`` in ``right``.
        """
        left_set, right_set = set(left), set(right)
        return sum(
            e.metadata_bytes
            for e in self._edges.values()
            if e.upstream in left_set and e.downstream in right_set
        )

    def __iter__(self) -> Iterator[Mat]:
        return iter(self._nodes.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Tdg({self.name!r}, {len(self._nodes)} nodes, "
            f"{len(self._edges)} edges)"
        )
