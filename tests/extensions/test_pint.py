"""Tests for the PINT overhead-bounding extension."""

import math

import pytest

from repro.core import CoordinationAnalysis, Hermes
from repro.extensions.pint import (
    PintChannel,
    PintCollector,
    coupon_collector_packets,
    simulate_coverage,
)
from repro.network import linear_topology
from tests.conftest import make_sketch_program


from repro.core.coordination import MetadataChannel
from repro.dataplane.fields import metadata_field


@pytest.fixture
def channel():
    """A coordination channel carrying six 4-byte telemetry fields."""
    fields = [metadata_field(f"tel.f{i}", 32) for i in range(6)]
    layout = []
    offset = 0
    for fld in fields:
        layout.append((fld, offset))
        offset += fld.size_bytes
    return MetadataChannel(
        source="s0",
        destination="s1",
        edges=[],
        declared_bytes=offset,
        layout=layout,
        layout_bytes=offset,
    )


def test_pint_applies_to_real_deployment_channels():
    """End to end: bound a channel produced by an actual deployment."""
    programs = [
        make_sketch_program(f"p{i}", index_bytes=4, value_bytes=4)
        for i in range(4)
    ]
    net = linear_topology(8, num_stages=2, stage_capacity=1.0)
    plan = Hermes().deploy(programs, net).plan
    analysis = CoordinationAnalysis(plan)
    real = max(analysis.channels.values(), key=lambda c: len(c.layout))
    pint = PintChannel(real, budget_bytes=real.layout_bytes)
    assert pint.wire_bytes(0) <= real.layout_bytes


class TestCouponCollector:
    def test_one_field(self):
        assert coupon_collector_packets(1, 1) == pytest.approx(1.0)

    def test_whole_set_per_packet(self):
        assert coupon_collector_packets(10, 10) == 1.0
        assert coupon_collector_packets(10, 20) == 1.0

    def test_classic_formula(self):
        # n=4, k=1: 4 * (1 + 1/2 + 1/3 + 1/4) = 8.333...
        assert coupon_collector_packets(4, 1) == pytest.approx(25 / 3)

    def test_batching_divides_time(self):
        assert coupon_collector_packets(12, 3) == pytest.approx(
            coupon_collector_packets(12, 1) / 3
        )

    def test_degenerate(self):
        assert coupon_collector_packets(0, 1) == 0.0
        assert math.isinf(coupon_collector_packets(4, 0))


class TestPintChannel:
    def test_budget_must_fit_largest_field(self, channel):
        largest = max(f.size_bytes for f, _off in channel.layout)
        with pytest.raises(ValueError, match="cannot fit"):
            PintChannel(channel, budget_bytes=largest - 1)

    def test_wire_bytes_never_exceed_budget(self, channel):
        pint = PintChannel(channel, budget_bytes=4)
        for packet_id in range(200):
            assert pint.wire_bytes(packet_id) <= 4

    def test_bounded_below_full_header(self, channel):
        pint = PintChannel(channel, budget_bytes=4)
        assert pint.full_bytes > 4

    def test_selection_is_deterministic(self, channel):
        pint = PintChannel(channel, budget_bytes=4)
        for packet_id in (0, 17, 91):
            a = [f.name for f in pint.select_fields(packet_id)]
            b = [f.name for f in pint.select_fields(packet_id)]
            assert a == b

    def test_selection_varies_across_packets(self, channel):
        pint = PintChannel(channel, budget_bytes=4)
        subsets = {
            tuple(f.name for f in pint.select_fields(pid))
            for pid in range(50)
        }
        assert len(subsets) > 1

    def test_encode_requires_values(self, channel):
        pint = PintChannel(channel, budget_bytes=4)
        with pytest.raises(KeyError):
            pint.encode(0, {})


class TestCollector:
    def _values(self, channel):
        return {f.name: i for i, (f, _off) in enumerate(channel.layout)}

    def test_coverage_reaches_one(self, channel):
        pint = PintChannel(channel, budget_bytes=4)
        values = self._values(channel)
        curve, completed = simulate_coverage(pint, values, 500)
        assert curve[-1] == 1.0
        assert completed is not None

    def test_coverage_monotone(self, channel):
        pint = PintChannel(channel, budget_bytes=4)
        curve, _done = simulate_coverage(pint, self._values(channel), 100)
        assert curve == sorted(curve)

    def test_reconstructed_values_correct(self, channel):
        pint = PintChannel(channel, budget_bytes=4)
        values = self._values(channel)
        collector = PintCollector(pint)
        packet_id = 0
        while not collector.complete:
            collector.observe(packet_id, pint.encode(packet_id, values))
            packet_id += 1
            assert packet_id < 10_000
        for name, value in values.items():
            assert collector.value(name) == value

    def test_unobserved_value_raises(self, channel):
        pint = PintChannel(channel, budget_bytes=4)
        collector = PintCollector(pint)
        with pytest.raises(KeyError, match="coverage"):
            collector.value(pint.fields[0].name)

    def test_completion_near_coupon_estimate(self, channel):
        pint = PintChannel(channel, budget_bytes=4)
        values = self._values(channel)
        _curve, completed = simulate_coverage(pint, values, 2000)
        estimate = pint.expected_completion_packets()
        # Hash-based sampling is deterministic, not iid, but should
        # land within a small factor of the coupon-collector estimate.
        assert completed <= max(10, 6 * estimate)

    def test_bigger_budget_completes_faster(self, channel):
        values = self._values(channel)
        small = simulate_coverage(
            PintChannel(channel, budget_bytes=4), values, 2000
        )[1]
        big_budget = min(channel.layout_bytes, 12)
        big = simulate_coverage(
            PintChannel(channel, budget_bytes=big_budget), values, 2000
        )[1]
        assert big <= small


class TestLossyPaths:
    def _values(self, channel):
        return {f.name: i for i, (f, _off) in enumerate(channel.layout)}

    def test_loss_slows_coverage(self, channel):
        pint = PintChannel(channel, budget_bytes=4)
        values = self._values(channel)
        _curve, clean = simulate_coverage(pint, values, 2000)
        _curve, lossy = simulate_coverage(
            pint, values, 2000, loss_rate=0.5, seed=3
        )
        assert lossy >= clean

    def test_loss_rate_validated(self, channel):
        pint = PintChannel(channel, budget_bytes=4)
        with pytest.raises(ValueError):
            simulate_coverage(pint, self._values(channel), 10, loss_rate=1.0)

    def test_loss_deterministic_per_seed(self, channel):
        pint = PintChannel(channel, budget_bytes=4)
        values = self._values(channel)
        a = simulate_coverage(pint, values, 200, loss_rate=0.3, seed=5)
        b = simulate_coverage(pint, values, 200, loss_rate=0.3, seed=5)
        assert a == b
