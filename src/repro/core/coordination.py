"""Inter-switch coordination: metadata channels and header layouts.

After placement, every TDG edge whose endpoints sit on different
switches induces metadata that must ride on packets between those
switches.  This module materializes that coordination:

* a :class:`MetadataChannel` per communicating ordered switch pair,
  listing which fields are shipped, the declared byte count (the sum of
  ``A(a, b)`` charged by the paper's objective) and the packed header
  layout actually emitted by the backend (equal fields shipped once);
* :class:`CoordinationAnalysis`, the per-plan summary the experiments
  read their overhead numbers from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.deployment import DeploymentPlan
from repro.dataplane.fields import Field, FieldSet
from repro.dataplane.mat import Mat
from repro.tdg.dependencies import DependencyType
from repro.tdg.graph import TdgEdge


def edge_metadata_fields(
    upstream: Mat, downstream: Mat, dep_type: DependencyType
) -> FieldSet:
    """The metadata fields a dependency ships downstream.

    Mirrors :func:`repro.tdg.analysis.edge_metadata_bytes` but returns
    the fields themselves (for header layout) instead of their sizes.
    """
    if dep_type is DependencyType.MATCH:
        return upstream.modified_fields.metadata_only()
    if dep_type is DependencyType.ACTION:
        return upstream.modified_fields.union(
            downstream.modified_fields
        ).metadata_only()
    if dep_type is DependencyType.REVERSE:
        return FieldSet()
    if dep_type is DependencyType.SUCCESSOR:
        return upstream.modified_fields.metadata_only()
    raise AssertionError(f"unhandled dependency type {dep_type}")


@dataclass
class MetadataChannel:
    """Coordination between one ordered pair of switches.

    Attributes:
        source, destination: The switch pair.
        edges: The cross-switch TDG edges charged to this pair.
        declared_bytes: ``sum A(a, b)`` over those edges — the quantity
            the optimization minimizes (fields shipped per edge).
        layout: Packed header layout: (field, offset) pairs; a field
            needed by several edges occupies one slot.
        layout_bytes: Size of the packed layout.
    """

    source: str
    destination: str
    edges: List[TdgEdge]
    declared_bytes: int
    layout: List[Tuple[Field, int]]
    layout_bytes: int

    @property
    def field_names(self) -> List[str]:
        return [f.name for f, _offset in self.layout]


class CoordinationAnalysis:
    """Derives all coordination channels of a deployment plan."""

    def __init__(self, plan: DeploymentPlan) -> None:
        self.plan = plan
        self.channels: Dict[Tuple[str, str], MetadataChannel] = {}
        self._build()

    def _build(self) -> None:
        grouped: Dict[Tuple[str, str], List[TdgEdge]] = {}
        for edge in self.plan.tdg.edges:
            u = self.plan.switch_of(edge.upstream)
            v = self.plan.switch_of(edge.downstream)
            if u == v or edge.metadata_bytes == 0:
                continue
            grouped.setdefault((u, v), []).append(edge)

        for (u, v), edges in grouped.items():
            fields = FieldSet()
            declared = 0
            for edge in edges:
                upstream = self.plan.tdg.node(edge.upstream)
                downstream = self.plan.tdg.node(edge.downstream)
                fields = fields.union(
                    edge_metadata_fields(upstream, downstream, edge.dep_type)
                )
                declared += edge.metadata_bytes
            layout: List[Tuple[Field, int]] = []
            offset = 0
            for field in sorted(fields, key=lambda f: f.name):
                layout.append((field, offset))
                offset += field.size_bytes
            self.channels[(u, v)] = MetadataChannel(
                source=u,
                destination=v,
                edges=edges,
                declared_bytes=declared,
                layout=layout,
                layout_bytes=offset,
            )

    # ------------------------------------------------------------------
    # Summary metrics
    # ------------------------------------------------------------------
    def max_declared_bytes(self) -> int:
        """``A_max`` — matches ``plan.max_metadata_bytes()``."""
        if not self.channels:
            return 0
        return max(c.declared_bytes for c in self.channels.values())

    def max_layout_bytes(self) -> int:
        """The packed (deduplicated) worst pair overhead — what a real
        header would occupy; never exceeds the declared maximum."""
        if not self.channels:
            return 0
        return max(c.layout_bytes for c in self.channels.values())

    def total_declared_bytes(self) -> int:
        return sum(c.declared_bytes for c in self.channels.values())

    def channel(self, source: str, destination: str) -> MetadataChannel:
        try:
            return self.channels[(source, destination)]
        except KeyError:
            raise KeyError(
                f"no coordination between {source!r} and {destination!r}"
            ) from None

    def __len__(self) -> int:
        return len(self.channels)
