"""Unit tests for repro.dataplane.mat."""

import pytest

from repro.dataplane.actions import counter_update, hash_compute, modify, no_op
from repro.dataplane.fields import header_field, metadata_field
from repro.dataplane.mat import (
    Mat,
    ResourceDemand,
    STAGE_ALUS,
    STAGE_SRAM_BITS,
)
from repro.dataplane.rules import MatchKind, MatchSpec, Rule


def simple_mat(name="t", demand=0.5, **kwargs):
    idx = metadata_field("m.idx", 32)
    defaults = dict(
        match_fields=[header_field("ipv4.src", 32)],
        actions=[hash_compute(idx, [header_field("ipv4.src", 32)])],
        capacity=64,
        resource_demand=demand,
    )
    defaults.update(kwargs)
    return Mat(name, **defaults)


class TestResourceDemand:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ResourceDemand(sram_bits=-1)

    def test_normalized_is_binding_resource(self):
        demand = ResourceDemand(
            sram_bits=STAGE_SRAM_BITS // 2, alus=STAGE_ALUS
        )
        assert demand.normalized() == pytest.approx(1.0)

    def test_addition(self):
        total = ResourceDemand(1, 2, 3) + ResourceDemand(10, 20, 30)
        assert (total.sram_bits, total.tcam_bits, total.alus) == (11, 22, 33)


class TestMatValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            simple_mat(name="")

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            simple_mat(capacity=0)

    def test_requires_actions(self):
        with pytest.raises(ValueError, match="at least one action"):
            Mat("t", actions=[])

    def test_rejects_duplicate_action_names(self):
        with pytest.raises(ValueError, match="duplicate action"):
            Mat("t", actions=[no_op("a"), no_op("a")])

    def test_rules_cannot_exceed_capacity(self):
        rule = Rule(action_name="no_op")
        with pytest.raises(ValueError, match="exceed"):
            Mat("t", actions=[no_op()], capacity=1, rules=[rule, rule])

    def test_rules_must_reference_known_action(self):
        with pytest.raises(ValueError, match="unknown action"):
            Mat("t", actions=[no_op()], rules=[Rule(action_name="ghost")])

    def test_rules_must_match_declared_fields(self):
        with pytest.raises(ValueError, match="undeclared"):
            Mat(
                "t",
                actions=[no_op()],
                rules=[
                    Rule(matches=(MatchSpec("ghost"),), action_name="no_op")
                ],
            )

    def test_zero_demand_gets_floor(self):
        mat = Mat("t", actions=[no_op()], resource_demand=0.0)
        assert mat.resource_demand > 0


class TestMatProperties:
    def test_modified_fields_union_of_action_writes(self):
        a = metadata_field("m.a", 8)
        b = metadata_field("m.b", 8)
        mat = Mat("t", actions=[modify(a), modify(b)])
        assert mat.modified_fields.names == frozenset({"m.a", "m.b"})

    def test_read_fields_include_match_key_and_action_reads(self):
        key = header_field("ipv4.dst", 32)
        src = header_field("ipv4.src", 32)
        out = metadata_field("m.o", 32)
        mat = Mat("t", match_fields=[key], actions=[hash_compute(out, [src])])
        assert mat.read_fields.names == frozenset({"ipv4.dst", "ipv4.src"})

    def test_derived_demand_scales_with_capacity(self):
        small = Mat("s", match_fields=[header_field("f", 32)],
                    actions=[no_op()], capacity=64)
        large = Mat("l", match_fields=[header_field("f", 32)],
                    actions=[no_op()], capacity=65536)
        assert large.resource_demand > small.resource_demand

    def test_tcam_detection_from_rules(self):
        field = header_field("ipv4.dst", 32)
        lpm_rule = Rule(
            matches=(MatchSpec("ipv4.dst", MatchKind.LPM, 0, 8),),
            action_name="no_op",
        )
        mat = Mat("t", match_fields=[field], actions=[no_op()],
                  rules=[lpm_rule])
        assert mat.uses_tcam()
        assert mat.detailed_demand.tcam_bits > 0

    def test_sram_by_default(self):
        mat = simple_mat()
        assert not mat.uses_tcam()
        assert mat.detailed_demand.sram_bits > 0

    def test_action_lookup(self):
        mat = Mat("t", actions=[no_op("a"), no_op("b")])
        assert mat.action("a").name == "a"
        with pytest.raises(KeyError):
            mat.action("ghost")


class TestRedundancy:
    def test_identical_mats_are_redundant(self):
        assert simple_mat("x").is_redundant_with(simple_mat("y"))

    def test_signature_ignores_name(self):
        assert simple_mat("x").signature() == simple_mat("y").signature()

    def test_different_capacity_not_redundant(self):
        assert not simple_mat(capacity=64).is_redundant_with(
            simple_mat(capacity=128)
        )

    def test_different_match_fields_not_redundant(self):
        other = simple_mat(match_fields=[header_field("ipv4.dst", 32)])
        assert not simple_mat().is_redundant_with(other)

    def test_equality_requires_same_name(self):
        assert simple_mat("x") != simple_mat("y")
        assert simple_mat("x") == simple_mat("x")
