"""Golden differentials: the suite path vs the pre-refactor pipelines.

``legacy_oracles`` holds verbatim copies of the exp1-exp7/fig2 code as
it stood before the suite-compiler refactor.  Two locks per
experiment:

* **cell-matrix locks** — the shipped spec compiles to exactly the
  cache keys the historical loops built (pure hashing, no solving);
* **byte locks** — at reduced scale, the legacy pipeline runs against
  a result cache and the refactored suite path must then replay it
  *entirely from cache* (proving key identity) and render the same
  bytes.

Deterministic pipelines (fig2's analytic sweep, exp6's resource
accounting, exp7's seeded histories) are compared across independent
runs instead.
"""

from legacy_oracles import (
    exp1_cells,
    exp1_render,
    exp1_run,
    exp2_cells,
    exp2_render,
    exp2_run,
    exp3_render,
    exp4_render,
    exp5_cells,
    exp5_render,
    exp5_run,
    exp6_render,
    exp6_rows,
    exp7_render,
    exp7_run,
    fig2_render,
    fig2_rows,
)

from repro.baselines import Ffl, Ffls, HermesHeuristic
from repro.experiments import (
    exp1_testbed,
    exp2_overhead,
    exp3_exectime,
    exp4_endtoend,
    exp5_scalability,
    exp6_resources,
    exp7_churn,
    fig2_motivation,
)
from repro.experiments.runner import ExperimentRunner
from repro.suite import SuiteSpec, deployment_cells, load_spec, run_suite


def fast():
    """Fast frameworks for reduced-scale byte locks (fresh instances)."""
    return [HermesHeuristic(), Ffl(), Ffls()]


def keys(cells):
    return [c.key() for c in cells]


# ----------------------------------------------------------------------
# Cell-matrix locks: shipped specs == historical loops, at full scale
# ----------------------------------------------------------------------
class TestShippedCellMatrices:
    def test_exp1_spec_compiles_to_the_legacy_cells(self):
        assert keys(deployment_cells(load_spec("exp1"))) == keys(
            exp1_cells()
        )

    def test_exp2_spec_compiles_to_the_legacy_cells(self):
        assert keys(deployment_cells(load_spec("exp2"))) == keys(
            exp2_cells(range(1, 11))
        )

    def test_exp5_spec_compiles_to_the_legacy_cells(self):
        assert keys(deployment_cells(load_spec("exp5"))) == keys(
            exp5_cells((10, 20, 30, 40, 50))
        )

    def test_exp3_exp4_share_the_exp2_matrix(self):
        exp2 = keys(deployment_cells(load_spec("exp2")))
        assert keys(deployment_cells(load_spec("exp3"))) == exp2
        assert keys(deployment_cells(load_spec("exp4"))) == exp2


# ----------------------------------------------------------------------
# Byte locks: legacy run -> cache -> suite replay, identical tables
# ----------------------------------------------------------------------
class TestByteIdenticalTables:
    def test_exp1(self, tmp_path):
        counts = (2, 3)
        legacy_points = exp1_run(
            counts,
            frameworks=fast(),
            runner=ExperimentRunner(cache_dir=str(tmp_path)),
        )
        report = run_suite(
            exp1_testbed.suite_spec(counts),
            runner=ExperimentRunner(cache_dir=str(tmp_path)),
            frameworks_override=fast(),
        )
        # every cell replayed from the legacy run's cache: the spec
        # compiles to the very same content-addressed keys
        assert report.cached_cells == report.num_cells == 6
        assert report.render() == exp1_render(legacy_points)
        # the module path shares the bytes too
        points = exp1_testbed.run(
            counts,
            frameworks=fast(),
            runner=ExperimentRunner(cache_dir=str(tmp_path)),
        )
        assert exp1_testbed.render(points) == exp1_render(legacy_points)

    def test_exp2_exp3_exp4(self, tmp_path):
        topology_ids = (1,)
        num_programs = 4
        legacy_points = exp2_run(
            topology_ids,
            num_programs,
            frameworks=fast(),
            runner=ExperimentRunner(cache_dir=str(tmp_path)),
        )
        report = run_suite(
            exp2_overhead.suite_spec(topology_ids, num_programs),
            runner=ExperimentRunner(cache_dir=str(tmp_path)),
            frameworks_override=fast(),
        )
        assert report.cached_cells == report.num_cells == 3
        assert report.render() == exp2_render(legacy_points)

        points = exp2_overhead.run(
            topology_ids,
            num_programs,
            frameworks=fast(),
            runner=ExperimentRunner(cache_dir=str(tmp_path)),
        )
        assert exp2_overhead.render(points) == exp2_render(legacy_points)
        assert exp3_exectime.render(points) == exp3_render(legacy_points)
        assert exp4_endtoend.render(points) == exp4_render(legacy_points)

    def test_exp5(self, tmp_path):
        counts = (2, 3)
        legacy_points = exp5_run(
            counts,
            topology_id=1,
            frameworks=fast(),
            runner=ExperimentRunner(cache_dir=str(tmp_path)),
        )
        report = run_suite(
            exp5_scalability.suite_spec(counts, topology_id=1),
            runner=ExperimentRunner(cache_dir=str(tmp_path)),
            frameworks_override=fast(),
        )
        assert report.cached_cells == report.num_cells == 6
        assert report.render() == exp5_render(legacy_points)


# ----------------------------------------------------------------------
# Deterministic pipelines: independent runs must agree byte-for-byte
# ----------------------------------------------------------------------
class TestDeterministicPipelines:
    def test_exp6(self):
        legacy = exp6_rows(
            num_sketches=3, frameworks=[Ffl(), HermesHeuristic()]
        )
        rows = exp6_resources.run(
            num_sketches=3, frameworks=[Ffl(), HermesHeuristic()]
        )
        assert [
            (r.strategy, r.total_stage_units, r.num_mats,
             r.extra_vs_ground_truth)
            for r in rows
        ] == legacy
        assert exp6_resources.render(rows) == exp6_render(legacy)

        spec = SuiteSpec.from_dict(
            {
                "suite": "repro.suite/v1",
                "name": "exp6",
                "kind": "resources",
                "axes": {"frameworks": ["ffl", "hermes"]},
                "params": {"num_sketches": 3},
                "aggregate": ["exp6"],
            }
        )
        assert run_suite(spec).render() == exp6_render(legacy)

    def test_exp7(self):
        legacy_points = exp7_run((0,), num_events=2)
        spec = SuiteSpec.from_dict(
            {
                "suite": "repro.suite/v1",
                "name": "exp7",
                "kind": "churn",
                "axes": {"seeds": [0]},
                "params": {"events": 2},
                "aggregate": ["exp7"],
            }
        )
        report = run_suite(spec)
        seed, topology_spec, legacy_report, workload_spec = legacy_points[0]
        # seeded histories are deterministic across pipelines
        assert report.cells[0]["seed"] == seed
        assert report.cells[0]["topology"] == topology_spec
        assert report.cells[0]["digest"] == legacy_report.history_digest
        # rendering lock on shared reports (convergence columns are
        # measured wall-clock, so the table is compared on one run)
        points = [
            exp7_churn.Exp7Point(
                seed, topology_spec, legacy_report, workload_spec
            )
        ]
        assert exp7_churn.table(points).render() == exp7_render(
            legacy_points
        )

    def test_fig2(self):
        legacy = fig2_rows()
        rows = fig2_motivation.run()
        assert [
            (r.packet_size, r.overhead_bytes, r.fct_ratio, r.goodput_ratio)
            for r in rows
        ] == legacy
        assert fig2_motivation.render(rows) == fig2_render(legacy)

        report = run_suite(load_spec("fig2"))
        assert report.render() == fig2_render(legacy)
        assert report.tables == [fig2_render(legacy)]
