"""Unit tests for the runtime controller."""

import pytest

from repro.control import Controller, ControllerError
from repro.core import Hermes
from repro.dataplane.rules import MatchKind, MatchSpec, Rule
from repro.network import linear_topology
from tests.conftest import make_sketch_program


@pytest.fixture
def controller(six_programs, small_line):
    result = Hermes().deploy(six_programs, small_line)
    return Controller(result.plan)


class TestLookup:
    def test_resolve_returns_switch_and_stages(self, controller):
        switch, stages = controller.resolve("p0.hash")
        assert switch in controller.plan.network.switch_names
        assert stages and all(s >= 1 for s in stages)

    def test_resolve_matches_plan(self, controller):
        for mat_name in controller.plan.placements:
            switch, _stages = controller.resolve(mat_name)
            assert switch == controller.plan.switch_of(mat_name)

    def test_unknown_mat(self, controller):
        with pytest.raises(ControllerError, match="no deployed MAT"):
            controller.table("ghost")

    def test_tables_on_switch(self, controller):
        for switch in controller.plan.occupied_switches():
            names = {t.mat_name for t in controller.tables_on(switch)}
            assert names == set(controller.plan.mats_on(switch))


class TestRuleManagement:
    def rule(self, value=1):
        return Rule(
            matches=(
                MatchSpec("ipv4.src_addr", MatchKind.EXACT, value),
            ),
            action_name="hash_meta_p0_idx",
        )

    def test_install_and_remove(self, controller):
        event = controller.install_rule("p0.hash", self.rule())
        assert event.kind == "install"
        assert controller.table("p0.hash").occupancy == 1
        controller.remove_rule("p0.hash", self.rule())
        assert controller.table("p0.hash").occupancy == 0
        assert len(controller.event_log) == 2

    def test_capacity_enforced(self, controller):
        handle = controller.table("p0.hash")
        for i in range(handle.capacity):
            controller.install_rule("p0.hash", self.rule(i))
        with pytest.raises(ControllerError, match="full"):
            controller.install_rule("p0.hash", self.rule(9999))

    def test_batch_install_all_or_nothing(self, controller):
        handle = controller.table("p0.hash")
        too_many = [self.rule(i) for i in range(handle.capacity + 1)]
        with pytest.raises(ControllerError, match="free entries"):
            controller.install_rules("p0.hash", too_many)
        assert handle.occupancy == 0  # nothing installed

    def test_schema_checked(self, controller):
        bad_action = Rule(action_name="ghost_action")
        with pytest.raises(ControllerError, match="unknown action"):
            controller.install_rule("p0.hash", bad_action)
        bad_field = Rule(
            matches=(MatchSpec("tcp.flags", MatchKind.EXACT, 1),),
            action_name="hash_meta_p0_idx",
        )
        with pytest.raises(ControllerError, match="not in"):
            controller.install_rule("p0.hash", bad_field)

    def test_remove_missing_rule(self, controller):
        with pytest.raises(ControllerError, match="not installed"):
            controller.remove_rule("p0.hash", self.rule())

    def test_drain(self, controller):
        for i in range(3):
            controller.install_rule("p0.hash", self.rule(i))
        assert controller.drain_table("p0.hash") == 3
        assert controller.table("p0.hash").occupancy == 0

    def test_occupancy_report_and_switch_totals(self, controller):
        controller.install_rule("p0.hash", self.rule())
        report = controller.occupancy_report()
        assert report["p0.hash"][0] == 1
        switch, _stages = controller.resolve("p0.hash")
        assert controller.switch_occupancy(switch) >= 1

    def test_rules_to_replay(self, controller):
        controller.install_rule("p0.hash", self.rule(5))
        replay = controller.rules_to_replay("p0.hash")
        assert len(replay) == 1
        assert replay[0].matches[0].value == 5


class TestRebind:
    """install -> migrate -> install: the controller follows the plan."""

    @pytest.fixture
    def controller(self, six_programs):
        # A WAN with enough spare capacity that failing any one host
        # still leaves a feasible re-deployment (small_line does not).
        from repro.core import Hermes
        from repro.network import random_wan

        network = random_wan(12, 18, seed=4, num_stages=4)
        return Controller(Hermes().deploy(six_programs, network).plan)

    def rule(self, value=1):
        return Rule(
            matches=(
                MatchSpec("ipv4.src_addr", MatchKind.EXACT, value),
            ),
            action_name="hash_meta_p0_idx",
        )

    def migrated(self, controller):
        """A plan with p0.hash's host failed, forcing it to move."""
        from repro.control import MigrationPlanner

        victim = controller.plan.switch_of("p0.hash")
        return (
            MigrationPlanner()
            .handle_switch_failure(controller.plan, victim)
            .new_plan
        )

    def test_install_migrate_install(self, controller):
        controller.install_rule("p0.hash", self.rule(1))
        old_switch = controller.plan.switch_of("p0.hash")
        new_plan = self.migrated(controller)
        report = controller.rebind(new_plan)
        assert controller.plan is new_plan
        # The runtime rule survived the move and is replayed.
        assert "p0.hash" in report.moved
        assert report.replayed_rules >= 1
        switch, _ = controller.resolve("p0.hash")
        assert switch == new_plan.switch_of("p0.hash")
        assert switch != old_switch
        assert controller.table("p0.hash").occupancy == 1
        # Installs after the migration land on the new switch.
        event = controller.install_rule("p0.hash", self.rule(2))
        assert event.switch == switch
        assert controller.table("p0.hash").occupancy == 2

    def test_replay_events_logged(self, controller):
        controller.install_rule("p0.hash", self.rule(3))
        controller.rebind(self.migrated(controller))
        replays = [
            e for e in controller.event_log if e.kind == "replay"
        ]
        assert replays
        assert any(e.mat_name == "p0.hash" for e in replays)

    def test_unmoved_mats_not_replayed(self, controller):
        old_plan = controller.plan
        new_plan = self.migrated(controller)
        report = controller.rebind(new_plan)
        stayed = [
            name
            for name in new_plan.placements
            if old_plan.switch_of(name) == new_plan.switch_of(name)
        ]
        assert not (set(report.moved) & set(stayed))

    def test_dropped_mat_rejected_with_clear_error(
        self, six_programs, small_line
    ):
        from repro.core import Hermes

        full = Hermes().deploy(six_programs, small_line)
        controller = Controller(full.plan)
        shrunk = Hermes().deploy(six_programs[:3], small_line)
        report = controller.rebind(shrunk.plan)
        dropped = sorted(
            set(full.plan.placements) - set(shrunk.plan.placements)
        )
        assert list(report.dropped) == dropped
        with pytest.raises(
            ControllerError, match="dropped by a migration"
        ):
            controller.install_rule(dropped[0], self.rule())
        # Rebinding back makes the MAT installable again.
        controller.rebind(full.plan)
        controller.install_rule("p3.hash", Rule(
            matches=(
                MatchSpec("ipv4.src_addr", MatchKind.EXACT, 1),
            ),
            action_name="hash_meta_p3_idx",
        ))

    def test_added_mats_reported(self, six_programs, small_line):
        from repro.core import Hermes

        small = Hermes().deploy(six_programs[:3], small_line)
        controller = Controller(small.plan)
        full = Hermes().deploy(six_programs, small_line)
        report = controller.rebind(full.plan)
        assert set(report.added) == (
            set(full.plan.placements) - set(small.plan.placements)
        )
