"""Benchmark: vectorized batch engine vs the per-flow analytic loop.

The batch engine's reason to exist is throughput: evaluating a 10^5-
flow trace in a handful of NumPy array operations instead of 10^5
Python-level ``analytic_fct`` calls.  This benchmark times both engines
on the same :class:`~repro.simulation.spec.SimulationSpec` (best of
``REPS`` runs each), asserts the documented >= 10x speedup, and records
the engine-agreement deltas alongside the timings.

Results are written to ``BENCH_sim.json`` at the repo root so the
speedup contract is auditable across commits.
"""

import json
import os
import time

import pytest

from repro.simulation.contention import (
    CONTENTION_FREE_LOAD,
    CONTENTION_REL_TOLERANCE,
    ContentionEngine,
)
from repro.simulation.engine import (
    BATCH_REL_TOLERANCE,
    AnalyticEngine,
    BatchEngine,
)
from repro.simulation.netsim import uniform_path
from repro.simulation.spec import SimulationSpec
from repro.simulation.traces import TraceConfig, generate_trace

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPORT_PATH = os.path.join(_REPO_ROOT, "BENCH_sim.json")

#: Trace sizes swept by the benchmark; the contract is asserted on the
#: largest (the ISSUE's 10^5-flow trace).
SIZES = (10_000, 100_000)
CONTRACT_SIZE = 100_000
MIN_SPEEDUP = 10.0
OVERHEAD_BYTES = 96
REPS = 3
#: Offered load for the congested contention-engine column.
BENCH_LOAD = 0.9


def _time_best_of(fn, reps=REPS):
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def sim_records():
    """Loop vs batch on seeded traces, with agreement deltas."""
    records = []
    for num_flows in SIZES:
        trace = generate_trace(17, TraceConfig(num_flows=num_flows))
        spec = SimulationSpec.from_trace(
            trace, uniform_path(5), OVERHEAD_BYTES
        )
        loop_engine = AnalyticEngine()
        batch_engine = BatchEngine()
        # Warm NumPy's first-import cost outside the timed region.
        batch_engine.evaluate(spec)
        loop_s, loop = _time_best_of(lambda: loop_engine.evaluate(spec))
        batch_s, batch = _time_best_of(
            lambda: batch_engine.evaluate(spec)
        )
        max_rel_delta = max(
            abs(b - a) / a for a, b in zip(loop.fct_us, batch.fct_us)
        )
        # Contention column: congested wall-clock at BENCH_LOAD and
        # the worst per-flow FCT inflation it induces over its own
        # contention-free floor.
        busy_engine = ContentionEngine(load=BENCH_LOAD)
        calm_engine = ContentionEngine(load=CONTENTION_FREE_LOAD)
        busy_s, busy = _time_best_of(lambda: busy_engine.evaluate(spec))
        calm = calm_engine.evaluate(spec)
        max_fct_inflation = max(
            b / a for a, b in zip(calm.fct_us, busy.fct_us)
        )
        records.append(
            {
                "flows": num_flows,
                "overhead_bytes": OVERHEAD_BYTES,
                "loop": {
                    "engine": loop.engine,
                    "wall_s": round(loop_s, 4),
                },
                "batch": {
                    "engine": batch.engine,
                    "wall_s": round(batch_s, 4),
                },
                "speedup": round(loop_s / max(batch_s, 1e-9), 2),
                "max_rel_fct_delta": max_rel_delta,
                "packets_equal": batch.num_packets == loop.num_packets,
                "wire_bytes_equal": batch.wire_bytes == loop.wire_bytes,
                "contention": {
                    "engine": busy.engine,
                    "load": BENCH_LOAD,
                    "wall_s": round(busy_s, 4),
                    "speedup_vs_loop": round(
                        loop_s / max(busy_s, 1e-9), 2
                    ),
                    "max_fct_inflation": round(max_fct_inflation, 4),
                    "contended_fraction": round(
                        busy.contended_fraction, 4
                    ),
                },
            }
        )
    # Low-load agreement is measured against the per-packet exact DES
    # (the engine's documented reference), on a size-capped companion
    # trace the DES can evaluate in benchmark time.  The analytic and
    # batch engines are NOT the right reference here: they price the
    # runt last packet at full wire size, a deliberate upper bound.
    from repro.simulation.engine import ExactEngine

    capped = SimulationSpec.from_trace(
        generate_trace(
            17, TraceConfig(num_flows=2_000, max_bytes=256 * 1024)
        ),
        uniform_path(5),
        OVERHEAD_BYTES,
    )
    exact = ExactEngine().evaluate(capped)
    calm_capped = ContentionEngine(
        load=CONTENTION_FREE_LOAD
    ).evaluate(capped)
    low_load_delta = max(
        abs(c - e) / e
        for e, c in zip(exact.fct_us, calm_capped.fct_us)
    )
    agreement = {
        "reference": "exact",
        "flows": 2_000,
        "max_bytes": 256 * 1024,
        "load": CONTENTION_FREE_LOAD,
        "max_rel_fct_delta": low_load_delta,
        "packets_equal": calm_capped.num_packets == exact.num_packets,
        "wire_bytes_equal": calm_capped.wire_bytes == exact.wire_bytes,
    }
    payload = {
        "contract": {
            "flows": CONTRACT_SIZE,
            "min_speedup": MIN_SPEEDUP,
            "rel_tolerance": BATCH_REL_TOLERANCE,
            "contention": {
                "load": BENCH_LOAD,
                "min_speedup_vs_loop": MIN_SPEEDUP,
                "low_load_rel_tolerance": CONTENTION_REL_TOLERANCE,
            },
        },
        "contention_low_load_agreement": agreement,
        "traces": records,
    }
    with open(_REPORT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def test_bench_sim_batch_speedup_contract(sim_records):
    """>= 10x on the 10^5-flow trace — the engine's raison d'etre."""
    (record,) = [
        r for r in sim_records["traces"] if r["flows"] == CONTRACT_SIZE
    ]
    assert record["speedup"] >= MIN_SPEEDUP, record


def test_bench_sim_engines_agree(sim_records):
    """Speed must not cost correctness: per-flow agreement holds at
    every size, and the integer columns are exactly equal."""
    for record in sim_records["traces"]:
        assert record["max_rel_fct_delta"] < BATCH_REL_TOLERANCE, record
        assert record["packets_equal"], record
        assert record["wire_bytes_equal"], record


def test_bench_sim_contention_contract(sim_records):
    """The contention engine must stay in the vectorized class (>= 10x
    over the per-flow loop even while queueing at load 0.9) and match
    the batch engine within 1e-6 when contention is structurally
    impossible."""
    (record,) = [
        r for r in sim_records["traces"] if r["flows"] == CONTRACT_SIZE
    ]
    column = record["contention"]
    assert column["speedup_vs_loop"] >= MIN_SPEEDUP, column
    assert column["max_fct_inflation"] >= 1.0, column
    agreement = sim_records["contention_low_load_agreement"]
    assert (
        agreement["max_rel_fct_delta"] < CONTENTION_REL_TOLERANCE
    ), agreement
    assert agreement["packets_equal"], agreement
    assert agreement["wire_bytes_equal"], agreement


def test_bench_sim_report(sim_records):
    from conftest import record_report

    rows = [
        f"Batch vs per-flow-loop evaluation (wall seconds, best of {REPS})",
        f"{'flows':>8} {'loop s':>8} {'batch s':>9} {'cont s':>8} "
        f"{'speedup':>8} {'max rel delta':>14} {'fct infl':>9}",
    ]
    for record in sim_records["traces"]:
        column = record["contention"]
        rows.append(
            f"{record['flows']:>8} "
            f"{record['loop']['wall_s']:>8.3f} "
            f"{record['batch']['wall_s']:>9.4f} "
            f"{column['wall_s']:>8.4f} "
            f"{record['speedup']:>7.2f}x "
            f"{record['max_rel_fct_delta']:>14.2e} "
            f"x{column['max_fct_inflation']:>8.3f}"
        )
    contract = sim_records["contract"]
    rows.append(
        f"contract: >= {contract['min_speedup']:.0f}x at "
        f"{contract['flows']} flows, "
        f"rel tolerance {contract['rel_tolerance']:.0e}; "
        f"contention column at load "
        f"{contract['contention']['load']:.1f}"
    )
    record_report("\n".join(rows))
    assert os.path.exists(_REPORT_PATH)
