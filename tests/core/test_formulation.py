"""Unit tests for the P#1 MILP formulation."""

import math

import pytest

from repro.core.analyzer import ProgramAnalyzer
from repro.core.deployment import DeploymentError
from repro.core.formulation import (
    HermesMilp,
    MilpFormulation,
    OBJECTIVE_LATENCY,
    OBJECTIVE_OVERHEAD,
    OBJECTIVE_SWITCHES,
    select_candidates,
)
from repro.core.heuristic import GreedyHeuristic
from repro.network.generators import linear_topology
from repro.network.paths import PathEnumerator
from tests.conftest import make_sketch_program


@pytest.fixture
def six_tdg(six_programs):
    return ProgramAnalyzer().analyze(six_programs)


@pytest.fixture
def line4():
    return linear_topology(3, num_stages=4, stage_capacity=1.0)


class TestValidation:
    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError, match="objective"):
            MilpFormulation(objective="fastest")

    def test_rejects_bad_epsilons(self):
        with pytest.raises(ValueError):
            MilpFormulation(epsilon1=0)
        with pytest.raises(ValueError):
            MilpFormulation(epsilon2=0)


class TestSelectCandidates:
    def test_covers_demand(self, six_tdg, line4):
        paths = PathEnumerator(line4)
        candidates = select_candidates(six_tdg, line4, paths)
        capacity = sum(
            line4.switch(u).total_capacity for u in candidates
        )
        assert capacity >= six_tdg.total_resource_demand()

    def test_max_candidates_respected_when_capacity_allows(
        self, sketch_program, line4
    ):
        tdg = ProgramAnalyzer().analyze([sketch_program])
        paths = PathEnumerator(line4)
        candidates = select_candidates(
            tdg, line4, paths, max_candidates=1
        )
        assert len(candidates) == 1

    def test_raises_when_capacity_insufficient(self, six_tdg):
        tiny = linear_topology(1, num_stages=2, stage_capacity=1.0)
        paths = PathEnumerator(tiny)
        with pytest.raises(DeploymentError, match="stage units"):
            select_candidates(six_tdg, tiny, paths)

    def test_requires_programmable(self, six_tdg):
        net = linear_topology(3, programmable=False)
        with pytest.raises(DeploymentError, match="programmable"):
            select_candidates(six_tdg, net, PathEnumerator(net))


class TestBuild:
    def test_model_structure(self, six_tdg, line4):
        paths = PathEnumerator(line4)
        handles = MilpFormulation().build(six_tdg, line4, paths)
        model = handles.model
        num_mats = len(six_tdg)
        num_candidates = len(handles.candidates)
        assert len(handles.placement) == num_mats * num_candidates
        assert len(handles.occupied) == num_candidates
        assert handles.a_max is not None
        assert model.num_constraints > num_mats  # at least placement rows

    def test_epsilon2_constraint_present(self, six_tdg, line4):
        paths = PathEnumerator(line4)
        handles = MilpFormulation(epsilon2=2).build(six_tdg, line4, paths)
        names = {c.name for c in handles.model.constraints if c.name}
        assert "eps2" in names

    def test_epsilon1_constraint_present(self, six_tdg, line4):
        paths = PathEnumerator(line4)
        handles = MilpFormulation(epsilon1=1e9).build(six_tdg, line4, paths)
        names = {c.name for c in handles.model.constraints if c.name}
        assert "eps1" in names

    def test_mats_cap_constraint(self, six_tdg, line4):
        paths = PathEnumerator(line4)
        handles = MilpFormulation(max_mats_per_switch=5).build(
            six_tdg, line4, paths
        )
        names = {c.name for c in handles.model.constraints if c.name}
        assert any(n.startswith("mats[") for n in names)


class TestDeploy:
    def test_optimal_plan_validates(self, six_tdg, line4):
        plan = HermesMilp(time_limit_s=60).deploy(six_tdg, line4)
        plan.validate()
        assert len(plan.placements) == len(six_tdg)

    def test_optimal_overhead_at_most_heuristic(self, six_tdg, line4):
        optimal = HermesMilp(time_limit_s=60).deploy(six_tdg, line4)
        greedy = GreedyHeuristic().deploy(six_tdg, line4)
        assert (
            optimal.max_metadata_bytes() <= greedy.max_metadata_bytes()
        )

    def test_switch_objective_minimizes_occupancy(self, line4):
        programs = [make_sketch_program(f"q{i}") for i in range(2)]
        tdg = ProgramAnalyzer().analyze(programs)
        plan = MilpFormulation(
            objective=OBJECTIVE_SWITCHES, time_limit_s=60
        ).deploy(tdg, line4)
        assert plan.num_occupied_switches() == 1

    def test_latency_objective_runs(self, line4):
        programs = [make_sketch_program(f"q{i}") for i in range(2)]
        tdg = ProgramAnalyzer().analyze(programs)
        plan = MilpFormulation(
            objective=OBJECTIVE_LATENCY, time_limit_s=60
        ).deploy(tdg, line4)
        plan.validate()

    def test_epsilon2_respected_in_plan(self, six_tdg, line4):
        plan = HermesMilp(epsilon2=2, time_limit_s=60).deploy(
            six_tdg, line4
        )
        assert plan.num_occupied_switches() <= 2

    def test_explicit_paths_mode(self, line4):
        programs = [make_sketch_program(f"q{i}") for i in range(2)]
        tdg = ProgramAnalyzer().analyze(programs)
        formulation = MilpFormulation(
            objective=OBJECTIVE_OVERHEAD,
            epsilon1=1e12,
            explicit_paths=True,
            time_limit_s=60,
        )
        plan = formulation.deploy(tdg, line4)
        plan.validate()

    def test_last_solution_recorded(self, six_tdg, line4):
        formulation = HermesMilp(time_limit_s=60)
        formulation.deploy(six_tdg, line4)
        assert formulation.last_solution is not None
        assert formulation.last_solution.status.has_solution
