#!/usr/bin/env python3
"""Bounding coordination overhead with PINT-style sampling.

The paper names PINT as complementary to Hermes: Hermes minimizes what
must cross switches; PINT caps what each packet carries.  This example
shows the combination on an INT-heavy deployment: a channel shipping
22 bytes of telemetry is bounded to 6 bytes per packet, and the
coverage curve shows how many packets the collector needs before it has
seen every value — the latency/overhead tradeoff PINT trades on.

Run:  python examples/pint_bounded_telemetry.py
"""

from repro.core.coordination import MetadataChannel
from repro.dataplane.fields import metadata_field
from repro.experiments.harness import end_to_end_impact
from repro.extensions.pint import PintChannel, simulate_coverage


def telemetry_channel() -> MetadataChannel:
    """A hand-rolled INT channel: Table I's heaviest metadata."""
    fields = [
        metadata_field("int.switch_id", 32),  # 4 B
        metadata_field("int.queue_len", 48),  # 6 B
        metadata_field("int.ts_ingress", 48),  # 6 B
        metadata_field("int.ts_egress", 48),  # 6 B
    ]
    layout = []
    offset = 0
    for fld in fields:
        layout.append((fld, offset))
        offset += fld.size_bytes
    return MetadataChannel(
        source="edge1",
        destination="sink",
        edges=[],
        declared_bytes=offset,
        layout=layout,
        layout_bytes=offset,
    )


def main() -> None:
    channel = telemetry_channel()
    print(
        f"deterministic channel {channel.source} -> "
        f"{channel.destination}: {channel.layout_bytes} B/packet"
    )
    fct_full, gp_full = end_to_end_impact(channel.layout_bytes, 512)
    print(
        f"  512B-packet impact: FCT {(fct_full - 1) * 100:+.1f}%, "
        f"goodput {(gp_full - 1) * 100:+.1f}%\n"
    )

    values = {
        "int.switch_id": 7,
        "int.queue_len": 1200,
        "int.ts_ingress": 123_456,
        "int.ts_egress": 123_999,
    }
    for budget in (6, 12):
        pint = PintChannel(channel, budget_bytes=budget)
        curve, completed = simulate_coverage(pint, values, 64)
        fct, gp = end_to_end_impact(budget, 512)
        estimate = pint.expected_completion_packets()
        print(f"PINT budget {budget} B/packet:")
        print(
            f"  512B-packet impact: FCT {(fct - 1) * 100:+.1f}%, "
            f"goodput {(gp - 1) * 100:+.1f}%"
        )
        print(
            f"  collector complete after {completed} packets "
            f"(coupon-collector estimate {estimate:.1f})"
        )
        milestones = {
            pkt: f"{cov:.0%}"
            for pkt, cov in enumerate(curve[:16], start=1)
        }
        shown = ", ".join(
            f"p{pkt}={cov}" for pkt, cov in list(milestones.items())[:8]
        )
        print(f"  coverage curve: {shown}\n")


if __name__ == "__main__":
    main()
