"""Store-and-forward flow transmission.

A flow's packets traverse a chain of hops (switch + outgoing link).
Each hop serializes one packet at a time at its line rate, then the
packet propagates for the hop's latency — the classic store-and-forward
pipeline.  FCT is the delivery time of the last packet; goodput is
application bytes over FCT.

Two implementations agree with each other (see the property tests):

* :class:`FlowSimulator` — discrete-event, packet by packet, supports
  heterogeneous hops and short last packets exactly;
* :func:`analytic_fct` — closed form for uniform packets, used by the
  big sweeps where simulating 10^6 packets x 100 runs is pointless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.simulation.events import Simulator
from repro.simulation.flow import Flow, packetize
from repro.simulation.metrics import FlowMetrics
from repro.simulation.packet import Packet


@dataclass(frozen=True)
class HopSpec:
    """One hop of the path: a serializing port plus propagation delay.

    Attributes:
        rate_gbps: Line rate of the outgoing port.
        latency_us: Propagation + switch processing latency.
    """

    rate_gbps: float = 100.0
    latency_us: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_gbps <= 0:
            raise ValueError("rate_gbps must be positive")
        if self.latency_us < 0:
            raise ValueError("latency_us must be non-negative")

    def tx_time_us(self, wire_bytes: int) -> float:
        """Serialization time of a packet (Gbps == 1000 bits/µs)."""
        return wire_bytes * 8.0 / (self.rate_gbps * 1000.0)


def uniform_path(
    hops: int, rate_gbps: float = 100.0, latency_us: float = 1.0
) -> List[HopSpec]:
    """``hops`` identical hops — the paper's 5-hop DCN path."""
    if hops <= 0:
        raise ValueError("hops must be positive")
    return [HopSpec(rate_gbps, latency_us) for _ in range(hops)]


class FlowSimulator:
    """Discrete-event transmission of one flow over a hop chain."""

    def __init__(self, path: Sequence[HopSpec]) -> None:
        if not path:
            raise ValueError("path needs at least one hop")
        self.path = list(path)

    def run(self, flow: Flow) -> FlowMetrics:
        """Transmit the flow; returns its measured metrics."""
        sim = Simulator()
        num_hops = len(self.path)
        hop_free = [0.0] * num_hops  # when each hop's port is idle
        last_delivery = [0.0]
        delivered = [0]

        def arrive(packet: Packet, hop_idx: int, when: float) -> None:
            if hop_idx == num_hops:
                delivered[0] += 1
                last_delivery[0] = max(last_delivery[0], when)
                return
            hop = self.path[hop_idx]
            start = max(when, hop_free[hop_idx])
            done = start + hop.tx_time_us(packet.wire_bytes)
            hop_free[hop_idx] = done
            arrival_next = done + hop.latency_us
            sim.schedule_at(
                arrival_next, lambda p=packet, h=hop_idx + 1, t=arrival_next: arrive(p, h, t)
            )

        for packet in packetize(flow):
            # All packets are ready at t=0; the first hop's FIFO paces
            # them out at line rate.
            arrive(packet, 0, 0.0)
        sim.run()

        fct = last_delivery[0]
        return FlowMetrics(
            fct_us=fct,
            goodput_gbps=flow.message_bytes * 8.0 / (fct * 1000.0),
            num_packets=delivered[0],
            wire_bytes_per_hop=flow.total_wire_bytes,
        )


def analytic_fct(flow: Flow, path: Sequence[HopSpec]) -> FlowMetrics:
    """Closed-form FCT/goodput for uniform-size packets.

    For N equal packets over hops with serialization times ``t_h`` and
    latencies ``l_h``, the pipeline delivers the last packet at

        sum(t_h) + sum(l_h) + (N - 1) * max(t_h)

    — the first packet's cut-through-free traversal plus the bottleneck
    pacing every subsequent packet.  A short final packet makes this an
    upper bound that is exact whenever the message divides evenly into
    packets.
    """
    if not path:
        raise ValueError("path needs at least one hop")
    wire = flow.effective_payload_bytes + flow.overhead_bytes + flow.header_bytes
    tx_times = [hop.tx_time_us(wire) for hop in path]
    latencies = [hop.latency_us for hop in path]
    n = flow.num_packets
    fct = sum(tx_times) + sum(latencies) + (n - 1) * max(tx_times)
    return FlowMetrics(
        fct_us=fct,
        goodput_gbps=flow.message_bytes * 8.0 / (fct * 1000.0),
        num_packets=n,
        wire_bytes_per_hop=flow.total_wire_bytes,
    )
