"""Data plane programs.

A :class:`Program` is an ordered sequence of MATs, mirroring the control
flow of a P4 pipeline: table ``mats[i]`` is applied before ``mats[i+1]``.
Optional *conditional* edges record that one table's result gates
whether a later table executes at all (successor dependencies, type 𝕊).

The program order matters: dependency classification between a pair of
tables depends on which one executes first (a write-then-match pair is a
match dependency; match-then-write is only a reverse-match dependency).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.dataplane.mat import Mat


class ProgramValidationError(ValueError):
    """Raised when a program's structure is inconsistent."""


class Program:
    """An ordered data plane program.

    Args:
        name: Program name (unique within a deployment request).
        mats: Tables in pipeline order.
        conditional_edges: Pairs ``(gate, gated)`` of MAT names where the
            processing result of ``gate`` decides whether ``gated`` runs
            (e.g. an if-branch on a metadata flag).  ``gate`` must come
            before ``gated`` in pipeline order.
    """

    def __init__(
        self,
        name: str,
        mats: Sequence[Mat],
        conditional_edges: Iterable[Tuple[str, str]] = (),
    ) -> None:
        if not name:
            raise ProgramValidationError("program name must be non-empty")
        if not mats:
            raise ProgramValidationError(f"program {name!r} has no MATs")
        self.name = name
        self.mats: Tuple[Mat, ...] = tuple(mats)
        names = [m.name for m in self.mats]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ProgramValidationError(
                f"program {name!r} has duplicate MAT names: {dupes}"
            )
        self._index: Dict[str, int] = {m.name: i for i, m in enumerate(self.mats)}
        self.conditional_edges: FrozenSet[Tuple[str, str]] = frozenset(
            conditional_edges
        )
        self._validate_conditionals()

    def _validate_conditionals(self) -> None:
        for gate, gated in self.conditional_edges:
            if gate not in self._index:
                raise ProgramValidationError(
                    f"program {self.name!r}: conditional gate {gate!r} "
                    "is not a MAT of this program"
                )
            if gated not in self._index:
                raise ProgramValidationError(
                    f"program {self.name!r}: gated table {gated!r} "
                    "is not a MAT of this program"
                )
            if self._index[gate] >= self._index[gated]:
                raise ProgramValidationError(
                    f"program {self.name!r}: gate {gate!r} must precede "
                    f"{gated!r} in pipeline order"
                )

    def __len__(self) -> int:
        return len(self.mats)

    def __iter__(self):
        return iter(self.mats)

    def mat(self, name: str) -> Mat:
        try:
            return self.mats[self._index[name]]
        except KeyError:
            raise KeyError(f"program {self.name!r} has no MAT {name!r}") from None

    def position(self, name: str) -> int:
        """Pipeline position (0-based) of the named MAT."""
        return self._index[name]

    def executes_before(self, first: str, second: str) -> bool:
        return self._index[first] < self._index[second]

    def is_conditional(self, gate: str, gated: str) -> bool:
        return (gate, gated) in self.conditional_edges

    @property
    def total_resource_demand(self) -> float:
        """Sum of stage fractions over all tables (``sum R(a)``)."""
        return sum(m.resource_demand for m in self.mats)

    def field_names(self) -> Set[str]:
        """Every field name referenced anywhere in the program."""
        out: Set[str] = set()
        for mat in self.mats:
            out |= mat.match_fields.names
            out |= mat.modified_fields.names
            out |= mat.read_fields.names
        return out

    def writers_of(self, field_name: str) -> List[Mat]:
        """Tables that modify the named field, in pipeline order."""
        return [m for m in self.mats if field_name in m.modified_fields.names]

    def matchers_of(self, field_name: str) -> List[Mat]:
        """Tables that match on the named field, in pipeline order."""
        return [m for m in self.mats if field_name in m.match_fields.names]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Program({self.name!r}, {len(self.mats)} MATs)"
