"""The runtime controller.

After deployment, administrators keep managing the network: installing
measurement rules, updating ACL entries, draining tables.  Logical
programs address their MATs by name; the controller resolves names to
the hosting switch (and pipeline stages) through the deployment plan
and enforces each table's rule capacity ``C_a``.

All mutations are recorded as :class:`RuleEvent` entries, giving the
audit trail real controllers (ONOS, P4Runtime shims) expose.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.deployment import DeploymentPlan
from repro.dataplane.mat import Mat
from repro.dataplane.rules import Rule


class ControllerError(RuntimeError):
    """A control-plane operation could not be applied."""


class _EventKind(enum.Enum):
    INSTALL = "install"
    REMOVE = "remove"
    REPLAY = "replay"


@dataclass(frozen=True)
class RuleEvent:
    """One audit-log entry."""

    sequence: int
    kind: str
    mat_name: str
    switch: str
    rule: Rule


@dataclass(frozen=True)
class RebindReport:
    """What :meth:`Controller.rebind` did to the table set.

    Attributes:
        moved: MATs whose hosting switch changed (rules replayed).
        replayed_rules: Total rules re-installed on moved MATs.
        dropped: MATs present before but absent from the new plan.
        added: MATs the new plan introduces.
    """

    moved: Tuple[str, ...]
    replayed_rules: int
    dropped: Tuple[str, ...]
    added: Tuple[str, ...]


@dataclass
class TableHandle:
    """Runtime view of one deployed MAT.

    Attributes:
        mat_name: Qualified MAT name in the merged TDG.
        switch: Hosting switch.
        stages: Pipeline stages the MAT occupies.
        capacity: ``C_a`` — maximum rules.
        installed: Currently installed rules (baseline rules from the
            program plus runtime additions).
    """

    mat_name: str
    switch: str
    stages: Tuple[int, ...]
    capacity: int
    installed: List[Rule]

    @property
    def occupancy(self) -> int:
        return len(self.installed)

    @property
    def free_entries(self) -> int:
        return self.capacity - self.occupancy


class Controller:
    """Runtime rule management over a deployed plan.

    Args:
        plan: A validated deployment plan.  The MATs' pre-installed
            rules become the initial table contents.
    """

    def __init__(self, plan: DeploymentPlan) -> None:
        self.plan = plan
        self._tables: Dict[str, TableHandle] = {}
        self._log: List[RuleEvent] = []
        self._seq = itertools.count(1)
        self._dropped: set = set()
        for mat_name, placement in plan.placements.items():
            mat = plan.tdg.node(mat_name)
            self._tables[mat_name] = TableHandle(
                mat_name=mat_name,
                switch=placement.switch,
                stages=placement.stages,
                capacity=mat.capacity,
                installed=list(mat.rules),
            )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def table(self, mat_name: str) -> TableHandle:
        try:
            return self._tables[mat_name]
        except KeyError:
            if mat_name in self._dropped:
                raise ControllerError(
                    f"MAT {mat_name!r} was dropped by a migration; its "
                    "table no longer exists on any switch"
                ) from None
            raise ControllerError(
                f"no deployed MAT named {mat_name!r}"
            ) from None

    def resolve(self, mat_name: str) -> Tuple[str, Tuple[int, ...]]:
        """Where a logical MAT physically lives: (switch, stages)."""
        handle = self.table(mat_name)
        return handle.switch, handle.stages

    def tables_on(self, switch: str) -> List[TableHandle]:
        return [t for t in self._tables.values() if t.switch == switch]

    def switch_occupancy(self, switch: str) -> int:
        """Total rules installed across a switch's tables."""
        return sum(t.occupancy for t in self.tables_on(switch))

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def install_rule(self, mat_name: str, rule: Rule) -> RuleEvent:
        """Install one rule, enforcing capacity and schema.

        Raises:
            ControllerError: If the table is full, the rule references
                an unknown action, or matches undeclared fields.
        """
        handle = self.table(mat_name)
        mat = self.plan.tdg.node(mat_name)
        self._check_rule(mat, rule)
        if handle.occupancy >= handle.capacity:
            raise ControllerError(
                f"table {mat_name!r} is full "
                f"({handle.occupancy}/{handle.capacity})"
            )
        handle.installed.append(rule)
        event = RuleEvent(
            next(self._seq), _EventKind.INSTALL.value, mat_name,
            handle.switch, rule,
        )
        self._log.append(event)
        return event

    def install_rules(
        self, mat_name: str, rules: List[Rule]
    ) -> List[RuleEvent]:
        """Batch install; all-or-nothing on capacity."""
        handle = self.table(mat_name)
        if handle.free_entries < len(rules):
            raise ControllerError(
                f"table {mat_name!r} has {handle.free_entries} free "
                f"entries, cannot install {len(rules)}"
            )
        return [self.install_rule(mat_name, rule) for rule in rules]

    def remove_rule(self, mat_name: str, rule: Rule) -> RuleEvent:
        handle = self.table(mat_name)
        try:
            handle.installed.remove(rule)
        except ValueError:
            raise ControllerError(
                f"rule not installed in {mat_name!r}"
            ) from None
        event = RuleEvent(
            next(self._seq), _EventKind.REMOVE.value, mat_name,
            handle.switch, rule,
        )
        self._log.append(event)
        return event

    def drain_table(self, mat_name: str) -> int:
        """Remove every installed rule; returns how many were removed."""
        handle = self.table(mat_name)
        count = len(handle.installed)
        for rule in list(handle.installed):
            self.remove_rule(mat_name, rule)
        return count

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def rebind(self, plan: DeploymentPlan) -> RebindReport:
        """Point the controller at a migrated plan.

        Without this, rule installs after a migration resolve against
        the *old* plan's handles and target a switch that may no longer
        host the MAT (or no longer exist).  ``rebind`` remaps every
        :class:`TableHandle` to the new plan's placement, carries the
        installed rules along — logging one ``replay`` event per rule
        on each MAT that changed switches, the re-installs an operator
        would drive — and forgets tables for MATs the new plan dropped;
        later installs against those raise a :class:`ControllerError`
        naming the migration instead of silently targeting dead state.
        """
        old_tables = self._tables
        new_tables: Dict[str, TableHandle] = {}
        moved: List[str] = []
        added: List[str] = []
        replayed = 0
        for mat_name, placement in plan.placements.items():
            mat = plan.tdg.node(mat_name)
            old = old_tables.get(mat_name)
            installed = (
                list(old.installed) if old is not None else list(mat.rules)
            )
            handle = TableHandle(
                mat_name=mat_name,
                switch=placement.switch,
                stages=placement.stages,
                capacity=mat.capacity,
                installed=installed,
            )
            new_tables[mat_name] = handle
            if old is None:
                added.append(mat_name)
            elif old.switch != placement.switch:
                moved.append(mat_name)
                for rule in installed:
                    self._log.append(
                        RuleEvent(
                            next(self._seq),
                            _EventKind.REPLAY.value,
                            mat_name,
                            placement.switch,
                            rule,
                        )
                    )
                replayed += len(installed)
        dropped = sorted(set(old_tables) - set(new_tables))
        self._dropped |= set(dropped)
        self._dropped -= set(new_tables)
        self._tables = new_tables
        self.plan = plan
        return RebindReport(
            moved=tuple(sorted(moved)),
            replayed_rules=replayed,
            dropped=tuple(dropped),
            added=tuple(sorted(added)),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def event_log(self) -> List[RuleEvent]:
        return list(self._log)

    def rules_to_replay(self, mat_name: str) -> List[Rule]:
        """The rules a migration must re-install elsewhere."""
        return list(self.table(mat_name).installed)

    def occupancy_report(self) -> Mapping[str, Tuple[int, int]]:
        """MAT name -> (installed, capacity) for every table."""
        return {
            name: (handle.occupancy, handle.capacity)
            for name, handle in self._tables.items()
        }

    @staticmethod
    def _check_rule(mat: Mat, rule: Rule) -> None:
        known_actions = {a.name for a in mat.actions}
        if rule.action_name not in known_actions:
            raise ControllerError(
                f"rule references unknown action {rule.action_name!r} "
                f"(table {mat.name!r} offers {sorted(known_actions)})"
            )
        known_fields = mat.match_fields.names
        for spec in rule.matches:
            if spec.field_name not in known_fields:
                raise ControllerError(
                    f"rule matches field {spec.field_name!r} not in "
                    f"table {mat.name!r}'s key {sorted(known_fields)}"
                )
