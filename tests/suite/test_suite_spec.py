"""Schema and round-trip properties of the ``repro.suite/v1`` spec."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.suite import (
    SUITE_VERSION,
    AxisEntry,
    SuiteSpec,
    SuiteSpecError,
    load_spec,
    shipped_specs,
    spec_names,
    spec_path,
)


def minimal(kind: str) -> dict:
    """A smallest-possible valid document of each kind."""
    axes = {
        "deployment": {
            "workloads": ["real:2"],
            "topologies": ["linear-3"],
        },
        "churn": {"seeds": [0]},
        "resources": {},
        "overhead_sweep": {"packet_sizes": [512], "overheads": [28]},
        "traffic": {"hours": [0], "overheads": [48]},
    }[kind]
    return {
        "suite": SUITE_VERSION,
        "name": f"t-{kind}",
        "kind": kind,
        "axes": axes,
    }


ALL_KINDS = ("deployment", "churn", "resources", "overhead_sweep", "traffic")


class TestValidation:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_minimal_specs_parse(self, kind):
        spec = SuiteSpec.from_dict(minimal(kind))
        assert spec.kind == kind
        assert spec.name == f"t-{kind}"

    def test_unknown_top_level_key(self):
        doc = minimal("churn")
        doc["bogus"] = 1
        with pytest.raises(SuiteSpecError, match="unknown suite keys"):
            SuiteSpec.from_dict(doc)

    def test_wrong_version(self):
        doc = minimal("churn")
        doc["suite"] = "repro.suite/v0"
        with pytest.raises(SuiteSpecError, match="unsupported suite"):
            SuiteSpec.from_dict(doc)

    def test_missing_name(self):
        doc = minimal("churn")
        del doc["name"]
        with pytest.raises(SuiteSpecError, match="name"):
            SuiteSpec.from_dict(doc)

    def test_unknown_kind(self):
        doc = minimal("churn")
        doc["kind"] = "teleport"
        with pytest.raises(SuiteSpecError, match="unknown suite kind"):
            SuiteSpec.from_dict(doc)

    def test_unknown_axis_for_kind(self):
        doc = minimal("churn")
        doc["axes"]["workloads"] = ["real:2"]
        with pytest.raises(SuiteSpecError, match="unknown axes"):
            SuiteSpec.from_dict(doc)

    def test_missing_required_axis(self):
        doc = minimal("deployment")
        del doc["axes"]["topologies"]
        with pytest.raises(SuiteSpecError, match="requires axes"):
            SuiteSpec.from_dict(doc)

    def test_empty_axis(self):
        doc = minimal("deployment")
        doc["axes"]["workloads"] = []
        with pytest.raises(SuiteSpecError, match="is empty"):
            SuiteSpec.from_dict(doc)

    def test_empty_scalar_axis(self):
        doc = minimal("churn")
        doc["axes"]["seeds"] = []
        with pytest.raises(SuiteSpecError, match="is empty"):
            SuiteSpec.from_dict(doc)

    def test_duplicate_entries(self):
        doc = minimal("deployment")
        doc["axes"]["workloads"] = ["real:2", "real:2"]
        with pytest.raises(SuiteSpecError, match="duplicate"):
            SuiteSpec.from_dict(doc)

    def test_duplicate_scalar_entries(self):
        doc = minimal("churn")
        doc["axes"]["seeds"] = [1, 1]
        with pytest.raises(SuiteSpecError, match="duplicate"):
            SuiteSpec.from_dict(doc)

    def test_axis_entry_unknown_keys(self):
        doc = minimal("deployment")
        doc["axes"]["workloads"] = [{"spec": "real:2", "bogus": 1}]
        with pytest.raises(SuiteSpecError, match="unknown keys"):
            SuiteSpec.from_dict(doc)

    def test_axis_entry_needs_spec(self):
        doc = minimal("deployment")
        doc["axes"]["workloads"] = [{"tag": 2}]
        with pytest.raises(SuiteSpecError, match="'spec'"):
            SuiteSpec.from_dict(doc)

    def test_frameworks_unknown_set(self):
        doc = minimal("deployment")
        doc["axes"]["frameworks"] = {"set": "everything"}
        with pytest.raises(SuiteSpecError, match="framework set"):
            SuiteSpec.from_dict(doc)

    def test_frameworks_set_unknown_key(self):
        doc = minimal("deployment")
        doc["axes"]["frameworks"] = {"set": "paper", "bogus": 1}
        with pytest.raises(SuiteSpecError, match="unknown keys"):
            SuiteSpec.from_dict(doc)

    def test_frameworks_unknown_name(self):
        doc = minimal("deployment")
        doc["axes"]["frameworks"] = ["hermes", "nonsense"]
        with pytest.raises(SuiteSpecError, match="unknown framework"):
            SuiteSpec.from_dict(doc)

    def test_frameworks_empty_list(self):
        doc = minimal("deployment")
        doc["axes"]["frameworks"] = []
        with pytest.raises(SuiteSpecError, match="empty"):
            SuiteSpec.from_dict(doc)

    def test_unknown_param(self):
        doc = minimal("deployment")
        doc["params"] = {"warp_factor": 9}
        with pytest.raises(SuiteSpecError, match="unknown params"):
            SuiteSpec.from_dict(doc)

    def test_bad_tag_axis(self):
        doc = minimal("deployment")
        doc["params"] = {"tag_axis": "framework"}
        with pytest.raises(SuiteSpecError, match="tag_axis"):
            SuiteSpec.from_dict(doc)

    def test_non_integer_seeds(self):
        doc = minimal("churn")
        doc["axes"]["seeds"] = [0.5]
        with pytest.raises(SuiteSpecError, match="integers"):
            SuiteSpec.from_dict(doc)

    def test_bad_load_model(self):
        doc = minimal("traffic")
        doc["params"] = {"load": {"amplitude": 3.0}}
        with pytest.raises(SuiteSpecError, match="load"):
            SuiteSpec.from_dict(doc)

    def test_aggregate_must_be_list(self):
        doc = minimal("churn")
        doc["aggregate"] = "exp7"
        with pytest.raises(SuiteSpecError, match="aggregate"):
            SuiteSpec.from_dict(doc)

    def test_unknown_aggregator(self):
        doc = minimal("churn")
        doc["aggregate"] = ["exp99"]
        with pytest.raises(SuiteSpecError, match="unknown aggregator"):
            SuiteSpec.from_dict(doc)

    def test_axis_entry_default_tag_is_spec(self):
        entry = AxisEntry(spec="real:4")
        assert entry.tag == "real:4"
        assert entry.to_doc() == "real:4"
        tagged = AxisEntry(spec="real:4", tag=4)
        assert tagged.to_doc() == {"spec": "real:4", "tag": 4}


class TestShippedSpecs:
    def test_names_cover_the_paper(self):
        assert set(spec_names()) >= {
            "exp1", "exp2", "exp3", "exp4", "exp5", "exp6", "exp7",
            "fig2", "smoke", "diurnal",
        }

    def test_all_shipped_specs_validate_and_round_trip(self):
        for name, spec in shipped_specs().items():
            doc = spec.to_dict()
            again = SuiteSpec.from_dict(doc)
            assert again.to_dict() == doc, name
            assert again == spec, name

    def test_unknown_shipped_name(self):
        with pytest.raises(ValueError, match="unknown suite spec"):
            spec_path("exp99")
        with pytest.raises(ValueError, match="unknown suite spec"):
            load_spec("exp99")

    def test_load_spec_by_path(self, tmp_path):
        path = tmp_path / "mine.json"
        import json

        path.write_text(json.dumps(minimal("churn")))
        spec = load_spec(str(path))
        assert spec.name == "t-churn"

    def test_load_spec_missing_file(self):
        with pytest.raises(ValueError, match="no such spec file"):
            load_spec("missing-spec.json")

    def test_yaml_spec_loads(self):
        text = (
            "suite: repro.suite/v1\n"
            "name: yaml-suite\n"
            "kind: churn\n"
            "axes:\n"
            "  seeds: [0, 1]\n"
        )
        spec = SuiteSpec.loads(text)
        assert spec.name == "yaml-suite"
        assert spec.axes["seeds"] == (0, 1)


# ----------------------------------------------------------------------
# Hypothesis round-trip / rejection properties
# ----------------------------------------------------------------------

_workloads = st.lists(
    st.integers(min_value=1, max_value=10), min_size=1, max_size=4,
    unique=True,
).map(lambda ns: [f"real:{n}" for n in ns])

_topologies = st.lists(
    st.sampled_from(["testbed", "linear-3", "linear-5", "zoo:1", "fattree-4"]),
    min_size=1,
    max_size=3,
    unique=True,
)

_frameworks = st.one_of(
    st.none(),
    st.just({"set": "paper"}),
    st.just({"set": "paper", "ilp_time_limit_s": 2.0}),
    st.lists(
        st.sampled_from(["hermes", "ffl", "ffls", "speed", "minstage"]),
        min_size=1,
        max_size=3,
        unique=True,
    ),
)

_params = st.fixed_dictionaries(
    {},
    optional={
        "tag_axis": st.sampled_from(["workload", "topology"]),
        "packet_payload_bytes": st.integers(64, 4096),
        "with_end_to_end": st.booleans(),
    },
)


@st.composite
def deployment_docs(draw):
    doc = {
        "suite": SUITE_VERSION,
        "name": draw(st.sampled_from(["a", "sweep", "x-1"])),
        "kind": "deployment",
        "axes": {
            "workloads": draw(_workloads),
            "topologies": draw(_topologies),
        },
    }
    frameworks = draw(_frameworks)
    if frameworks is not None:
        doc["axes"]["frameworks"] = frameworks
    params = draw(_params)
    if params:
        doc["params"] = params
    title = draw(st.sampled_from(["", "A title"]))
    if title:
        doc["title"] = title
    if draw(st.booleans()):
        doc["aggregate"] = ["pivot"]
    return doc


@st.composite
def scalar_docs(draw):
    kind = draw(st.sampled_from(["churn", "overhead_sweep", "traffic"]))
    doc = {
        "suite": SUITE_VERSION,
        "name": "gen",
        "kind": kind,
    }
    ints = st.lists(
        st.integers(0, 200), min_size=1, max_size=5, unique=True
    )
    if kind == "churn":
        doc["axes"] = {"seeds": draw(ints)}
    elif kind == "overhead_sweep":
        doc["axes"] = {
            "packet_sizes": draw(ints.map(lambda v: [x + 64 for x in v])),
            "overheads": draw(ints),
        }
    else:
        doc["axes"] = {"hours": draw(ints), "overheads": draw(ints)}
    return doc


@given(doc=deployment_docs())
@settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
def test_deployment_round_trip(doc):
    spec = SuiteSpec.from_dict(doc)
    canonical = spec.to_dict()
    again = SuiteSpec.from_dict(canonical)
    assert again.to_dict() == canonical
    assert again == spec
    # axes survive with order and length intact
    assert [e.spec for e in again.axes["workloads"]] == doc["axes"][
        "workloads"
    ]
    assert [e.spec for e in again.axes["topologies"]] == doc["axes"][
        "topologies"
    ]


@given(doc=scalar_docs())
@settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
def test_scalar_round_trip(doc):
    spec = SuiteSpec.from_dict(doc)
    canonical = spec.to_dict()
    again = SuiteSpec.from_dict(canonical)
    assert again.to_dict() == canonical
    assert again == spec


@given(
    doc=deployment_docs(),
    key=st.sampled_from(["bogus", "extra", "cells", "metadata"]),
    level=st.sampled_from(["top", "params"]),
)
@settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
def test_unknown_keys_always_rejected(doc, key, level):
    if level == "top":
        doc[key] = 1
    else:
        doc.setdefault("params", {})[key] = 1
    with pytest.raises(SuiteSpecError):
        SuiteSpec.from_dict(doc)


@given(doc=deployment_docs(), axis=st.sampled_from(["workloads", "topologies"]))
@settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
def test_duplicate_cells_always_rejected(doc, axis):
    doc["axes"][axis] = list(doc["axes"][axis]) + [doc["axes"][axis][0]]
    with pytest.raises(SuiteSpecError, match="duplicate"):
        SuiteSpec.from_dict(doc)


@given(doc=deployment_docs(), axis=st.sampled_from(["workloads", "topologies"]))
@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
def test_empty_axes_always_rejected(doc, axis):
    doc["axes"][axis] = []
    with pytest.raises(SuiteSpecError, match="is empty"):
        SuiteSpec.from_dict(doc)
