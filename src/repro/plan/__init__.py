"""The deployment-plan artifact layer.

Every framework in the repo bottoms out in a
:class:`~repro.plan.artifact.DeploymentPlan`.  This package makes that
plan a first-class artifact:

* :mod:`repro.plan.artifact` — the immutable plan with cached metrics
  and constraint validation;
* :mod:`repro.plan.builder` — the mutable :class:`PlanBuilder` with
  O(Δ) incremental metrics and apply/undo move semantics for the
  optimizers' hot loops;
* :mod:`repro.plan.serialize` — canonical, versioned JSON round trips
  (``repro plan export`` / the runner's result cache);
* :mod:`repro.plan.diff` — structural plan comparison
  (``repro plan diff`` / migration disruption reports);
* :mod:`repro.plan.splice` — rebase/splice for warm replanning: carry
  surviving placements onto the current network and apply a delta
  solution with stage fitting and an incremental ``A_max`` probe.
"""

from repro.plan.artifact import (
    DeploymentError,
    DeploymentPlan,
    MatPlacement,
)
from repro.plan.builder import PlanBuilder, UndoToken
from repro.plan.diff import PlacementChange, PlanDiff, diff_plans
from repro.plan.splice import rebase_plan, splice_plan
from repro.plan.serialize import (
    SCHEMA,
    SCHEMA_VERSION,
    PlanSchemaError,
    canonical_dumps,
    plan_fingerprint,
    plan_from_dict,
    plan_to_dict,
    read_plan,
    write_plan,
)

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "DeploymentError",
    "DeploymentPlan",
    "MatPlacement",
    "PlacementChange",
    "PlanBuilder",
    "PlanDiff",
    "PlanSchemaError",
    "UndoToken",
    "canonical_dumps",
    "diff_plans",
    "plan_fingerprint",
    "plan_from_dict",
    "plan_to_dict",
    "read_plan",
    "rebase_plan",
    "splice_plan",
    "write_plan",
]
