"""Plan persistence through the runner's result cache (v3 entries).

Since ``CACHE_KEY_VERSION`` 3 every cache entry stores the canonical
serialized deployment plan next to the record, so a cache hit returns
not just the scalar metrics but the full reconstructable artifact.
"""

from repro.baselines import Ffl, HermesHeuristic
from repro.experiments.harness import DeploymentRecord
from repro.experiments.runner import Cell, ExperimentRunner
from repro.experiments.runner.cache import ResultCache
from repro.network.generators import linear_topology
from repro.plan import plan_from_dict
from repro.workloads import sketch_programs


def sample_record():
    return DeploymentRecord(
        framework="x",
        overhead_bytes=8,
        solve_time_s=0.1,
        timed_out=False,
        occupied_switches=1,
    )


def sample_cells():
    programs = tuple(sketch_programs(3))
    network = linear_topology(3, num_stages=4, stage_capacity=2.0)
    return [
        Cell(programs=programs, network=network, framework=f)
        for f in (HermesHeuristic(), Ffl())
    ]


class TestResultCachePlanPayload:
    def test_put_get_entry_round_trips_plan(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan_doc = {"schema": "repro.plan/v1", "version": 1}
        cache.put("ab" + "0" * 62, sample_record(), plan=plan_doc)
        entry = cache.get_entry("ab" + "0" * 62)
        assert entry is not None
        record, plan = entry
        assert record.overhead_bytes == 8
        assert plan == plan_doc

    def test_entry_without_plan_reads_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("cd" + "0" * 62, sample_record())
        record, plan = cache.get_entry("cd" + "0" * 62)
        assert record.overhead_bytes == 8
        assert plan is None

    def test_get_still_returns_bare_record(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ef" + "0" * 62, sample_record(), plan={"schema": "x"})
        record = cache.get("ef" + "0" * 62)
        assert isinstance(record, DeploymentRecord)


class TestRunnerPlanThreading:
    def test_fresh_run_populates_plan(self, tmp_path):
        runner = ExperimentRunner(workers=1, cache_dir=str(tmp_path))
        results = runner.run_cells(sample_cells())
        for res in results:
            assert not res.cached
            assert res.plan is not None
            plan = plan_from_dict(res.plan)
            plan.validate()
            assert plan.max_metadata_bytes() == res.record.overhead_bytes

    def test_cache_hit_returns_same_plan(self, tmp_path):
        cells = sample_cells()
        cold = ExperimentRunner(workers=1, cache_dir=str(tmp_path))
        first = cold.run_cells(cells)
        warm = ExperimentRunner(workers=1, cache_dir=str(tmp_path))
        second = warm.run_cells(sample_cells())
        for a, b in zip(first, second):
            assert b.cached
            assert b.plan == a.plan
            plan_from_dict(b.plan).validate()

    def test_duplicate_cells_share_plan(self, tmp_path):
        cells = sample_cells()
        doubled = cells + [
            Cell(
                programs=cells[0].programs,
                network=cells[0].network,
                framework=cells[0].framework,
            )
        ]
        runner = ExperimentRunner(workers=1, cache_dir=str(tmp_path))
        results = runner.run_cells(doubled)
        assert results[-1].cached
        assert results[-1].plan == results[0].plan

    def test_uncached_runner_still_returns_plan(self):
        results = ExperimentRunner(workers=1).run_cells(sample_cells())
        for res in results:
            assert res.plan is not None
            plan_from_dict(res.plan).validate()
