"""Optional extensions beyond the paper's core contribution.

* :mod:`repro.extensions.pint` — PINT-style probabilistic bounding of
  the per-packet byte overhead (Ben Basat et al., SIGCOMM'20), which
  the paper names as complementary to Hermes: instead of shrinking the
  metadata through placement, PINT caps the bytes each packet carries
  and amortizes delivery over many packets.
"""

from repro.extensions.pint import (
    PintChannel,
    PintCollector,
    coupon_collector_packets,
    simulate_coverage,
)

__all__ = [
    "PintChannel",
    "PintCollector",
    "coupon_collector_packets",
    "simulate_coverage",
]
