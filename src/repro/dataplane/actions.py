"""MAT actions.

An action is what a MAT performs on a matched packet.  For deployment
purposes an action is fully characterized by the sets of fields it
*reads* and *writes*: dependency classification (match / action /
reverse-match dependencies) is computed from these read/write sets, and
the byte overhead of an edge is computed from the metadata subset of the
written fields.

The module also exposes convenience constructors for the primitives that
appear in the bundled workloads (forwarding, field rewrites, hash index
computation, counter updates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field
from typing import Iterable, Sequence, Tuple

from repro.dataplane.fields import Field, FieldSet


class ActionPrimitive(enum.Enum):
    """The kind of operation an action performs.

    The primitive determines the ALU demand of the action (used by the
    per-stage resource model) but not its dependency behaviour, which is
    derived purely from the read/write sets.
    """

    NO_OP = "no_op"
    FORWARD = "forward"
    DROP = "drop"
    MODIFY_FIELD = "modify_field"
    HASH = "hash"
    COUNTER = "counter"
    REGISTER = "register"
    ENCAP = "encap"
    DECAP = "decap"

    @property
    def alu_cost(self) -> int:
        """Number of ALU slots the primitive occupies in one stage."""
        return _ALU_COSTS[self]


_ALU_COSTS = {
    ActionPrimitive.NO_OP: 0,
    ActionPrimitive.FORWARD: 1,
    ActionPrimitive.DROP: 1,
    ActionPrimitive.MODIFY_FIELD: 1,
    ActionPrimitive.HASH: 2,
    ActionPrimitive.COUNTER: 2,
    ActionPrimitive.REGISTER: 2,
    ActionPrimitive.ENCAP: 2,
    ActionPrimitive.DECAP: 2,
}


@dataclass(frozen=True)
class Action:
    """A single MAT action.

    Attributes:
        name: Action name, unique within its MAT.
        primitive: The operation kind (drives ALU cost).
        reads: Fields whose values the action consumes.
        writes: Fields whose values the action modifies.  The union of
            these across a MAT's actions forms the MAT's ``F^a`` set.
    """

    name: str
    primitive: ActionPrimitive = ActionPrimitive.NO_OP
    reads: Tuple[Field, ...] = dc_field(default_factory=tuple)
    writes: Tuple[Field, ...] = dc_field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("action name must be non-empty")
        object.__setattr__(self, "reads", tuple(self.reads))
        object.__setattr__(self, "writes", tuple(self.writes))

    @property
    def read_set(self) -> FieldSet:
        return FieldSet(self.reads)

    @property
    def write_set(self) -> FieldSet:
        return FieldSet(self.writes)

    @property
    def alu_cost(self) -> int:
        return self.primitive.alu_cost

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Action({self.name!r}, {self.primitive.value}, "
            f"reads={[f.name for f in self.reads]}, "
            f"writes={[f.name for f in self.writes]})"
        )


def no_op(name: str = "no_op") -> Action:
    """An action that matches but modifies nothing."""
    return Action(name, ActionPrimitive.NO_OP)


def forward(port_field: Field, name: str = "forward") -> Action:
    """Set the egress port (writes the given metadata field)."""
    return Action(name, ActionPrimitive.FORWARD, writes=(port_field,))


def drop(name: str = "drop") -> Action:
    """Drop the packet."""
    return Action(name, ActionPrimitive.DROP)


def modify(
    target: Field,
    sources: Sequence[Field] = (),
    name: str | None = None,
) -> Action:
    """Rewrite ``target`` from ``sources`` (a plain field assignment)."""
    return Action(
        name or f"set_{target.name.replace('.', '_')}",
        ActionPrimitive.MODIFY_FIELD,
        reads=tuple(sources),
        writes=(target,),
    )


def hash_compute(
    output: Field,
    inputs: Iterable[Field],
    name: str | None = None,
) -> Action:
    """Compute a hash of ``inputs`` into the metadata field ``output``.

    This is the canonical upstream half of a match dependency: a sketch
    or hash-table MAT downstream matches (or indexes) on ``output``.
    """
    return Action(
        name or f"hash_{output.name.replace('.', '_')}",
        ActionPrimitive.HASH,
        reads=tuple(inputs),
        writes=(output,),
    )


def counter_update(
    index: Field,
    result: Field | None = None,
    name: str | None = None,
) -> Action:
    """Update a counter/register array at ``index``.

    If ``result`` is given the read-back value is written there (e.g.
    sketch query results carried to a downstream threshold MAT).
    """
    writes = (result,) if result is not None else ()
    return Action(
        name or f"count_{index.name.replace('.', '_')}",
        ActionPrimitive.COUNTER,
        reads=(index,),
        writes=writes,
    )
