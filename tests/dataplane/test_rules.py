"""Unit tests for repro.dataplane.rules."""

import pytest

from repro.dataplane.rules import MatchKind, MatchSpec, Rule


class TestMatchKind:
    def test_tcam_requirements(self):
        assert not MatchKind.EXACT.needs_tcam
        assert MatchKind.LPM.needs_tcam
        assert MatchKind.TERNARY.needs_tcam
        assert MatchKind.RANGE.needs_tcam


class TestMatchSpec:
    def test_requires_field_name(self):
        with pytest.raises(ValueError, match="field name"):
            MatchSpec("")

    def test_exact_rejects_mask(self):
        with pytest.raises(ValueError, match="no mask"):
            MatchSpec("f", MatchKind.EXACT, 1, mask_or_prefix=0xFF)

    def test_exact_matching(self):
        spec = MatchSpec("f", MatchKind.EXACT, 42)
        assert spec.matches(42, 32)
        assert not spec.matches(41, 32)

    def test_ternary_matching(self):
        spec = MatchSpec("f", MatchKind.TERNARY, 0b1010, mask_or_prefix=0b1110)
        assert spec.matches(0b1010, 8)
        assert spec.matches(0b1011, 8)  # last bit masked out
        assert not spec.matches(0b0010, 8)

    def test_lpm_matching(self):
        # 10.0.0.0/8
        spec = MatchSpec(
            "ipv4.dst", MatchKind.LPM, 10 << 24, mask_or_prefix=8
        )
        assert spec.matches((10 << 24) | 12345, 32)
        assert not spec.matches(11 << 24, 32)

    def test_lpm_zero_prefix_matches_everything(self):
        spec = MatchSpec("f", MatchKind.LPM, 0, mask_or_prefix=0)
        assert spec.matches(0xFFFFFFFF, 32)

    def test_range_matching(self):
        spec = MatchSpec("port", MatchKind.RANGE, 1024, mask_or_prefix=2048)
        assert spec.matches(1024, 16)
        assert spec.matches(2048, 16)
        assert not spec.matches(1023, 16)
        assert not spec.matches(2049, 16)

    def test_range_requires_upper_bound(self):
        spec = MatchSpec("port", MatchKind.RANGE, 1024)
        with pytest.raises(ValueError, match="upper bound"):
            spec.matches(1500, 16)


class TestRule:
    def test_rejects_duplicate_match_fields(self):
        with pytest.raises(ValueError, match="duplicate"):
            Rule(matches=(MatchSpec("f"), MatchSpec("f")))

    def test_spec_lookup(self):
        rule = Rule(matches=(MatchSpec("a", value=1), MatchSpec("b", value=2)))
        assert rule.spec_for("a").value == 1
        assert rule.spec_for("missing") is None

    def test_matches_packet_all_specs(self):
        rule = Rule(
            matches=(
                MatchSpec("a", MatchKind.EXACT, 1),
                MatchSpec("b", MatchKind.EXACT, 2),
            ),
            action_name="act",
        )
        widths = {"a": 32, "b": 32}
        assert rule.matches_packet({"a": 1, "b": 2}, widths)
        assert not rule.matches_packet({"a": 1, "b": 3}, widths)

    def test_missing_field_never_matches(self):
        rule = Rule(matches=(MatchSpec("a", MatchKind.EXACT, 1),))
        assert not rule.matches_packet({}, {"a": 32})

    def test_wildcard_rule_matches_everything(self):
        assert Rule().matches_packet({"x": 7}, {"x": 32})
