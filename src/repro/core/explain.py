"""Explaining a plan's byte overhead.

``A_max`` is one number; an operator staring at it wants to know *why*:
which switch pair is the bottleneck, which TDG edges (and therefore
which programs and metadata fields) pay for it, and what would help.
:func:`explain_overhead` answers those questions, including a
what-if ranking: for each edge crossing the worst pair, the ``A_max``
the plan would have if that edge were internalized (endpoints
co-located), everything else unchanged — the marginal value of fixing
exactly one decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.deployment import DeploymentPlan


@dataclass(frozen=True)
class EdgeContribution:
    """One cross-switch edge's share of the worst pair."""

    upstream: str
    downstream: str
    metadata_bytes: int
    amax_if_internalized: int


@dataclass
class OverheadReport:
    """Structured answer to "where do my bytes go?".

    Attributes:
        a_max: The plan's per-packet byte overhead.
        worst_pair: The switch pair realizing it (None at 0 overhead).
        edges: Crossing edges of the worst pair, heaviest first, each
            with the counterfactual ``A_max`` were it internalized.
        by_program: Worst-pair bytes attributed to originating program.
        by_field: Worst-pair bytes attributed to metadata field names.
    """

    a_max: int
    worst_pair: Tuple[str, str] = None
    edges: List[EdgeContribution] = field(default_factory=list)
    by_program: Dict[str, int] = field(default_factory=dict)
    by_field: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable summary."""
        if self.worst_pair is None:
            return "A_max = 0 B: no inter-switch metadata at all."
        u, v = self.worst_pair
        lines = [
            f"A_max = {self.a_max} B, realized on {u} -> {v} "
            f"({len(self.edges)} crossing edges)",
            "",
            "heaviest crossing edges (A_max if co-located):",
        ]
        for contribution in self.edges[:8]:
            lines.append(
                f"  {contribution.upstream} -> "
                f"{contribution.downstream}: "
                f"{contribution.metadata_bytes} B "
                f"(-> {contribution.amax_if_internalized} B)"
            )
        lines.append("")
        lines.append("by program: " + ", ".join(
            f"{p}={b}B"
            for p, b in sorted(
                self.by_program.items(), key=lambda kv: -kv[1]
            )[:6]
        ))
        lines.append("by field: " + ", ".join(
            f"{f}={b}B"
            for f, b in sorted(
                self.by_field.items(), key=lambda kv: -kv[1]
            )[:6]
        ))
        return "\n".join(lines)


def _amax_with_override(
    plan: DeploymentPlan, co_locate: Tuple[str, str]
) -> int:
    """A_max if one edge's endpoints shared a switch (all else fixed).

    The upstream MAT is hypothetically moved next to the downstream
    one; pair sums are recomputed without re-running stage layout (this
    is a what-if attribution, not a feasibility claim).
    """
    upstream, downstream = co_locate
    hosts = {
        name: placement.switch
        for name, placement in plan.placements.items()
    }
    hosts[upstream] = hosts[downstream]
    totals: Dict[Tuple[str, str], int] = {}
    for edge in plan.tdg.edges:
        u, v = hosts[edge.upstream], hosts[edge.downstream]
        if u == v:
            continue
        totals[(u, v)] = totals.get((u, v), 0) + edge.metadata_bytes
    return max(totals.values()) if totals else 0


def explain_overhead(plan: DeploymentPlan) -> OverheadReport:
    """Attribute the plan's ``A_max`` to edges, programs and fields."""
    from repro.core.coordination import edge_metadata_fields

    pairs = plan.pair_metadata_bytes()
    if not pairs:
        return OverheadReport(a_max=0)
    worst_pair, a_max = max(pairs.items(), key=lambda kv: kv[1])
    u, v = worst_pair

    report = OverheadReport(a_max=a_max, worst_pair=worst_pair)
    for edge in sorted(
        (
            e
            for e in plan.tdg.edges
            if plan.switch_of(e.upstream) == u
            and plan.switch_of(e.downstream) == v
            and e.metadata_bytes > 0
        ),
        key=lambda e: e.metadata_bytes,
        reverse=True,
    ):
        report.edges.append(
            EdgeContribution(
                upstream=edge.upstream,
                downstream=edge.downstream,
                metadata_bytes=edge.metadata_bytes,
                amax_if_internalized=_amax_with_override(
                    plan, (edge.upstream, edge.downstream)
                ),
            )
        )
        program = edge.upstream.split(".", 1)[0]
        report.by_program[program] = (
            report.by_program.get(program, 0) + edge.metadata_bytes
        )
        fields = edge_metadata_fields(
            plan.tdg.node(edge.upstream),
            plan.tdg.node(edge.downstream),
            edge.dep_type,
        )
        for fld in fields:
            report.by_field[fld.name] = (
                report.by_field.get(fld.name, 0) + fld.size_bytes
            )
    return report
