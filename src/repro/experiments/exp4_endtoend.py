"""Exp#4 (Fig. 8): impact on end-to-end performance at scale.

Reads the Exp#2 runs and reports the FCT and goodput of 1024-byte
packets (the paper's setting) carrying each framework's measured
overhead, normalized against the metadata-free flow.

The shared :func:`run` accepts Exp#2's ``runner=`` argument
(``--workers`` / ``--cache-dir`` / ``--journal`` on the CLI); the
FCT/goodput ratios are pure functions of the recorded overhead, so
cached records reproduce this figure exactly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.exp2_overhead import Exp2Point, pivot, run

__all__ = ["render", "run", "main"]


def render(points: List[Exp2Point]) -> str:
    """Fig. 8(a)-(b') as four tables (what ``main`` prints; the
    suite's ``exp4`` aggregator shares it)."""
    tables = [
        pivot(
            points, "fct_ratio", "Fig. 8(a): normalized FCT (1024B packets)"
        ),
        pivot(
            points,
            "goodput_ratio",
            "Fig. 8(b): normalized goodput (1024B packets)",
        ),
        # The plan-aware companions: the same normalization evaluated
        # over each plan's real routed pairs (per-pair hop chains and
        # per-pair overhead bytes) instead of the scalar-A_max uniform
        # path.
        pivot(
            points,
            "plan_fct_ratio",
            "Fig. 8(a'): plan-aware normalized FCT (routed pairs)",
        ),
        pivot(
            points,
            "plan_goodput_ratio",
            "Fig. 8(b'): plan-aware normalized goodput (routed pairs)",
        ),
    ]
    return "\n\n".join(t.render() for t in tables)


def main(points: Optional[List[Exp2Point]] = None) -> str:
    points = points if points is not None else run()
    output = render(points)
    print(output)
    return output


if __name__ == "__main__":
    main()
