"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, parse_topology, parse_workload


class TestParseWorkload:
    def test_real(self):
        assert len(parse_workload("real:4")) == 4

    def test_sketches(self):
        assert len(parse_workload("sketches:3")) == 3

    def test_synthetic_with_seed(self):
        a = parse_workload("synthetic:2:5")
        b = parse_workload("synthetic:2:5")
        assert len(a) == 2
        assert [p.name for p in a] == [p.name for p in b]

    def test_combined(self):
        programs = parse_workload("real:2+sketches:2+synthetic:2")
        assert len(programs) == 6

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="workload kind"):
            parse_workload("quantum:3")


class TestParseTopology:
    def test_zoo(self):
        net = parse_topology("zoo:1")
        assert net.num_switches == 79

    def test_linear(self):
        assert parse_topology("linear:4").num_switches == 4

    def test_fattree(self):
        assert parse_topology("fattree:4").num_switches == 20

    def test_wan(self):
        net = parse_topology("wan:12:16:3")
        assert net.num_switches == 12
        assert net.num_links == 16

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="topology kind"):
            parse_topology("torus:3")


class TestCommands:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        for command in ("fig2", "exp1", "exp2", "exp5", "exp6", "deploy"):
            args = parser.parse_args(
                [command]
                if command not in ("deploy",)
                else [command, "--workload", "real:2"]
            )
            assert args.command == command

    def test_fig2_runs(self, capsys):
        assert main(["fig2"]) == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_exp6_runs(self, capsys):
        assert main(["exp6"]) == 0
        assert "Exp#6" in capsys.readouterr().out

    def test_deploy_runs_with_verify(self, capsys):
        code = main(
            [
                "deploy",
                "--workload",
                "sketches:4",
                "--topology",
                "linear:3",
                "--verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-packet byte overhead" in out
        assert "dataflow verified" in out

    def test_deploy_emits_configs(self, capsys):
        code = main(
            [
                "deploy",
                "--workload",
                "real:2",
                "--topology",
                "linear:2",
                "--configs",
            ]
        )
        assert code == 0
        assert '"stages"' in capsys.readouterr().out

    @pytest.mark.slow
    def test_exp2_reduced_runs(self, capsys):
        code = main(
            [
                "exp2",
                "--topologies",
                "2",
                "--programs",
                "6",
                "--time-limit",
                "3",
            ]
        )
        assert code == 0
        assert "Fig. 6" in capsys.readouterr().out


class TestMoreCommands:
    @pytest.mark.slow
    def test_exp3_and_exp4_share_exp2_machinery(self, capsys):
        assert (
            main(
                [
                    "exp3",
                    "--topologies",
                    "2",
                    "--programs",
                    "6",
                    "--time-limit",
                    "3",
                ]
            )
            == 0
        )
        assert "Fig. 7" in capsys.readouterr().out
        assert (
            main(
                [
                    "exp4",
                    "--topologies",
                    "2",
                    "--programs",
                    "6",
                    "--time-limit",
                    "3",
                ]
            )
            == 0
        )
        assert "Fig. 8" in capsys.readouterr().out

    def test_exp5_reduced(self, capsys):
        assert (
            main(
                [
                    "exp5",
                    "--programs-sweep",
                    "4",
                    "--time-limit",
                    "3",
                ]
            )
            == 0
        )
        assert "Fig. 9" in capsys.readouterr().out

    def test_deploy_optimal_mode(self, capsys):
        code = main(
            [
                "deploy",
                "--workload",
                "sketches:3",
                "--topology",
                "linear:2",
                "--mode",
                "optimal",
                "--time-limit",
                "15",
            ]
        )
        assert code == 0
        assert "A_max" in capsys.readouterr().out

    def test_deploy_with_replication_flag(self, capsys):
        code = main(
            [
                "deploy",
                "--workload",
                "sketches:4",
                "--topology",
                "linear:3",
                "--replicate",
            ]
        )
        assert code == 0


class TestJsonExport:
    def test_exp2_exports_rows(self, tmp_path, capsys):
        out_path = tmp_path / "rows.json"
        code = main(
            [
                "exp2",
                "--topologies",
                "2",
                "--programs",
                "4",
                "--time-limit",
                "3",
                "--json",
                str(out_path),
            ]
        )
        assert code == 0
        import json

        rows = json.loads(out_path.read_text())
        assert rows
        assert {"topology", "framework", "overhead_bytes"} <= set(rows[0])


class TestPlanCommands:
    """The plan artifact surface: deploy --out, export/validate/diff."""

    @pytest.fixture()
    def exported(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        assert (
            main(
                [
                    "deploy",
                    "--workload",
                    "real:4",
                    "--topology",
                    "linear:3",
                    "--out",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        return path

    def test_deploy_out_writes_plan(self, exported, capsys):
        from repro.plan import read_plan

        plan = read_plan(str(exported))
        plan.validate()
        assert len(plan.placements) > 0

    def test_plan_export(self, tmp_path, capsys):
        path = tmp_path / "exported.json"
        code = main(
            [
                "plan",
                "export",
                "--workload",
                "real:3",
                "--topology",
                "linear:3",
                "--out",
                str(path),
            ]
        )
        assert code == 0
        assert "fingerprint" in capsys.readouterr().out
        assert path.exists()

    def test_plan_validate_good(self, exported, capsys):
        assert main(["plan", "validate", str(exported)]) == 0
        out = capsys.readouterr().out
        assert "valid:" in out and "A_max" in out

    def test_plan_validate_missing_file(self, tmp_path, capsys):
        code = main(["plan", "validate", str(tmp_path / "absent.json")])
        assert code == 1
        assert "cannot load plan" in capsys.readouterr().out

    def test_plan_validate_broken_document(self, exported, capsys):
        import json

        doc = json.loads(exported.read_text())
        doc["placements"] = doc["placements"][1:]  # drop one MAT
        exported.write_text(json.dumps(doc))
        assert main(["plan", "validate", str(exported)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_plan_diff_identical(self, exported, capsys):
        code = main(
            ["plan", "diff", str(exported), str(exported), "--exit-code"]
        )
        assert code == 0
        assert "identical" in capsys.readouterr().out

    def test_plan_diff_differing_plans_exit_code(
        self, exported, tmp_path, capsys
    ):
        other = tmp_path / "other.json"
        assert (
            main(
                [
                    "plan",
                    "export",
                    "--workload",
                    "real:5",
                    "--topology",
                    "linear:4",
                    "--out",
                    str(other),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            ["plan", "diff", str(exported), str(other), "--exit-code"]
        )
        assert code == 1
        assert "A_max" in capsys.readouterr().out

    def test_plan_diff_json_output(self, exported, capsys):
        import json

        assert main(["plan", "diff", str(exported), str(exported), "--json"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        assert json.loads(payload)["identical"] is True

    def test_plan_diff_unreadable_returns_2(self, exported, tmp_path, capsys):
        code = main(
            ["plan", "diff", str(exported), str(tmp_path / "nope.json")]
        )
        assert code == 2


class TestSimulateCommand:
    """The traffic-simulation surface: repro simulate."""

    def test_parser_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.engine == "analytic"
        assert args.overhead is None
        assert args.flows == 0

    def test_scalar_overhead_mode(self, capsys):
        assert main(["simulate", "--overhead", "48"]) == 0
        out = capsys.readouterr().out
        assert "simulate: uniform via analytic engine" in out
        assert "worst FCT ratio" in out

    def test_scalar_engines_agree(self, tmp_path, capsys):
        import json

        paths = {}
        for engine in ("exact", "analytic", "batch"):
            paths[engine] = tmp_path / f"{engine}.json"
            assert (
                main(
                    [
                        "simulate",
                        "--overhead",
                        "200",
                        "--engine",
                        engine,
                        "--json",
                        str(paths[engine]),
                    ]
                )
                == 0
            )
        capsys.readouterr()
        ratios = {
            engine: json.loads(path.read_text())["worst_fct_ratio"]
            for engine, path in paths.items()
        }
        assert ratios["batch"] == pytest.approx(
            ratios["analytic"], rel=1e-6
        )
        assert ratios["exact"] == pytest.approx(
            ratios["analytic"], rel=1e-2
        )

    def test_plan_aware_trace_mode(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "sim.json"
        journal = tmp_path / "sim.jsonl"
        code = main(
            [
                "simulate",
                "--workload",
                "real:6",
                "--topology",
                "linear:3",
                "--flows",
                "500",
                "--engine",
                "batch",
                "--json",
                str(out_path),
                "--journal",
                str(journal),
            ]
        )
        assert code == 0
        summary = json.loads(out_path.read_text())
        assert summary["engine"] == "batch"
        assert summary["flows"] == 500
        assert summary["source"].startswith("plan:")
        assert summary["worst_fct_ratio"] >= 1.0
        events = [
            json.loads(line)
            for line in journal.read_text().splitlines()
            if line.strip()
        ]
        assert any(e.get("kind") == "sim.evaluate" for e in events)
        capsys.readouterr()

    def test_churn_report_gains_engine_flag(self):
        args = build_parser().parse_args(
            ["churn", "report", "r.json", "--engine", "batch"]
        )
        assert args.engine == "batch"


@pytest.mark.slow
def test_quick_report(capsys):
    assert main(["report"]) == 0
    out = capsys.readouterr().out
    assert "quick report" in out
    assert "headline" in out
