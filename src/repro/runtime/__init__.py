"""Network lifecycle runtime: churn simulation and reconciliation.

The static half of the reproduction answers "what is the best
deployment for this network?"; this package answers "what happens to a
*live* deployment when the network keeps changing?".  It provides:

* :mod:`repro.runtime.scenario` — seeded, serializable streams of
  timed churn events (``repro.scenario/v1``): switch failures and
  recoveries, drains, link latency changes, programmability flips,
  workload adds/removes;
* :mod:`repro.runtime.state` — :class:`WorldState`, the event-folded
  view of the substrate and workload;
* :mod:`repro.runtime.reconciler` — the :class:`Reconciler` loop that
  replans after each event batch down a three-rung escalation ladder
  (warm incremental repair, cold full replan, cheapest patch) under
  explicit policies (debounce, bounded retry, time budget) and rebinds
  the runtime controller;
* :mod:`repro.runtime.incremental` — :class:`IncrementalReplanner`,
  the warm rung: rebase when no placement lost its host, delta-solve
  and splice when the blast radius is small;
* :mod:`repro.runtime.store` — the append-only :class:`PlanStore`
  history of ``repro.plan/v1`` artifacts with consecutive diffs and a
  replay-comparable digest;
* :mod:`repro.runtime.patch` — :func:`cheapest_patch`, the degraded
  local repair used when a replan blows its time budget;
* :mod:`repro.runtime.report` — :class:`DisruptionReport`, the
  per-event and aggregate disruption metrics.
"""

from repro.runtime.incremental import (
    IncrementalEscalation,
    IncrementalReplanner,
    find_orphans,
    same_workload,
)
from repro.runtime.patch import cheapest_patch
from repro.runtime.reconciler import (
    EventOutcome,
    ReconcileResult,
    Reconciler,
    ReconcilerPolicy,
    seed_rules,
    transient_amax,
)
from repro.runtime.report import DisruptionReport, TrajectoryPoint
from repro.runtime.scenario import (
    EventKind,
    NetworkEvent,
    Scenario,
    ScenarioError,
    batch_events,
    generate_scenario,
    read_scenario,
    write_scenario,
)
from repro.runtime.state import WorldState
from repro.runtime.store import PlanStore, PlanVersion, StoreReloadError

__all__ = [
    "DisruptionReport",
    "EventKind",
    "EventOutcome",
    "IncrementalEscalation",
    "IncrementalReplanner",
    "NetworkEvent",
    "PlanStore",
    "PlanVersion",
    "StoreReloadError",
    "ReconcileResult",
    "Reconciler",
    "ReconcilerPolicy",
    "Scenario",
    "ScenarioError",
    "TrajectoryPoint",
    "WorldState",
    "batch_events",
    "cheapest_patch",
    "find_orphans",
    "generate_scenario",
    "same_workload",
    "read_scenario",
    "write_scenario",
    "seed_rules",
    "transient_amax",
]
