"""Min-Stage (Jose et al., NSDI'15), extended network-wide.

Min-Stage compiles one program to one switch, minimizing the number of
occupied pipeline stages via ILP.  Following §VI-A it is extended to
deploy programs "one by one": each program's MATs are ordered by the
stage-minimizing ILP layout, then packed onto the chain of programmable
switches, spilling to the next switch when the current one fills up.
Because the objective is stage count — not coordination bytes — the
spill points routinely cut heavy-metadata edges, which is exactly the
overhead Hermes avoids.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.baselines.base import (
    DeploymentFramework,
    build_switch_chain,
    route_all_pairs,
    schedule_on_chain,
)
from repro.core.deployment import DeploymentPlan
from repro.dataplane.program import Program
from repro.milp.expr import LinExpr
from repro.milp.model import Model
from repro.milp.branch_bound import DEFAULT_PROFILE, BranchBoundSolver
from repro.milp.solution import SolveStatus
from repro.network.paths import PathEnumerator
from repro.network.topology import Network
from repro.tdg.builder import qualified_name
from repro.tdg.graph import Tdg


def stage_minimizing_order(
    segment: Tdg,
    stage_capacity: float,
    time_limit_s: float,
    solver_profile: str = DEFAULT_PROFILE,
) -> Tuple[List[str], bool]:
    """Order ``segment``'s MATs by a stage-count-minimizing ILP layout.

    Builds the classic single-switch model: binary ``x(a, s)`` over a
    pipeline deep enough to always admit a layout, dependency
    constraints ``stage(a) < stage(b)``, per-stage capacity, and the
    makespan objective ``min S`` with ``S >= stage(a)``.  The returned
    order sorts MATs by assigned stage (topological by construction).

    Returns:
        ``(order, timed_out)``; on timeout without an incumbent the
        DFS topological order is returned instead.
    """
    mats = segment.node_names
    # The pipeline only needs to be as deep as the longest dependency
    # chain, or deep enough that per-stage capacity admits the total
    # demand; sizing it tightly keeps the model small.
    levels: Dict[str, int] = {}
    for name in segment.topological_order():
        preds = segment.predecessors(name)
        levels[name] = max((levels[p] for p in preds), default=-1) + 1
    chain_depth = max(levels.values()) + 1 if levels else 1
    demand_depth = math.ceil(
        segment.total_resource_demand() / max(stage_capacity, 1e-9)
    )
    depth = min(len(mats), max(chain_depth, demand_depth) + 2)
    model = Model("min_stage")
    x: Dict[Tuple[str, int], object] = {}
    for a in mats:
        for s in range(1, depth + 1):
            x[(a, s)] = model.add_binary(f"x[{a},{s}]")
        model.add_constr(
            LinExpr.total(x[(a, s)] for s in range(1, depth + 1)) == 1
        )

    def stage_of(a: str) -> LinExpr:
        return LinExpr.total(
            x[(a, s)] * float(s) for s in range(1, depth + 1)
        )

    for edge in segment.edges:
        model.add_constr(
            stage_of(edge.upstream) + 1 <= stage_of(edge.downstream)
        )
    for s in range(1, depth + 1):
        model.add_constr(
            LinExpr.total(
                x[(a, s)] * segment.node(a).resource_demand for a in mats
            )
            <= stage_capacity
        )
    makespan = model.add_var("S", lb=1.0, ub=float(depth))
    for a in mats:
        model.add_constr(makespan >= stage_of(a))
    model.minimize(makespan)

    solution = BranchBoundSolver(
        time_limit_s=time_limit_s, profile=solver_profile
    ).solve(model)
    timed_out = solution.status in (
        SolveStatus.FEASIBLE,
        SolveStatus.TIME_LIMIT,
    )
    if not solution.status.has_solution:
        return segment.topological_order(strategy="dfs"), timed_out

    assigned = {
        a: next(
            s
            for s in range(1, depth + 1)
            if solution.rounded(x[(a, s)]) == 1
        )
        for a in mats
    }
    order = sorted(mats, key=lambda a: (assigned[a], a))
    return order, timed_out


class MinStage(DeploymentFramework):
    """The MS baseline: per-program stage-minimizing ILP + chain spill."""

    name = "MS"
    merges = False

    def __init__(
        self,
        time_limit_s: float = 5.0,
        solver_profile: str = DEFAULT_PROFILE,
    ) -> None:
        self.time_limit_s = time_limit_s
        self.solver_profile = solver_profile

    def program_order(self, programs: Sequence[Program]) -> List[Program]:
        """Deployment order of programs; MS keeps the input order."""
        return list(programs)

    def _place(
        self,
        tdg: Tdg,
        programs: Sequence[Program],
        network: Network,
        paths: PathEnumerator,
    ) -> Tuple[DeploymentPlan, bool]:
        chain = build_switch_chain(network, paths)
        stage_capacity = min(
            network.switch(u).stage_capacity for u in chain
        )
        order: List[str] = []
        timed_out = False
        for program in self.program_order(programs):
            node_names = [
                qualified_name(program.name, mat.name)
                for mat in program.mats
            ]
            segment = tdg.subgraph(node_names, name=program.name)
            program_order, program_timeout = stage_minimizing_order(
                segment,
                stage_capacity,
                self.time_limit_s,
                solver_profile=self.solver_profile,
            )
            timed_out = timed_out or program_timeout
            order.extend(program_order)
        placements = schedule_on_chain(tdg, order, network, chain)
        plan = route_all_pairs(DeploymentPlan(tdg, network, placements), paths)
        plan.validate()
        return plan, timed_out
