"""The asyncio control-plane daemon: ``repro serve``.

One :class:`ReproServer` listens on a TCP port or a Unix socket and
speaks :mod:`repro.server.protocol`.  Each connection gets its own
:class:`~repro.server.session.Session` (plan history, warm-start
state); requests on a connection dispatch concurrently — a slow
``churn_run`` does not block a ``ping`` — with only the
state-mutating ``deploy`` serialized per session.

Work placement:

* **warm deploys** and all other op bodies run on the server's own
  thread pool (they are short or release the GIL rarely enough not to
  matter for a control plane);
* **cold solves** are micro-batched through one
  :class:`~repro.experiments.runner.ExperimentRunner`: concurrent
  cold deploys that arrive together leave in a single ``runner.map``
  call, which fans out across the process pool when the server was
  started with ``workers > 1`` (and inherits the runner's
  content-addressed cache when ``cache_dir`` is set).

Telemetry: ops attach a per-request bridge sink (context-local, so
concurrent requests never cross), and every event is marshalled onto
the event loop, where it is (a) streamed as an ``event`` frame to the
owning connection if it subscribed and (b) appended to the server's
JSONL journal if one was configured.  Cold solves that ran in pool
worker processes journal through the runner instead — process
boundaries do not stream.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.server import protocol
from repro.server.ops import (
    OpError,
    churn_op,
    deploy_op,
    resolve_params,
    simulate_op,
    suite_op,
)
from repro.server.session import Session
from repro.telemetry import attached, tee

#: Upper bound on threads running op bodies.  Most are parked waiting
#: on the cold-solve queue; the solver drain has its own executor so
#: it can never be starved by them.
_OPS_THREADS = 128


def _cold_deploy_job(params: Dict[str, Any]) -> Tuple[str, Any]:
    """Pool-side cold solve; tagged so one bad item cannot sink the
    whole micro-batch (``runner.map`` would re-raise through it)."""
    try:
        return ("ok", deploy_op(params))
    except OpError as exc:
        return ("invalid_params", str(exc))
    except Exception as exc:  # pragma: no cover - defensive
        return ("internal", f"{type(exc).__name__}: {exc}")


class _Connection:
    """Loop-side view of one client connection."""

    def __init__(self, session: Session, writer: asyncio.StreamWriter):
        self.session = session
        self.writer = writer
        self.send_lock = asyncio.Lock()
        self.session_lock = asyncio.Lock()
        self.tasks: set = set()
        self.seq = 0

    async def send(self, frame: Mapping[str, Any]) -> None:
        async with self.send_lock:
            self.writer.write(protocol.encode_frame(frame))
            await self.writer.drain()

    def post_event(self, event: Dict[str, Any]) -> None:
        """Queue one telemetry event frame (loop thread only)."""
        if not self.session.subscribed:
            return
        frame = protocol.event_frame("telemetry", self.seq, event)
        self.seq += 1
        task = asyncio.ensure_future(self.send(frame))
        self.tasks.add(task)
        task.add_done_callback(self.tasks.discard)


class ReproServer:
    """The daemon.  ``await start()``, then ``await serve_forever()``.

    Args:
        host/port: TCP endpoint (``port=0`` picks a free port).
        socket_path: Unix socket endpoint (mutually exclusive with
            TCP; preferred for local IPC).
        workers: Process-pool width for micro-batched cold solves.
        cache_dir: Content-addressed solve cache for the runner.
        state_dir: Root directory for session persistence; each
            session writes ``<state_dir>/<session_id>/``.
        journal: JSONL path receiving every session telemetry event.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        state_dir: Optional[str] = None,
        journal: Optional[str] = None,
    ) -> None:
        if port is not None and socket_path is not None:
            raise ValueError("pick a TCP port or a Unix socket, not both")
        self._host = host
        self._port = port if socket_path is None else None
        self._socket_path = socket_path
        self._state_dir = state_dir
        self._journal_path = journal
        from repro.experiments.runner import ExperimentRunner

        self._runner = ExperimentRunner(
            workers=workers, cache_dir=cache_dir
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ops_pool = ThreadPoolExecutor(
            max_workers=_OPS_THREADS, thread_name_prefix="repro-op"
        )
        self._solve_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-solve"
        )
        self._cold_queue: Optional[asyncio.Queue] = None
        self._solver_task: Optional[asyncio.Task] = None
        self._journal = None
        self._stopping = asyncio.Event()
        self._next_session = 0
        self._connections: set = set()
        self._handler_tasks: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        """The bound endpoint, in :func:`repro.server.client.
        parse_address` syntax."""
        if self._socket_path is not None:
            return self._socket_path
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return f"{host}:{port}"

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._cold_queue = asyncio.Queue()
        self._solver_task = asyncio.ensure_future(self._cold_solver())
        if self._journal_path:
            from repro.experiments.runner.telemetry import JournalWriter

            self._journal = JournalWriter(self._journal_path)
        if self._socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self._socket_path,
                limit=protocol.MAX_FRAME_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self._host,
                port=self._port or 0,
                limit=protocol.MAX_FRAME_BYTES,
            )

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`)."""
        await self._stopping.wait()
        await self._shutdown()

    async def run(self) -> None:
        await self.start()
        await self.serve_forever()

    def stop(self) -> None:
        """Request shutdown (idempotent, loop thread only)."""
        self._stopping.set()

    def stop_threadsafe(self) -> None:
        """Request shutdown from any thread (tests, signal handlers)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.stop)

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections):
            for task in list(conn.tasks):
                task.cancel()
            conn.writer.close()
        for task in list(self._handler_tasks):
            task.cancel()
        if self._handler_tasks:
            await asyncio.gather(
                *self._handler_tasks, return_exceptions=True
            )
        if self._solver_task is not None:
            self._solver_task.cancel()
        self._ops_pool.shutdown(wait=False)
        self._solve_pool.shutdown(wait=False)
        if self._journal is not None:
            self._journal.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _session_state_dir(self, session_id: str) -> Optional[str]:
        if not self._state_dir:
            return None
        import os

        return os.path.join(self._state_dir, session_id)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session_id = f"s{self._next_session:04d}"
        self._next_session += 1
        session = Session(
            session_id, state_dir=self._session_state_dir(session_id)
        )
        conn = _Connection(session, writer)
        self._connections.add(conn)
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    asyncio.LimitOverrunError,
                ):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._receive(conn, line)
        except asyncio.CancelledError:
            # Shutdown cancels live connection handlers; a handler
            # parked in readline() has nothing left to unwind.
            pass
        finally:
            self._connections.discard(conn)
            for task in list(conn.tasks):
                task.cancel()
            writer.close()

    async def _receive(self, conn: _Connection, line: bytes) -> None:
        try:
            frame = protocol.decode_frame(line)
        except protocol.ProtocolError as exc:
            await conn.send(
                protocol.error_response(None, exc.code, str(exc))
            )
            return
        try:
            protocol.validate_request(frame)
        except protocol.ProtocolError as exc:
            await conn.send(
                protocol.error_response(
                    frame.get("id"), exc.code, str(exc)
                )
            )
            return
        task = asyncio.ensure_future(self._dispatch(conn, frame))
        conn.tasks.add(task)
        task.add_done_callback(conn.tasks.discard)

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, conn: _Connection, frame: Dict[str, Any]
    ) -> None:
        rid = frame["id"]
        op = frame["op"]
        params = frame.get("params") or {}
        if self._stopping.is_set():
            await conn.send(
                protocol.error_response(
                    rid, "shutting_down", "server is shutting down"
                )
            )
            return
        try:
            result = await self._execute(conn, op, params)
        except OpError as exc:
            await conn.send(
                protocol.error_response(rid, "invalid_params", str(exc))
            )
            return
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            await conn.send(
                protocol.error_response(
                    rid, "internal", f"{type(exc).__name__}: {exc}"
                )
            )
            return
        await conn.send(protocol.response(rid, result))
        if op == "shutdown":
            self.stop()

    async def _execute(
        self, conn: _Connection, op: str, params: Dict[str, Any]
    ) -> Dict[str, Any]:
        if op == "ping":
            return {"pong": True, "protocol": protocol.PROTOCOL}
        if op == "subscribe":
            conn.session.subscribed = True
            return {"subscribed": True, "next_seq": conn.seq}
        if op == "session_info":
            return conn.session.info()
        if op == "shutdown":
            return {"stopping": True}
        if op == "deploy":
            async with conn.session_lock:
                return await self._in_ops_thread(
                    conn,
                    partial(
                        conn.session.deploy,
                        params,
                        run_cold=self._pooled_cold,
                    ),
                )
        if op == "plan_diff":
            return await self._in_ops_thread(
                conn, partial(conn.session.plan_diff, params)
            )
        if op == "simulate":
            return await self._in_ops_thread(
                conn, partial(simulate_op, params)
            )
        if op == "churn_run":
            return await self._in_ops_thread(
                conn, partial(churn_op, params)
            )
        if op == "suite_run":
            return await self._in_ops_thread(
                conn, partial(suite_op, params)
            )
        raise AssertionError(op)  # unreachable: validate_request gates

    async def _in_ops_thread(self, conn: _Connection, fn) -> Any:
        """Run an op body on the thread pool with the bridge sink."""
        assert self._loop is not None
        return await self._loop.run_in_executor(
            self._ops_pool, partial(self._with_sink, conn, fn)
        )

    def _with_sink(self, conn: _Connection, fn) -> Any:
        """Worker-thread wrapper: telemetry -> loop -> client/journal.

        The sink is context-local (:mod:`repro.telemetry` rides a
        ContextVar), so concurrently executing ops on other threads
        each see only their own bridge.
        """
        loop = self._loop

        def bridge(event: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(self._fan_out_event, conn, event)

        with attached(bridge):
            return fn()

    def _fan_out_event(
        self, conn: _Connection, event: Dict[str, Any]
    ) -> None:
        conn.post_event(event)
        if self._journal is not None:
            self._journal.write(
                {"session": conn.session.session_id, **event}
            )
            self._journal.flush()

    # ------------------------------------------------------------------
    # Micro-batched cold solving
    # ------------------------------------------------------------------
    def _pooled_cold(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Blocking cold solve, called from an ops thread.

        Enqueues the request onto the loop-side batch queue and waits;
        whatever is queued when the drain wakes leaves as one
        ``runner.map`` call.
        """
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self._enqueue_cold(params), self._loop
        )
        status, payload = future.result()
        if status == "ok":
            return payload
        if status == "invalid_params":
            raise OpError(payload)
        raise RuntimeError(payload)

    async def _enqueue_cold(
        self, params: Dict[str, Any]
    ) -> Tuple[str, Any]:
        assert self._loop is not None and self._cold_queue is not None
        done: asyncio.Future = self._loop.create_future()
        # Params resolve here so the pool job and the cache key see the
        # canonical form regardless of which defaults the client sent.
        from repro.server.ops import DEPLOY_DEFAULTS

        resolved = resolve_params(params, DEPLOY_DEFAULTS)
        await self._cold_queue.put((resolved, done))
        return await done

    async def _cold_solver(self) -> None:
        assert self._loop is not None and self._cold_queue is not None
        while True:
            batch: List[Tuple[Dict[str, Any], asyncio.Future]] = [
                await self._cold_queue.get()
            ]
            while not self._cold_queue.empty():
                batch.append(self._cold_queue.get_nowait())
            items = [params for params, _ in batch]
            try:
                outcomes = await self._loop.run_in_executor(
                    self._solve_pool,
                    partial(self._runner.map, _cold_deploy_job, items),
                )
            except asyncio.CancelledError:
                for _, done in batch:
                    if not done.done():
                        done.cancel()
                raise
            except Exception as exc:
                for _, done in batch:
                    if not done.done():
                        done.set_result(
                            ("internal", f"{type(exc).__name__}: {exc}")
                        )
                continue
            for (_, done), outcome in zip(batch, outcomes):
                if not done.done():
                    done.set_result(outcome)


def serve_until_complete(server: ReproServer) -> None:
    """Blocking convenience wrapper: run a server until shutdown.

    KeyboardInterrupt stops the daemon cleanly (sessions flushed,
    journal closed) instead of unwinding through the event loop.
    """

    async def _run() -> None:
        await server.start()
        print(f"repro.server listening on {server.address}")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover
            raise

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass


# `tee` is re-exported for callers composing extra sinks around ops.
__all__ = ["ReproServer", "serve_until_complete", "tee"]
