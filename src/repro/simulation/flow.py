"""Flows and packetization under MTU pressure.

The mechanism the paper measures: a flow has a fixed amount of
application data; coordination metadata occupies part of every packet's
MTU budget, so the per-packet payload shrinks and the packet count
grows.  Following §II-B, the sender "adaptively tunes" the payload so
``payload + overhead + framing <= MTU``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.simulation.packet import BASE_HEADER_BYTES, Packet

#: Ethernet MTU used throughout the experiments.
DEFAULT_MTU = 1500


@dataclass(frozen=True)
class Flow:
    """A unidirectional message transfer.

    Attributes:
        flow_id: Identifier.
        message_bytes: Total application bytes to deliver.
        packet_payload_bytes: Nominal payload per packet before any
            overhead shrinks it (the paper's 512/1024/1500-byte packet
            sizes, minus framing).
        overhead_bytes: Metadata piggybacked per packet.
        mtu: Maximum wire size of one packet.
        header_bytes: Base framing per packet.
    """

    flow_id: int
    message_bytes: int
    packet_payload_bytes: int
    overhead_bytes: int = 0
    mtu: int = DEFAULT_MTU
    header_bytes: int = BASE_HEADER_BYTES

    def __post_init__(self) -> None:
        if self.message_bytes <= 0:
            raise ValueError("message_bytes must be positive")
        if self.packet_payload_bytes <= 0:
            raise ValueError("packet_payload_bytes must be positive")
        if self.effective_payload_bytes <= 0:
            raise ValueError(
                f"overhead {self.overhead_bytes}B + framing "
                f"{self.header_bytes}B leave no payload room within "
                f"MTU {self.mtu}"
            )

    @property
    def effective_payload_bytes(self) -> int:
        """Payload per packet after the overhead claims its MTU share."""
        room = self.mtu - self.overhead_bytes - self.header_bytes
        return min(self.packet_payload_bytes, room)

    @property
    def num_packets(self) -> int:
        """Packets needed to carry the whole message."""
        payload = self.effective_payload_bytes
        return -(-self.message_bytes // payload)  # ceil division

    @property
    def total_wire_bytes(self) -> int:
        """Bytes serialized per hop for the whole flow."""
        full = self.num_packets - 1
        last_payload = self.message_bytes - full * self.effective_payload_bytes
        per_packet_extra = self.overhead_bytes + self.header_bytes
        return (
            full * (self.effective_payload_bytes + per_packet_extra)
            + last_payload
            + per_packet_extra
        )


def packetize(flow: Flow) -> Iterator[Packet]:
    """Yield the flow's packets in order (last one may be short)."""
    payload = flow.effective_payload_bytes
    remaining = flow.message_bytes
    seq = 0
    while remaining > 0:
        take = min(payload, remaining)
        yield Packet(
            flow_id=flow.flow_id,
            seq=seq,
            payload_bytes=take,
            overhead_bytes=flow.overhead_bytes,
            header_bytes=flow.header_bytes,
        )
        remaining -= take
        seq += 1


def packet_list(flow: Flow) -> List[Packet]:
    """Materialized :func:`packetize` (convenience for tests)."""
    return list(packetize(flow))
