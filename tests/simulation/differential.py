"""Reusable differential-testing harness for engine pairs.

Every simulation engine added to :mod:`repro.simulation.engine` makes
the same promise: on a shared :class:`SimulationSpec` its per-flow
columns agree with a reference engine within a documented tolerance.
This module turns that promise into a first-class object — a
:class:`ToleranceContract` compared column by column — so each new
engine states its contract once and every (engine, reference,
topology, seed) cell reuses the same machinery.  First consumer: the
contention engine vs the exact DES at contention-free loads
(``tests/simulation/test_differential.py``); the batch-vs-analytic
lock-in rides the same harness as a self-check.

Import it as a plain module (``from tests.simulation.differential
import ...``); it deliberately contains no tests of its own.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.simulation.engine import Engine, SimulationResult, get_engine
from repro.simulation.netsim import HopSpec, uniform_path
from repro.simulation.spec import SimulationSpec
from repro.simulation.traces import TraceConfig, generate_trace

EngineLike = Union[str, Engine]


@dataclass(frozen=True)
class ToleranceContract:
    """Per-column agreement bounds between two engines.

    ``fct_rel``/``goodput_rel`` bound the relative delta of the float
    columns (measured and baseline twins alike); ``packets_exact`` /
    ``wire_exact`` require the integer columns to be bit-identical.
    The defaults are the repo-wide 1e-6 contract the batch and
    contention engines both document.
    """

    fct_rel: float = 1e-6
    goodput_rel: float = 1e-6
    packets_exact: bool = True
    wire_exact: bool = True

    def relaxed(self, **changes) -> "ToleranceContract":
        """A copy with some bounds overridden (for lossy engines)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ColumnDelta:
    """Agreement of one column: worst delta, where, and the verdict."""

    column: str
    max_delta: float  # relative for float columns, #mismatches for int
    worst_flow: int
    bound: float
    ok: bool

    def __str__(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        return (
            f"{self.column}: max delta {self.max_delta:.3e} "
            f"(flow {self.worst_flow}, bound {self.bound:.1e}) "
            f"[{verdict}]"
        )


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of comparing one engine pair on one spec."""

    engine_a: str
    engine_b: str
    source: str
    num_flows: int
    columns: Tuple[ColumnDelta, ...]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.columns)

    @property
    def failures(self) -> Tuple[ColumnDelta, ...]:
        return tuple(c for c in self.columns if not c.ok)

    def summary(self) -> str:
        lines = [
            f"{self.engine_a} vs {self.engine_b} on {self.source!r} "
            f"({self.num_flows} flows): "
            f"{'AGREE' if self.ok else 'DISAGREE'}"
        ]
        lines += [f"  {c}" for c in self.columns]
        return "\n".join(lines)


def _float_delta(
    name: str, a: Sequence[float], b: Sequence[float], bound: float
) -> ColumnDelta:
    worst, worst_flow = 0.0, -1
    for i, (x, y) in enumerate(zip(a, b)):
        delta = abs(y - x) / abs(x) if x else abs(y - x)
        if delta > worst:
            worst, worst_flow = delta, i
    return ColumnDelta(name, worst, worst_flow, bound, worst <= bound)


def _exact_delta(
    name: str, a: Sequence[int], b: Sequence[int], required: bool
) -> ColumnDelta:
    mismatches = sum(1 for x, y in zip(a, b) if x != y)
    worst_flow = next(
        (i for i, (x, y) in enumerate(zip(a, b)) if x != y), -1
    )
    return ColumnDelta(
        name,
        float(mismatches),
        worst_flow,
        0.0,
        (mismatches == 0) or not required,
    )


def compare(
    engine_a: EngineLike,
    engine_b: EngineLike,
    spec: SimulationSpec,
    contract: ToleranceContract = ToleranceContract(),
) -> DifferentialReport:
    """Evaluate both engines on ``spec`` and diff every column.

    ``engine_a`` is the reference; relative deltas are measured
    against its values.
    """
    ref = get_engine(engine_a)
    cand = get_engine(engine_b)
    a = ref.evaluate(spec)
    b = cand.evaluate(spec)
    return compare_results(a, b, contract)


def compare_results(
    a: SimulationResult,
    b: SimulationResult,
    contract: ToleranceContract = ToleranceContract(),
) -> DifferentialReport:
    """Diff two already-computed results (reference first)."""
    columns = (
        _float_delta("fct_us", a.fct_us, b.fct_us, contract.fct_rel),
        _float_delta(
            "baseline_fct_us",
            a.baseline_fct_us,
            b.baseline_fct_us,
            contract.fct_rel,
        ),
        _float_delta(
            "goodput_gbps",
            a.goodput_gbps,
            b.goodput_gbps,
            contract.goodput_rel,
        ),
        _float_delta(
            "baseline_goodput_gbps",
            a.baseline_goodput_gbps,
            b.baseline_goodput_gbps,
            contract.goodput_rel,
        ),
        _exact_delta(
            "num_packets", a.num_packets, b.num_packets,
            contract.packets_exact,
        ),
        _exact_delta(
            "wire_bytes", a.wire_bytes, b.wire_bytes,
            contract.wire_exact,
        ),
    )
    return DifferentialReport(
        engine_a=a.engine,
        engine_b=b.engine,
        source=a.source,
        num_flows=a.num_flows,
        columns=columns,
    )


def assert_agreement(
    engine_a: EngineLike,
    engine_b: EngineLike,
    spec: SimulationSpec,
    contract: ToleranceContract = ToleranceContract(),
) -> DifferentialReport:
    """:func:`compare`, raising ``AssertionError`` with the summary."""
    report = compare(engine_a, engine_b, spec, contract)
    assert report.ok, report.summary()
    return report


# ----------------------------------------------------------------------
# Shared spec matrix: the topology x seed grid every differential
# suite sweeps.  Message sizes are capped so the per-packet exact DES
# stays tractable as the reference.
# ----------------------------------------------------------------------

#: Topology labels the grid produces — three genuinely different hop
#: structures: the paper's uniform DCN path, a rate/latency-mixed WAN
#: chain, and real routed paths from a deployed plan.
TOPOLOGIES = ("uniform5", "hetero", "wan-plan")


def _hetero_path(seed: int) -> List[HopSpec]:
    """A seeded path mixing line rates and latencies (3-6 hops)."""
    import random

    rng = random.Random(seed * 7919 + 13)
    return [
        HopSpec(
            rate_gbps=rng.choice((10.0, 25.0, 40.0, 100.0)),
            latency_us=round(rng.uniform(0.5, 50.0), 3),
        )
        for _ in range(rng.randint(3, 6))
    ]


def spec_grid(
    seeds: Iterable[int],
    topologies: Sequence[str] = TOPOLOGIES,
    num_flows: int = 40,
    overhead_bytes: int = 96,
    max_bytes: int = 128 * 1024,
    offered_load: Optional[float] = None,
) -> List[Tuple[str, SimulationSpec]]:
    """The (topology x seed) differential matrix as labelled specs.

    Flow sizes follow the usual heavy-tailed trace model with the tail
    capped at ``max_bytes`` so the exact DES reference finishes in
    test time.  ``offered_load`` stamps the spec's traffic model so
    contention evaluations pick the load up without engine flags.
    """
    cells: List[Tuple[str, SimulationSpec]] = []
    for seed in seeds:
        trace = generate_trace(
            seed,
            TraceConfig(
                num_flows=num_flows,
                tail_min_bytes=max_bytes // 2,
                max_bytes=max_bytes,
            ),
        )
        for topology in topologies:
            if topology == "uniform5":
                spec = SimulationSpec.from_trace(
                    trace, uniform_path(5), overhead_bytes
                )
            elif topology == "hetero":
                spec = SimulationSpec.from_trace(
                    trace, _hetero_path(seed), overhead_bytes
                )
            elif topology == "wan-plan":
                spec = _wan_plan_spec(seed, trace)
            else:  # pragma: no cover - caller typo guard
                raise ValueError(f"unknown grid topology {topology!r}")
            if offered_load is not None:
                spec = replace(
                    spec,
                    traffic=replace(
                        spec.traffic, offered_load=offered_load
                    ),
                )
            cells.append((f"{topology}/seed{seed}", spec))
    return cells


def _wan_plan_spec(seed: int, trace) -> SimulationSpec:
    """Real routed pairs: an FFL deployment over a seeded random WAN."""
    from repro.baselines import Ffl
    from repro.network.generators import random_wan
    from repro.workloads import real_programs

    network = random_wan(10, 16, seed=seed)
    plan = Ffl().deploy(real_programs(6), network).plan
    return SimulationSpec.from_plan(plan, network, trace=trace)
