"""Seeded diurnal load modulation: determinism + serialization."""

import math

import pytest

from repro.simulation.spec import DiurnalLoad, TrafficModel


def test_flat_model_is_base():
    model = DiurnalLoad(base=0.7)
    assert model.load_at(0.0) == pytest.approx(0.7)
    assert model.load_at(13.5) == pytest.approx(0.7)


def test_sinusoid_peak_and_trough():
    model = DiurnalLoad(base=0.5, amplitude=0.4, period_hours=24.0)
    # peak a quarter period after phase, trough three quarters after
    assert model.load_at(6.0) == pytest.approx(0.7)
    assert model.load_at(18.0) == pytest.approx(0.3)
    assert model.load_at(0.0) == pytest.approx(0.5)


def test_period_and_phase():
    model = DiurnalLoad(base=0.5, amplitude=0.2, period_hours=12.0,
                        phase_hours=3.0)
    assert model.load_at(6.0) == pytest.approx(0.6)
    assert model.load_at(18.0) == pytest.approx(0.6)


def test_floor_clamps():
    model = DiurnalLoad(base=0.1, amplitude=1.0, floor=0.05)
    assert model.load_at(18.0) == pytest.approx(0.05)


def test_jitter_is_seeded_and_deterministic():
    a = DiurnalLoad(base=0.5, jitter=0.2, seed=1)
    b = DiurnalLoad(base=0.5, jitter=0.2, seed=1)
    c = DiurnalLoad(base=0.5, jitter=0.2, seed=2)
    hours = [0.0, 1.0, 2.5, 23.0]
    assert [a.load_at(h) for h in hours] == [b.load_at(h) for h in hours]
    assert [a.load_at(h) for h in hours] != [c.load_at(h) for h in hours]


def test_jitter_bounded():
    model = DiurnalLoad(base=0.5, jitter=0.3, seed=7)
    for h in range(48):
        assert 0.5 * 0.7 <= model.load_at(float(h)) <= 0.5 * 1.3


def test_roundtrip():
    model = DiurnalLoad(base=0.6, amplitude=0.5, period_hours=12.0,
                        phase_hours=2.0, jitter=0.1, seed=9, floor=0.1)
    assert DiurnalLoad.from_dict(model.to_dict()) == model


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown DiurnalLoad keys"):
        DiurnalLoad.from_dict({"base": 0.5, "bogus": 1})


@pytest.mark.parametrize(
    "kwargs",
    [
        {"base": 0.0},
        {"amplitude": 1.5},
        {"period_hours": 0.0},
        {"jitter": 1.0},
        {"floor": 0.0},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        DiurnalLoad(**kwargs)


def test_traffic_model_at_hour():
    traffic = TrafficModel(
        load_model=DiurnalLoad(base=0.5, amplitude=0.4)
    )
    peak = traffic.at_hour(6.0)
    assert peak.offered_load == pytest.approx(0.7)
    assert peak.load_model is None
    # repeated materialization is stable
    assert traffic.at_hour(6.0) == peak


def test_traffic_model_at_hour_requires_model():
    with pytest.raises(ValueError, match="load_model"):
        TrafficModel().at_hour(0.0)


def test_traffic_model_roundtrip():
    traffic = TrafficModel(
        packet_payload_bytes=512,
        offered_load=None,
        load_model=DiurnalLoad(base=0.4, amplitude=0.3, seed=2),
    )
    assert TrafficModel.from_dict(traffic.to_dict()) == traffic
    plain = TrafficModel(offered_load=0.9)
    assert TrafficModel.from_dict(plain.to_dict()) == plain


def test_traffic_model_from_dict_rejects_unknown():
    with pytest.raises(ValueError, match="unknown TrafficModel keys"):
        TrafficModel.from_dict({"load": 0.5})


def test_load_at_continuity_over_period():
    # without jitter the curve is smooth: small step, small change
    model = DiurnalLoad(base=0.5, amplitude=0.4)
    prev = model.load_at(0.0)
    for i in range(1, 241):
        cur = model.load_at(i * 0.1)
        assert abs(cur - prev) < 0.4 * 0.5 * 2 * math.pi * 0.1 / 24 + 1e-9
        prev = cur
