"""Unit tests for the TDG data structure."""

import pytest

from repro.dataplane.actions import no_op
from repro.dataplane.mat import Mat
from repro.tdg.dependencies import DependencyType
from repro.tdg.graph import CycleError, Tdg


def mat(name, demand=0.2):
    return Mat(name, actions=[no_op()], resource_demand=demand)


def chain(*names, bytes_per_edge=4):
    tdg = Tdg("chain")
    for name in names:
        tdg.add_node(mat(name))
    for up, down in zip(names, names[1:]):
        tdg.add_edge(up, down, DependencyType.MATCH, bytes_per_edge)
    return tdg


class TestConstruction:
    def test_add_node_idempotent_for_equal_mat(self):
        tdg = Tdg()
        tdg.add_node(mat("a"))
        tdg.add_node(mat("a"))
        assert len(tdg) == 1

    def test_add_node_rejects_conflicting_mat(self):
        tdg = Tdg()
        tdg.add_node(mat("a"))
        with pytest.raises(ValueError, match="different MAT"):
            tdg.add_node(mat("a", demand=0.9))

    def test_add_edge_requires_nodes(self):
        tdg = Tdg()
        tdg.add_node(mat("a"))
        with pytest.raises(KeyError):
            tdg.add_edge("a", "ghost", DependencyType.MATCH)
        with pytest.raises(KeyError):
            tdg.add_edge("ghost", "a", DependencyType.MATCH)

    def test_rejects_self_loop(self):
        tdg = Tdg()
        tdg.add_node(mat("a"))
        with pytest.raises(CycleError):
            tdg.add_edge("a", "a", DependencyType.MATCH)

    def test_rejects_cycle(self):
        tdg = chain("a", "b", "c")
        with pytest.raises(CycleError):
            tdg.add_edge("c", "a", DependencyType.MATCH)

    def test_rejects_duplicate_edge(self):
        tdg = chain("a", "b")
        with pytest.raises(ValueError, match="already present"):
            tdg.add_edge("a", "b", DependencyType.ACTION)

    def test_rejects_negative_bytes(self):
        tdg = Tdg()
        tdg.add_node(mat("a"))
        tdg.add_node(mat("b"))
        with pytest.raises(ValueError, match="non-negative"):
            tdg.add_edge("a", "b", DependencyType.MATCH, -1)

    def test_remove_node_cleans_edges(self):
        tdg = chain("a", "b", "c")
        tdg.remove_node("b")
        assert "b" not in tdg
        assert not tdg.edges

    def test_remove_edge(self):
        tdg = chain("a", "b")
        tdg.remove_edge("a", "b")
        assert not tdg.has_edge("a", "b")
        with pytest.raises(KeyError):
            tdg.remove_edge("a", "b")


class TestQueries:
    def test_sources_and_sinks(self):
        tdg = chain("a", "b", "c")
        assert tdg.sources() == ["a"]
        assert tdg.sinks() == ["c"]

    def test_predecessors_successors(self):
        tdg = chain("a", "b", "c")
        assert tdg.successors("a") == {"b"}
        assert tdg.predecessors("c") == {"b"}

    def test_has_path(self):
        tdg = chain("a", "b", "c")
        assert tdg.has_path("a", "c")
        assert tdg.has_path("a", "a")
        assert not tdg.has_path("c", "a")
        assert not tdg.has_path("a", "ghost")

    def test_in_out_edges(self):
        tdg = chain("a", "b", "c")
        assert [e.downstream for e in tdg.out_edges("a")] == ["b"]
        assert [e.upstream for e in tdg.in_edges("c")] == ["b"]

    def test_totals(self):
        tdg = chain("a", "b", "c", bytes_per_edge=5)
        assert tdg.total_metadata_bytes() == 10
        assert tdg.total_resource_demand() == pytest.approx(0.6)

    def test_node_lookup_errors(self):
        tdg = Tdg("g")
        with pytest.raises(KeyError, match="no MAT"):
            tdg.node("ghost")
        with pytest.raises(KeyError, match="no edge"):
            tdg.edge("a", "b")


class TestTopologicalOrder:
    def test_kahn_respects_edges(self):
        tdg = chain("a", "b", "c")
        order = tdg.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_dfs_respects_edges(self):
        tdg = chain("a", "b", "c")
        order = tdg.topological_order(strategy="dfs")
        assert order.index("a") < order.index("b") < order.index("c")

    def test_dfs_keeps_components_contiguous(self):
        tdg = Tdg()
        for name in ("a1", "b1", "a2", "b2"):
            tdg.add_node(mat(name))
        tdg.add_edge("a1", "a2", DependencyType.MATCH)
        tdg.add_edge("b1", "b2", DependencyType.MATCH)
        order = tdg.topological_order(strategy="dfs")
        a_positions = [order.index("a1"), order.index("a2")]
        b_positions = [order.index("b1"), order.index("b2")]
        # One component entirely before the other.
        assert max(a_positions) < min(b_positions) or max(
            b_positions
        ) < min(a_positions)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            Tdg().topological_order(strategy="magic")


class TestDerivation:
    def test_copy_is_independent(self):
        tdg = chain("a", "b")
        clone = tdg.copy("clone")
        clone.remove_node("a")
        assert "a" in tdg

    def test_subgraph_keeps_internal_edges(self):
        tdg = chain("a", "b", "c")
        sub = tdg.subgraph(["a", "b"])
        assert sub.has_edge("a", "b")
        assert len(sub) == 2
        assert not sub.has_edge("b", "c")

    def test_subgraph_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown"):
            chain("a", "b").subgraph(["a", "ghost"])

    def test_cut_bytes(self):
        tdg = chain("a", "b", "c", bytes_per_edge=7)
        assert tdg.cut_bytes(["a"], ["b", "c"]) == 7
        assert tdg.cut_bytes(["a", "b"], ["c"]) == 7
        assert tdg.cut_bytes(["c"], ["a"]) == 0
