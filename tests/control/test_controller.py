"""Unit tests for the runtime controller."""

import pytest

from repro.control import Controller, ControllerError
from repro.core import Hermes
from repro.dataplane.rules import MatchKind, MatchSpec, Rule
from repro.network import linear_topology
from tests.conftest import make_sketch_program


@pytest.fixture
def controller(six_programs, small_line):
    result = Hermes().deploy(six_programs, small_line)
    return Controller(result.plan)


class TestLookup:
    def test_resolve_returns_switch_and_stages(self, controller):
        switch, stages = controller.resolve("p0.hash")
        assert switch in controller.plan.network.switch_names
        assert stages and all(s >= 1 for s in stages)

    def test_resolve_matches_plan(self, controller):
        for mat_name in controller.plan.placements:
            switch, _stages = controller.resolve(mat_name)
            assert switch == controller.plan.switch_of(mat_name)

    def test_unknown_mat(self, controller):
        with pytest.raises(ControllerError, match="no deployed MAT"):
            controller.table("ghost")

    def test_tables_on_switch(self, controller):
        for switch in controller.plan.occupied_switches():
            names = {t.mat_name for t in controller.tables_on(switch)}
            assert names == set(controller.plan.mats_on(switch))


class TestRuleManagement:
    def rule(self, value=1):
        return Rule(
            matches=(
                MatchSpec("ipv4.src_addr", MatchKind.EXACT, value),
            ),
            action_name="hash_meta_p0_idx",
        )

    def test_install_and_remove(self, controller):
        event = controller.install_rule("p0.hash", self.rule())
        assert event.kind == "install"
        assert controller.table("p0.hash").occupancy == 1
        controller.remove_rule("p0.hash", self.rule())
        assert controller.table("p0.hash").occupancy == 0
        assert len(controller.event_log) == 2

    def test_capacity_enforced(self, controller):
        handle = controller.table("p0.hash")
        for i in range(handle.capacity):
            controller.install_rule("p0.hash", self.rule(i))
        with pytest.raises(ControllerError, match="full"):
            controller.install_rule("p0.hash", self.rule(9999))

    def test_batch_install_all_or_nothing(self, controller):
        handle = controller.table("p0.hash")
        too_many = [self.rule(i) for i in range(handle.capacity + 1)]
        with pytest.raises(ControllerError, match="free entries"):
            controller.install_rules("p0.hash", too_many)
        assert handle.occupancy == 0  # nothing installed

    def test_schema_checked(self, controller):
        bad_action = Rule(action_name="ghost_action")
        with pytest.raises(ControllerError, match="unknown action"):
            controller.install_rule("p0.hash", bad_action)
        bad_field = Rule(
            matches=(MatchSpec("tcp.flags", MatchKind.EXACT, 1),),
            action_name="hash_meta_p0_idx",
        )
        with pytest.raises(ControllerError, match="not in"):
            controller.install_rule("p0.hash", bad_field)

    def test_remove_missing_rule(self, controller):
        with pytest.raises(ControllerError, match="not installed"):
            controller.remove_rule("p0.hash", self.rule())

    def test_drain(self, controller):
        for i in range(3):
            controller.install_rule("p0.hash", self.rule(i))
        assert controller.drain_table("p0.hash") == 3
        assert controller.table("p0.hash").occupancy == 0

    def test_occupancy_report_and_switch_totals(self, controller):
        controller.install_rule("p0.hash", self.rule())
        report = controller.occupancy_report()
        assert report["p0.hash"][0] == 1
        switch, _stages = controller.resolve("p0.hash")
        assert controller.switch_occupancy(switch) >= 1

    def test_rules_to_replay(self, controller):
        controller.install_rule("p0.hash", self.rule(5))
        replay = controller.rules_to_replay("p0.hash")
        assert len(replay) == 1
        assert replay[0].matches[0].value == 5
