"""Benchmark: the suite compiler's cache economics.

Measures the point of declaring experiments as ``repro.suite/v1``
documents: every cell is content-addressed, so a rerun of the same
spec replays entirely from the result cache instead of re-solving.
Two timed runs of one deployment matrix through ``run_suite`` against
a shared cache directory:

* **cold** — every cell solved, records written to the cache;
* **warm** — every cell replayed (``cached_cells == num_cells``),
  tables byte-identical to the cold run.

The contract test asserts the warm rerun is fully cached and at least
2x faster than the cold run.  Results are written to
``BENCH_suite.json`` at the repo root (the weekly solver-sweep
workflow uploads it as an artifact).
"""

import json
import os
import time

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.suite import SuiteSpec, run_suite

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPORT_PATH = os.path.join(_REPO_ROOT, "BENCH_suite.json")

#: A reduced-but-representative deployment matrix: two real-slice
#: workloads on a linear testbed and a seeded WAN, solved by the
#: sub-second framework classes (greedy chains + the heuristic).
SPEC_DOC = {
    "suite": "repro.suite/v1",
    "name": "bench",
    "kind": "deployment",
    "axes": {
        "workloads": [
            {"spec": "real:2", "tag": 2},
            {"spec": "real:4", "tag": 4},
        ],
        "topologies": [
            "linear-3",
            {"spec": "wan:8:12:1", "tag": "wan8"},
        ],
        "frameworks": ["ffl", "ffls", "hermes"],
    },
}


@pytest.fixture(scope="module")
def suite_records(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("suite-bench") / "cache")
    spec = SuiteSpec.from_dict(SPEC_DOC)

    start = time.perf_counter()
    cold = run_suite(spec, runner=ExperimentRunner(cache_dir=cache_dir))
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_suite(spec, runner=ExperimentRunner(cache_dir=cache_dir))
    warm_s = time.perf_counter() - start

    payload = {
        "spec": SPEC_DOC,
        "cold": {
            "wall_s": round(cold_s, 4),
            "cached_cells": cold.cached_cells,
        },
        "warm": {
            "wall_s": round(warm_s, 4),
            "cached_cells": warm.cached_cells,
        },
        "tables_identical": warm.tables == cold.tables,
        "summary": {
            "cells": cold.num_cells,
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "cells_per_s": round(cold.num_cells / max(warm_s, 1e-9), 1),
            "cache_hit_speedup": round(cold_s / max(warm_s, 1e-9), 1),
        },
    }
    with open(_REPORT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return {"cold": cold, "warm": warm, "payload": payload}


def test_bench_suite_cold_run_solves_every_cell(suite_records):
    cold = suite_records["cold"]
    assert cold.num_cells == 12
    assert cold.cached_cells == 0


def test_bench_suite_warm_rerun_is_fully_cached(suite_records):
    """The headline contract: the rerun replays 100% from the cache
    and renders byte-identical tables."""
    cold, warm = suite_records["cold"], suite_records["warm"]
    assert warm.cached_cells == warm.num_cells == cold.num_cells
    assert warm.tables == cold.tables
    assert warm.render() == cold.render()


def test_bench_suite_cache_speedup(suite_records):
    summary = suite_records["payload"]["summary"]
    assert summary["cache_hit_speedup"] >= 2.0, summary


def test_bench_suite_report(suite_records):
    from conftest import record_report

    summary = suite_records["payload"]["summary"]
    rows = [
        "Suite compiler: content-addressed cache replay "
        f"({summary['cells']}-cell deployment matrix)",
        f"cold {summary['cold_s']:.2f} s, warm {summary['warm_s']:.3f} s "
        f"-> {summary['cache_hit_speedup']:.0f}x "
        f"({summary['cells_per_s']:.0f} cells/s warm)",
    ]
    record_report("\n".join(rows))
    assert os.path.exists(_REPORT_PATH)
