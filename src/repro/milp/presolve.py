"""Presolve: shrink an MILP before branch & bound touches it.

Real solvers spend a fixed-point loop up front fixing variables,
tightening bounds and deleting constraints that can never bind; on the
deployment models of this repo (P#1 and the baseline ILPs) that loop
removes a meaningful share of the binaries the product linearization
introduces, which shrinks every LP the search solves and cuts the node
count.  The pass here implements the classic safe subset:

* **Integer bound rounding** — an integral variable's bounds snap to
  ``ceil(lb)`` / ``floor(ub)``.
* **Singleton rows** — a constraint over one variable is exactly a
  bound; it moves into the bound and the row disappears.
* **Activity-based redundancy / infeasibility** — a row whose maximum
  activity cannot exceed its right-hand side never binds and is
  dropped; a row whose minimum activity already exceeds it proves the
  model infeasible.
* **Implied integer bounds** — for each row and each integral variable
  in it, the residual activity of the other variables implies a bound,
  which is rounded and applied.  Only integral variables are tightened
  this way, so floating-point rounding can never cut off a continuous
  optimum.
* **Fixed-variable substitution** — a variable whose bounds coincide is
  substituted into every row and into the objective, accumulating a
  constant objective offset.

Everything is *conservative*: bounds only tighten, no transformation
can exclude an integer-feasible point of the original model, and the
:class:`PresolvedModel` transform maps reduced solutions back to
original variables exactly (fixed variables return their fixed values
verbatim).  The property tests in
``tests/milp/test_presolve_properties.py`` pin these invariants.

One ``solver.presolve`` telemetry event per :func:`presolve` call
reports the reduction (see :mod:`repro.telemetry`).
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.milp.expr import LinExpr
from repro.milp.model import Constraint, Model, Sense, Var
from repro.telemetry import emit

#: Integrality tolerance shared with the branch & bound solver.
_INT_TOL = 1e-6
#: Feasibility slack for activity arguments; matches the solver's own
#: feasibility checks so presolve never declares infeasible a point the
#: search would have accepted.
_FEAS_TOL = 1e-6
#: Rounding slack applied before ceil/floor so that 2.9999999996
#: counts as the integer 3.
_ROUND_TOL = 1e-7


class PresolveStatus:
    """Terminal state of a presolve pass (plain strings, not an enum,
    so telemetry payloads stay JSON-trivial)."""

    REDUCED = "reduced"  # a (possibly smaller) model remains to solve
    SOLVED = "solved"  # every variable was fixed; nothing left to solve
    INFEASIBLE = "infeasible"  # proven infeasible during presolve


@dataclass
class PresolveStats:
    """Counters describing one presolve pass."""

    rounds: int = 0
    fixed_vars: int = 0
    tightened_bounds: int = 0
    removed_constraints: int = 0

    def as_payload(self) -> Dict[str, int]:
        return {
            "rounds": self.rounds,
            "fixed": self.fixed_vars,
            "tightened": self.tightened_bounds,
            "removed": self.removed_constraints,
        }


@dataclass
class PresolvedModel:
    """Outcome of :func:`presolve`: the reduced model plus the exact
    transform back to the original variable space.

    Attributes:
        original: The model that was presolved (never mutated).
        model: The reduced model, or None when ``status`` is SOLVED or
            INFEASIBLE.
        status: One of :class:`PresolveStatus`.
        fixed: Original variables fixed during presolve, with values.
        var_map: Original variable -> its counterpart in ``model``
            (free variables only).
        objective_offset: Contribution of the fixed variables to the
            original objective's *linear terms*, in the model's own
            sense; add it to the reduced model's objective value to
            recover the original objective.  (Like the solver itself,
            the offset ignores any constant term of the objective
            expression.)
        stats: Reduction counters.
    """

    original: Model
    model: Optional[Model]
    status: str
    fixed: Dict[Var, float] = field(default_factory=dict)
    var_map: Dict[Var, Var] = field(default_factory=dict)
    objective_offset: float = 0.0
    stats: PresolveStats = field(default_factory=PresolveStats)

    def lift_values(
        self, reduced_values: Dict[Var, float]
    ) -> Dict[Var, float]:
        """Map a reduced-model assignment back onto original variables.

        Fixed variables round-trip exactly (their stored values are
        returned verbatim); free variables take the reduced solution's
        value of their mapped counterpart.
        """
        lifted: Dict[Var, float] = dict(self.fixed)
        for orig, reduced in self.var_map.items():
            lifted[orig] = reduced_values[reduced]
        return lifted

    def project_values(
        self, original_values: Dict[Var, float]
    ) -> Dict[Var, float]:
        """Map an original-space assignment into the reduced space
        (e.g. to warm-start the reduced solve).  Fixed variables drop
        out — their values are already decided."""
        return {
            reduced: original_values[orig]
            for orig, reduced in self.var_map.items()
            if orig in original_values
        }

    def rebind(self, model: Model) -> "PresolvedModel":
        """Retarget this reduction at a structurally identical model.

        Consecutive replans of the same deployment instance rebuild the
        model object from scratch; when the rebuild is structurally
        identical (same :func:`model_signature`), the presolve outcome
        is identical too and only the ``Var`` identities differ.  The
        fixed-value and free-variable maps are re-keyed by variable
        index onto ``model``'s own objects, so :meth:`lift_values` /
        :meth:`project_values` speak the new model's vocabulary.  The
        reduced model is shared — the solver never mutates it.
        """
        if len(model.variables) != len(self.original.variables):
            raise ValueError(
                "rebind target has a different variable count: "
                f"{len(model.variables)} != {len(self.original.variables)}"
            )
        variables = model.variables
        return PresolvedModel(
            original=model,
            model=self.model,
            status=self.status,
            fixed={
                variables[var.index]: value
                for var, value in self.fixed.items()
            },
            var_map={
                variables[var.index]: reduced
                for var, reduced in self.var_map.items()
            },
            objective_offset=self.objective_offset,
            stats=self.stats,
        )


def model_signature(model: Model) -> str:
    """Structural hash of a model: bounds, rows, and objective.

    Two models with equal signatures are the *same instance* up to
    ``Var`` object identity — same variable names/types/bounds in the
    same order, same constraint coefficients/senses/right-hand sides,
    same objective — so a presolve computed for one is valid for the
    other via :meth:`PresolvedModel.rebind`.
    """
    digest = hashlib.sha256()
    for var in model.variables:
        digest.update(
            f"v|{var.name}|{var.var_type.value}|{var.lb!r}|{var.ub!r}\n".encode()
        )
    for constraint in model.constraints:
        row = sorted(
            (var.index, coef)
            for var, coef in constraint.expr.coefs.items()
        )
        digest.update(
            f"c|{constraint.sense.value}|{constraint.expr.constant!r}|{row!r}\n".encode()
        )
    objective = sorted(
        (var.index, coef) for var, coef in model.objective.coefs.items()
    )
    digest.update(
        f"o|{model.maximize_objective}|{model.objective.constant!r}|{objective!r}".encode()
    )
    return digest.hexdigest()


class PresolveCache:
    """Reuses presolve output across structurally identical models.

    The reconciler's warm path re-solves the same deployment instance
    after every churn event; the model is rebuilt each time, but its
    structure rarely changes between consecutive replans.  Keyed by
    :func:`model_signature`, the cache returns the memoized reduction
    (rebound onto the fresh model's variables) instead of re-running
    the fixed-point loop.  Entries evict LRU past ``max_entries``.

    Emits one ``solver.presolve.cache`` telemetry event per lookup.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, PresolvedModel]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def fetch(self, model: Model, max_rounds: int = 10) -> PresolvedModel:
        """The presolve of ``model``, memoized by structure."""
        signature = model_signature(model)
        cached = self._entries.get(signature)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(signature)
            emit(
                "solver.presolve.cache",
                hit=True,
                signature=signature[:12],
                hits=self.hits,
                misses=self.misses,
            )
            return cached.rebind(model)
        self.misses += 1
        emit(
            "solver.presolve.cache",
            hit=False,
            signature=signature[:12],
            hits=self.hits,
            misses=self.misses,
        )
        result = presolve(model, max_rounds=max_rounds)
        self._entries[signature] = result
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return result


# Internal row form: ``(coefs by original var index, sense, rhs)``
# meaning ``sum coef * x  <sense>  rhs``; GE rows are flipped into LE
# at entry, so only LE and EQ survive.
_Row = Tuple[Dict[int, float], Sense, float]


class _Reduction:
    """Mutable working state of one presolve run."""

    def __init__(self, model: Model) -> None:
        self.model = model
        self.lbs = [v.lb for v in model.variables]
        self.ubs = [v.ub for v in model.variables]
        self.integral = [v.is_integral for v in model.variables]
        self.fixed: Dict[int, float] = {}
        self.stats = PresolveStats()
        self.rows: List[_Row] = []
        for constraint in model.constraints:
            coefs = {
                var.index: coef
                for var, coef in constraint.expr.coefs.items()
                if coef != 0.0
            }
            rhs = -constraint.expr.constant
            if constraint.sense is Sense.GE:
                coefs = {i: -c for i, c in coefs.items()}
                self.rows.append((coefs, Sense.LE, -rhs))
            else:
                self.rows.append((coefs, constraint.sense, rhs))

    # ------------------------------------------------------------------
    def tighten(
        self, idx: int, lo: Optional[float], hi: Optional[float]
    ) -> bool:
        """Apply new bounds to ``idx``; False means lb > ub (infeasible)."""
        if lo is not None and lo > self.lbs[idx] + 1e-12:
            self.lbs[idx] = lo
            self.stats.tightened_bounds += 1
        if hi is not None and hi < self.ubs[idx] - 1e-12:
            self.ubs[idx] = hi
            self.stats.tightened_bounds += 1
        return self.lbs[idx] <= self.ubs[idx] + _FEAS_TOL

    def round_integer_bounds(self, idx: int) -> bool:
        if not self.integral[idx]:
            return True
        lo, hi = self.lbs[idx], self.ubs[idx]
        if not math.isinf(lo):
            self.lbs[idx] = float(math.ceil(lo - _ROUND_TOL))
        if not math.isinf(hi):
            self.ubs[idx] = float(math.floor(hi + _ROUND_TOL))
        return self.lbs[idx] <= self.ubs[idx] + _FEAS_TOL

    def min_max_activity(
        self, coefs: Dict[int, float]
    ) -> Tuple[float, float]:
        lo = 0.0
        hi = 0.0
        for idx, coef in coefs.items():
            if coef > 0:
                lo += coef * self.lbs[idx]
                hi += coef * self.ubs[idx]
            else:
                lo += coef * self.ubs[idx]
                hi += coef * self.lbs[idx]
        return lo, hi

    def implied_integer_bounds(
        self, coefs: Dict[int, float], rhs: float
    ) -> bool:
        """Tighten integral variables of one LE row ``coefs <= rhs``.

        For variable ``j``: ``a_j x_j <= rhs - min_activity(others)``,
        and the division result rounds safely because the domain is
        integral.  Returns False on proven infeasibility.
        """
        lo, _hi = self.min_max_activity(coefs)
        if math.isinf(lo):
            return True
        for idx, coef in coefs.items():
            if not self.integral[idx]:
                continue
            own_min = (
                coef * self.lbs[idx] if coef > 0 else coef * self.ubs[idx]
            )
            slack = rhs - (lo - own_min)
            if coef > 0:
                implied = float(math.floor(slack / coef + _ROUND_TOL))
                ok = self.tighten(idx, None, implied)
            else:
                implied = float(math.ceil(slack / coef - _ROUND_TOL))
                ok = self.tighten(idx, implied, None)
            if not ok:
                return False
        return True


def presolve(model: Model, max_rounds: int = 10) -> PresolvedModel:
    """Run the presolve loop on ``model`` and return the reduction.

    The input model is never mutated.  Emits one ``solver.presolve``
    telemetry event describing the reduction.
    """
    red = _Reduction(model)
    n = len(model.variables)

    def finish(result: PresolvedModel) -> PresolvedModel:
        reduced_model = result.model
        emit(
            "solver.presolve",
            status=result.status,
            vars=n,
            reduced_vars=(
                reduced_model.num_vars if reduced_model is not None else 0
            ),
            constraints=len(model.constraints),
            reduced_constraints=(
                reduced_model.num_constraints
                if reduced_model is not None
                else 0
            ),
            **result.stats.as_payload(),
        )
        return result

    def infeasible() -> PresolvedModel:
        return finish(
            PresolvedModel(
                original=model,
                model=None,
                status=PresolveStatus.INFEASIBLE,
                stats=red.stats,
            )
        )

    for idx in range(n):
        if not red.round_integer_bounds(idx):
            return infeasible()

    for _round in range(max_rounds):
        red.stats.rounds = _round + 1
        changed = False

        # Fix variables whose bounds have collapsed and substitute
        # them out of every row.  (Integral bounds are exact integers
        # after rounding, so equality there is exact; continuous
        # variables need genuinely coincident bounds.)
        newly_fixed = False
        for idx in range(n):
            if idx in red.fixed:
                continue
            width = red.ubs[idx] - red.lbs[idx]
            collapsed = (
                width <= _INT_TOL if red.integral[idx] else width <= 1e-12
            )
            if collapsed:
                value = red.lbs[idx]
                if red.integral[idx]:
                    value = float(round(value))
                red.fixed[idx] = value
                newly_fixed = True
        if newly_fixed:
            red.stats.fixed_vars = len(red.fixed)
            changed = True
            substituted: List[_Row] = []
            for coefs, sense, rhs in red.rows:
                if any(i in red.fixed for i in coefs):
                    coefs = dict(coefs)
                    for i in list(coefs):
                        if i in red.fixed:
                            rhs -= coefs.pop(i) * red.fixed[i]
                substituted.append((coefs, sense, rhs))
            red.rows = substituted

        kept: List[_Row] = []
        for coefs, sense, rhs in red.rows:
            # Empty rows are pure feasibility checks.
            if not coefs:
                if sense is Sense.LE and 0.0 > rhs + _FEAS_TOL:
                    return infeasible()
                if sense is Sense.EQ and abs(rhs) > _FEAS_TOL:
                    return infeasible()
                red.stats.removed_constraints += 1
                changed = True
                continue

            # Singleton rows are exactly bounds.
            if len(coefs) == 1:
                ((idx, coef),) = coefs.items()
                bound = rhs / coef
                if sense is Sense.EQ:
                    ok = red.tighten(idx, bound, bound)
                elif coef > 0:
                    ok = red.tighten(idx, None, bound)
                else:
                    ok = red.tighten(idx, bound, None)
                if ok:
                    ok = red.round_integer_bounds(idx)
                if not ok:
                    return infeasible()
                red.stats.removed_constraints += 1
                changed = True
                continue

            lo, hi = red.min_max_activity(coefs)
            if sense is Sense.LE:
                if lo > rhs + _FEAS_TOL:
                    return infeasible()
                if hi <= rhs + _FEAS_TOL:
                    red.stats.removed_constraints += 1
                    changed = True
                    continue
                if not red.implied_integer_bounds(coefs, rhs):
                    return infeasible()
            else:  # EQ: both activity directions must reach rhs.
                if lo > rhs + _FEAS_TOL or hi < rhs - _FEAS_TOL:
                    return infeasible()
                if hi - lo <= _FEAS_TOL:
                    red.stats.removed_constraints += 1
                    changed = True
                    continue
                flipped = {i: -c for i, c in coefs.items()}
                if not red.implied_integer_bounds(coefs, rhs):
                    return infeasible()
                if not red.implied_integer_bounds(flipped, -rhs):
                    return infeasible()
            kept.append((coefs, sense, rhs))
        red.rows = kept
        if not changed:
            break

    # ------------------------------------------------------------------
    # Rebuild the reduced model.
    # ------------------------------------------------------------------
    objective_offset = sum(
        coef * red.fixed[var.index]
        for var, coef in model.objective.coefs.items()
        if var.index in red.fixed
    )
    fixed_vars = {
        v: red.fixed[v.index] for v in model.variables if v.index in red.fixed
    }
    free = [v for v in model.variables if v.index not in red.fixed]

    if not free:
        return finish(
            PresolvedModel(
                original=model,
                model=None,
                status=PresolveStatus.SOLVED,
                fixed=fixed_vars,
                objective_offset=objective_offset,
                stats=red.stats,
            )
        )

    reduced = Model(f"{model.name}/presolved")
    var_map: Dict[Var, Var] = {}
    for var in free:
        var_map[var] = reduced.add_var(
            var.name,
            lb=red.lbs[var.index],
            ub=red.ubs[var.index],
            var_type=var.var_type,
        )
    index_map = {var.index: var_map[var] for var in free}

    for coefs, sense, rhs in red.rows:
        expr = LinExpr({index_map[i]: c for i, c in coefs.items()}, -rhs)
        reduced.constraints.append(Constraint(expr, sense))

    objective = LinExpr(
        {
            var_map[var]: coef
            for var, coef in model.objective.coefs.items()
            if var.index not in red.fixed
        },
        model.objective.constant + objective_offset,
    )
    if model.maximize_objective:
        reduced.maximize(objective)
    else:
        reduced.minimize(objective)

    return finish(
        PresolvedModel(
            original=model,
            model=reduced,
            status=PresolveStatus.REDUCED,
            fixed=fixed_vars,
            var_map=var_map,
            objective_offset=objective_offset,
            stats=red.stats,
        )
    )
