"""Integration tests: the full pipeline, programs to switch configs."""

import pytest

from repro.baselines import HermesHeuristic, HermesOptimal
from repro.core import Backend, CoordinationAnalysis, Hermes
from repro.core.analyzer import ProgramAnalyzer
from repro.experiments.harness import end_to_end_impact
from repro.network import fat_tree, linear_topology, topology_zoo_wan
from repro.workloads import real_programs, sketch_programs, synthetic_programs
from tests.conftest import make_sketch_program


class TestFullPipeline:
    def test_real_programs_on_testbed(self):
        programs = real_programs(10)
        network = linear_topology(3)
        result = Hermes().deploy(programs, network)
        result.plan.validate()
        configs = Backend().compile(result.plan)
        assert set(configs) == set(result.plan.occupied_switches())

    def test_sketches_on_wan(self):
        programs = sketch_programs(10)
        network = topology_zoo_wan(2)
        result = Hermes().deploy(programs, network)
        result.plan.validate()
        # Merging must have deduplicated the shared hash.
        assert len(result.tdg) < sum(len(p) for p in programs)

    def test_mixed_workload_on_fat_tree(self):
        programs = real_programs(4) + synthetic_programs(4, seed=1)
        network = fat_tree(4)
        result = Hermes().deploy(programs, network)
        result.plan.validate()
        # Core switches are fixed-function: nothing lands there.
        for switch in result.plan.occupied_switches():
            assert network.switch(switch).programmable

    def test_heuristic_vs_optimal_consistency(self, six_programs):
        network = linear_topology(3, num_stages=4, stage_capacity=1.0)
        heuristic = HermesHeuristic().deploy(six_programs, network)
        optimal = HermesOptimal(time_limit_s=60).deploy(
            six_programs, network
        )
        assert optimal.overhead_bytes <= heuristic.overhead_bytes
        # Both plans deploy the same merged TDG.
        assert set(heuristic.plan.placements) == set(
            optimal.plan.placements
        )

    def test_backend_headers_match_coordination(self):
        programs = [
            make_sketch_program(f"p{i}", index_bytes=4) for i in range(4)
        ]
        network = linear_topology(8, num_stages=2, stage_capacity=1.0)
        result = Hermes().deploy(programs, network)
        coordination = CoordinationAnalysis(result.plan)
        configs = Backend().compile(result.plan)
        for (u, v), channel in coordination.channels.items():
            layout = configs[u].emit_headers[v]
            assert sum(size for _n, _o, size in layout) == channel.layout_bytes

    def test_overhead_propagates_to_performance_model(self):
        programs = [
            make_sketch_program(f"p{i}", index_bytes=12) for i in range(4)
        ]
        network = linear_topology(8, num_stages=2, stage_capacity=1.0)
        result = Hermes().deploy(programs, network)
        overhead = result.overhead_bytes
        assert overhead > 0
        fct_ratio, goodput_ratio = end_to_end_impact(overhead)
        assert fct_ratio > 1.0
        assert goodput_ratio < 1.0

    def test_epsilon_constraints_respected_end_to_end(self, six_programs):
        network = linear_topology(4, num_stages=4, stage_capacity=1.0)
        result = Hermes(epsilon2=2).deploy(six_programs, network)
        assert result.plan.num_occupied_switches() <= 2

    def test_fifty_program_scale(self):
        programs = real_programs(10) + synthetic_programs(40, seed=7)
        network = topology_zoo_wan(1)
        result = Hermes().deploy(programs, network)
        result.plan.validate()
        assert result.solve_time_s < 30.0  # heuristic stays fast

    def test_deterministic_given_same_inputs(self, six_programs):
        network = linear_topology(3, num_stages=4, stage_capacity=1.0)
        a = Hermes().deploy(six_programs, network)
        b = Hermes().deploy(six_programs, network)
        assert {
            k: (v.switch, v.stages) for k, v in a.plan.placements.items()
        } == {
            k: (v.switch, v.stages) for k, v in b.plan.placements.items()
        }
