"""Packet fields: headers and metadata.

Hermes distinguishes two kinds of fields:

* **Header fields** already travel inside each packet (e.g. the IPv4
  source address).  Passing them between switches is free.
* **Metadata fields** exist only inside a switch pipeline (e.g. a
  computed hash index or an ingress timestamp).  When two interdependent
  MATs land on *different* switches, every metadata field the downstream
  MAT needs must be piggybacked on the packet — this is exactly the
  per-packet byte overhead the paper minimizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Tuple


class FieldKind(enum.Enum):
    """Whether a field lives in the packet or only in the pipeline."""

    HEADER = "header"
    METADATA = "metadata"


@dataclass(frozen=True, order=True)
class Field:
    """A named packet-processing field.

    Attributes:
        name: Fully qualified field name, e.g. ``"ipv4.src_addr"`` or
            ``"meta.flow_index"``.
        width_bits: Field width in bits.  Must be positive.
        kind: Whether the field is a header field or pipeline metadata.
    """

    name: str
    width_bits: int
    kind: FieldKind = FieldKind.HEADER

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("field name must be non-empty")
        if self.width_bits <= 0:
            raise ValueError(
                f"field {self.name!r} must have positive width, "
                f"got {self.width_bits}"
            )

    @property
    def size_bytes(self) -> int:
        """Size in bytes, rounded up to whole bytes (wire occupancy)."""
        return (self.width_bits + 7) // 8

    @property
    def is_metadata(self) -> bool:
        return self.kind is FieldKind.METADATA

    @property
    def is_header(self) -> bool:
        return self.kind is FieldKind.HEADER

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = "meta" if self.is_metadata else "hdr"
        return f"Field({self.name!r}, {self.width_bits}b, {tag})"


def header_field(name: str, width_bits: int) -> Field:
    """Construct a header field (resides in the packet on the wire)."""
    return Field(name, width_bits, FieldKind.HEADER)


def metadata_field(name: str, width_bits: int) -> Field:
    """Construct a metadata field (pipeline-local, costs bytes to ship)."""
    return Field(name, width_bits, FieldKind.METADATA)


class FieldSet:
    """An immutable, order-preserving collection of distinct fields.

    MAT properties (match fields ``F^m``, modified fields ``F^a``) are
    field sets.  The class provides the byte-accounting helpers used by
    the TDG analysis: :meth:`metadata_bytes` implements the
    "sum of sizes of metadata fields" quantity from Algorithm 1.
    """

    __slots__ = ("_fields",)

    def __init__(self, fields: Iterable[Field] = ()) -> None:
        seen: Dict[str, Field] = {}
        for field in fields:
            existing = seen.get(field.name)
            if existing is not None and existing != field:
                raise ValueError(
                    f"conflicting definitions for field {field.name!r}: "
                    f"{existing} vs {field}"
                )
            seen.setdefault(field.name, field)
        self._fields: Tuple[Field, ...] = tuple(seen.values())

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Field):
            return item in self._fields
        if isinstance(item, str):
            return any(f.name == item for f in self._fields)
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FieldSet):
            return NotImplemented
        return frozenset(self._fields) == frozenset(other._fields)

    def __hash__(self) -> int:
        return hash(frozenset(self._fields))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = ", ".join(f.name for f in self._fields)
        return f"FieldSet({{{names}}})"

    @property
    def names(self) -> FrozenSet[str]:
        return frozenset(f.name for f in self._fields)

    def union(self, other: "FieldSet") -> "FieldSet":
        return FieldSet(tuple(self._fields) + tuple(other._fields))

    def intersection(self, other: "FieldSet") -> "FieldSet":
        other_names = other.names
        return FieldSet(f for f in self._fields if f.name in other_names)

    def metadata_only(self) -> "FieldSet":
        """The subset of fields that are pipeline metadata."""
        return FieldSet(f for f in self._fields if f.is_metadata)

    def metadata_bytes(self) -> int:
        """Total wire bytes needed to ship every metadata field here.

        Header fields contribute zero: they already ride in the packet.
        """
        return sum(f.size_bytes for f in self._fields if f.is_metadata)

    def total_bytes(self) -> int:
        """Total byte size of every field, header and metadata alike."""
        return sum(f.size_bytes for f in self._fields)


def standard_headers() -> Dict[str, Field]:
    """A catalog of common header fields used by the bundled workloads.

    Mirrors the fields that switch.p4-style programs match on.  Keys are
    field names; values are :class:`Field` instances.
    """
    fields = [
        header_field("ethernet.dst_addr", 48),
        header_field("ethernet.src_addr", 48),
        header_field("ethernet.ether_type", 16),
        header_field("vlan.vid", 12),
        header_field("ipv4.src_addr", 32),
        header_field("ipv4.dst_addr", 32),
        header_field("ipv4.protocol", 8),
        header_field("ipv4.ttl", 8),
        header_field("ipv4.dscp", 6),
        header_field("ipv6.src_addr", 128),
        header_field("ipv6.dst_addr", 128),
        header_field("tcp.src_port", 16),
        header_field("tcp.dst_port", 16),
        header_field("tcp.flags", 8),
        header_field("udp.src_port", 16),
        header_field("udp.dst_port", 16),
    ]
    return {f.name: f for f in fields}
