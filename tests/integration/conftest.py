"""Marker policy for the integration suite.

Everything under ``tests/integration/`` runs full paper workflows
(multi-framework deployments, end-to-end claims) and takes tens of
seconds, so the whole directory is marked ``integration`` and ``slow``.
The default ``pytest -q`` run excludes the ``slow`` marker; run these
with ``pytest -m slow`` or ``pytest -m integration``.
"""

from pathlib import Path

import pytest

_HERE = Path(__file__).parent


def pytest_collection_modifyitems(items):
    # This hook sees the whole session's items, not just this
    # directory's — restrict the markers to tests that live here.
    for item in items:
        if _HERE in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.integration)
            item.add_marker(pytest.mark.slow)
