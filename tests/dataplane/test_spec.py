"""Tests for the declarative program spec round trip."""

import json

import pytest

from repro.dataplane.spec import (
    SpecError,
    program_from_dict,
    program_to_dict,
)
from repro.tdg.builder import build_tdg
from repro.tdg.analysis import annotate_metadata_sizes
from repro.workloads.sketches import sketch_programs
from repro.workloads.switchp4 import real_programs
from repro.workloads.synthetic import synthetic_programs
from tests.conftest import make_sketch_program


def roundtrip(program):
    return program_from_dict(
        json.loads(json.dumps(program_to_dict(program)))
    )


class TestRoundTrip:
    def test_simple_program(self, sketch_program):
        rebuilt = roundtrip(sketch_program)
        assert rebuilt.name == sketch_program.name
        assert [m.name for m in rebuilt] == [
            m.name for m in sketch_program
        ]

    @pytest.mark.parametrize(
        "program",
        real_programs(10) + sketch_programs(5) + synthetic_programs(3, 9),
        ids=lambda p: p.name,
    )
    def test_all_bundled_workloads(self, program):
        rebuilt = roundtrip(program)
        for original_mat, rebuilt_mat in zip(program, rebuilt):
            assert original_mat.signature() == rebuilt_mat.signature()
            assert original_mat.resource_demand == pytest.approx(
                rebuilt_mat.resource_demand
            )

    def test_tdg_identical_after_roundtrip(self, sketch_program):
        original = annotate_metadata_sizes(build_tdg(sketch_program))
        rebuilt = annotate_metadata_sizes(build_tdg(roundtrip(sketch_program)))
        assert sorted(original.node_names) == sorted(rebuilt.node_names)
        assert {
            (e.upstream, e.downstream, e.dep_type, e.metadata_bytes)
            for e in original.edges
        } == {
            (e.upstream, e.downstream, e.dep_type, e.metadata_bytes)
            for e in rebuilt.edges
        }

    def test_conditional_edges_survive(self):
        from repro.dataplane import Mat, Program, modify, no_op
        from repro.dataplane.fields import metadata_field

        gate_field = metadata_field("m.g", 8)
        program = Program(
            "p",
            [
                Mat("gate", actions=[modify(gate_field)]),
                Mat("gated", actions=[no_op()]),
            ],
            [("gate", "gated")],
        )
        rebuilt = roundtrip(program)
        assert rebuilt.is_conditional("gate", "gated")

    def test_rules_and_action_data_survive(self):
        from repro.dataplane import Mat, Program, modify
        from repro.dataplane.fields import header_field, metadata_field
        from repro.dataplane.rules import MatchKind, MatchSpec, Rule

        port = header_field("tcp.dst_port", 16)
        verdict = metadata_field("m.v", 8)
        mat = Mat(
            "acl",
            match_fields=[port],
            actions=[modify(verdict, name="set")],
            capacity=8,
            rules=[
                Rule(
                    matches=(
                        MatchSpec("tcp.dst_port", MatchKind.RANGE, 0, 1023),
                    ),
                    action_name="set",
                    priority=5,
                    action_data=(("m.v", 1),),
                )
            ],
        )
        rebuilt = roundtrip(Program("p", [mat]))
        rule = rebuilt.mat("acl").rules[0]
        assert rule.priority == 5
        assert rule.matches[0].kind is MatchKind.RANGE
        assert rule.matches[0].mask_or_prefix == 1023
        assert rule.action_value("m.v") == 1


class TestSpecValidation:
    def test_missing_name(self):
        with pytest.raises(SpecError, match="name"):
            program_from_dict({"fields": {}, "mats": []})

    def test_missing_field_width(self):
        with pytest.raises(SpecError, match="width"):
            program_from_dict(
                {"name": "p", "fields": {"f": {}}, "mats": []}
            )

    def test_unknown_field_kind(self):
        with pytest.raises(SpecError, match="kind"):
            program_from_dict(
                {
                    "name": "p",
                    "fields": {"f": {"width": 8, "kind": "quantum"}},
                    "mats": [],
                }
            )

    def test_undeclared_field_reference(self):
        with pytest.raises(SpecError, match="undeclared"):
            program_from_dict(
                {
                    "name": "p",
                    "fields": {},
                    "mats": [
                        {
                            "name": "t",
                            "match": ["ghost"],
                            "actions": [{"name": "a"}],
                        }
                    ],
                }
            )

    def test_unknown_primitive(self):
        with pytest.raises(SpecError, match="primitive"):
            program_from_dict(
                {
                    "name": "p",
                    "fields": {},
                    "mats": [
                        {
                            "name": "t",
                            "actions": [
                                {"name": "a", "primitive": "teleport"}
                            ],
                        }
                    ],
                }
            )

    def test_unknown_match_kind(self):
        with pytest.raises(SpecError, match="match kind"):
            program_from_dict(
                {
                    "name": "p",
                    "fields": {"f": {"width": 8}},
                    "mats": [
                        {
                            "name": "t",
                            "match": ["f"],
                            "actions": [{"name": "a"}],
                            "rules": [
                                {
                                    "matches": [
                                        {"field": "f", "kind": "fuzzy"}
                                    ],
                                    "action": "a",
                                }
                            ],
                        }
                    ],
                }
            )
