"""Unit tests for the grouped split order."""

from repro.core.analyzer import ProgramAnalyzer
from repro.core.heuristic import split_order
from repro.tdg.graph import Tdg
from repro.workloads.sketches import sketch_programs
from repro.workloads.synthetic import synthetic_programs
from tests.conftest import make_sketch_program


def _contiguity_breaks(order):
    """How many times the program prefix changes along the order."""
    programs = [name.split(".", 1)[0] for name in order]
    return sum(
        1
        for i in range(1, len(programs))
        if programs[i] != programs[i - 1]
    )


class TestSplitOrder:
    def test_is_topological(self):
        programs = synthetic_programs(8, seed=2)
        tdg = ProgramAnalyzer().analyze(programs)
        order = split_order(tdg)
        assert sorted(order) == sorted(tdg.node_names)
        position = {name: i for i, name in enumerate(order)}
        for edge in tdg.edges:
            assert position[edge.upstream] < position[edge.downstream]

    def test_independent_programs_fully_contiguous(self):
        programs = [make_sketch_program(f"p{i}") for i in range(5)]
        tdg = ProgramAnalyzer().analyze(programs)
        order = split_order(tdg)
        # 5 programs -> exactly 4 group changes.
        assert _contiguity_breaks(order) == len(programs) - 1

    def test_hub_connected_programs_stay_mostly_contiguous(self):
        programs = synthetic_programs(10, seed=7)
        tdg = ProgramAnalyzer().analyze(programs)
        order = split_order(tdg)
        dfs = tdg.topological_order(strategy="dfs")
        # The grouped walk must fragment far less than raw DFS on
        # hub-connected graphs.
        assert _contiguity_breaks(order) <= _contiguity_breaks(dfs)
        # Non-hub nodes of each program form one contiguous run (plus
        # the leading hub block): bounded fragmentation.
        assert _contiguity_breaks(order) <= 2 * len(programs)

    def test_hubs_emitted_before_their_consumers(self):
        programs = sketch_programs(6)
        tdg = ProgramAnalyzer().analyze(programs)
        order = split_order(tdg)
        position = {name: i for i, name in enumerate(order)}
        for name in tdg.node_names:
            consumers_elsewhere = [
                s
                for s in tdg.successors(name)
                if s.split(".", 1)[0] != name.split(".", 1)[0]
            ]
            for consumer in consumers_elsewhere:
                assert position[name] < position[consumer]

    def test_empty_and_single_node(self):
        empty = Tdg("empty")
        assert split_order(empty) == []
        single = ProgramAnalyzer().analyze([make_sketch_program("solo")])
        assert len(split_order(single)) == 3
