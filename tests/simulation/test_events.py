"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulation.events import EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        while q:
            _t, cb = q.pop()
            cb()
        assert order == ["a", "b"]

    def test_fifo_ties(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("first"))
        q.push(1.0, lambda: order.append("second"))
        q.pop()[1]()
        q.pop()[1]()
        assert order == ["first", "second"]

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_len(self):
        q = EventQueue()
        assert len(q) == 0
        q.push(0.0, lambda: None)
        assert len(q) == 1


class TestSimulator:
    def test_runs_to_completion(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.schedule(1.0, lambda: fired.append(sim.now))
        end = sim.run()
        assert fired == [1.0, 5.0]
        assert end == 5.0
        assert sim.events_processed == 2

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_horizon_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        # Remaining event still runs afterwards.
        sim.run()
        assert fired == [1, 10]

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_rejects_past_schedule_at(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)
