"""Benchmark: Exp#4 (Fig. 8) — end-to-end impact of measured overheads."""

from repro.experiments.exp4_endtoend import main
from repro.experiments.harness import end_to_end_impact


def test_bench_exp4_endtoend(benchmark, exp2_points):
    from conftest import record_report

    record_report(main(exp2_points))

    overheads = [
        p.record.overhead_bytes
        for p in exp2_points
        if p.record.framework == "FFL"
    ]

    def impact_sweep():
        return [end_to_end_impact(ov) for ov in overheads]

    results = benchmark(impact_sweep)
    for fct_ratio, goodput_ratio in results:
        assert fct_ratio >= 1.0
        assert goodput_ratio <= 1.0

    # Paper shape: Hermes' deployments degrade end-to-end performance
    # no more than the overhead-oblivious baselines'.
    hermes = [
        p.record for p in exp2_points if p.record.framework == "Hermes"
    ]
    ffl = [p.record for p in exp2_points if p.record.framework == "FFL"]
    for h, f in zip(hermes, ffl):
        assert h.fct_ratio <= f.fct_ratio
        assert h.goodput_ratio >= f.goodput_ratio
