"""Tests for the executable plan interpreter."""

import pytest

from repro.core import Hermes
from repro.core.deployment import DeploymentPlan, MatPlacement
from repro.dataplane import (
    Mat,
    Program,
    counter_update,
    drop,
    forward,
    hash_compute,
    metadata_field,
    modify,
    standard_headers,
)
from repro.dataplane.rules import MatchKind, MatchSpec, Rule
from repro.network import linear_topology
from repro.simulation import MissingMetadataError, PlanInterpreter

HDR = standard_headers()


def flow_counter_program():
    idx = metadata_field("fc.idx", 32)
    cnt = metadata_field("fc.cnt", 32)
    return Program(
        "fc",
        [
            Mat(
                "hash",
                match_fields=[HDR["ipv4.protocol"]],
                actions=[
                    hash_compute(
                        idx, [HDR["ipv4.src_addr"], HDR["ipv4.dst_addr"]]
                    )
                ],
                capacity=16,
                resource_demand=0.6,
            ),
            Mat(
                "count",
                match_fields=[idx],
                actions=[counter_update(idx, cnt)],
                capacity=1024,
                resource_demand=0.9,
            ),
            Mat(
                "mark",
                match_fields=[cnt],
                actions=[modify(HDR["ipv4.dscp"], [cnt])],
                capacity=16,
                resource_demand=0.5,
            ),
        ],
    )


PACKET = {
    "ipv4.src_addr": 0x0A000001,
    "ipv4.dst_addr": 0x0A000002,
    "ipv4.protocol": 6,
    "tcp.dst_port": 443,
}


@pytest.fixture
def split_interpreter():
    """The flow counter forced across three single-stage switches."""
    net = linear_topology(3, num_stages=1, stage_capacity=1.0)
    result = Hermes().deploy([flow_counter_program()], net)
    assert result.plan.num_occupied_switches() == 3
    return PlanInterpreter(result.plan)


class TestCrossSwitchExecution:
    def test_every_mat_fires_once(self, split_interpreter):
        trace = split_interpreter.run_packet(dict(PACKET))
        assert len(trace.fired) == 3
        assert [m for _s, m, _a in trace.fired] == [
            "fc.hash",
            "fc.count",
            "fc.mark",
        ]

    def test_metadata_piggybacks_across_switches(self, split_interpreter):
        trace = split_interpreter.run_packet(dict(PACKET))
        # The count result must survive into the final fields even
        # though it was produced two switches upstream of the marker.
        assert trace.final_fields["fc.cnt"] == 1
        assert trace.final_fields["ipv4.dscp"] == 1

    def test_counters_are_stateful_per_flow(self, split_interpreter):
        for expected in (1, 2, 3):
            trace = split_interpreter.run_packet(dict(PACKET))
            assert trace.final_fields["fc.cnt"] == expected
        other = dict(PACKET, **{"ipv4.src_addr": 0x0A0000FF})
        trace = split_interpreter.run_packet(other)
        assert trace.final_fields["fc.cnt"] == 1  # new flow, new count

    def test_hash_is_deterministic(self, split_interpreter):
        # Two identical packets hash to the same index: exactly one
        # register slot exists and it counted both.
        split_interpreter.run_packet(dict(PACKET))
        split_interpreter.run_packet(dict(PACKET))
        table = split_interpreter.registers("fc.count")
        assert len(table) == 1
        assert list(table.values()) == [2]

    def test_pipeline_local_metadata_dies_at_boundary(
        self, split_interpreter
    ):
        # fc.idx is consumed on the counting switch; the s1 -> s2
        # channel only carries fc.cnt, so idx must NOT survive to the
        # end — pipeline metadata is not free to keep alive.
        trace = split_interpreter.run_packet(dict(PACKET))
        assert "fc.idx" not in trace.final_fields
        assert "fc.cnt" in trace.final_fields

    def test_register_inspection(self, split_interpreter):
        split_interpreter.run_packet(dict(PACKET))
        (index,) = split_interpreter.registers("fc.count")
        assert split_interpreter.register_value("fc.count", index) == 1
        assert split_interpreter.register_value("fc.count", index + 1) == 0


class TestRuleSemantics:
    def build_acl_plan(self):
        verdict = metadata_field("acl.v", 8)
        acl = Mat(
            "acl",
            match_fields=[HDR["tcp.dst_port"]],
            actions=[
                modify(verdict, name="set_verdict"),
            ],
            capacity=16,
            rules=[
                Rule(
                    matches=(MatchSpec("tcp.dst_port", MatchKind.EXACT, 22),),
                    action_name="set_verdict",
                    priority=10,
                    action_data=(("acl.v", 1),),
                ),
                Rule(
                    matches=(),
                    action_name="set_verdict",
                    priority=0,
                    action_data=(("acl.v", 0),),
                ),
            ],
            resource_demand=0.4,
        )
        enforce = Mat(
            "enforce",
            match_fields=[verdict],
            actions=[drop("deny"), forward(metadata_field("acl.port", 16), "permit")],
            capacity=4,
            rules=[
                Rule(
                    matches=(MatchSpec("acl.v", MatchKind.EXACT, 1),),
                    action_name="deny",
                    priority=10,
                ),
                Rule(
                    matches=(),
                    action_name="permit",
                    priority=0,
                    action_data=(("acl.port", 7),),
                ),
            ],
            resource_demand=0.4,
        )
        program = Program("acl", [acl, enforce])
        net = linear_topology(1, num_stages=4)
        result = Hermes().deploy([program], net)
        return PlanInterpreter(result.plan)

    def test_priority_rule_drops_ssh(self):
        interp = self.build_acl_plan()
        trace = interp.run_packet(dict(PACKET, **{"tcp.dst_port": 22}))
        assert trace.dropped
        assert trace.egress_port is None

    def test_default_rule_permits_https(self):
        interp = self.build_acl_plan()
        trace = interp.run_packet(dict(PACKET))
        assert not trace.dropped
        assert trace.egress_port == 7

    def test_action_data_written(self):
        interp = self.build_acl_plan()
        trace = interp.run_packet(dict(PACKET, **{"tcp.dst_port": 22}))
        assert trace.final_fields["acl.v"] == 1


class TestMissingMetadata:
    def test_unrouted_metadata_raises(self):
        # Handcraft a broken plan: reader placed with no channel.
        meta = metadata_field("m.x", 32)
        from repro.dataplane.actions import no_op
        from repro.tdg.dependencies import DependencyType
        from repro.tdg.graph import Tdg

        tdg = Tdg("broken")
        tdg.add_node(Mat("w", actions=[modify(meta)], resource_demand=0.2))
        tdg.add_node(
            Mat(
                "r",
                match_fields=[meta],
                actions=[no_op()],
                resource_demand=0.2,
            )
        )
        net = linear_topology(2)
        plan = DeploymentPlan(
            tdg,
            net,
            {
                "w": MatPlacement("w", "s0", (1,)),
                "r": MatPlacement("r", "s1", (1,)),
            },
        )
        # The interpreter's constructor runs the dataflow verifier,
        # which already rejects this plan.
        from repro.core.verification import DataflowError

        with pytest.raises(DataflowError):
            PlanInterpreter(plan)
