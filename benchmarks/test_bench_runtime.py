"""Benchmark: lifecycle reconciler latency and event throughput.

Times the runtime subsystem's two operational paths on seeded churn
scenarios over the real switch.p4 workload:

* **reconcile latency** — wall time per event batch through the full
  replan -> move-computation -> rebind -> store pipeline (the cost an
  operator pays per churn event);
* **events/sec** — end-to-end scenario replay throughput;
* **patch latency** — the cheapest-patch fallback alone, the degraded
  path a replan time budget buys;
* **churn-rate sweep** — cold (full replan every batch) vs warm
  (``ReconcilerPolicy(incremental=True)``) on identical topology-churn
  scenarios across wan12/wan16 x e8/e16, the headline number for the
  warm-start ladder: mean/max reconcile latency, events/sec, and the
  cold/warm speedup per instance.

Results are written to ``BENCH_runtime.json`` at the repo root so the
reconcile-latency contract is auditable across commits (the weekly
solver-sweep workflow uploads it as an artifact).
"""

import json
import os
import time

import pytest

from repro.cli import parse_topology, parse_workload
from repro.plan.artifact import DeploymentError
from repro.runtime import (
    EventKind,
    Reconciler,
    ReconcilerPolicy,
    WorldState,
    cheapest_patch,
    generate_scenario,
    seed_rules,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPORT_PATH = os.path.join(_REPO_ROOT, "BENCH_runtime.json")

#: Golden churn instances: (label, workload, topology, events, seed).
GOLDEN = [
    ("wan12/real6/e8", "real:6", "wan:12:18:4", 8, 11),
    ("wan16/real10/e8", "real:10", "wan:16:24:1", 8, 1),
    ("wan16/real10/e16", "real:10", "wan:16:24:2", 16, 2),
]

REPS = 3

#: Link-heavy churn for the cold-vs-warm sweep: latency shifts dominate
#: (rebase territory), with enough switch churn to exercise the delta
#: rung. Workload events are excluded — they deterministically escalate
#: the warm ladder to the same cold solve and would only dilute the
#: comparison.
CHURN_MIX = {
    EventKind.LINK_LATENCY: 6,
    EventKind.SWITCH_FAIL: 1,
    EventKind.SWITCH_RECOVER: 1,
}

#: Churn-sweep instances: (label, workload, topology, events, seed).
#: Seeds are chosen so every batch converges without escalations on
#: both policies and the two A_max trajectories agree — the sweep then
#: measures pure reconcile latency, not recovery behaviour.
CHURN_SWEEP = [
    ("wan12/real10/e8", "real:10", "wan:12:18:4", 8, 2),
    ("wan12/real10/e16", "real:10", "wan:12:18:4", 16, 11),
    ("wan16/real10/e8", "real:10", "wan:16:24:2", 8, 7),
    ("wan16/real10/e16", "real:10", "wan:16:24:2", 16, 5),
]


def _reconcile_stats(programs, network, scenario, policy):
    """Best-of-REPS run; returns (result, mean_ms, max_ms, events/s)."""
    best = None
    best_s = float("inf")
    for _ in range(REPS):
        reconciler = Reconciler(
            programs, network, policy=policy, prepare_fn=seed_rules
        )
        start = time.perf_counter()
        result = reconciler.run(scenario)
        elapsed = time.perf_counter() - start
        if elapsed < best_s:
            best_s, best = elapsed, result
    times = [o.convergence_time_s for o in best.outcomes if o.converged]
    mean_ms = (sum(times) / len(times)) * 1e3 if times else 0.0
    max_ms = max(times) * 1e3 if times else 0.0
    return best, mean_ms, max_ms, len(scenario.events) / max(best_s, 1e-9)


def _churn_sweep_records():
    records = []
    for label, workload_spec, topology_spec, num_events, seed in (
        CHURN_SWEEP
    ):
        programs = parse_workload(workload_spec)
        network = parse_topology(topology_spec)
        scenario = generate_scenario(
            network,
            num_events=num_events,
            seed=seed,
            event_mix=CHURN_MIX,
            workload_spec=workload_spec,
            topology_spec=topology_spec,
        )
        cold, cold_mean, cold_max, cold_eps = _reconcile_stats(
            programs, network, scenario, ReconcilerPolicy()
        )
        warm, warm_mean, warm_max, warm_eps = _reconcile_stats(
            programs,
            network,
            scenario,
            ReconcilerPolicy(incremental=True),
        )
        warm_report = warm.report()
        records.append(
            {
                "instance": label,
                "events": num_events,
                "batches": len(warm.outcomes),
                "cold_converged": sum(
                    1 for o in cold.outcomes if o.converged
                ),
                "warm_converged": warm_report.num_converged,
                "cold_mean_reconcile_ms": round(cold_mean, 3),
                "cold_max_reconcile_ms": round(cold_max, 3),
                "warm_mean_reconcile_ms": round(warm_mean, 3),
                "warm_max_reconcile_ms": round(warm_max, 3),
                "cold_events_per_s": round(cold_eps, 1),
                "warm_events_per_s": round(warm_eps, 1),
                "speedup": round(cold_mean / max(warm_mean, 1e-9), 1),
                "incremental_batches": warm_report.incremental_batches,
                "full_batches": warm_report.full_batches,
                "patch_batches": warm_report.patch_batches,
                "amax_equal": all(
                    c.new_amax_bytes == w.new_amax_bytes
                    for c, w in zip(cold.outcomes, warm.outcomes)
                ),
            }
        )
    return records


@pytest.fixture(scope="module")
def runtime_records():
    records = []
    for label, workload_spec, topology_spec, num_events, seed in GOLDEN:
        programs = parse_workload(workload_spec)
        network = parse_topology(topology_spec)
        scenario = generate_scenario(
            network,
            num_events=num_events,
            seed=seed,
            workload_spec=workload_spec,
            topology_spec=topology_spec,
        )
        reconciler = Reconciler(programs, network, prepare_fn=seed_rules)
        best_s = float("inf")
        result = None
        for _ in range(REPS):
            start = time.perf_counter()
            result = reconciler.run(scenario)
            best_s = min(best_s, time.perf_counter() - start)
        report = result.report()
        batch_times = [
            o.convergence_time_s for o in result.outcomes if o.converged
        ]
        # The patch fallback path, timed on the first failure plan.
        initial_plan = result.store.versions[0].plan
        patch_s = None
        failed = next(
            (
                o
                for o in result.outcomes
                if any(e.kind == EventKind.SWITCH_FAIL for e in o.events)
            ),
            None,
        )
        if failed is not None:
            world = WorldState(network, programs)
            for outcome in result.outcomes:
                for event in outcome.events:
                    world.apply(event)
                if outcome is failed:
                    break
            try:
                start = time.perf_counter()
                cheapest_patch(initial_plan, world.current_network())
                patch_s = time.perf_counter() - start
            except DeploymentError:
                patch_s = None
        records.append(
            {
                "instance": label,
                "events": num_events,
                "batches": report.num_batches,
                "converged": report.num_converged,
                "wall_s": round(best_s, 4),
                "events_per_s": round(num_events / max(best_s, 1e-9), 1),
                "mean_reconcile_ms": round(
                    (sum(batch_times) / len(batch_times)) * 1e3, 2
                )
                if batch_times
                else None,
                "max_reconcile_ms": round(max(batch_times) * 1e3, 2)
                if batch_times
                else None,
                "patch_ms": round(patch_s * 1e3, 2)
                if patch_s is not None
                else None,
                "forced_moves": report.forced_moves,
                "rules_replayed": report.rules_replayed,
                "history_digest": report.history_digest[:16],
            }
        )
    sweep = _churn_sweep_records()
    payload = {
        "instances": records,
        "churn_sweep": sweep,
        "summary": {
            "instances": len(records),
            "wall_s_total": round(
                sum(r["wall_s"] for r in records), 4
            ),
            "events_total": sum(r["events"] for r in records),
            "churn_sweep_instances": len(sweep),
            "churn_sweep_min_speedup": min(
                r["speedup"] for r in sweep
            ),
        },
    }
    with open(_REPORT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def test_bench_runtime_all_converge(runtime_records):
    """Every golden scenario fully reconciles."""
    for record in runtime_records["instances"]:
        assert record["converged"] == record["batches"], (
            record["instance"]
        )


def test_bench_runtime_replay_deterministic(runtime_records):
    """Re-running a golden instance reproduces its history digest."""
    label, workload_spec, topology_spec, num_events, seed = GOLDEN[0]
    programs = parse_workload(workload_spec)
    network = parse_topology(topology_spec)
    scenario = generate_scenario(
        network,
        num_events=num_events,
        seed=seed,
        workload_spec=workload_spec,
        topology_spec=topology_spec,
    )
    result = Reconciler(programs, network, prepare_fn=seed_rules).run(
        scenario
    )
    recorded = next(
        r
        for r in runtime_records["instances"]
        if r["instance"] == label
    )
    assert result.store.history_digest().startswith(
        recorded["history_digest"]
    )


def test_bench_churn_sweep_converges_and_agrees(runtime_records):
    """Cold and warm fully converge and trace identical A_max."""
    for r in runtime_records["churn_sweep"]:
        assert r["cold_converged"] == r["batches"], r["instance"]
        assert r["warm_converged"] == r["batches"], r["instance"]
        assert r["amax_equal"], r["instance"]
        assert r["incremental_batches"] > 0, r["instance"]


def test_bench_churn_sweep_warm_never_slower(runtime_records):
    for r in runtime_records["churn_sweep"]:
        assert (
            r["warm_mean_reconcile_ms"] <= r["cold_mean_reconcile_ms"]
        ), r["instance"]


def test_bench_churn_sweep_headline_speedup(runtime_records):
    """wan16/real10/e16 warm-start cuts mean reconcile latency >=10x."""
    headline = next(
        r
        for r in runtime_records["churn_sweep"]
        if r["instance"] == "wan16/real10/e16"
    )
    assert headline["speedup"] >= 10.0, headline


def test_bench_runtime_report(runtime_records):
    from conftest import record_report

    rows = [
        f"Lifecycle reconciler on golden churn scenarios (best of {REPS})",
        f"{'instance':<18} {'wall s':>7} {'ev/s':>7} {'mean ms':>8} "
        f"{'max ms':>7} {'patch ms':>9} {'forced':>7}",
    ]
    for r in runtime_records["instances"]:
        rows.append(
            f"{r['instance']:<18} {r['wall_s']:>7.3f} "
            f"{r['events_per_s']:>7.1f} "
            f"{(r['mean_reconcile_ms'] or 0):>8.2f} "
            f"{(r['max_reconcile_ms'] or 0):>7.2f} "
            f"{(r['patch_ms'] or 0):>9.2f} {r['forced_moves']:>7}"
        )
    rows += [
        "",
        f"Churn sweep: cold vs warm reconcile latency (best of {REPS})",
        f"{'instance':<18} {'cold ms':>8} {'warm ms':>8} "
        f"{'speedup':>8} {'incr':>5} {'full':>5}",
    ]
    for r in runtime_records["churn_sweep"]:
        rows.append(
            f"{r['instance']:<18} "
            f"{r['cold_mean_reconcile_ms']:>8.3f} "
            f"{r['warm_mean_reconcile_ms']:>8.3f} "
            f"{r['speedup']:>7.1f}x "
            f"{r['incremental_batches']:>5} {r['full_batches']:>5}"
        )
    record_report("\n".join(rows))
    assert os.path.exists(_REPORT_PATH)
