"""Tests for structural model signatures and the presolve cache.

The warm replanning path re-solves structurally identical models over
and over (same blast-radius shape, different event); the cache must
recognize them by structure, rebind the memoized presolve output onto
the fresh variable objects, and never change what the solver returns.
"""

import pytest

from repro.milp.expr import LinExpr
from repro.milp.model import Model
from repro.milp.branch_bound import BranchBoundSolver
from repro.milp.presolve import PresolveCache, model_signature
from repro.milp.solution import Solution, SolveStatus
from repro.telemetry import Recorder, attached


def knapsack(cap=7):
    model = Model("k")
    weights = [3, 4, 2, 5]
    values = [10, 13, 7, 16]
    xs = [model.add_binary(f"x{i}") for i in range(4)]
    model.add_constr(
        LinExpr.total(w * x for w, x in zip(weights, xs)) <= cap
    )
    model.maximize(LinExpr.total(v * x for v, x in zip(values, xs)))
    return model, xs


class TestModelSignature:
    def test_identical_rebuilds_share_a_signature(self):
        a, _ = knapsack()
        b, _ = knapsack()
        assert a.variables[0] is not b.variables[0]
        assert model_signature(a) == model_signature(b)

    def test_changed_constant_changes_signature(self):
        a, _ = knapsack(cap=7)
        b, _ = knapsack(cap=8)
        assert model_signature(a) != model_signature(b)

    def test_changed_bound_changes_signature(self):
        a, _ = knapsack()
        b, _ = knapsack()
        b.variables[0].ub = 0.0
        assert model_signature(a) != model_signature(b)

    def test_changed_objective_changes_signature(self):
        a, xs_a = knapsack()
        b, xs_b = knapsack()
        b.maximize(LinExpr.total(xs_b))
        assert model_signature(a) != model_signature(b)


class TestPresolveCache:
    def test_second_fetch_hits_and_rebinds(self):
        cache = PresolveCache()
        a, _ = knapsack()
        b, _ = knapsack()
        first = cache.fetch(a)
        second = cache.fetch(b)
        assert (cache.hits, cache.misses) == (1, 1)
        # The rebound result is keyed onto b's variable objects.
        assert second.original is b
        for var in second.fixed:
            assert var is b.variables[var.index]
        assert {v.name for v in second.fixed} == {
            v.name for v in first.fixed
        }

    def test_rebind_rejects_mismatched_model(self):
        cache = PresolveCache()
        a, _ = knapsack()
        pres = cache.fetch(a)
        other = Model("m")
        other.add_binary("y")
        with pytest.raises(ValueError):
            pres.rebind(other)

    def test_eviction_respects_max_entries(self):
        cache = PresolveCache(max_entries=1)
        a, _ = knapsack(cap=7)
        b, _ = knapsack(cap=8)
        cache.fetch(a)
        cache.fetch(b)  # evicts a
        cache.fetch(a)
        assert cache.misses == 3
        assert len(cache) == 1

    def test_cache_emits_telemetry(self):
        cache = PresolveCache()
        a, _ = knapsack()
        b, _ = knapsack()
        recorder = Recorder()
        with attached(recorder):
            cache.fetch(a)
            cache.fetch(b)
        assert recorder.count("solver.presolve.cache") == 2

    def test_cached_solve_matches_fresh_solve(self):
        cache = PresolveCache()
        results = []
        for _ in range(2):
            model, _ = knapsack()
            solution = BranchBoundSolver(
                time_limit_s=30, presolve_cache=cache
            ).solve(model)
            results.append(solution)
        fresh, _ = knapsack()
        baseline = BranchBoundSolver(time_limit_s=30).solve(fresh)
        assert all(s.status is SolveStatus.OPTIMAL for s in results)
        assert results[0].objective == pytest.approx(baseline.objective)
        assert results[1].objective == pytest.approx(baseline.objective)
        assert cache.hits == 1


class TestSolutionAsWarmStart:
    def test_prior_solution_seeds_a_rebuilt_model(self):
        model, _ = knapsack()
        prior = BranchBoundSolver(time_limit_s=30).solve(model)
        assert prior.status is SolveStatus.OPTIMAL
        rebuilt, _ = knapsack()
        recorder = Recorder()
        with attached(recorder):
            solution = BranchBoundSolver(time_limit_s=30).solve(
                rebuilt, initial=prior
            )
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(prior.objective)
        warm = [
            e
            for e in recorder.of_kind("solver.incumbent")
            if e.get("source") == "warm_start"
        ]
        assert warm

    def test_foreign_solution_names_are_ignored(self):
        other = Model("other")
        y = other.add_binary("y")
        foreign = Solution(
            status=SolveStatus.OPTIMAL, values={y: 1.0}, objective=1.0
        )
        model, _ = knapsack()
        solution = BranchBoundSolver(time_limit_s=30).solve(
            model, initial=foreign
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(23)
