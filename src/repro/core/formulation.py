"""Problem P#1: the MILP formulation of network-wide deployment (§V).

The formulation follows the paper with one standard transformation and
two documented practicalities:

* **Linearization** — the paper's objective (1) multiplies placement
  variables (``x(a,i,u) * x(b,j,v)``).  We introduce, per metadata edge
  ``(a, b)`` and ordered switch pair ``(u, v)``, a binary ``z`` with
  ``z >= L(a,u) + L(b,v) - 1`` — the textbook product linearization.
  The per-pair overhead sum then lower-bounds the ``A_max`` variable
  being minimized (Obj#1).
* **Switch-level placement, stage-level decode** — the global model
  decides ``L(a, u)`` (which switch); the per-switch stage layout
  ``x(a, i, u)`` is recovered afterwards by the exact list scheduler in
  :mod:`repro.core.stages`, with a shrink-and-resolve repair loop when
  a switch's aggregate capacity admits no stage layout.  This keeps the
  model polynomial in switches instead of switches x stages.
* **Candidate pruning** — the decision variables grow with the square
  of candidate switches; ``max_candidates`` bounds the candidate set
  (closest programmable switches around the best-connected hub, always
  enough to hold the total resource demand).  Large instances still hit
  the solver's time limit, reproducing the paper's Exp#3 finding that
  ILP-based frameworks need hours at scale.

Routing uses explicit path-choice variables ``y(u, v, p)`` over the
``k`` shortest paths when ``explicit_paths`` is set (Eq. 7); otherwise
each communicating pair is routed on its shortest path at decode time,
which is always optimal for the latency term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.deployment import DeploymentError, DeploymentPlan, MatPlacement
from repro.core.stages import StageAssignmentError, assign_stages
from repro.milp.expr import LinExpr
from repro.milp.model import Model, Var
from repro.milp.branch_bound import (
    DEFAULT_PROFILE,
    SOLVER_PROFILES,
    BranchBoundSolver,
)
from repro.milp.solution import Solution
from repro.network.paths import Path, PathEnumerator
from repro.network.topology import Network
from repro.tdg.graph import Tdg

#: Objectives selectable as the primary objective (the other two become
#: epsilon-constraints per §V-B).
OBJECTIVE_OVERHEAD = "overhead"
OBJECTIVE_LATENCY = "latency"
OBJECTIVE_SWITCHES = "switches"
_OBJECTIVES = (OBJECTIVE_OVERHEAD, OBJECTIVE_LATENCY, OBJECTIVE_SWITCHES)


def select_candidates(
    tdg: Tdg,
    network: Network,
    paths: PathEnumerator,
    max_candidates: Optional[int] = None,
    epsilon2: Optional[int] = None,
) -> List[str]:
    """Pick the programmable switches the model may place MATs on.

    A hub switch is chosen to minimize the summed shortest-path latency
    to other programmable switches; candidates are the hub plus its
    closest programmable peers.  The set is grown until its aggregate
    pipeline capacity covers the TDG's total demand, then capped by
    ``max_candidates`` / ``epsilon2``.
    """
    programmable = network.programmable_names()
    if not programmable:
        raise DeploymentError("network has no programmable switches")

    def closeness(u: str) -> float:
        total = 0.0
        for v in programmable:
            if v == u:
                continue
            path = paths.shortest(u, v)
            total += path.latency_us if path else math.inf
        return total

    hub = min(programmable, key=closeness)
    ranked = [hub] + sorted(
        (v for v in programmable if v != hub),
        key=lambda v: (
            paths.shortest(hub, v).latency_us
            if paths.shortest(hub, v)
            else math.inf
        ),
    )
    # Drop unreachable switches.
    ranked = [
        v
        for v in ranked
        if v == hub or paths.shortest(hub, v) is not None
    ]

    demand = tdg.total_resource_demand()
    limit = len(ranked)
    if epsilon2 is not None:
        limit = min(limit, epsilon2)
    if max_candidates is not None:
        limit = min(limit, max_candidates)

    chosen: List[str] = []
    capacity = 0.0
    for name in ranked:
        chosen.append(name)
        capacity += network.switch(name).total_capacity
        if len(chosen) >= limit and capacity >= demand:
            break
    if capacity < demand:
        raise DeploymentError(
            f"candidate switches provide {capacity:.1f} stage units but "
            f"the merged TDG needs {demand:.1f}"
        )
    return chosen


@dataclass
class _ModelHandles:
    """Variables the decoder needs after solving."""

    model: Model
    placement: Dict[Tuple[str, str], Var]  # (mat, switch) -> L
    occupied: Dict[str, Var]
    a_max: Optional[Var]
    t_e2e: Optional[LinExpr]
    path_choice: Dict[Tuple[str, str, int], Var]
    candidates: List[str]
    products: Dict[Tuple[str, str, str, str], Var] = None  # z linearizations


class MilpFormulation:
    """Builds and solves P#1 (or a baseline variant of it).

    Args:
        objective: Which of the three §V-B objectives is minimized;
            the other two are enforced only through their epsilon
            bounds.
        epsilon1: Upper bound on ``t_e2e`` in microseconds
            (``math.inf`` disables, matching the paper's evaluation
            setting of loose bounds).
        epsilon2: Upper bound on occupied programmable switches.
        max_candidates: Cap on candidate switches (see module docs).
        explicit_paths: Model ``y(u, v, p)`` path choices over the
            enumerator's k shortest paths instead of decoding shortest
            paths afterwards.
        time_limit_s: Branch & bound wall-clock budget.
        max_mats_per_switch: Optional per-switch MAT-count cap (used by
            the MTP baseline to spread control-plane load).
        solver_profile: Branch & bound search profile (``"fast"`` or
            ``"classic"``; see :mod:`repro.milp.branch_bound`).  Both
            are exact — the profile only changes how quickly optimality
            is proven.
    """

    def __init__(
        self,
        objective: str = OBJECTIVE_OVERHEAD,
        epsilon1: float = math.inf,
        epsilon2: Optional[int] = None,
        max_candidates: Optional[int] = 8,
        explicit_paths: bool = False,
        time_limit_s: float = 60.0,
        max_mats_per_switch: Optional[int] = None,
        solver_profile: str = DEFAULT_PROFILE,
    ) -> None:
        if objective not in _OBJECTIVES:
            raise ValueError(
                f"objective must be one of {_OBJECTIVES}, got {objective!r}"
            )
        if epsilon1 <= 0:
            raise ValueError("epsilon1 must be positive")
        if epsilon2 is not None and epsilon2 <= 0:
            raise ValueError("epsilon2 must be positive")
        if solver_profile not in SOLVER_PROFILES:
            raise ValueError(
                f"solver_profile must be one of {SOLVER_PROFILES}, "
                f"got {solver_profile!r}"
            )
        self.objective = objective
        self.epsilon1 = epsilon1
        self.epsilon2 = epsilon2
        self.max_candidates = max_candidates
        self.explicit_paths = explicit_paths
        self.time_limit_s = time_limit_s
        self.max_mats_per_switch = max_mats_per_switch
        self.solver_profile = solver_profile
        #: Solver outcome of the most recent :meth:`deploy` call;
        #: experiments read it to distinguish proven-optimal runs from
        #: time-limited incumbents.
        self.last_solution: Optional[Solution] = None

    # ------------------------------------------------------------------
    # Model construction
    # ------------------------------------------------------------------
    def build(
        self,
        tdg: Tdg,
        network: Network,
        paths: PathEnumerator,
        candidates: Optional[Sequence[str]] = None,
    ) -> _ModelHandles:
        cand = list(
            candidates
            if candidates is not None
            else select_candidates(
                tdg, network, paths, self.max_candidates, self.epsilon2
            )
        )
        model = Model("P1")
        mats = tdg.node_names

        placement: Dict[Tuple[str, str], Var] = {}
        for a in mats:
            for u in cand:
                placement[(a, u)] = model.add_binary(f"L[{a},{u}]")

        # Node deployment (Eq. 6, tightened to exactly-one).
        for a in mats:
            model.add_constr(
                LinExpr.total(placement[(a, u)] for u in cand) == 1,
                name=f"place[{a}]",
            )

        # Aggregate switch resource limitation (Eq. 9 at switch level).
        for u in cand:
            switch = network.switch(u)
            load = LinExpr.total(
                placement[(a, u)] * tdg.node(a).resource_demand for a in mats
            )
            model.add_constr(load <= switch.total_capacity, name=f"cap[{u}]")
            if self.max_mats_per_switch is not None:
                count = LinExpr.total(placement[(a, u)] for a in mats)
                model.add_constr(
                    count <= self.max_mats_per_switch, name=f"mats[{u}]"
                )

        # Occupied-switch indicators and bound (Eq. 5).
        occupied: Dict[str, Var] = {}
        for u in cand:
            occ = model.add_binary(f"occ[{u}]")
            occupied[u] = occ
            for a in mats:
                model.add_constr(occ >= placement[(a, u)])
        q_occ = LinExpr.total(occupied.values())
        if self.epsilon2 is not None:
            model.add_constr(q_occ <= self.epsilon2, name="eps2")

        # Cross-placement products per metadata edge and switch pair.
        meta_edges = [e for e in tdg.edges if e.metadata_bytes > 0]
        need_latency = (
            self.objective == OBJECTIVE_LATENCY
            or not math.isinf(self.epsilon1)
        )
        latency_edges = tdg.edges if need_latency else meta_edges

        pair_terms: Dict[Tuple[str, str], List[LinExpr]] = {}
        latency_terms: List[LinExpr] = []
        z_cache: Dict[Tuple[str, str, str, str], Var] = {}

        def product(a: str, b: str, u: str, v: str) -> Var:
            key = (a, b, u, v)
            var = z_cache.get(key)
            if var is None:
                var = model.add_binary(f"z[{a},{b},{u},{v}]")
                model.add_constr(
                    var >= placement[(a, u)] + placement[(b, v)] - 1
                )
                z_cache[key] = var
            return var

        for edge in meta_edges:
            for u in cand:
                for v in cand:
                    if u == v:
                        continue
                    z = product(edge.upstream, edge.downstream, u, v)
                    pair_terms.setdefault((u, v), []).append(
                        LinExpr.from_term(z, float(edge.metadata_bytes))
                    )

        shortest_latency: Dict[Tuple[str, str], float] = {}
        for u in cand:
            for v in cand:
                if u == v:
                    continue
                path = paths.shortest(u, v)
                shortest_latency[(u, v)] = (
                    path.latency_us if path else math.inf
                )

        path_choice: Dict[Tuple[str, str, int], Var] = {}
        if need_latency and not self.explicit_paths:
            for edge in latency_edges:
                for u in cand:
                    for v in cand:
                        if u == v:
                            continue
                        z = product(edge.upstream, edge.downstream, u, v)
                        latency_terms.append(
                            LinExpr.from_term(z, shortest_latency[(u, v)])
                        )
        elif need_latency and self.explicit_paths:
            # Pair-level crossing indicators and path choice (Eq. 7).
            for u in cand:
                for v in cand:
                    if u == v:
                        continue
                    crossing = model.add_binary(f"w[{u},{v}]")
                    for edge in latency_edges:
                        z = product(edge.upstream, edge.downstream, u, v)
                        model.add_constr(crossing >= z)
                    pair_paths = paths.paths(u, v)
                    if not pair_paths:
                        # Unreachable pair: forbid any crossing.
                        model.add_constr(crossing <= 0)
                        continue
                    choices = []
                    for idx, path in enumerate(pair_paths):
                        y = model.add_binary(f"y[{u},{v},{idx}]")
                        path_choice[(u, v, idx)] = y
                        choices.append(y)
                        latency_terms.append(
                            LinExpr.from_term(y, path.latency_us)
                        )
                    model.add_constr(
                        LinExpr.total(choices) >= LinExpr.from_term(crossing)
                    )

        t_e2e = LinExpr.total(latency_terms) if latency_terms else None
        if t_e2e is not None and not math.isinf(self.epsilon1):
            model.add_constr(t_e2e <= self.epsilon1, name="eps1")

        a_max: Optional[Var] = None
        if self.objective == OBJECTIVE_OVERHEAD or pair_terms:
            a_max = model.add_var("A_max", lb=0.0)
            for pair, terms in pair_terms.items():
                model.add_constr(
                    a_max >= LinExpr.total(terms), name=f"amax[{pair}]"
                )

        if self.objective == OBJECTIVE_OVERHEAD:
            model.minimize(a_max if a_max is not None else LinExpr())
        elif self.objective == OBJECTIVE_LATENCY:
            model.minimize(t_e2e if t_e2e is not None else LinExpr())
        else:
            model.minimize(q_occ)

        return _ModelHandles(
            model=model,
            placement=placement,
            occupied=occupied,
            a_max=a_max,
            t_e2e=t_e2e,
            path_choice=path_choice,
            candidates=cand,
            products=z_cache,
        )

    # ------------------------------------------------------------------
    # Solve + decode
    # ------------------------------------------------------------------
    def deploy(
        self,
        tdg: Tdg,
        network: Network,
        paths: Optional[PathEnumerator] = None,
        candidates: Optional[Sequence[str]] = None,
        warm_start_plan: Optional[DeploymentPlan] = None,
    ) -> DeploymentPlan:
        """Solve P#1 and decode the solution into a validated plan.

        A shrink-and-resolve loop handles the (rare) case where the
        switch-level capacity admitted no per-stage layout: capacities
        in the model are scaled down and the model re-solved.

        Args:
            warm_start_plan: An existing feasible plan (e.g. from the
                greedy heuristic) encoded as the solver's first
                incumbent; ignored when it uses switches outside the
                candidate set or when explicit path variables are on.
        """
        paths = paths or PathEnumerator(network)
        shrink = 1.0
        last_error: Optional[Exception] = None
        for _attempt in range(3):
            handles = self.build(tdg, network, paths, candidates)
            if shrink < 1.0:
                self._tighten_capacity(handles, tdg, network, shrink)
            initial = (
                self.encode_plan(handles, warm_start_plan)
                if warm_start_plan is not None
                else None
            )
            solution = BranchBoundSolver(
                time_limit_s=self.time_limit_s,
                profile=self.solver_profile,
            ).solve(handles.model, initial=initial)
            self.last_solution = solution
            if not solution.status.has_solution:
                raise DeploymentError(
                    f"MILP solve failed: {solution.status.value}"
                )
            try:
                return self._decode(handles, solution, tdg, network, paths)
            except StageAssignmentError as exc:
                last_error = exc
                shrink *= 0.85
        raise DeploymentError(
            f"no stage-feasible MILP deployment found: {last_error}"
        )

    def encode_plan(
        self,
        handles: _ModelHandles,
        plan: DeploymentPlan,
    ) -> Optional[Dict[Var, float]]:
        """Encode a plan as a variable assignment for warm starting.

        Returns None when the plan cannot be expressed in this model
        (switches outside the candidate set, or explicit path-choice
        variables, whose consistent assignment is not worth deriving).
        """
        if self.explicit_paths:
            return None
        cand = set(handles.candidates)
        hosts = {
            name: placement.switch
            for name, placement in plan.placements.items()
        }
        if any(switch not in cand for switch in hosts.values()):
            return None

        values: Dict[Var, float] = {}
        for (a, u), var in handles.placement.items():
            values[var] = 1.0 if hosts.get(a) == u else 0.0
        occupied = set(hosts.values())
        for u, var in handles.occupied.items():
            values[var] = 1.0 if u in occupied else 0.0
        for (a, b, u, v), var in (handles.products or {}).items():
            values[var] = (
                1.0 if hosts.get(a) == u and hosts.get(b) == v else 0.0
            )
        if handles.a_max is not None:
            values[handles.a_max] = float(plan.max_metadata_bytes())
        return values

    def _tighten_capacity(
        self,
        handles: _ModelHandles,
        tdg: Tdg,
        network: Network,
        shrink: float,
    ) -> None:
        """Rebuild the capacity rows with shrunken budgets."""
        model = handles.model
        mats = tdg.node_names
        for u in handles.candidates:
            switch = network.switch(u)
            load = LinExpr.total(
                handles.placement[(a, u)] * tdg.node(a).resource_demand
                for a in mats
            )
            model.add_constr(
                load <= switch.total_capacity * shrink,
                name=f"cap_shrunk[{u}]",
            )

    def _decode(
        self,
        handles: _ModelHandles,
        solution: Solution,
        tdg: Tdg,
        network: Network,
        paths: PathEnumerator,
    ) -> DeploymentPlan:
        switch_of: Dict[str, str] = {}
        for (a, u), var in handles.placement.items():
            if solution.rounded(var) == 1:
                switch_of[a] = u
        missing = set(tdg.node_names) - set(switch_of)
        if missing:
            raise DeploymentError(f"solver left MATs unplaced: {missing}")

        placements: Dict[str, MatPlacement] = {}
        for u in set(switch_of.values()):
            segment = tdg.subgraph(
                [a for a, s in switch_of.items() if s == u], name=f"seg_{u}"
            )
            placements.update(assign_stages(segment, network.switch(u)))

        plan = DeploymentPlan(tdg, network, placements)
        routing: Dict[Tuple[str, str], Path] = {}
        for pair in plan.pair_metadata_bytes():
            chosen = self._decode_path(handles, solution, paths, pair)
            if chosen is None:
                raise DeploymentError(
                    f"no path between communicating switches {pair}"
                )
            routing[pair] = chosen
        plan = plan.with_routing(routing)
        plan.validate()
        return plan

    def _decode_path(
        self,
        handles: _ModelHandles,
        solution: Solution,
        paths: PathEnumerator,
        pair: Tuple[str, str],
    ) -> Optional[Path]:
        u, v = pair
        if self.explicit_paths:
            pair_paths = paths.paths(u, v)
            for idx, _path in enumerate(pair_paths):
                var = handles.path_choice.get((u, v, idx))
                if var is not None and solution.rounded(var) == 1:
                    return pair_paths[idx]
        return paths.shortest(u, v)


class HermesMilp(MilpFormulation):
    """The paper's "Optimal" configuration: P#1 solved exactly.

    Identical to :class:`MilpFormulation` with the overhead objective;
    exists as a named class so experiment code reads like the paper.
    """

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("objective", OBJECTIVE_OVERHEAD)
        super().__init__(**kwargs)
