"""Tests for the experiment harness (reduced budgets)."""

import pytest

from repro.baselines import Ffl, Ffls, HermesHeuristic
from repro.experiments import fig2_motivation
from repro.experiments.exp1_testbed import run as run_exp1, main as main_exp1
from repro.experiments.exp2_overhead import (
    run as run_exp2,
    workload,
)
from repro.experiments.exp3_exectime import main as main_exp3
from repro.experiments.exp4_endtoend import main as main_exp4
from repro.experiments.exp5_scalability import run as run_exp5, main as main_exp5
from repro.experiments.exp6_resources import ground_truth_units, run as run_exp6
from repro.experiments.harness import (
    DeploymentRecord,
    default_frameworks,
    end_to_end_impact,
    run_deployment_suite,
)
from repro.experiments.reporting import Table, format_series
from repro.network.generators import linear_topology


FAST = [HermesHeuristic(), Ffl(), Ffls()]


class TestReporting:
    def test_table_renders(self):
        table = Table("T", ["a", "b"])
        table.add_row([1, 2.5])
        table.add_row(["x", 1e-7])
        out = table.render()
        assert "T" in out and "a" in out and "2.5" in out

    def test_row_width_checked(self):
        table = Table("T", ["a"])
        with pytest.raises(ValueError):
            table.add_row([1, 2])

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table("T", [])

    def test_format_series(self):
        assert format_series("s", [1, 2.5]) == "s: 1, 2.5"


class TestHarness:
    def test_end_to_end_impact_monotone(self):
        fct0, gp0 = end_to_end_impact(0)
        fct1, gp1 = end_to_end_impact(100)
        assert fct0 == pytest.approx(1.0)
        assert gp0 == pytest.approx(1.0)
        assert fct1 > 1.0
        assert gp1 < 1.0

    def test_default_frameworks_order(self):
        frameworks = default_frameworks()
        names = [f.name for f in frameworks]
        assert names[-2:] == ["Hermes", "Optimal"]
        assert len(names) == 10

    def test_run_suite_records_everything(self, six_programs):
        net = linear_topology(3, num_stages=4, stage_capacity=1.0)
        records = run_deployment_suite(six_programs, net, frameworks=FAST)
        assert set(records) == {"Hermes", "FFL", "FFLS"}
        for record in records.values():
            assert isinstance(record, DeploymentRecord)
            assert record.overhead_bytes >= 0
            assert record.fct_ratio >= 1.0
            assert 0 < record.goodput_ratio <= 1.0

    def test_reported_time_caps_timeouts(self):
        record = DeploymentRecord("f", 0, 1.0, True, 1)
        assert record.reported_time_ms == 1e7
        record = DeploymentRecord("f", 0, 1.0, False, 1)
        assert record.reported_time_ms == pytest.approx(1000.0)


class TestFig2:
    def test_rows_cover_sweep(self):
        rows = fig2_motivation.run()
        assert len(rows) == len(fig2_motivation.OVERHEAD_SWEEP) * len(
            fig2_motivation.PACKET_SIZES
        )

    def test_fct_rises_goodput_falls_with_overhead(self):
        rows = fig2_motivation.run(packet_sizes=(512,))
        fcts = [r.fct_ratio for r in rows]
        goodputs = [r.goodput_ratio for r in rows]
        assert fcts == sorted(fcts)
        assert goodputs == sorted(goodputs, reverse=True)

    def test_des_agrees_with_analytic(self):
        analytic = fig2_motivation.run(
            overheads=(48,), packet_sizes=(1024,), message_bytes=102_400
        )
        des = fig2_motivation.run(
            overheads=(48,),
            packet_sizes=(1024,),
            message_bytes=102_400,
            use_des=True,
        )
        # The message does not divide evenly into 970-byte payloads, so
        # the closed form is a (tight) upper bound, not exact.
        assert analytic[0].fct_ratio == pytest.approx(
            des[0].fct_ratio, rel=1e-2
        )

    def test_main_prints(self, capsys):
        fig2_motivation.main()
        assert "Fig. 2" in capsys.readouterr().out


class TestExperimentRuns:
    def test_exp1_reduced(self):
        points = run_exp1(program_counts=(2, 4), frameworks=FAST)
        assert len(points) == 2 * len(FAST)
        out = main_exp1(points)
        assert "Fig. 5(a)" in out

    def test_exp2_reduced(self):
        points = run_exp2(
            topology_ids=(1,), num_programs=6, frameworks=FAST
        )
        assert len(points) == len(FAST)
        hermes = next(
            p for p in points if p.record.framework == "Hermes"
        )
        ffl = next(p for p in points if p.record.framework == "FFL")
        assert hermes.record.overhead_bytes <= ffl.record.overhead_bytes
        assert "Fig. 7" in main_exp3(points)
        assert "Fig. 8" in main_exp4(points)

    def test_exp5_reduced(self):
        points = run_exp5(
            program_counts=(4, 8), topology_id=2, frameworks=FAST
        )
        assert len(points) == 2 * len(FAST)
        assert "Fig. 9(a)" in main_exp5(points)

    def test_exp6(self):
        rows = run_exp6(num_sketches=6, frameworks=[HermesHeuristic()])
        assert rows[0].strategy.startswith("standalone")
        hermes = rows[1]
        # Coordination adds no switch resources; merging may save some.
        assert hermes.extra_vs_ground_truth <= 1e-9
        assert ground_truth_units(6) == pytest.approx(
            rows[0].total_stage_units
        )

    def test_exp2_workload_composition(self):
        programs = workload(15, seed=3)
        assert len(programs) == 15
        names = {p.name for p in programs}
        assert "l3_routing" in names  # real slice present
        assert any(n.startswith("syn") for n in names)


class TestEndToEndImpactEdgeCases:
    def test_huge_overhead_uses_fragmentation_fallback(self):
        # Overhead beyond the whole MTU: real deployments fragment; the
        # model must degrade gracefully rather than raise.
        fct_ratio, goodput_ratio = end_to_end_impact(1468)
        assert fct_ratio > 1.5
        assert 0 < goodput_ratio < 0.7

    def test_moderate_overhead_unaffected_by_fallback(self):
        # Below the MTU boundary the fallback must not kick in.
        a = end_to_end_impact(100)
        b = end_to_end_impact(101)
        assert abs(a[0] - b[0]) < 0.01

    def test_monotone_across_the_mtu_boundary(self):
        ratios = [end_to_end_impact(ov)[0] for ov in (0, 400, 1400, 1500, 2000)]
        assert ratios == sorted(ratios)
