"""Legacy setup shim: the offline environment lacks the `wheel` package,
so PEP 660 editable installs are unavailable; `pip install -e . --no-use-pep517`
uses this file instead."""
from setuptools import setup

setup()
