"""Multi-event migration sequences and history-composition properties.

Covers the churn patterns that stress plan-history consistency:
back-to-back failures, failure followed by recovery (the deployment
converges back to the original plan), and drain-then-fail of the same
switch.  The property tests assert the store's serialization contract:
every intermediate plan round-trips through ``repro.plan/v1``, and the
per-step history diffs compose to the end-to-end diff.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Hermes
from repro.network.generators import random_wan
from repro.plan import plan_from_dict, plan_to_dict
from repro.runtime import (
    EventKind,
    NetworkEvent,
    Reconciler,
    Scenario,
    generate_scenario,
)
from tests.conftest import make_sketch_program


@pytest.fixture(scope="module")
def network():
    return random_wan(12, 18, seed=4, num_stages=4)


@pytest.fixture(scope="module")
def programs():
    return [
        make_sketch_program(f"p{i}", index_bytes=2 + i) for i in range(6)
    ]


def scenario_of(*events):
    return Scenario(
        name="seq",
        seed=0,
        workload_spec="sketches:6",
        topology_spec="wan:12:18:4",
        events=tuple(events),
    )


class TestSequences:
    def test_back_to_back_failures(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        occupied = plan.occupied_switches()
        scenario = scenario_of(
            NetworkEvent(1.0, EventKind.SWITCH_FAIL, occupied[0]),
            NetworkEvent(2.0, EventKind.SWITCH_FAIL, occupied[1]),
        )
        result = Reconciler(programs, network).run(scenario)
        assert all(o.converged for o in result.outcomes)
        assert len(result.store) == 3
        survivors = result.final_plan.occupied_switches()
        assert occupied[0] not in survivors
        assert occupied[1] not in survivors
        # Each step is a valid plan in its own right.
        for version in result.store.versions:
            version.plan.validate()

    def test_failure_then_recovery_converges_back(
        self, programs, network
    ):
        """Recovering the failed switch re-runs the same deterministic
        heuristic on the original substrate: the plan converges back to
        the initial one, fingerprint-identical, end-to-end diff empty."""
        plan = Hermes().deploy(programs, network).plan
        victim = plan.occupied_switches()[0]
        scenario = scenario_of(
            NetworkEvent(1.0, EventKind.SWITCH_FAIL, victim),
            NetworkEvent(2.0, EventKind.SWITCH_RECOVER, victim),
        )
        result = Reconciler(programs, network).run(scenario)
        assert all(o.converged for o in result.outcomes)
        fingerprints = result.store.fingerprints()
        assert fingerprints[0] == fingerprints[2]
        assert result.store.end_to_end_diff().is_empty

    def test_drain_then_fail_same_switch(self, programs, network):
        """Draining evacuates the switch; failing it afterwards is a
        placement no-op (nothing left to move)."""
        plan = Hermes().deploy(programs, network).plan
        victim = plan.occupied_switches()[0]
        scenario = scenario_of(
            NetworkEvent(1.0, EventKind.SWITCH_DRAIN, victim),
            NetworkEvent(2.0, EventKind.SWITCH_FAIL, victim),
        )
        result = Reconciler(programs, network).run(scenario)
        drain, fail = result.outcomes
        assert drain.converged and fail.converged
        assert drain.forced_moves > 0  # the drain evacuated the host
        drained_plan = result.store.versions[1].plan
        assert victim not in drained_plan.occupied_switches()
        # The subsequent failure forces nothing: already evacuated.
        assert fail.forced_moves == 0

    def test_recovery_after_drain_restores(self, programs, network):
        plan = Hermes().deploy(programs, network).plan
        victim = plan.occupied_switches()[0]
        scenario = scenario_of(
            NetworkEvent(1.0, EventKind.SWITCH_DRAIN, victim),
            NetworkEvent(2.0, EventKind.SWITCH_RECOVER, victim),
        )
        result = Reconciler(programs, network).run(scenario)
        fingerprints = result.store.fingerprints()
        assert fingerprints[0] == fingerprints[2]


class TestHistoryProperties:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_intermediate_plans_round_trip(
        self, programs, network, seed
    ):
        """Every plan version survives repro.plan/v1 serialization."""
        scenario = generate_scenario(network, num_events=4, seed=seed)
        result = Reconciler(programs, network).run(scenario)
        for version in result.store.versions:
            doc = plan_to_dict(version.plan)
            restored = plan_from_dict(doc)
            assert restored.fingerprint() == version.fingerprint
            assert plan_to_dict(restored) == doc

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_history_diffs_compose(self, programs, network, seed):
        """Consecutive diffs telescope to the end-to-end diff."""
        scenario = generate_scenario(network, num_events=4, seed=seed)
        result = Reconciler(programs, network).run(scenario)
        diffs = result.store.diffs()
        end = result.store.end_to_end_diff()

        # Overhead deltas telescope.
        assert sum(d.overhead_delta_bytes for d in diffs) == (
            end.overhead_delta_bytes
        )

        # Final switch of every MAT follows the per-step move chain.
        placement = {
            name: result.store.versions[0].plan.switch_of(name)
            for name in result.store.versions[0].plan.placements
        }
        for diff in diffs:
            for change in diff.moved:
                placement[change.mat_name] = change.new_switch
            for name in diff.removed:
                placement.pop(name, None)
            for name in diff.added:
                pass  # arrivals tracked below against the final plan
        final_plan = result.final_plan
        for name, switch in placement.items():
            if name in final_plan.placements:
                assert final_plan.switch_of(name) == switch

        # A MAT the end-to-end diff reports as moved must have moved in
        # at least one step (and vice versa for never-moved MATs).
        stepped = set()
        for diff in diffs:
            stepped |= {c.mat_name for c in diff.moved}
        assert {c.mat_name for c in end.moved} <= stepped
