"""Unit tests for program -> TDG conversion."""

from repro.dataplane.actions import modify, no_op
from repro.dataplane.fields import header_field, metadata_field
from repro.dataplane.mat import Mat
from repro.dataplane.program import Program
from repro.tdg.builder import build_tdg, qualified_name
from repro.tdg.dependencies import DependencyType


IDX = metadata_field("m.idx", 32)
HDR = header_field("ipv4.src", 32)


class TestBuildTdg:
    def test_qualifies_node_names(self):
        program = Program("p", [Mat("a", actions=[no_op()])])
        tdg = build_tdg(program)
        assert tdg.node_names == ["p.a"]
        assert qualified_name("p", "a") == "p.a"

    def test_match_dependency_edge(self, sketch_program):
        tdg = build_tdg(sketch_program)
        edge = tdg.edge("sk.hash", "sk.update")
        assert edge.dep_type is DependencyType.MATCH

    def test_all_pairs_enumerated(self, sketch_program):
        # hash -> update (M), update -> report (M), hash -> report?
        tdg = build_tdg(sketch_program)
        assert tdg.has_edge("sk.hash", "sk.update")
        assert tdg.has_edge("sk.update", "sk.report")

    def test_reverse_dependency_edge(self):
        # a matches IDX; b (later) writes IDX
        a = Mat("a", match_fields=[IDX], actions=[no_op()])
        b = Mat("b", actions=[modify(IDX)])
        tdg = build_tdg(Program("p", [a, b]))
        assert tdg.edge("p.a", "p.b").dep_type is DependencyType.REVERSE

    def test_successor_dependency_from_conditional(self):
        gate = Mat("gate", actions=[modify(IDX)])
        gated = Mat("gated", match_fields=[HDR], actions=[no_op()])
        tdg = build_tdg(Program("p", [gate, gated], [("gate", "gated")]))
        assert (
            tdg.edge("p.gate", "p.gated").dep_type
            is DependencyType.SUCCESSOR
        )

    def test_independent_mats_have_no_edge(self):
        a = Mat("a", match_fields=[HDR], actions=[no_op()])
        b = Mat("b", match_fields=[HDR], actions=[no_op()])
        tdg = build_tdg(Program("p", [a, b]))
        assert not tdg.edges

    def test_node_properties_preserved(self, sketch_program):
        tdg = build_tdg(sketch_program)
        original = sketch_program.mat("hash")
        renamed = tdg.node("sk.hash")
        assert renamed.resource_demand == original.resource_demand
        assert renamed.capacity == original.capacity
        assert renamed.match_fields == original.match_fields

    def test_graph_is_acyclic(self, six_programs):
        for program in six_programs:
            tdg = build_tdg(program)
            tdg.topological_order()  # raises on cycles
