"""Unit tests for selective hub replication."""

import pytest

from repro.core.analyzer import ProgramAnalyzer
from repro.core.heuristic import GreedyHeuristic
from repro.core.replication import (
    replicate_cheap_hubs,
    replication_cost,
)
from repro.core.verification import verify_dataflow
from repro.network.generators import linear_topology
from repro.workloads.sketches import sketch_programs
from repro.workloads.synthetic import synthetic_programs


@pytest.fixture
def hub_tdg():
    """Sketch programs sharing one flow_hash hub after merging."""
    return ProgramAnalyzer().analyze(sketch_programs(6))


class TestReplicateCheapHubs:
    def test_hub_replaced_by_per_program_replicas(self, hub_tdg):
        hubs_before = [
            n
            for n in hub_tdg.node_names
            if any(
                s.split(".", 1)[0] != n.split(".", 1)[0]
                for s in hub_tdg.successors(n)
            )
        ]
        assert hubs_before, "fixture needs a shared hub"
        replicated = replicate_cheap_hubs(hub_tdg)
        replicas = [n for n in replicated.node_names if "~replica" in n]
        assert len(replicas) >= 2
        for hub in hubs_before:
            assert hub not in replicated

    def test_no_cross_program_edges_from_replicas(self, hub_tdg):
        replicated = replicate_cheap_hubs(hub_tdg)
        for name in replicated.node_names:
            if "~replica" not in name:
                continue
            program = name.split(".", 1)[0]
            for succ in replicated.successors(name):
                assert succ.split(".", 1)[0] == program

    def test_total_metadata_preserved_per_edge(self, hub_tdg):
        replicated = replicate_cheap_hubs(hub_tdg)
        # Same number of consumer edges, same byte weights in total.
        assert (
            replicated.total_metadata_bytes()
            == hub_tdg.total_metadata_bytes()
        )

    def test_cost_is_positive_when_hubs_exist(self, hub_tdg):
        replicated = replicate_cheap_hubs(hub_tdg)
        assert replication_cost(hub_tdg, replicated) > 0

    def test_expensive_hubs_untouched(self, hub_tdg):
        replicated = replicate_cheap_hubs(hub_tdg, max_demand=0.0)
        assert sorted(replicated.node_names) == sorted(hub_tdg.node_names)

    def test_original_graph_unmodified(self, hub_tdg):
        names_before = sorted(hub_tdg.node_names)
        replicate_cheap_hubs(hub_tdg)
        assert sorted(hub_tdg.node_names) == names_before

    def test_result_is_acyclic(self, hub_tdg):
        replicate_cheap_hubs(hub_tdg).topological_order()


class TestHeuristicWithReplication:
    def test_auto_policy_never_worse_than_base(self):
        programs = synthetic_programs(12, seed=3)
        tdg = ProgramAnalyzer().analyze(programs)
        # Generous capacity: replication inflates total demand.
        net = linear_topology(16, num_stages=12, stage_capacity=1.0)
        base = GreedyHeuristic().deploy(tdg, net)
        auto = GreedyHeuristic(replicate_hubs="auto").deploy(tdg, net)
        assert auto.max_metadata_bytes() <= base.max_metadata_bytes()

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError, match="replicate_hubs"):
            GreedyHeuristic(replicate_hubs="maybe")

    def test_replicated_plan_verifies(self):
        programs = sketch_programs(8)
        tdg = ProgramAnalyzer().analyze(programs)
        net = linear_topology(8, num_stages=6, stage_capacity=1.0)
        plan = GreedyHeuristic(replicate_hubs=True).deploy(tdg, net)
        plan.validate()
        verify_dataflow(plan)
