"""Unit tests for the versioned plan store."""

import json

import pytest

from repro.control import MigrationPlanner
from repro.core import Hermes
from repro.network.generators import random_wan
from repro.plan import read_plan
from repro.runtime import PlanStore
from tests.conftest import make_sketch_program


@pytest.fixture(scope="module")
def plans():
    """Three consecutive plans: initial, after a failure, after another."""
    programs = [
        make_sketch_program(f"p{i}", index_bytes=2 + i) for i in range(6)
    ]
    network = random_wan(12, 18, seed=4, num_stages=4)
    first = Hermes().deploy(programs, network).plan
    planner = MigrationPlanner()
    second = planner.handle_switch_failure(
        first, first.occupied_switches()[0]
    ).new_plan
    third = planner.handle_switch_failure(
        second, second.occupied_switches()[0]
    ).new_plan
    return [first, second, third]


@pytest.fixture
def store(plans):
    store = PlanStore()
    store.append(plans[0], time_s=0.0, reason="initial")
    store.append(plans[1], time_s=1.0, reason="replan")
    store.append(plans[2], time_s=2.0, reason="replan")
    return store


class TestStore:
    def test_versions_ordered(self, store, plans):
        assert len(store) == 3
        assert [v.version for v in store.versions] == [0, 1, 2]
        assert [v.plan for v in store.versions] == plans
        assert store.latest.plan is plans[2]

    def test_fingerprints_match_plans(self, store, plans):
        assert store.fingerprints() == [p.fingerprint() for p in plans]

    def test_lookup_by_fingerprint(self, store, plans):
        assert store.get(plans[1].fingerprint()) is plans[1]
        with pytest.raises(KeyError):
            store.get("0" * 64)

    def test_consecutive_diffs(self, store):
        diffs = store.diffs()
        assert len(diffs) == 2
        assert not diffs[0].is_empty
        assert not diffs[1].is_empty

    def test_history_digest_stable_and_sensitive(self, plans):
        a, b = PlanStore(), PlanStore()
        for s in (a, b):
            s.append(plans[0], 0.0, "initial")
            s.append(plans[1], 1.0, "replan")
        assert a.history_digest() == b.history_digest()
        b.append(plans[2], 2.0, "replan")
        assert a.history_digest() != b.history_digest()

    def test_empty_store(self):
        store = PlanStore()
        assert store.latest is None
        assert len(store) == 0
        with pytest.raises(ValueError):
            store.end_to_end_diff()

    def test_write_dir(self, store, plans, tmp_path):
        directory = str(tmp_path / "plans")
        paths = store.write_dir(directory)
        assert len(paths) == 4  # 3 versions + history.json
        # Every plan document round-trips through repro.plan/v1.
        for path, plan in zip(paths[:3], plans):
            loaded = read_plan(path)
            assert loaded.fingerprint() == plan.fingerprint()
        with open(paths[3]) as fh:
            history = json.load(fh)
        assert history["history_digest"] == store.history_digest()
        assert [v["reason"] for v in history["versions"]] == [
            "initial", "replan", "replan",
        ]

    def test_to_dict_summary(self, store):
        doc = store.to_dict()
        assert len(doc["versions"]) == 3
        assert len(doc["diffs"]) == 2
        for version in doc["versions"]:
            assert "a_max_bytes" in version
            assert "occupied_switches" in version


class TestReadDir:
    """write_dir -> read_dir round trips: the session-recovery path."""

    def test_reload_reproduces_the_history(self, store, tmp_path):
        directory = str(tmp_path / "plans")
        store.write_dir(directory)
        reloaded = PlanStore.read_dir(directory)
        assert len(reloaded) == len(store)
        assert reloaded.fingerprints() == store.fingerprints()
        assert reloaded.history_digest() == store.history_digest()
        assert [v.time_s for v in reloaded.versions] == [0.0, 1.0, 2.0]
        assert [v.reason for v in reloaded.versions] == [
            "initial", "replan", "replan",
        ]

    def test_reload_reproduces_per_step_diffs(self, store, tmp_path):
        directory = str(tmp_path / "plans")
        store.write_dir(directory)
        reloaded = PlanStore.read_dir(directory)
        originals = [d.to_dict() for d in store.diffs()]
        recovered = [d.to_dict() for d in reloaded.diffs()]
        assert recovered == originals
        assert (
            reloaded.end_to_end_diff().to_dict()
            == store.end_to_end_diff().to_dict()
        )

    def test_append_after_reload_continues_the_digest(
        self, store, plans, tmp_path
    ):
        """Appending to a reloaded store must equal appending to the
        original: digest continuity is what lets a server session pick
        a history back up from disk."""
        directory = str(tmp_path / "plans")
        store.write_dir(directory)
        reloaded = PlanStore.read_dir(directory)
        # The same next plan lands on both histories.
        store.append(plans[0], time_s=3.0, reason="replan")
        reloaded.append(plans[0], time_s=3.0, reason="replan")
        assert reloaded.history_digest() == store.history_digest()
        assert (
            reloaded.diffs()[-1].to_dict() == store.diffs()[-1].to_dict()
        )

    def test_reload_then_rewrite_is_stable(self, store, tmp_path):
        first = str(tmp_path / "a")
        second = str(tmp_path / "b")
        store.write_dir(first)
        reloaded = PlanStore.read_dir(first)
        reloaded.write_dir(second)
        with open(first + "/history.json") as fh:
            original = json.load(fh)
        with open(second + "/history.json") as fh:
            rewritten = json.load(fh)
        assert rewritten == original

    def test_missing_plan_file_raises(self, store, tmp_path):
        import os

        from repro.runtime import StoreReloadError

        directory = str(tmp_path / "plans")
        paths = store.write_dir(directory)
        os.remove(paths[1])
        with pytest.raises(StoreReloadError, match="version 1"):
            PlanStore.read_dir(directory)

    def test_tampered_plan_raises(self, store, tmp_path):
        from repro.runtime import StoreReloadError

        directory = str(tmp_path / "plans")
        paths = store.write_dir(directory)
        with open(paths[2]) as fh:
            doc = json.load(fh)
        doc["placements"] = {}
        with open(paths[2], "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(StoreReloadError):
            PlanStore.read_dir(directory)

    def test_empty_directory_raises(self, tmp_path):
        from repro.runtime import StoreReloadError

        with pytest.raises(StoreReloadError, match="history.json"):
            PlanStore.read_dir(str(tmp_path / "nothing"))
