"""Unit tests for SPEED-style TDG merging."""

import pytest

from repro.dataplane.actions import hash_compute, modify, no_op
from repro.dataplane.fields import header_field, metadata_field
from repro.dataplane.mat import Mat
from repro.dataplane.program import Program
from repro.tdg.builder import build_tdg
from repro.tdg.dependencies import DependencyType
from repro.tdg.graph import Tdg
from repro.tdg.merge import merge_pair, merge_tdgs


HDR = header_field("ipv4.src", 32)
SHARED_IDX = metadata_field("shared.idx", 32)


def shared_hash_mat():
    return Mat(
        "hash",
        match_fields=[HDR],
        actions=[hash_compute(SHARED_IDX, [HDR])],
        capacity=16,
        resource_demand=0.2,
    )


def program_with_shared_hash(name, value_bits=32):
    value = metadata_field(f"{name}.val", value_bits)
    consumer = Mat(
        "consume",
        match_fields=[SHARED_IDX],
        actions=[modify(value)],
        capacity=64,
        resource_demand=0.3,
    )
    return Program(name, [shared_hash_mat(), consumer])


class TestMergePair:
    def test_union_without_redundancy(self, six_programs):
        t1 = build_tdg(six_programs[0])
        t2 = build_tdg(six_programs[1])
        merged = merge_pair(t1, t2)
        assert len(merged) == len(t1) + len(t2)
        assert len(merged.edges) == len(t1.edges) + len(t2.edges)

    def test_redundant_mats_deduplicated(self):
        t1 = build_tdg(program_with_shared_hash("a"))
        t2 = build_tdg(program_with_shared_hash("b"))
        merged = merge_pair(t1, t2)
        # 4 nodes minus 1 duplicated hash.
        assert len(merged) == 3

    def test_dedup_redirects_edges(self):
        t1 = build_tdg(program_with_shared_hash("a"))
        t2 = build_tdg(program_with_shared_hash("b"))
        merged = merge_pair(t1, t2)
        # The surviving hash MAT feeds both consumers.
        hash_nodes = [
            n for n in merged.node_names if n.endswith(".hash")
        ]
        assert len(hash_nodes) == 1
        assert len(merged.successors(hash_nodes[0])) == 2

    def test_merged_graph_stays_acyclic(self):
        t1 = build_tdg(program_with_shared_hash("a"))
        t2 = build_tdg(program_with_shared_hash("b"))
        merge_pair(t1, t2).topological_order()

    def test_dedup_skipped_when_it_would_create_cycle(self):
        # g1: X -> A ; g2: B -> X'  with X, X' redundant and A, B
        # arranged so collapsing X' into X would need B -> X while
        # X -> ... -> B exists.
        shared = Mat("x", actions=[no_op()], resource_demand=0.1)
        a = Mat("a", actions=[no_op("na")], capacity=2)
        b = Mat("b", actions=[no_op("nb")], capacity=3)
        g1 = Tdg("g1")
        g1.add_node(shared)
        g1.add_node(a)
        g1.add_edge("x", "a", DependencyType.SUCCESSOR)
        g1.add_edge("a", "b2_placeholder", DependencyType.SUCCESSOR) if False else None
        g2 = Tdg("g2")
        dup = Mat("x2", actions=[no_op()], resource_demand=0.1)
        g2.add_node(dup)
        g2.add_node(b)
        g2.add_edge("b", "x2", DependencyType.SUCCESSOR)
        merged = merge_pair(g1, g2)
        # Either deduplicated safely or kept both; graph must be a DAG.
        merged.topological_order()


class TestMergeTdgs:
    def test_requires_input(self):
        with pytest.raises(ValueError):
            merge_tdgs([])

    def test_single_graph_passthrough(self, sketch_program):
        tdg = build_tdg(sketch_program)
        merged = merge_tdgs([tdg], name="T_m")
        assert merged.name == "T_m"
        assert len(merged) == len(tdg)

    def test_merges_many(self, six_programs):
        tdgs = [build_tdg(p) for p in six_programs]
        merged = merge_tdgs(tdgs)
        assert len(merged) == sum(len(t) for t in tdgs)
        merged.topological_order()

    def test_shared_mats_deduplicated_across_many(self):
        tdgs = [
            build_tdg(program_with_shared_hash(f"p{i}")) for i in range(5)
        ]
        merged = merge_tdgs(tdgs)
        # 10 nodes, 4 duplicate hashes removed.
        assert len(merged) == 6
        hash_nodes = [n for n in merged.node_names if n.endswith(".hash")]
        assert len(hash_nodes) == 1
        assert len(merged.successors(hash_nodes[0])) == 5

    def test_resource_demand_shrinks_with_dedup(self):
        tdgs = [
            build_tdg(program_with_shared_hash(f"p{i}")) for i in range(3)
        ]
        separate = sum(t.total_resource_demand() for t in tdgs)
        merged = merge_tdgs(tdgs)
        assert merged.total_resource_demand() < separate
