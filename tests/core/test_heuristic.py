"""Unit tests for the greedy heuristic (Algorithm 2)."""

import pytest

from repro.core.analyzer import ProgramAnalyzer
from repro.core.deployment import DeploymentError
from repro.core.heuristic import (
    GreedyHeuristic,
    select_switches,
    split_tdg,
)
from repro.dataplane.actions import no_op
from repro.dataplane.mat import Mat
from repro.network.generators import linear_topology, random_wan
from repro.network.paths import PathEnumerator
from repro.network.switch import Switch
from repro.tdg.dependencies import DependencyType
from repro.tdg.graph import Tdg
from tests.conftest import make_sketch_program


def weighted_chain(weights, demand=0.5):
    """n+1 MATs in a chain; edge i carries weights[i] bytes."""
    tdg = Tdg("chain")
    names = [f"m{i}" for i in range(len(weights) + 1)]
    for name in names:
        tdg.add_node(Mat(name, actions=[no_op()], resource_demand=demand))
    for i, weight in enumerate(weights):
        tdg.add_edge(names[i], names[i + 1], DependencyType.MATCH, weight)
    return tdg


class TestSplitTdg:
    def test_fitting_tdg_untouched(self):
        tdg = weighted_chain([4, 4], demand=0.2)
        segments = split_tdg(tdg, Switch("ref", num_stages=4))
        assert len(segments) == 1
        assert len(segments[0]) == 3

    def test_split_cuts_cheapest_edge(self):
        # Chain of 4 MATs (2.0 demand) on 1-stage-capacity switches
        # with 2 stages (capacity 2x0.75=1.5): must split once; the
        # cheapest edge is in the middle.
        tdg = weighted_chain([9, 1, 9], demand=0.5)
        ref = Switch("ref", num_stages=2, stage_capacity=0.75)
        segments = split_tdg(tdg, ref)
        assert len(segments) == 2
        names = [set(s.node_names) for s in segments]
        assert names == [{"m0", "m1"}, {"m2", "m3"}]

    def test_independent_programs_split_for_free(self):
        programs = [make_sketch_program(f"p{i}") for i in range(4)]
        tdg = ProgramAnalyzer().analyze(programs)
        ref = Switch("ref", num_stages=4, stage_capacity=1.0)
        segments = split_tdg(tdg, ref)
        # Each segment boundary should cut zero bytes.
        for left, right in zip(segments, segments[1:]):
            assert tdg.cut_bytes(left.node_names, right.node_names) == 0

    def test_segments_are_chain_ordered(self):
        tdg = weighted_chain([4, 4, 4, 4, 4], demand=0.6)
        ref = Switch("ref", num_stages=2, stage_capacity=1.0)
        segments = split_tdg(tdg, ref)
        seen = set()
        for segment in segments:
            for edge in tdg.edges:
                if edge.downstream in segment.node_names:
                    # upstream must be in this or an earlier segment
                    assert (
                        edge.upstream in segment.node_names
                        or edge.upstream in seen
                    )
            seen.update(segment.node_names)

    def test_segments_partition_nodes(self):
        tdg = weighted_chain([1] * 9, demand=0.4)
        ref = Switch("ref", num_stages=3, stage_capacity=1.0)
        segments = split_tdg(tdg, ref)
        names = [n for s in segments for n in s.node_names]
        assert sorted(names) == sorted(tdg.node_names)
        assert len(names) == len(set(names))

    def test_unfittable_single_mat_raises(self):
        tdg = Tdg("t")
        tdg.add_node(Mat("big", actions=[no_op()], resource_demand=50.0))
        with pytest.raises(DeploymentError, match="alone"):
            split_tdg(tdg, Switch("ref", num_stages=4))

    def test_segment_count_near_capacity_bound(self):
        programs = [make_sketch_program(f"p{i}") for i in range(20)]
        tdg = ProgramAnalyzer().analyze(programs)
        ref = Switch("ref", num_stages=12, stage_capacity=1.0)
        segments = split_tdg(tdg, ref)
        lower_bound = tdg.total_resource_demand() / ref.total_capacity
        assert len(segments) <= max(3, 3 * lower_bound)


class TestSelectSwitches:
    def test_orders_by_latency_from_anchor(self):
        net = linear_topology(4, link_latency_ms=1.0)
        paths = PathEnumerator(net)
        assert select_switches("s0", net, paths) == ["s0", "s1", "s2", "s3"]

    def test_epsilon2_caps_count(self):
        net = linear_topology(4)
        paths = PathEnumerator(net)
        assert len(select_switches("s0", net, paths, epsilon2=2)) == 2

    def test_epsilon1_filters_far_switches(self):
        net = linear_topology(3, link_latency_ms=10.0)  # 10ms per hop
        paths = PathEnumerator(net)
        near = select_switches("s0", net, paths, epsilon1=15_000.0)
        assert near == ["s0", "s1"]

    def test_anchor_always_first(self):
        net = random_wan(20, 30, seed=3)
        paths = PathEnumerator(net)
        anchor = net.programmable_names()[0]
        assert select_switches(anchor, net, paths)[0] == anchor


class TestGreedyHeuristic:
    def test_deploys_and_validates(self, six_programs, small_line):
        tdg = ProgramAnalyzer().analyze(six_programs)
        plan = GreedyHeuristic().deploy(tdg, small_line)
        plan.validate()
        assert len(plan.placements) == len(tdg)

    def test_independent_programs_get_zero_overhead(
        self, six_programs, small_line
    ):
        tdg = ProgramAnalyzer().analyze(six_programs)
        plan = GreedyHeuristic().deploy(tdg, small_line)
        assert plan.max_metadata_bytes() == 0

    def test_prefers_keeping_heavy_edges_local(self):
        # One chain with a single cheap edge among expensive ones.
        tdg = weighted_chain([50, 50, 2, 50, 50], demand=0.6)
        net = linear_topology(2, num_stages=3, stage_capacity=1.0)
        plan = GreedyHeuristic().deploy(tdg, net)
        assert plan.max_metadata_bytes() == 2

    def test_respects_epsilon2(self, six_programs):
        net = linear_topology(4, num_stages=4, stage_capacity=1.0)
        tdg = ProgramAnalyzer().analyze(six_programs)
        plan = GreedyHeuristic(epsilon2=3).deploy(tdg, net)
        assert plan.num_occupied_switches() <= 3

    def test_fails_when_epsilon2_too_tight(self, six_programs):
        net = linear_topology(4, num_stages=4, stage_capacity=1.0)
        tdg = ProgramAnalyzer().analyze(six_programs)
        with pytest.raises(DeploymentError):
            GreedyHeuristic(epsilon2=1).deploy(tdg, net)

    def test_no_programmable_switches(self, six_programs):
        net = linear_topology(3, programmable=False)
        tdg = ProgramAnalyzer().analyze(six_programs)
        with pytest.raises(DeploymentError):
            GreedyHeuristic().deploy(tdg, net)

    def test_rejects_bad_epsilons(self):
        with pytest.raises(ValueError):
            GreedyHeuristic(epsilon1=0)
        with pytest.raises(ValueError):
            GreedyHeuristic(epsilon2=0)

    def test_routing_covers_all_pairs(self):
        tdg = weighted_chain([4] * 5, demand=0.6)
        net = linear_topology(3, num_stages=2, stage_capacity=1.0)
        plan = GreedyHeuristic().deploy(tdg, net)
        for pair in plan.pair_metadata_bytes():
            assert pair in plan.routing

    def test_works_on_wan(self):
        programs = [make_sketch_program(f"p{i}") for i in range(10)]
        tdg = ProgramAnalyzer().analyze(programs)
        net = random_wan(30, 40, seed=11)
        plan = GreedyHeuristic().deploy(tdg, net)
        plan.validate()
