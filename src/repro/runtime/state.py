"""The mutable world the reconciler deploys against.

:class:`WorldState` tracks what the scenario has done to the substrate
and the workload: which switches are failed or drained, which links
were retuned, which switches had their programmability flipped, and
which programs joined or left.  :meth:`WorldState.current_network`
derives a fresh :class:`~repro.network.topology.Network` from the base
topology plus those overlays — failed switches disappear with their
links, drained switches keep forwarding but lose their pipeline
(modeled as ``programmable=False``), latency overrides apply — so the
deployment machinery always sees an ordinary network and never learns
about churn.

The derived network keeps the *base network's name*: a world that
churns away from the base and then recovers back produces a network
(and therefore plan fingerprints) identical to the original, which is
what the convergence tests assert.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dataplane.program import Program
from repro.network.topology import Network
from repro.runtime.scenario import EventKind, NetworkEvent, ScenarioError
from repro.workloads.synthetic import synthetic_program


class WorldState:
    """Base network + workload, with the scenario's overlays applied."""

    def __init__(
        self, network: Network, programs: Sequence[Program]
    ) -> None:
        self.base = network
        self._programs: Dict[str, Program] = {}
        for program in programs:
            if program.name in self._programs:
                raise ScenarioError(
                    f"duplicate program name {program.name!r}"
                )
            self._programs[program.name] = program
        self.failed: Set[str] = set()
        self.drained: Set[str] = set()
        self.latency_overrides: Dict[Tuple[str, str], float] = {}
        self.programmable_overrides: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: NetworkEvent) -> None:
        """Fold one scenario event into the world."""
        kind = event.kind
        if kind == EventKind.SWITCH_FAIL:
            self._require_switch(event.target)
            self.failed.add(event.target)
        elif kind == EventKind.SWITCH_RECOVER:
            self._require_switch(event.target)
            self.failed.discard(event.target)
            self.drained.discard(event.target)
        elif kind == EventKind.SWITCH_DRAIN:
            self._require_switch(event.target)
            self.drained.add(event.target)
        elif kind == EventKind.LINK_LATENCY:
            u, v = event.link
            self.base.link(u, v)  # raises KeyError for unknown links
            if event.value is None or event.value < 0:
                raise ScenarioError(
                    f"link_latency needs a latency >= 0, "
                    f"got {event.value!r}"
                )
            key = (u, v) if u <= v else (v, u)
            self.latency_overrides[key] = float(event.value)
        elif kind == EventKind.SET_PROGRAMMABLE:
            self._require_switch(event.target)
            self.programmable_overrides[event.target] = bool(event.value)
        elif kind == EventKind.WORKLOAD_ADD:
            if event.target in self._programs:
                raise ScenarioError(
                    f"workload_add: program {event.target!r} already "
                    "deployed"
                )
            self._programs[event.target] = _churn_program(
                event.target, int(event.value or 0)
            )
        elif kind == EventKind.WORKLOAD_REMOVE:
            if event.target not in self._programs:
                raise ScenarioError(
                    f"workload_remove: no program {event.target!r}"
                )
            del self._programs[event.target]
        else:  # pragma: no cover - NetworkEvent validates kinds
            raise ScenarioError(f"unknown event kind {kind!r}")

    def _require_switch(self, name: str) -> None:
        if name not in self.base:
            raise ScenarioError(
                f"event targets unknown switch {name!r}"
            )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def current_programs(self) -> List[Program]:
        """The live workload, in stable insertion order."""
        return list(self._programs.values())

    def current_network(self) -> Network:
        """The substrate as the deployment machinery should see it."""
        net = Network(self.base.name)
        for switch in self.base.switches:
            if switch.name in self.failed:
                continue
            programmable = self.programmable_overrides.get(
                switch.name, switch.programmable
            )
            if switch.name in self.drained:
                programmable = False
            if programmable != switch.programmable:
                switch = replace(switch, programmable=programmable)
            net.add_switch(switch)
        for link in self.base.links:
            if link.u in self.failed or link.v in self.failed:
                continue
            latency = self.latency_overrides.get(link.key)
            if latency is not None and latency != link.latency_ms:
                link = replace(link, latency_ms=latency)
            net.add_link(link)
        return net

    def hostable_switches(self) -> List[str]:
        """Names of switches that can currently host MATs."""
        return self.current_network().programmable_names()

    def vanished_hosts(self, occupied: Sequence[str]) -> Set[str]:
        """Which of ``occupied`` can no longer host MATs.

        The set feeding :class:`~repro.control.migration.MatMove`'s
        forced/optimization split: a MAT whose old host is in here had
        no choice but to move.
        """
        hostable = set(self.hostable_switches())
        return {s for s in occupied if s not in hostable}

    def is_quiescent(self) -> bool:
        """Whether every overlay is back to the base state."""
        return not (
            self.failed
            or self.drained
            or self.latency_overrides
            or self.programmable_overrides
        )


def _churn_program(name: str, seed: int) -> Program:
    """The deterministic synthetic program a ``workload_add`` injects."""
    generated = synthetic_program(name, seed)
    assert generated.name == name
    return generated
