"""Property-based tests (hypothesis) on core invariants."""

import itertools
import math

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.dataplane.actions import no_op
from repro.dataplane.fields import FieldSet, header_field, metadata_field
from repro.dataplane.mat import Mat
from repro.dataplane.rules import MatchKind, MatchSpec
from repro.core.stages import assign_stages, segment_fits
from repro.core.heuristic import split_tdg
from repro.milp.expr import LinExpr
from repro.milp.model import Model
from repro.milp.branch_bound import BranchBoundSolver
from repro.milp.solution import SolveStatus
from repro.network.generators import random_wan
from repro.network.paths import k_shortest_paths
from repro.network.switch import Switch
from repro.simulation.flow import (
    BASE_HEADER_BYTES,
    DEFAULT_MTU,
    Flow,
    flow_pair,
    packet_list,
    widened_mtu,
)
from repro.simulation.netsim import (
    FlowSimulator,
    HopSpec,
    analytic_fct,
    uniform_path,
)
from repro.tdg.dependencies import DependencyType
from repro.tdg.graph import Tdg


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def random_dag(draw, max_nodes=10):
    """A random annotated DAG with forward-only edges."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    tdg = Tdg("prop")
    demands = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=0.6),
            min_size=n,
            max_size=n,
        )
    )
    for i in range(n):
        tdg.add_node(
            Mat(f"m{i}", actions=[no_op()], resource_demand=demands[i])
        )
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                weight = draw(st.integers(min_value=0, max_value=16))
                tdg.add_edge(f"m{i}", f"m{j}", DependencyType.MATCH, weight)
    return tdg


# ----------------------------------------------------------------------
# FieldSet
# ----------------------------------------------------------------------
field_strategy = st.builds(
    lambda name, width, is_meta: (
        metadata_field(name, width) if is_meta else header_field(name, width)
    ),
    st.text(alphabet="abcdef", min_size=1, max_size=4),
    st.integers(min_value=1, max_value=128),
    st.booleans(),
)


class TestFieldSetProperties:
    @given(st.lists(field_strategy, max_size=10))
    def test_union_idempotent(self, fields):
        try:
            fs = FieldSet(fields)
        except ValueError:
            assume(False)
        assert fs.union(fs) == fs

    @given(st.lists(field_strategy, max_size=8), st.lists(field_strategy, max_size=8))
    def test_union_commutative_and_bytes_bounded(self, a_fields, b_fields):
        try:
            a, b = FieldSet(a_fields), FieldSet(b_fields)
            union = a.union(b)
        except ValueError:
            assume(False)
        assert union == b.union(a)
        assert union.metadata_bytes() <= (
            a.metadata_bytes() + b.metadata_bytes()
        )
        assert union.metadata_bytes() >= max(
            a.metadata_bytes(), b.metadata_bytes()
        )

    @given(st.lists(field_strategy, max_size=10))
    def test_metadata_never_exceeds_total(self, fields):
        try:
            fs = FieldSet(fields)
        except ValueError:
            assume(False)
        assert 0 <= fs.metadata_bytes() <= fs.total_bytes()


# ----------------------------------------------------------------------
# Match semantics
# ----------------------------------------------------------------------
class TestMatchProperties:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=32),
    )
    def test_lpm_matches_own_prefix(self, value, prefix):
        spec = MatchSpec("f", MatchKind.LPM, value, mask_or_prefix=prefix)
        assert spec.matches(value, 32)
        if prefix > 0:
            flipped = value ^ (1 << (32 - prefix))
            assert not spec.matches(flipped & (2**32 - 1), 32)

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_ternary_with_full_mask_is_exact(self, value, other):
        spec = MatchSpec("f", MatchKind.TERNARY, value, mask_or_prefix=0xFF)
        assert spec.matches(value, 8)
        assert spec.matches(other, 8) == (other == value)


# ----------------------------------------------------------------------
# TDG invariants
# ----------------------------------------------------------------------
class TestTdgProperties:
    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    @given(random_dag())
    def test_both_topological_orders_are_valid(self, tdg):
        for strategy in ("kahn", "dfs"):
            order = tdg.topological_order(strategy=strategy)
            assert sorted(order) == sorted(tdg.node_names)
            position = {name: i for i, name in enumerate(order)}
            for edge in tdg.edges:
                assert position[edge.upstream] < position[edge.downstream]

    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    @given(random_dag(), st.integers(min_value=1, max_value=8))
    def test_prefix_cut_matches_cut_bytes(self, tdg, split_at):
        order = tdg.topological_order(strategy="dfs")
        assume(1 <= split_at < len(order))
        prefix, suffix = order[:split_at], order[split_at:]
        direct = sum(
            e.metadata_bytes
            for e in tdg.edges
            if e.upstream in set(prefix) and e.downstream in set(suffix)
        )
        assert tdg.cut_bytes(prefix, suffix) == direct
        # Nothing flows backwards across a topological split.
        assert tdg.cut_bytes(suffix, prefix) == 0

    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    @given(random_dag())
    def test_subgraph_edges_are_induced(self, tdg):
        order = tdg.topological_order()
        half = order[: max(1, len(order) // 2)]
        sub = tdg.subgraph(half)
        expected = {
            e.key
            for e in tdg.edges
            if e.upstream in set(half) and e.downstream in set(half)
        }
        assert {e.key for e in sub.edges} == expected


# ----------------------------------------------------------------------
# Splitter invariants
# ----------------------------------------------------------------------
class TestSplitterProperties:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(random_dag(max_nodes=12))
    def test_split_partitions_and_fits(self, tdg):
        reference = Switch("ref", num_stages=3, stage_capacity=1.0)
        deepest = max(
            len(tdg.node_names), 1
        )  # chains may be too deep for 3 stages; skip those
        assume(_chain_depth(tdg) <= reference.num_stages)
        segments = split_tdg(tdg, reference)
        names = [n for s in segments for n in s.node_names]
        assert sorted(names) == sorted(tdg.node_names)
        for segment in segments:
            assert segment_fits(segment, reference)

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(random_dag(max_nodes=12))
    def test_split_is_chain_ordered(self, tdg):
        reference = Switch("ref", num_stages=3, stage_capacity=1.0)
        assume(_chain_depth(tdg) <= reference.num_stages)
        segments = split_tdg(tdg, reference)
        seen = set()
        for segment in segments:
            for edge in tdg.edges:
                if edge.downstream in segment.node_names:
                    assert (
                        edge.upstream in segment.node_names
                        or edge.upstream in seen
                    )
            seen.update(segment.node_names)


def _chain_depth(tdg: Tdg) -> int:
    levels = {}
    for name in tdg.topological_order():
        preds = tdg.predecessors(name)
        levels[name] = max((levels[p] for p in preds), default=-1) + 1
    return max(levels.values()) + 1 if levels else 0


# ----------------------------------------------------------------------
# Stage assignment invariants
# ----------------------------------------------------------------------
class TestStageProperties:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(random_dag(max_nodes=8))
    def test_assignment_respects_order_and_capacity(self, tdg):
        switch = Switch("s", num_stages=10, stage_capacity=1.0)
        assume(segment_fits(tdg, switch))
        placements = assign_stages(tdg, switch)
        for edge in tdg.edges:
            assert (
                placements[edge.upstream].last_stage
                < placements[edge.downstream].first_stage
            )
        load = {}
        for p in placements.values():
            share = tdg.node(p.mat_name).resource_demand / len(p.stages)
            for stage in p.stages:
                load[stage] = load.get(stage, 0.0) + share
        assert all(v <= switch.stage_capacity + 1e-9 for v in load.values())


# ----------------------------------------------------------------------
# MILP solver vs brute force
# ----------------------------------------------------------------------
@st.composite
def small_binary_milp(draw):
    num_vars = draw(st.integers(min_value=2, max_value=6))
    num_constraints = draw(st.integers(min_value=1, max_value=4))
    coefs = st.integers(min_value=-5, max_value=5)
    objective = draw(
        st.lists(coefs, min_size=num_vars, max_size=num_vars)
    )
    constraints = [
        (
            draw(st.lists(coefs, min_size=num_vars, max_size=num_vars)),
            draw(st.integers(min_value=-5, max_value=10)),
        )
        for _ in range(num_constraints)
    ]
    return objective, constraints


class TestSolverProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(small_binary_milp())
    def test_matches_brute_force(self, problem):
        objective, constraints = problem
        n = len(objective)

        model = Model("prop")
        xs = [model.add_binary(f"x{i}") for i in range(n)]
        for row, rhs in constraints:
            model.add_constr(
                LinExpr.total(c * x for c, x in zip(row, xs)) <= rhs
            )
        model.minimize(LinExpr.total(c * x for c, x in zip(objective, xs)))
        solution = BranchBoundSolver(time_limit_s=30).solve(model)

        best = None
        for assignment in itertools.product((0, 1), repeat=n):
            if all(
                sum(c * v for c, v in zip(row, assignment)) <= rhs
                for row, rhs in constraints
            ):
                value = sum(c * v for c, v in zip(objective, assignment))
                best = value if best is None else min(best, value)

        if best is None:
            assert solution.status is SolveStatus.INFEASIBLE
        else:
            assert solution.status is SolveStatus.OPTIMAL
            assert solution.objective == pytest.approx(best, abs=1e-6)


# ----------------------------------------------------------------------
# Flow / simulation invariants
# ----------------------------------------------------------------------
class TestFlowProperties:
    @given(
        st.integers(min_value=1, max_value=200_000),
        st.integers(min_value=64, max_value=1446),
        st.integers(min_value=0, max_value=200),
    )
    def test_packetization_conserves_message(
        self, message, payload, overhead
    ):
        flow = Flow(1, message, payload, overhead_bytes=overhead)
        packets = packet_list(flow)
        assert sum(p.payload_bytes for p in packets) == message
        assert len(packets) == flow.num_packets
        assert all(
            p.payload_bytes <= flow.effective_payload_bytes for p in packets
        )

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=128, max_value=1024),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_des_never_beats_analytic_bound(
        self, packets, payload, overhead, hops
    ):
        flow = Flow(1, packets * payload, payload, overhead_bytes=overhead)
        path = uniform_path(hops)
        des = FlowSimulator(path).run(flow)
        closed = analytic_fct(flow, path)
        # Message divides evenly: the closed form is exact.
        assert des.fct_us == pytest.approx(closed.fct_us, rel=1e-9)

    @given(
        st.integers(min_value=0, max_value=150),
        st.integers(min_value=0, max_value=150),
    )
    def test_fct_monotone_in_overhead(self, ov1, ov2):
        assume(ov1 != ov2)
        lo, hi = sorted((ov1, ov2))
        path = uniform_path(5)
        fct_lo = analytic_fct(Flow(1, 100_000, 512, overhead_bytes=lo), path)
        fct_hi = analytic_fct(Flow(1, 100_000, 512, overhead_bytes=hi), path)
        assert fct_lo.fct_us <= fct_hi.fct_us


# ----------------------------------------------------------------------
# Packetization edge cases under MTU widening
# ----------------------------------------------------------------------
class TestPacketizationEdges:
    @given(st.integers(min_value=1383, max_value=100_000))
    def test_crushing_overhead_kills_flow_but_not_flow_pair(
        self, overhead
    ):
        """Past the widening boundary the nominal MTU leaves <1 payload
        byte, so a bare Flow is unconstructable — but flow_pair widens
        the MTU per the shared rule and always succeeds."""
        assume(
            DEFAULT_MTU - BASE_HEADER_BYTES - overhead < 1
        )  # genuinely crushing
        with pytest.raises(ValueError):
            Flow(1, 1_000, 1024, overhead_bytes=overhead)
        _, measured = flow_pair(1_000, 1024, overhead)
        assert measured.effective_payload_bytes >= 1
        assert measured.mtu == widened_mtu(overhead)

    @given(
        st.integers(min_value=64, max_value=1446),
        st.integers(min_value=0, max_value=200),
    )
    def test_zero_byte_messages_rejected(self, payload, overhead):
        with pytest.raises(ValueError):
            Flow(1, 0, payload, overhead_bytes=overhead)
        with pytest.raises(ValueError):
            flow_pair(0, payload, overhead)

    @given(
        st.integers(min_value=64, max_value=1446),
        st.integers(min_value=0, max_value=200),
    )
    def test_one_byte_message_is_one_packet(self, payload, overhead):
        baseline, measured = flow_pair(1, payload, overhead)
        for flow in (baseline, measured):
            assert flow.num_packets == 1
            (packet,) = packet_list(flow)
            assert packet.payload_bytes == 1

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=64, max_value=1446),
        st.integers(min_value=0, max_value=200),
    )
    def test_exact_multiple_fills_every_packet(
        self, packets, payload, overhead
    ):
        """A message that is an exact multiple of the effective payload
        packetizes with no runt: every packet, including the last, is
        full, and the count matches the closed form exactly."""
        flow = Flow(1, 1, payload, overhead_bytes=overhead)
        eff = flow.effective_payload_bytes
        full = Flow(
            1, packets * eff, payload, overhead_bytes=overhead
        )
        assert full.num_packets == packets
        assert all(
            p.payload_bytes == eff for p in packet_list(full)
        )


# ----------------------------------------------------------------------
# Heterogeneous hop chains: DES vs closed form
# ----------------------------------------------------------------------
@st.composite
def hetero_path(draw, max_hops=5):
    """A store-and-forward path with per-hop rates and latencies."""
    hops = draw(st.integers(min_value=1, max_value=max_hops))
    return [
        HopSpec(
            rate_gbps=draw(
                st.sampled_from((1.0, 2.5, 10.0, 40.0, 100.0))
            ),
            latency_us=draw(
                st.floats(min_value=0.0, max_value=500.0)
            ),
        )
        for _ in range(hops)
    ]


class TestHeterogeneousPathProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        hetero_path(),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=128, max_value=1024),
        st.integers(min_value=0, max_value=100),
    )
    def test_des_matches_analytic_on_mixed_hops(
        self, path, packets, payload, overhead
    ):
        """The closed form sum(tx) + sum(lat) + (N-1)*max(tx) must hold
        on paths whose hops differ in both rate and latency, not just
        the uniform chains the legacy harness used."""
        flow = Flow(1, packets * payload, payload, overhead_bytes=overhead)
        des = FlowSimulator(path).run(flow)
        closed = analytic_fct(flow, path)
        assert des.fct_us == pytest.approx(closed.fct_us, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        hetero_path(),
        st.integers(min_value=1, max_value=200_000),
        st.integers(min_value=128, max_value=1024),
    )
    def test_uneven_division_never_beats_the_bound(
        self, path, message, payload
    ):
        """With a runt last packet the closed form (which prices every
        packet at full wire size) is an upper bound on the DES."""
        flow = Flow(1, message, payload)
        des = FlowSimulator(path).run(flow)
        closed = analytic_fct(flow, path)
        assert des.fct_us <= closed.fct_us * (1 + 1e-9)


# ----------------------------------------------------------------------
# Path enumeration invariants
# ----------------------------------------------------------------------
class TestPathProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=6, max_value=15),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=4),
    )
    def test_k_shortest_sorted_distinct_loopfree(self, n, seed, k):
        net = random_wan(n, min(n + 4, n * (n - 1) // 2), seed=seed)
        names = net.switch_names
        paths = k_shortest_paths(net, names[0], names[-1], k)
        assert len(paths) <= k
        latencies = [p.latency_us for p in paths]
        assert latencies == sorted(latencies)
        switch_seqs = [p.switches for p in paths]
        assert len(set(switch_seqs)) == len(switch_seqs)
        for path in paths:
            assert path.source == names[0]
            assert path.destination == names[-1]
            assert len(set(path.switches)) == len(path.switches)


# ----------------------------------------------------------------------
# Whole-pipeline property: deploy -> verify -> execute
# ----------------------------------------------------------------------
class TestDeploymentExecutability:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=4),
    )
    def test_heuristic_plans_always_execute(
        self, num_programs, seed, num_stages
    ):
        """Any plan the heuristic emits must verify AND run packets."""
        from repro.core.analyzer import ProgramAnalyzer
        from repro.core.deployment import DeploymentError
        from repro.core.heuristic import GreedyHeuristic
        from repro.core.verification import verify_dataflow
        from repro.network.generators import linear_topology
        from repro.simulation.interpreter import PlanInterpreter
        from repro.workloads.synthetic import (
            SyntheticConfig,
            synthetic_programs,
        )

        config = SyntheticConfig(
            min_mats=3, max_mats=6, dependency_probability=0.4,
            shared_pool_size=2, shared_probability=0.5,
        )
        programs = synthetic_programs(num_programs, seed=seed, config=config)
        tdg = ProgramAnalyzer().analyze(programs)
        network = linear_topology(
            12, num_stages=num_stages, stage_capacity=1.0
        )
        try:
            plan = GreedyHeuristic().deploy(tdg, network)
        except DeploymentError:
            assume(False)  # infeasible instance; not what we test
        plan.validate()
        report = verify_dataflow(plan)
        assert len(report.execution_order) == len(tdg)

        interpreter = PlanInterpreter(plan)
        packet = {
            "ipv4.src_addr": seed & 0xFFFFFFFF,
            "ipv4.dst_addr": (seed * 31) & 0xFFFFFFFF,
            "ipv4.protocol": 6,
            "tcp.src_port": 1234,
            "tcp.dst_port": 80,
            "ethernet.src_addr": 1,
            "ethernet.dst_addr": 2,
            "vlan.vid": 1,
            "ipv4.ttl": 64,
            "ipv4.dscp": 0,
            "udp.src_port": 1,
            "udp.dst_port": 2,
            "tcp.flags": 0,
            "ipv6.src_addr": 0,
            "ipv6.dst_addr": 0,
            "ethernet.ether_type": 0x0800,
        }
        trace = interpreter.run_packet(packet)  # must not raise
        assert trace.visited_switches


# ----------------------------------------------------------------------
# Failure injection: migration keeps plans executable
# ----------------------------------------------------------------------
class TestFailureInjection:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=5),
    )
    def test_single_switch_failures_survivable(self, seed, victim_pick):
        """Any single occupied-switch failure on a redundant WAN must
        yield a valid, dataflow-verified re-deployment."""
        from repro.control import MigrationPlanner
        from repro.core.analyzer import ProgramAnalyzer
        from repro.core.deployment import DeploymentError
        from repro.core.heuristic import GreedyHeuristic
        from repro.core.verification import verify_dataflow
        from repro.workloads.synthetic import (
            SyntheticConfig,
            synthetic_programs,
        )

        config = SyntheticConfig(min_mats=3, max_mats=5)
        programs = synthetic_programs(4, seed=seed, config=config)
        network = random_wan(14, 26, seed=seed, num_stages=6)
        tdg = ProgramAnalyzer().analyze(programs)
        try:
            plan = GreedyHeuristic().deploy(tdg, network)
        except DeploymentError:
            assume(False)
        occupied = plan.occupied_switches()
        victim = occupied[victim_pick % len(occupied)]
        try:
            diff = MigrationPlanner().handle_switch_failure(plan, victim)
        except DeploymentError:
            # The surviving network may genuinely lack capacity or
            # connectivity; that is a legitimate outcome, not a bug.
            assume(False)
        diff.new_plan.validate()
        verify_dataflow(diff.new_plan)
        assert victim not in diff.new_plan.occupied_switches()
        assert len(diff.moves) + len(diff.unchanged) == len(
            plan.placements
        )


# ----------------------------------------------------------------------
# Contention engine invariants
# ----------------------------------------------------------------------
class TestContentionProperties:
    """Hypothesis coverage for the queueing layer on top of the
    DES-exact base: conservation, lower-boundedness, monotonicity."""

    @staticmethod
    def _spec(seed, flows, overhead):
        from repro.simulation.spec import SimulationSpec
        from repro.simulation.traces import TraceConfig, generate_trace

        trace = generate_trace(
            seed, TraceConfig(num_flows=flows, max_bytes=256 * 1024)
        )
        return SimulationSpec.from_trace(trace, uniform_path(4), overhead)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=0, max_value=256),
        st.floats(min_value=0.05, max_value=2.0),
    )
    def test_wire_bytes_conserved_under_contention(
        self, seed, flows, overhead, load
    ):
        """Queueing delays packets; it never creates or destroys them.
        Packet and wire-byte columns must match the analytic engine
        bit-for-bit at any load."""
        from repro.simulation import ContentionEngine, get_engine

        spec = self._spec(seed, flows, overhead)
        contended = ContentionEngine(load=load).evaluate(spec)
        analytic = get_engine("analytic").evaluate(spec)
        assert contended.wire_bytes == analytic.wire_bytes
        assert contended.num_packets == analytic.num_packets
        assert sum(contended.wire_bytes) == sum(analytic.wire_bytes)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=0, max_value=256),
        st.floats(min_value=0.05, max_value=2.0),
    )
    def test_fct_never_below_uncontended(self, seed, flows, overhead, load):
        """A shared queue can only add delay: every flow's FCT is
        bounded below by its value at the structurally contention-free
        load, where waits are exactly zero."""
        from repro.simulation import CONTENTION_FREE_LOAD, ContentionEngine

        spec = self._spec(seed, flows, overhead)
        calm = ContentionEngine(load=CONTENTION_FREE_LOAD).evaluate(spec)
        assert all(w == 0.0 for w in calm.wait_us)
        busy = ContentionEngine(load=load).evaluate(spec)
        for floor, fct in zip(calm.fct_us, busy.fct_us):
            assert fct >= floor * (1 - 1e-12)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=60),
        st.integers(min_value=0, max_value=256),
        st.lists(
            st.floats(min_value=0.05, max_value=2.0),
            min_size=2,
            max_size=4,
        ),
    )
    def test_fct_monotone_in_offered_load(
        self, seed, flows, overhead, loads
    ):
        """With the jitter sequence held fixed (same engine seed),
        raising offered load compresses every arrival gap, so each
        flow's FCT is non-decreasing in load."""
        from repro.simulation import ContentionEngine

        spec = self._spec(seed, flows, overhead)
        previous = None
        for load in sorted(loads):
            fct = ContentionEngine(load=load, seed=0).evaluate(spec).fct_us
            if previous is not None:
                scale = max(fct)
                for before, after in zip(previous, fct):
                    assert after >= before - 1e-9 * scale
            previous = fct
