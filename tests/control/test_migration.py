"""Unit tests for failure-driven migration planning."""

import pytest

from repro.control import Controller, MigrationPlanner
from repro.control.migration import surviving_network
from repro.core import Hermes
from repro.core.deployment import DeploymentError
from repro.core.verification import verify_dataflow
from repro.dataplane.rules import MatchKind, MatchSpec, Rule
from repro.network import linear_topology, random_wan
from tests.conftest import make_sketch_program


@pytest.fixture
def wan_plan():
    programs = [make_sketch_program(f"p{i}", index_bytes=2 + i) for i in range(8)]
    network = random_wan(16, 24, seed=4, num_stages=4)
    return Hermes().deploy(programs, network).plan


class TestSurvivingNetwork:
    def test_removes_switch_and_links(self):
        net = linear_topology(3)
        survived = surviving_network(net, "s1")
        assert survived.num_switches == 2
        assert survived.num_links == 0
        assert "s1" not in survived

    def test_unknown_switch(self):
        with pytest.raises(DeploymentError):
            surviving_network(linear_topology(2), "ghost")

    def test_original_untouched(self):
        net = linear_topology(3)
        surviving_network(net, "s1")
        assert net.num_switches == 3


class TestMigration:
    def test_failure_produces_valid_new_plan(self, wan_plan):
        failed = wan_plan.occupied_switches()[0]
        diff = MigrationPlanner().handle_switch_failure(wan_plan, failed)
        assert diff.new_plan is not None
        diff.new_plan.validate()
        verify_dataflow(diff.new_plan)
        assert failed not in diff.new_plan.occupied_switches()

    def test_every_orphaned_mat_moves(self, wan_plan):
        failed = wan_plan.occupied_switches()[0]
        orphaned = set(wan_plan.mats_on(failed))
        diff = MigrationPlanner().handle_switch_failure(wan_plan, failed)
        moved = {move.mat_name for move in diff.moves}
        assert orphaned <= moved
        for move in diff.moves:
            if move.mat_name in orphaned:
                assert move.source is None
                assert move.forced

    def test_forced_vs_optimization_split(self, wan_plan):
        failed = wan_plan.occupied_switches()[0]
        orphaned = set(wan_plan.mats_on(failed))
        diff = MigrationPlanner().handle_switch_failure(wan_plan, failed)
        forced = {m.mat_name for m in diff.forced_moves}
        optimization = {m.mat_name for m in diff.optimization_moves}
        assert forced >= orphaned
        assert not (forced & optimization)
        assert forced | optimization == {m.mat_name for m in diff.moves}
        for move in diff.optimization_moves:
            assert move.source is not None
            assert move.source != move.destination

    def test_unaffected_failure_keeps_plan_cheap(self, wan_plan):
        # Failing a switch that hosts nothing must not force moves of
        # MATs still on surviving switches... unless the heuristic
        # re-shuffles; the diff must stay consistent either way.
        unused = next(
            s
            for s in wan_plan.network.switch_names
            if s not in wan_plan.occupied_switches()
        )
        diff = MigrationPlanner().handle_switch_failure(wan_plan, unused)
        assert diff.new_plan is not None
        total = len(diff.moves) + len(diff.unchanged)
        assert total == len(wan_plan.placements)

    def test_disruption_fraction(self, wan_plan):
        failed = wan_plan.occupied_switches()[0]
        diff = MigrationPlanner().handle_switch_failure(wan_plan, failed)
        assert 0.0 < diff.disruption <= 1.0

    def test_rule_replay_counts_from_controller(self, wan_plan):
        controller = Controller(wan_plan)
        victim = wan_plan.occupied_switches()[0]
        victim_mat = wan_plan.mats_on(victim)[0]
        rule = Rule(
            matches=(
                MatchSpec("ipv4.src_addr", MatchKind.EXACT, 7),
            ),
            action_name=wan_plan.tdg.node(victim_mat).actions[0].name,
        )
        controller.install_rule(victim_mat, rule)
        installed = {
            name: controller.rules_to_replay(name)
            for name in wan_plan.placements
        }
        diff = MigrationPlanner().handle_switch_failure(
            wan_plan, victim, installed_rules=installed
        )
        moved = {m.mat_name: m for m in diff.moves}
        assert moved[victim_mat].rules_to_replay == 1
        assert diff.rules_to_replay >= 1

    def test_all_programmable_lost(self):
        programs = [make_sketch_program("p0")]
        net = linear_topology(2)
        # Make only one switch programmable, then fail it.
        from repro.network.switch import Switch
        from repro.network.topology import Network

        custom = Network("one_prog")
        custom.add_switch(Switch("a", programmable=True))
        custom.add_switch(Switch("b", programmable=False))
        custom.connect("a", "b")
        plan = Hermes().deploy(programs, custom).plan
        with pytest.raises(DeploymentError, match="survive"):
            MigrationPlanner().handle_switch_failure(plan, "a")

    def test_diff_rejects_mismatched_plans(self, wan_plan):
        other_programs = [make_sketch_program("other")]
        other = Hermes().deploy(other_programs, wan_plan.network).plan
        with pytest.raises(DeploymentError, match="different MAT sets"):
            MigrationPlanner().diff(wan_plan, other)

    def test_compute_moves_tolerates_workload_change(self, wan_plan):
        # Unlike MigrationPlanner.diff, the lower-level helper works
        # over the common MAT subset so a reconciler batch mixing a
        # workload change with a failure still gets a move set.
        from repro.control import compute_moves

        programs = [
            make_sketch_program(f"p{i}", index_bytes=2 + i)
            for i in range(8)
        ] + [make_sketch_program("extra")]
        grown = Hermes().deploy(programs, wan_plan.network).plan
        moves, unchanged = compute_moves(wan_plan, grown)
        named = {m.mat_name for m in moves} | set(unchanged)
        common = set(wan_plan.placements) & set(grown.placements)
        assert named == common
        for move in moves:
            assert not move.forced  # no host vanished

    def test_compute_moves_vanished_marks_forced(self, wan_plan):
        from repro.control import compute_moves

        victim = wan_plan.occupied_switches()[0]
        diff = MigrationPlanner().handle_switch_failure(wan_plan, victim)
        moves, _ = compute_moves(
            wan_plan, diff.new_plan, vanished={victim}
        )
        forced = [m for m in moves if m.forced]
        assert forced
        assert {m.mat_name for m in forced} >= set(
            wan_plan.mats_on(victim)
        )
