"""PINT-style probabilistic overhead bounding.

PINT (Probabilistic In-band Network Telemetry) observes that per-packet
metadata need not ride on *every* packet: if each packet carries a
small, hash-selected subset of the values, a collector reconstructs the
full picture over a window of packets.  The per-packet byte overhead
becomes a hard user-chosen budget; the price is *delivery latency* —
the number of packets until every value has been seen (a coupon
collector process).

The paper positions PINT as complementary to Hermes: Hermes shrinks
what must be shipped; PINT bounds what each individual packet carries.
This module implements the value-sampling mechanism over Hermes'
coordination channels so the combination can be measured:

    channel = CoordinationAnalysis(plan).channel("s3", "s7")
    pint = PintChannel(channel, budget_bytes=8)
    for pkt_id in range(200):
        samples = pint.encode(pkt_id, values)
        collector.observe(pkt_id, samples)

Determinism: the field subset for packet ``p`` is chosen by ranking
fields on ``crc32(p, field)`` — both the switch (encoder) and the
collector can recompute it, so samples need no field identifiers on the
wire beyond the packet id the transport already carries.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.coordination import MetadataChannel


def _selection_hash(packet_id: int, field_name: str) -> int:
    data = packet_id.to_bytes(8, "big", signed=False) + field_name.encode()
    return zlib.crc32(data)


def coupon_collector_packets(num_fields: int, per_packet: int) -> float:
    """Expected packets until every field has been carried at least once.

    With ``k`` of ``n`` fields sampled uniformly per packet, the
    expected completion time is ``(n/k) * H_n`` (the classic coupon
    collector scaled by the batch size).
    """
    if num_fields <= 0:
        return 0.0
    if per_packet <= 0:
        return math.inf
    if per_packet >= num_fields:
        return 1.0
    harmonic = sum(1.0 / i for i in range(1, num_fields + 1))
    return (num_fields / per_packet) * harmonic


@dataclass(frozen=True)
class PintSample:
    """One sampled value on the wire."""

    field_name: str
    value: int


class PintChannel:
    """A coordination channel under a per-packet byte budget.

    Args:
        channel: The deterministic channel being bounded.
        budget_bytes: Hard per-packet metadata budget.  Must admit at
            least the largest single field.
    """

    def __init__(
        self, channel: MetadataChannel, budget_bytes: int
    ) -> None:
        self.channel = channel
        self.fields: List = [f for f, _off in channel.layout]
        if not self.fields:
            raise ValueError("channel carries no metadata to bound")
        largest = max(f.size_bytes for f in self.fields)
        if budget_bytes < largest:
            raise ValueError(
                f"budget {budget_bytes}B cannot fit the largest field "
                f"({largest}B)"
            )
        self.budget_bytes = budget_bytes

    @property
    def full_bytes(self) -> int:
        """What the unbounded channel ships per packet."""
        return self.channel.layout_bytes

    def select_fields(self, packet_id: int) -> List:
        """The hash-selected field subset for one packet.

        Greedy by selection hash, packing fields while the budget
        holds; both ends compute the same answer.
        """
        ranked = sorted(
            self.fields,
            key=lambda f: _selection_hash(packet_id, f.name),
        )
        chosen: List = []
        remaining = self.budget_bytes
        for fld in ranked:
            if fld.size_bytes <= remaining:
                chosen.append(fld)
                remaining -= fld.size_bytes
        return chosen

    def encode(
        self, packet_id: int, values: Mapping[str, int]
    ) -> List[PintSample]:
        """Samples this packet carries (its wire cost <= budget)."""
        samples = []
        for fld in self.select_fields(packet_id):
            if fld.name not in values:
                raise KeyError(
                    f"no value for selected field {fld.name!r}"
                )
            samples.append(PintSample(fld.name, values[fld.name]))
        return samples

    def wire_bytes(self, packet_id: int) -> int:
        return sum(f.size_bytes for f in self.select_fields(packet_id))

    def expected_completion_packets(self) -> float:
        """Coupon-collector estimate of packets to cover every field."""
        sizes = [f.size_bytes for f in self.fields]
        avg_per_packet = max(
            1, self.budget_bytes // max(min(sizes), 1)
        )
        per_packet = min(avg_per_packet, len(self.fields))
        return coupon_collector_packets(len(self.fields), per_packet)


class PintCollector:
    """Reconstructs channel values from sampled packets."""

    def __init__(self, channel: PintChannel) -> None:
        self.channel = channel
        self._observed: Dict[str, int] = {}
        self.packets_seen = 0
        self.completion_packet: Optional[int] = None

    def observe(
        self, packet_id: int, samples: Iterable[PintSample]
    ) -> None:
        self.packets_seen += 1
        for sample in samples:
            self._observed[sample.field_name] = sample.value
        if (
            self.completion_packet is None
            and len(self._observed) == len(self.channel.fields)
        ):
            self.completion_packet = self.packets_seen

    @property
    def coverage(self) -> float:
        """Fraction of the channel's fields seen at least once."""
        return len(self._observed) / len(self.channel.fields)

    @property
    def complete(self) -> bool:
        return len(self._observed) == len(self.channel.fields)

    def value(self, field_name: str) -> int:
        try:
            return self._observed[field_name]
        except KeyError:
            raise KeyError(
                f"field {field_name!r} not yet observed "
                f"({self.coverage:.0%} coverage)"
            ) from None


def simulate_coverage(
    channel: PintChannel,
    values: Mapping[str, int],
    num_packets: int,
    loss_rate: float = 0.0,
    seed: int = 0,
) -> Tuple[List[float], Optional[int]]:
    """Drive ``num_packets`` through the bounded channel.

    Args:
        loss_rate: Probability that a packet (and its samples) is lost
            before the collector sees it; losses stretch the coverage
            curve, quantifying PINT's sensitivity to lossy paths.
        seed: RNG seed for the loss process.

    Returns:
        (per-packet coverage curve, packet index of full coverage or
        None if never completed).
    """
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError("loss_rate must be in [0, 1)")
    rng = random.Random(seed)
    collector = PintCollector(channel)
    curve: List[float] = []
    for packet_id in range(num_packets):
        if loss_rate and rng.random() < loss_rate:
            collector.packets_seen += 1  # the wire carried it anyway
        else:
            collector.observe(packet_id, channel.encode(packet_id, values))
        curve.append(collector.coverage)
    return curve, collector.completion_packet
