"""Control-plane substrate.

The paper's backend "invokes the network controller to direct traffic
to correctly pass through a sequence of programmable switches" — the
control plane is the runtime half of network-wide deployment.  This
package provides it:

* :class:`Controller` — owns a deployed plan; resolves logical MAT
  names to their hosting switch, installs/removes rules with capacity
  accounting, and keeps an auditable event log;
* :class:`repro.control.migration.MigrationPlanner` — reacts to switch
  failures (or administrative drains) by re-running the deployment on
  the surviving network and emitting the minimal migration diff: which
  MATs move where, which rules must be replayed, and how the byte
  overhead changes.
"""

from repro.control.controller import (
    Controller,
    ControllerError,
    RebindReport,
    RuleEvent,
    TableHandle,
)
from repro.control.migration import (
    MigrationDiff,
    MigrationPlanner,
    MatMove,
    compute_moves,
)

__all__ = [
    "Controller",
    "ControllerError",
    "MatMove",
    "MigrationDiff",
    "MigrationPlanner",
    "RebindReport",
    "RuleEvent",
    "TableHandle",
    "compute_moves",
]
