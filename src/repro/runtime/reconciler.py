"""The reconciling controller: events in, plan versions out.

The :class:`Reconciler` drives a live deployment through a
:class:`~repro.runtime.scenario.Scenario`.  For every debounce batch of
events it folds the batch into the :class:`~repro.runtime.state.WorldState`,
re-deploys the live workload on the current network under explicit
policies, rebinds the runtime :class:`~repro.control.Controller` to the
new plan, and appends the plan to the :class:`~repro.runtime.store.PlanStore`.

Replanning runs a three-rung escalation ladder, cheapest first:

1. **incremental** (``policy.incremental``, off by default) — the old
   plan is warm-repaired by :class:`~repro.runtime.incremental.
   IncrementalReplanner`: rebased verbatim when no placement lost its
   host, or delta-solved over the blast radius and spliced.  The rung
   escalates — deterministically, never on wall-clock — when the
   workload changed, the blast radius exceeds
   ``policy.max_blast_fraction``, or the repair machinery raises.
2. **full** — the cold path: ``deploy_fn`` re-deploys the live
   workload from scratch under the retry policy.
3. **patch** — the degraded mode: when the full replan blows
   ``replan_budget_s``, its result is discarded in favor of the
   cheapest feasible local patch
   (:func:`repro.runtime.patch.cheapest_patch`).

Policies (:class:`ReconcilerPolicy`):

* **Debounce** — events closer than ``debounce_s`` apart coalesce into
  one batch and one replan, so a correlated burst (a rack power event
  failing three switches within milliseconds) doesn't thrash the
  deployment through three intermediate plans.
* **Incremental first** — ``incremental`` turns rung 1 on;
  ``max_blast_fraction`` bounds how much of the deployment the delta
  mode may re-home before escalating to a cold solve.
* **Time budget** — when a full replan exceeds ``replan_budget_s``
  wall-clock, its result is discarded in favor of the cheapest feasible
  local patch (:func:`repro.runtime.patch.cheapest_patch`): minimal
  churn now, global optimality sacrificed.  ``None`` (the default)
  disables the fallback, which also makes plan histories exactly
  reproducible across machines of different speeds.
* **Bounded retry** — a replan that raises ``DeploymentError`` is
  retried up to ``max_retries`` more times with exponential virtual
  backoff (``retry_backoff_s * 2**attempt`` added to the convergence
  time); if every attempt fails the old plan stays active and the
  batch is recorded as unconverged.

Everything interesting is emitted on the :mod:`repro.telemetry` bus as
``runtime.*`` events, so a journal-enabled run records the full story.
"""

from __future__ import annotations

import inspect
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.control.controller import Controller, RebindReport
from repro.control.migration import MatMove, compute_moves
from repro.core.hermes import Hermes
from repro.dataplane.program import Program
from repro.network.topology import Network
from repro.plan.artifact import DeploymentError, DeploymentPlan
from repro.plan.diff import PlanDiff, diff_plans
from repro.runtime.incremental import (
    IncrementalEscalation,
    IncrementalReplanner,
    same_workload as _same_workload,
)
from repro.runtime.patch import cheapest_patch
from repro.runtime.scenario import NetworkEvent, Scenario, batch_events
from repro.runtime.state import WorldState
from repro.runtime.store import PlanStore
from repro.telemetry import emit

#: A pluggable deployment function: ``(programs, network) -> plan``, or
#: ``(programs, network, old_plan) -> plan`` for functions that want
#: the previously active plan (None on the initial deployment) as a
#: warm start.  The reconciler inspects the signature and calls with
#: whichever arity the function declares.
DeployFn = Callable[..., DeploymentPlan]

#: The escalation rungs an :class:`EventOutcome` can record.
RUNG_INCREMENTAL = "incremental"
RUNG_FULL = "full"
RUNG_PATCH = "patch"
RUNG_NONE = "none"


@dataclass(frozen=True)
class ReconcilerPolicy:
    """The reconciler's knobs; see the module docstring for semantics."""

    replan_budget_s: Optional[float] = None
    max_retries: int = 2
    retry_backoff_s: float = 0.5
    debounce_s: float = 0.0
    incremental: bool = False
    max_blast_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.replan_budget_s is not None and self.replan_budget_s < 0:
            raise ValueError("replan_budget_s must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.debounce_s < 0:
            raise ValueError("debounce_s must be >= 0")
        if not 0.0 <= self.max_blast_fraction <= 1.0:
            raise ValueError("max_blast_fraction must be in [0, 1]")


@dataclass
class EventOutcome:
    """What one replan batch did to the deployment.

    ``transient_amax_bytes`` models the migration window where the old
    and new placements *coexist* (rules replayed, traffic still hitting
    both): each switch pair carries the sum of its old and new
    metadata bytes, and the transient ``A_max`` is the max over pairs
    of that sum — the worst per-packet overhead a flow can see while
    the migration is in flight.
    """

    batch_index: int
    time_s: float
    events: Tuple[NetworkEvent, ...]
    converged: bool
    attempts: int
    used_patch: bool
    rung: str = RUNG_FULL
    backoff_s: float = 0.0
    error: Optional[str] = None
    fingerprint_before: str = ""
    fingerprint_after: str = ""
    forced_moves: int = 0
    optimization_moves: int = 0
    rules_replayed: int = 0
    mats_dropped: int = 0
    mats_added: int = 0
    old_amax_bytes: int = 0
    new_amax_bytes: int = 0
    transient_amax_bytes: int = 0
    convergence_time_s: float = 0.0
    plan_diff: Optional[PlanDiff] = None

    @property
    def amax_delta_bytes(self) -> int:
        """Positive when the batch degraded the byte overhead."""
        return self.new_amax_bytes - self.old_amax_bytes

    @property
    def moves(self) -> int:
        return self.forced_moves + self.optimization_moves

    def to_dict(self) -> Dict[str, object]:
        return {
            "batch_index": self.batch_index,
            "time_s": self.time_s,
            "events": [e.to_dict() for e in self.events],
            "converged": self.converged,
            "attempts": self.attempts,
            "used_patch": self.used_patch,
            "rung": self.rung,
            "backoff_s": self.backoff_s,
            "error": self.error,
            "fingerprint_before": self.fingerprint_before,
            "fingerprint_after": self.fingerprint_after,
            "forced_moves": self.forced_moves,
            "optimization_moves": self.optimization_moves,
            "rules_replayed": self.rules_replayed,
            "mats_dropped": self.mats_dropped,
            "mats_added": self.mats_added,
            "old_amax_bytes": self.old_amax_bytes,
            "new_amax_bytes": self.new_amax_bytes,
            "transient_amax_bytes": self.transient_amax_bytes,
            "convergence_time_s": self.convergence_time_s,
        }


@dataclass
class ReconcileResult:
    """One scenario's full run: history, outcomes, and the controller."""

    scenario: Scenario
    store: PlanStore
    outcomes: List[EventOutcome] = field(default_factory=list)
    controller: Optional[Controller] = None

    @property
    def initial_fingerprint(self) -> str:
        return self.store.versions[0].fingerprint

    @property
    def final_plan(self) -> DeploymentPlan:
        latest = self.store.latest
        assert latest is not None
        return latest.plan

    def report(
        self,
        engine: Optional[str] = None,
        load: Optional[float] = None,
    ):
        """The disruption metrics (:class:`repro.runtime.DisruptionReport`).

        With an ``engine`` name the report's traffic-impact columns
        are populated by evaluating FCT inflation over the A_max
        trajectory (see :meth:`DisruptionReport.attach_traffic`).
        A ``load`` selects the contention engine's congestion model
        (queueing included in the inflation ratios).
        """
        from repro.runtime.report import DisruptionReport

        report = DisruptionReport.from_result(self)
        if engine or load is not None:
            report.attach_traffic(
                engine=engine or "contention", load=load
            )
        return report


def transient_amax(
    old_plan: DeploymentPlan, new_plan: DeploymentPlan
) -> int:
    """Worst per-pair bytes while both placements coexist.

    During the migration window each pair can carry its old *and* new
    metadata (rules replayed, traffic hitting both placements), so the
    per-pair overheads add.  When the plans are placement-identical no
    migration happens and there is no coexistence window — the value is
    simply the (common) steady-state ``A_max``.
    """
    if old_plan.placements == new_plan.placements:
        return max(
            old_plan.max_metadata_bytes(), new_plan.max_metadata_bytes()
        )
    old_pairs = old_plan.pair_metadata_bytes()
    new_pairs = new_plan.pair_metadata_bytes()
    pairs = set(old_pairs) | set(new_pairs)
    if not pairs:
        return 0
    return max(
        old_pairs.get(pair, 0) + new_pairs.get(pair, 0) for pair in pairs
    )


class Reconciler:
    """Replays a scenario against a live deployment.

    Args:
        programs: The initial workload.
        network: The base substrate (the scenario mutates a world view
            of it, never the object itself).
        policy: Replan policies; defaults to
            ``ReconcilerPolicy()`` (no budget, two retries, no
            debounce).
        deploy_fn: Deployment function ``(programs, network) -> plan``
            or ``(programs, network, old_plan) -> plan``; defaults to
            the Hermes heuristic.  Tests inject flaky or slow
            functions here to exercise the retry and timeout policies
            deterministically.  Three-argument functions additionally
            receive the previously active plan (None on the initial
            deployment) as warm-start material.
        prepare_fn: Optional hook called with the freshly bound
            :class:`Controller` after the initial deployment, before
            any event is replayed — the place to install runtime rules
            so migrations have something to replay (see
            :func:`seed_rules`).
        epsilon1 / epsilon2 / replicate_hubs: Forwarded to the default
            Hermes deployment when ``deploy_fn`` is not given.
    """

    def __init__(
        self,
        programs: Sequence[Program],
        network: Network,
        policy: Optional[ReconcilerPolicy] = None,
        deploy_fn: Optional[DeployFn] = None,
        prepare_fn: Optional[Callable[[Controller], None]] = None,
        epsilon1: float = float("inf"),
        epsilon2: Optional[int] = None,
        replicate_hubs=False,
    ) -> None:
        self.programs = list(programs)
        self.network = network
        self.policy = policy or ReconcilerPolicy()
        self.prepare_fn = prepare_fn
        if deploy_fn is None:
            hermes = Hermes(
                epsilon1=epsilon1,
                epsilon2=epsilon2,
                replicate_hubs=replicate_hubs,
            )
            deploy_fn = lambda progs, net: hermes.deploy(progs, net).plan  # noqa: E731
        self.deploy_fn = deploy_fn
        self._deploy_wants_old_plan = _accepts_old_plan(deploy_fn)
        self._incremental = (
            IncrementalReplanner(self.policy.max_blast_fraction)
            if self.policy.incremental
            else None
        )

    # ------------------------------------------------------------------
    def run(self, scenario: Scenario) -> ReconcileResult:
        """Replay every event batch; returns the full history."""
        world = WorldState(self.network, self.programs)
        store = PlanStore()
        emit(
            "runtime.scenario.start",
            scenario=scenario.name,
            seed=scenario.seed,
            events=len(scenario.events),
        )
        plan = self._call_deploy(
            world.current_programs(), world.current_network(), None
        )
        store.append(plan, time_s=0.0, reason="initial")
        controller = Controller(plan)
        if self.prepare_fn is not None:
            self.prepare_fn(controller)
        result = ReconcileResult(
            scenario=scenario, store=store, controller=controller
        )
        batches = batch_events(scenario.events, self.policy.debounce_s)
        for index, batch in enumerate(batches):
            outcome = self._reconcile_batch(
                index, batch, world, store, controller
            )
            result.outcomes.append(outcome)
        emit(
            "runtime.scenario.done",
            scenario=scenario.name,
            versions=len(store),
            digest=store.history_digest(),
        )
        return result

    # ------------------------------------------------------------------
    def _reconcile_batch(
        self,
        index: int,
        batch: List[NetworkEvent],
        world: WorldState,
        store: PlanStore,
        controller: Controller,
    ) -> EventOutcome:
        for event in batch:
            emit(
                "runtime.event",
                time_s=event.time_s,
                event_kind=event.kind,
                target=event.target,
            )
            world.apply(event)
        batch_time = batch[-1].time_s
        old_version = store.latest
        assert old_version is not None
        old_plan = old_version.plan
        emit(
            "runtime.replan.start",
            batch=index,
            time_s=batch_time,
            events=len(batch),
        )
        workload_changed = set(p.name for p in world.current_programs()) != {
            p.name for p in self.programs
        } or any(
            e.kind in ("workload_add", "workload_remove") for e in batch
        )
        new_plan, attempts, used_patch, elapsed_s, backoff_s, error, rung = (
            self._replan(world, old_plan)
        )
        outcome = EventOutcome(
            batch_index=index,
            time_s=batch_time,
            events=tuple(batch),
            converged=new_plan is not None,
            attempts=attempts,
            used_patch=used_patch,
            rung=rung,
            backoff_s=backoff_s,
            error=error,
            fingerprint_before=old_version.fingerprint,
            old_amax_bytes=old_plan.max_metadata_bytes(),
            convergence_time_s=elapsed_s + backoff_s,
        )
        if new_plan is None:
            emit(
                "runtime.replan.failed",
                batch=index,
                attempts=attempts,
                error=error,
            )
            outcome.fingerprint_after = old_version.fingerprint
            outcome.new_amax_bytes = outcome.old_amax_bytes
            outcome.transient_amax_bytes = outcome.old_amax_bytes
            return outcome

    # The old controller state feeds the replay accounting *before*
    # rebinding flushes it.
        installed = {
            name: controller.rules_to_replay(name)
            for name in old_plan.placements
            if name in new_plan.placements
        }
        vanished = world.vanished_hosts(old_plan.occupied_switches())
        moves, _unchanged = compute_moves(
            old_plan, new_plan, installed, vanished
        )
        rebind = controller.rebind(new_plan)
        version = store.append(new_plan, time_s=batch_time, reason=(
            "incremental"
            if rung == RUNG_INCREMENTAL
            else ("patch" if used_patch else "replan")
        ))
        self._fill_outcome(outcome, old_plan, new_plan, moves, rebind)
        outcome.fingerprint_after = version.fingerprint
        emit(
            "runtime.rebind",
            batch=index,
            replayed_rules=rebind.replayed_rules,
            moved=len(rebind.moved),
            dropped=len(rebind.dropped),
            added=len(rebind.added),
        )
        emit(
            "runtime.converged",
            batch=index,
            version=version.version,
            fingerprint=version.fingerprint,
            amax_bytes=outcome.new_amax_bytes,
            forced_moves=outcome.forced_moves,
            optimization_moves=outcome.optimization_moves,
            used_patch=used_patch,
            rung=rung,
            workload_changed=workload_changed,
        )
        return outcome

    @staticmethod
    def _fill_outcome(
        outcome: EventOutcome,
        old_plan: DeploymentPlan,
        new_plan: DeploymentPlan,
        moves: List[MatMove],
        rebind: RebindReport,
    ) -> None:
        outcome.forced_moves = sum(1 for m in moves if m.forced)
        outcome.optimization_moves = len(moves) - outcome.forced_moves
        outcome.rules_replayed = sum(m.rules_to_replay for m in moves)
        outcome.mats_dropped = len(rebind.dropped)
        outcome.mats_added = len(rebind.added)
        outcome.new_amax_bytes = new_plan.max_metadata_bytes()
        outcome.transient_amax_bytes = transient_amax(old_plan, new_plan)
        outcome.plan_diff = diff_plans(old_plan, new_plan)

    # ------------------------------------------------------------------
    def _call_deploy(
        self,
        programs: Sequence[Program],
        network: Network,
        old_plan: Optional[DeploymentPlan],
    ) -> DeploymentPlan:
        if self._deploy_wants_old_plan:
            return self.deploy_fn(programs, network, old_plan)
        return self.deploy_fn(programs, network)

    # ------------------------------------------------------------------
    def _replan(
        self, world: WorldState, old_plan: DeploymentPlan
    ) -> Tuple[
        Optional[DeploymentPlan], int, bool, float, float, Optional[str], str
    ]:
        """One policy-governed replan down the escalation ladder.

        Returns ``(plan, attempts, used_patch, elapsed_s, backoff_s,
        error, rung)``; ``plan`` is None when every attempt failed, in
        which case ``rung`` is :data:`RUNG_NONE`.
        """
        policy = self.policy
        programs = world.current_programs()
        network = world.current_network()
        workload_unchanged = _same_workload(old_plan, programs)

        # Rung 1: warm incremental repair.  Escalation is decided by
        # structure (workload, blast radius, feasibility) — never by
        # wall-clock — so warm histories replay deterministically.
        if self._incremental is not None:
            start = _time.perf_counter()
            try:
                plan, _mode = self._incremental.replan(
                    programs, network, old_plan
                )
            except IncrementalEscalation as exc:
                emit(
                    "runtime.replan.escalate",
                    reason=exc.reason,
                    error=str(exc),
                )
            else:
                elapsed = _time.perf_counter() - start
                return plan, 1, False, elapsed, 0.0, None, RUNG_INCREMENTAL

        # Rung 2: cold full replan under the retry policy.
        attempts = 0
        backoff_s = 0.0
        last_error: Optional[str] = None
        while attempts <= policy.max_retries:
            attempts += 1
            start = _time.perf_counter()
            try:
                plan = self._call_deploy(programs, network, old_plan)
            except DeploymentError as exc:
                last_error = str(exc)
                emit(
                    "runtime.replan.retry",
                    attempt=attempts,
                    error=last_error,
                )
                if attempts <= policy.max_retries:
                    backoff_s += policy.retry_backoff_s * (
                        2 ** (attempts - 1)
                    )
                continue
            elapsed = _time.perf_counter() - start
            # Rung 3: the over-budget full plan is discarded for the
            # cheapest feasible local patch.
            if (
                policy.replan_budget_s is not None
                and elapsed > policy.replan_budget_s
                and workload_unchanged
            ):
                emit(
                    "runtime.replan.fallback",
                    elapsed_s=elapsed,
                    budget_s=policy.replan_budget_s,
                )
                try:
                    patched = cheapest_patch(old_plan, network)
                except DeploymentError as exc:
                    # The patch found no feasible local repair; the
                    # over-budget full replan is still a valid plan, so
                    # keep it rather than fail the batch.
                    emit(
                        "runtime.replan.patch_failed", error=str(exc)
                    )
                    return (
                        plan, attempts, False, elapsed, backoff_s, None,
                        RUNG_FULL,
                    )
                return (
                    patched, attempts, True, elapsed, backoff_s, None,
                    RUNG_PATCH,
                )
            return plan, attempts, False, elapsed, backoff_s, None, RUNG_FULL
        return None, attempts, False, 0.0, backoff_s, last_error, RUNG_NONE


def seed_rules(
    controller: Controller, per_mat: int = 4
) -> int:
    """Install deterministic runtime rules into every deployed table.

    The reproduction's program models carry empty baseline rule sets,
    so without this a migration replays nothing and the disruption
    report under-counts.  For each MAT with at least one match field
    and one action, installs up to ``per_mat`` exact-match rules (or
    fewer if capacity is tight).  Returns the total installed.

    Designed as a :class:`Reconciler` ``prepare_fn``:
    ``Reconciler(..., prepare_fn=seed_rules)``.
    """
    from repro.dataplane.rules import MatchKind, MatchSpec, Rule

    installed = 0
    for mat_name in sorted(controller.plan.placements):
        mat = controller.plan.tdg.node(mat_name)
        fields = sorted(mat.match_fields.names)
        actions = sorted(a.name for a in mat.actions)
        if not fields or not actions:
            continue
        handle = controller.table(mat_name)
        count = min(per_mat, handle.free_entries)
        for value in range(count):
            controller.install_rule(
                mat_name,
                Rule(
                    matches=(
                        MatchSpec(fields[0], MatchKind.EXACT, value),
                    ),
                    action_name=actions[0],
                ),
            )
            installed += 1
    return installed


def _accepts_old_plan(deploy_fn: DeployFn) -> bool:
    """Whether ``deploy_fn`` declares a third (old-plan) parameter.

    Two-argument functions predate the warm-start ladder and stay
    supported; unintrospectable callables get the legacy arity.
    """
    try:
        parameters = inspect.signature(deploy_fn).parameters
    except (TypeError, ValueError):
        return False
    positional = [
        p
        for p in parameters.values()
        if p.kind
        in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        )
    ]
    if any(
        p.kind == inspect.Parameter.VAR_POSITIONAL
        for p in parameters.values()
    ):
        return True
    return len(positional) >= 3
