"""Invariants tying the solver's telemetry stream to its Solution.

The branch & bound solver emits ``solver.lp`` / ``solver.node`` /
``solver.incumbent`` / ``solver.prune`` / ``solver.done`` events on the
:mod:`repro.telemetry` bus.  These tests pin the contract the journal
relies on: event counts match the Solution's own counters exactly, the
incumbent gap trajectory is monotone non-increasing, and ``gap`` is
consistently ``0.0`` (never ``None``) on OPTIMAL.
"""

import pytest

from repro.milp.branch_bound import (
    SOLVER_PROFILES,
    BranchBoundSolver,
    solve,
)
from repro.milp.expr import LinExpr
from repro.milp.model import Model
from repro.milp.solution import Solution, SolveStatus
from repro.telemetry import Recorder, attached, emit


def knapsack(n=8, seed=3):
    """A deterministic 0/1 knapsack that forces real branching."""
    import random

    rng = random.Random(seed)
    m = Model()
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    weights = [rng.randint(2, 9) for _ in range(n)]
    values = [rng.randint(5, 20) for _ in range(n)]
    m.add_constr(
        LinExpr.total(w * x for w, x in zip(weights, xs))
        <= sum(weights) // 2
    )
    m.maximize(LinExpr.total(v * x for v, x in zip(values, xs)))
    return m


def covering(n=6):
    """An integer covering model with a fractional LP relaxation."""
    m = Model()
    xs = [m.add_integer(f"y{i}", 0, 5) for i in range(n)]
    for i in range(n - 1):
        m.add_constr(2 * xs[i] + 3 * xs[i + 1] >= 7)
    m.minimize(LinExpr.total(xs))
    return m


def solve_recorded(model, **solver_kwargs):
    rec = Recorder()
    with attached(rec):
        solution = BranchBoundSolver(**solver_kwargs).solve(model)
    return solution, rec


class TestEventCounts:
    @pytest.mark.parametrize(
        "model", [knapsack(), covering()], ids=["knapsack", "covering"]
    )
    def test_counts_match_solution_counters(self, model):
        solution, rec = solve_recorded(model)
        assert rec.count("solver.lp") == solution.lp_solves
        assert rec.count("solver.node") == solution.nodes_explored
        assert solution.lp_solves > 0
        assert solution.nodes_explored > 0

    def test_done_event_mirrors_summary(self):
        solution, rec = solve_recorded(knapsack())
        done = rec.of_kind("solver.done")
        assert len(done) == 1
        payload = {k: v for k, v in done[0].items() if k != "kind"}
        assert payload == solution.summary()

    def test_incumbent_events_cover_final_objective(self):
        solution, rec = solve_recorded(knapsack())
        incumbents = rec.of_kind("solver.incumbent")
        assert incumbents, "an OPTIMAL solve must report an incumbent"
        assert incumbents[-1]["objective"] == pytest.approx(
            solution.objective
        )

    def test_no_events_without_a_sink(self):
        # emit() with no sink attached is a silent no-op: solving
        # outside `attached` must neither fail nor leak events into a
        # later-attached recorder.
        solve(knapsack())
        rec = Recorder()
        with attached(rec):
            emit("sentinel")
        assert [e["kind"] for e in rec.events] == ["sentinel"]


class TestGapTrajectory:
    @pytest.mark.parametrize("profile", SOLVER_PROFILES)
    @pytest.mark.parametrize(
        "model", [knapsack(), covering()], ids=["knapsack", "covering"]
    )
    def test_gap_monotone_non_increasing(self, model, profile):
        _, rec = solve_recorded(model, profile=profile)
        gaps = [
            e["gap"]
            for e in rec.of_kind("solver.incumbent")
            if e["gap"] is not None
        ]
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(gaps, gaps[1:])
        )
        assert all(g >= -1e-9 for g in gaps)

    @pytest.mark.parametrize("profile", SOLVER_PROFILES)
    def test_gap_monotone_with_near_zero_incumbent(self, profile):
        # The regression this pins: an incumbent objective approaching
        # zero shrinks the relative-gap denominator, which used to
        # bounce the reported gap *upward* between incumbents even
        # though the proven gap only shrinks.  Minimizing onto a
        # near-zero optimum exercises exactly that denominator path.
        m = Model()
        xs = [m.add_integer(f"x{i}", -2, 2) for i in range(5)]
        m.add_constr(LinExpr.total(xs) >= 0)
        for i in range(4):
            m.add_constr(2 * xs[i] + 3 * xs[i + 1] >= 1)
        m.minimize(LinExpr.total(xs))
        _, rec = solve_recorded(m, profile=profile)
        gaps = [
            e["gap"]
            for e in rec.of_kind("solver.incumbent")
            if e["gap"] is not None
        ]
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(gaps, gaps[1:])
        )
        assert all(g >= -1e-9 for g in gaps)


class TestProfileTelemetry:
    """The fast profile's extra event stream, and classic's absence of it."""

    @pytest.mark.parametrize(
        "model", [knapsack(), covering()], ids=["knapsack", "covering"]
    )
    def test_fast_emits_presolve_and_branching(self, model):
        solution, rec = solve_recorded(model, profile="fast")
        assert rec.count("solver.presolve") == 1
        assert rec.count("solver.branching") >= 1
        assert rec.count("solver.heuristic") >= 1
        # The optimization layer must not break the count contract.
        assert rec.count("solver.lp") == solution.lp_solves
        assert rec.count("solver.node") == solution.nodes_explored

    @pytest.mark.parametrize(
        "model", [knapsack(), covering()], ids=["knapsack", "covering"]
    )
    def test_classic_stream_is_unchanged(self, model):
        _, rec = solve_recorded(model, profile="classic")
        assert rec.count("solver.presolve") == 0
        assert rec.count("solver.branching") == 0
        assert rec.count("solver.heuristic") == 0
        for event in rec.of_kind("solver.incumbent"):
            assert event["source"] != "heuristic"

    @pytest.mark.parametrize(
        "model", [knapsack(), covering()], ids=["knapsack", "covering"]
    )
    def test_fast_heuristic_incumbents_carry_source(self, model):
        _, rec = solve_recorded(model, profile="fast")
        heuristic_incumbents = [
            e
            for e in rec.of_kind("solver.incumbent")
            if e["source"] == "heuristic"
        ]
        assert heuristic_incumbents, (
            "these models seed their incumbent heuristically"
        )
        for event in heuristic_incumbents:
            assert event["heuristic"] in ("diving", "rounding")
        # Classic's heuristic sources never leak into the fast stream.
        sources = {e["source"] for e in rec.of_kind("solver.incumbent")}
        assert sources.isdisjoint({"root_dive", "dive", "rounding"})

    def test_heuristic_events_report_objective_on_success(self):
        _, rec = solve_recorded(covering(), profile="fast")
        for event in rec.of_kind("solver.heuristic"):
            assert event["heuristic"] in ("diving", "rounding")
            if event["success"]:
                assert isinstance(event["objective"], float)
            else:
                assert event["objective"] is None

    def test_branching_events_name_their_rule(self):
        _, rec = solve_recorded(covering(), profile="fast")
        rules = [e["rule"] for e in rec.of_kind("solver.branching")]
        assert set(rules) <= {"most_fractional", "pseudo_cost"}
        # The first decision has no pseudo-cost observations yet; once
        # branching data accumulates the learned rule takes over.
        assert rules[0] == "most_fractional"
        assert "pseudo_cost" in rules

    def test_presolve_solved_model_emits_incumbent(self):
        m = Model()
        x = m.add_integer("x", 2, 2)
        y = m.add_integer("y", 3, 3)
        m.add_constr(x + y <= 5)
        m.minimize(x + y)
        solution, rec = solve_recorded(m, profile="fast")
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(5.0)
        assert solution.lp_solves == 0
        (incumbent,) = rec.of_kind("solver.incumbent")
        assert incumbent["source"] == "presolve"
        assert incumbent["gap"] == 0.0


class TestGapInvariant:
    @pytest.mark.parametrize(
        "model",
        [knapsack(), knapsack(n=5, seed=9), covering()],
        ids=["knapsack8", "knapsack5", "covering"],
    )
    def test_optimal_gap_is_zero_not_none(self, model):
        s = solve(model)
        assert s.status is SolveStatus.OPTIMAL
        assert s.gap == 0.0
        assert s.gap is not None

    def test_trivial_lp_optimal_gap_is_zero(self):
        m = Model()
        x = m.add_var("x", 0, 10)
        m.add_constr(x >= 2.5)
        m.minimize(x)
        s = solve(m)
        assert s.status is SolveStatus.OPTIMAL
        assert s.gap == 0.0

    def test_time_limited_feasible_has_float_gap(self):
        # A feasible warm start plus an expired budget yields FEASIBLE
        # with a real (non-None) bound gap.
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        m.add_constr(LinExpr.total(xs) >= 3)
        m.maximize(LinExpr.total((i + 1) * x for i, x in enumerate(xs)))
        warm = {x: 1.0 for x in xs}
        s = BranchBoundSolver(time_limit_s=1e-9).solve(m, initial=warm)
        assert s.status in (SolveStatus.FEASIBLE, SolveStatus.TIME_LIMIT)
        assert s.objective is not None
        if s.gap is not None:
            assert isinstance(s.gap, float)
            assert s.gap >= 0.0

    def test_infeasible_gap_is_none(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constr(x >= 2)
        s = solve(m)
        assert s.status is SolveStatus.INFEASIBLE
        assert s.gap is None

    def test_post_init_normalizes_optimal_gap(self):
        # The invariant holds at construction, not just via the solver.
        s = Solution(status=SolveStatus.OPTIMAL, objective=1.0, gap=None)
        assert s.gap == 0.0
