"""Fig. 2: impact of the per-packet byte overhead on FCT and goodput.

Reproduces the §II-B motivation experiment: a flow of fixed-size
packets crosses five switch hops; metadata of 28-108 bytes is added to
every packet; FCT and goodput are reported normalized against the
metadata-free run.  Packet sizes follow the paper: 512 B (DCN traffic),
1024 B (RDMA MTU) and 1500 B (Ethernet MTU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.experiments.harness import E2E_HOPS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentRunner
from repro.experiments.reporting import Table
from repro.simulation.engine import get_engine
from repro.simulation.packet import BASE_HEADER_BYTES
from repro.simulation.spec import SimulationSpec

#: The paper's sweep: 28 to 108 bytes.
OVERHEAD_SWEEP = (28, 48, 68, 88, 108)
PACKET_SIZES = (512, 1024, 1500)


@dataclass
class Fig2Row:
    """One point of Fig. 2."""

    packet_size: int
    overhead_bytes: int
    fct_ratio: float
    goodput_ratio: float


def _size_rows(
    job: Tuple[int, Tuple[int, ...], int, int, bool]
) -> List[Fig2Row]:
    """The sweep for one packet size (module-level: pool-safe).

    One :class:`SimulationSpec` per packet size — a flow per overhead
    on the shared uniform path — dispatched to the exact DES or the
    analytic engine.  The differential tests pin the analytic numbers
    bit-for-bit to the legacy hand-built-flow loop.
    """
    packet_size, overheads, message_bytes, hops, use_des = job
    payload = max(packet_size - BASE_HEADER_BYTES, 1)
    spec = SimulationSpec.uniform_sweep(
        overheads,
        packet_payload_bytes=payload,
        hops=hops,
        message_bytes=message_bytes,
    )
    result = get_engine("exact" if use_des else "analytic").evaluate(spec)
    return [
        Fig2Row(
            packet_size=packet_size,
            overhead_bytes=overhead,
            fct_ratio=result.fct_ratios[i],
            goodput_ratio=result.goodput_ratios[i],
        )
        for i, overhead in enumerate(overheads)
    ]


def run(
    overheads: Sequence[int] = OVERHEAD_SWEEP,
    packet_sizes: Sequence[int] = PACKET_SIZES,
    message_bytes: int = 1_000_000,
    hops: int = E2E_HOPS,
    use_des: bool = False,
    runner: Optional["ExperimentRunner"] = None,
) -> List[Fig2Row]:
    """Run the sweep; ``use_des`` switches from the closed form to the
    packet-level discrete-event simulator (slower, identical shape).
    A parallel ``runner`` fans the per-packet-size series out across
    workers (worthwhile in DES mode)."""
    jobs = [
        (packet_size, tuple(overheads), message_bytes, hops, use_des)
        for packet_size in packet_sizes
    ]
    if runner is not None:
        per_size = runner.map(_size_rows, jobs)
    else:
        per_size = [_size_rows(job) for job in jobs]
    return [row for rows in per_size for row in rows]


def render(rows: List[Fig2Row]) -> str:
    """The two Fig. 2 tables (what ``main`` prints; the suite's
    ``fig2`` aggregator shares it).  Overheads and packet sizes are
    derived from the rows, so reduced sweeps render consistently."""
    overheads = sorted({r.overhead_bytes for r in rows})
    packet_sizes = sorted({r.packet_size for r in rows})
    fct = Table(
        "Fig. 2(a): normalized FCT vs per-packet overhead",
        ["overhead(B)"] + [f"{s}B pkts" for s in packet_sizes],
    )
    goodput = Table(
        "Fig. 2(b): normalized goodput vs per-packet overhead",
        ["overhead(B)"] + [f"{s}B pkts" for s in packet_sizes],
    )
    for overhead in overheads:
        per_size = [r for r in rows if r.overhead_bytes == overhead]
        per_size.sort(key=lambda r: r.packet_size)
        fct.add_row([overhead] + [r.fct_ratio for r in per_size])
        goodput.add_row([overhead] + [r.goodput_ratio for r in per_size])
    return fct.render() + "\n\n" + goodput.render()


def main(runner: Optional["ExperimentRunner"] = None) -> str:
    """Print the Fig. 2 series as two tables (FCT and goodput)."""
    output = render(run(runner=runner))
    print(output)
    return output


if __name__ == "__main__":
    main()
