"""Per-run JSONL journal.

Every experiment run through the runner can write a journal: one JSON
object per line, in deterministic (submission) order regardless of how
many workers executed the cells.  The journal interleaves three event
layers:

* runner events — ``cell.start`` / ``cell.done`` / ``cache.hit`` with
  the cell index, framework and sweep tag;
* deploy events — ``deploy.start`` / ``deploy.done`` emitted by
  :meth:`repro.baselines.base.DeploymentFramework.deploy`;
* solver events — ``solver.lp`` / ``solver.node`` / ``solver.prune`` /
  ``solver.incumbent`` / ``solver.done`` emitted by
  :class:`repro.milp.branch_bound.BranchBoundSolver`.

Because events stream through :mod:`repro.telemetry`, journal lines for
a cell executed in a worker process are recorded there and serialized
by the parent, so the file is complete and ordered even for parallel
runs.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.telemetry import Event


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of event payloads to strict JSON."""
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return repr(value)


class JournalWriter:
    """Append-only JSONL journal with sequence numbering."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self._seq = 0

    def write(self, event: Event) -> None:
        line = {"seq": self._seq}
        line.update({k: _jsonable(v) for k, v in event.items()})
        self._fh.write(json.dumps(line, sort_keys=False) + "\n")
        self._seq += 1

    def write_all(self, events: Iterable[Event]) -> None:
        for event in events:
            self.write(event)

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL journal back into event dicts (empty if absent)."""
    p = Path(path)
    if not p.exists():
        return []
    events: List[Dict[str, Any]] = []
    with p.open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def count_events(
    events: Iterable[Dict[str, Any]],
    kind: str,
    cell: Optional[int] = None,
) -> int:
    """How many events of ``kind`` (optionally for one cell index)."""
    return sum(
        1
        for e in events
        if e.get("kind") == kind and (cell is None or e.get("cell") == cell)
    )
