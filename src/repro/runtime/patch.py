"""The reconciler's timeout fallback: a cheapest feasible local patch.

The normal replan path re-runs the global heuristic — deliberately, as
:mod:`repro.control.migration` explains, because a local patch can
strand heavy-metadata edges across the patch boundary and lose the
byte-overhead guarantee.  But a reconciler under a hard time budget
needs *some* valid plan now; :func:`cheapest_patch` is that degraded
mode.  It keeps every surviving placement exactly where it is, re-homes
only the orphaned MATs (those whose old host vanished or stopped being
able to host), greedily choosing for each orphan the feasible
(switch, stages) spot that adds the fewest cross-switch bytes, and
rebuilds the routing over latency-shortest paths on the current
network.  The result validates against every paper constraint; its
``A_max`` is merely not guaranteed to be minimal — exactly the
trade the time budget asked for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.paths import PathEnumerator
from repro.network.switch import Switch
from repro.network.topology import Network
from repro.plan.artifact import (
    DeploymentError,
    DeploymentPlan,
    MatPlacement,
)
from repro.tdg.graph import Tdg


def cheapest_patch(
    old_plan: DeploymentPlan,
    network: Network,
    paths: Optional[PathEnumerator] = None,
) -> DeploymentPlan:
    """Re-home only the MATs whose old host can no longer serve.

    Args:
        old_plan: The currently active plan (its TDG must still be the
            live workload; the caller falls back to a full replan when
            the workload changed).
        network: The current substrate.
        paths: Optional shared path enumerator for ``network``.

    Returns:
        A validated plan with minimal placement churn.

    Raises:
        DeploymentError: If some orphan fits on no surviving switch.
    """
    tdg = old_plan.tdg
    paths = paths or PathEnumerator(network)
    hostable = {
        s.name: s for s in network.programmable_switches()
    }
    if not hostable:
        raise DeploymentError("patch: no programmable switches survive")

    surviving: Dict[str, MatPlacement] = {}
    orphans: List[str] = []
    for name, placement in old_plan.placements.items():
        host = hostable.get(placement.switch)
        if host is not None and placement.last_stage <= host.num_stages:
            surviving[name] = placement
        else:
            orphans.append(name)
    if not orphans:
        # Nothing to re-home; only the routing may need repair.
        return _routed(tdg, network, surviving, paths)

    free = _free_capacity(tdg, network, hostable, surviving)
    placements = dict(surviving)
    for name in tdg.topological_order():
        if name not in set(orphans):
            continue
        placements[name] = _place_orphan(
            tdg, name, hostable, free, placements, paths
        )
    plan = _routed(tdg, network, placements, paths)
    plan.validate()
    return plan


def _free_capacity(
    tdg: Tdg,
    network: Network,
    hostable: Dict[str, Switch],
    surviving: Dict[str, MatPlacement],
) -> Dict[str, List[float]]:
    """Per-switch, per-stage capacity left after surviving placements."""
    free = {
        name: [switch.stage_capacity] * switch.num_stages
        for name, switch in hostable.items()
    }
    for placement in surviving.values():
        share = tdg.node(placement.mat_name).resource_demand / len(
            placement.stages
        )
        stages = free[placement.switch]
        for stage in placement.stages:
            stages[stage - 1] -= share
    return free


def _place_orphan(
    tdg: Tdg,
    name: str,
    hostable: Dict[str, Switch],
    free: Dict[str, List[float]],
    placements: Dict[str, MatPlacement],
    paths: PathEnumerator,
    tol: float = 1e-9,
) -> MatPlacement:
    """The cheapest feasible spot for one orphaned MAT.

    Candidates are scored by the metadata bytes the placement sends
    across switch boundaries (lower is cheaper); reachability of every
    already-placed neighbor is required so routing stays closed.  Ties
    break on the switch name, keeping the patch deterministic.
    """
    mat = tdg.node(name)
    best: Optional[Tuple[int, str, MatPlacement]] = None
    for switch_name in sorted(hostable):
        switch = hostable[switch_name]
        window = _stage_window(tdg, name, switch_name, switch, placements)
        if window is None:
            continue
        lo, hi = window
        stages = _fit_stages(
            mat.resource_demand, free[switch_name], lo, hi, tol
        )
        if stages is None:
            continue
        cost = _cross_bytes(tdg, name, switch_name, placements)
        if not _neighbors_reachable(tdg, name, switch_name, placements, paths):
            continue
        candidate = MatPlacement(name, switch_name, stages)
        if best is None or (cost, switch_name) < (best[0], best[1]):
            best = (cost, switch_name, candidate)
    if best is None:
        raise DeploymentError(
            f"patch: orphaned MAT {name!r} fits on no surviving switch"
        )
    placement = best[2]
    share = mat.resource_demand / len(placement.stages)
    for stage in placement.stages:
        free[placement.switch][stage - 1] -= share
    return placement


def _stage_window(
    tdg: Tdg,
    name: str,
    switch_name: str,
    switch: Switch,
    placements: Dict[str, MatPlacement],
) -> Optional[Tuple[int, int]]:
    """Stage bounds (lo, hi) honoring same-switch dependency order."""
    lo, hi = 1, switch.num_stages
    for pred in tdg.predecessors(name):
        placement = placements.get(pred)
        if placement is not None and placement.switch == switch_name:
            lo = max(lo, placement.last_stage + 1)
    for succ in tdg.successors(name):
        placement = placements.get(succ)
        if placement is not None and placement.switch == switch_name:
            hi = min(hi, placement.first_stage - 1)
    if lo > hi:
        return None
    return lo, hi


def _fit_stages(
    demand: float,
    free: List[float],
    lo: int,
    hi: int,
    tol: float,
) -> Optional[Tuple[int, ...]]:
    """Smallest consecutive stage window in [lo, hi] holding ``demand``.

    The demand splits evenly across the window (matching
    :func:`repro.core.stages.assign_stages` semantics); the earliest
    smallest window wins for determinism.
    """
    for width in range(1, hi - lo + 2):
        share = demand / width
        for start in range(lo, hi - width + 2):
            if all(
                free[stage - 1] + tol >= share
                for stage in range(start, start + width)
            ):
                return tuple(range(start, start + width))
    return None


def _cross_bytes(
    tdg: Tdg,
    name: str,
    switch_name: str,
    placements: Dict[str, MatPlacement],
) -> int:
    """Metadata bytes this placement sends across switch boundaries."""
    total = 0
    for edge in tdg.in_edges(name):
        placement = placements.get(edge.upstream)
        if placement is not None and placement.switch != switch_name:
            total += edge.metadata_bytes
    for edge in tdg.out_edges(name):
        placement = placements.get(edge.downstream)
        if placement is not None and placement.switch != switch_name:
            total += edge.metadata_bytes
    return total


def _neighbors_reachable(
    tdg: Tdg,
    name: str,
    switch_name: str,
    placements: Dict[str, MatPlacement],
    paths: PathEnumerator,
) -> bool:
    for pred in tdg.predecessors(name):
        placement = placements.get(pred)
        if placement is not None and not paths.reachable(
            placement.switch, switch_name
        ):
            return False
    for succ in tdg.successors(name):
        placement = placements.get(succ)
        if placement is not None and not paths.reachable(
            switch_name, placement.switch
        ):
            return False
    return True


def _routed(
    tdg: Tdg,
    network: Network,
    placements: Dict[str, MatPlacement],
    paths: PathEnumerator,
) -> DeploymentPlan:
    """A plan over ``placements`` routed on latency-shortest paths."""
    plan = DeploymentPlan(tdg, network, placements)
    routing = {}
    for pair in plan.pair_metadata_bytes():
        path = paths.shortest(*pair)
        if path is None:
            raise DeploymentError(
                f"patch: communicating pair {pair} is disconnected"
            )
        routing[pair] = path
    return plan.with_routing(routing)
