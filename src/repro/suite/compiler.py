"""Compile a :class:`~repro.suite.spec.SuiteSpec` into work and run it.

The compiler is the bridge between the declarative spec layer and the
existing execution machinery: deployment suites become flat
:class:`~repro.experiments.runner.Cell` lists for
:func:`~repro.experiments.runner.execute_cells` (content-addressed
cache keys and all), churn suites drive the Exp#7 reconciler corpus,
resource/overhead/traffic suites fan their sweep jobs through
``runner.map``.  Cell order is workload -> topology -> framework,
which reproduces the historical exp1/exp2/exp5 loops exactly (the
golden tests lock this).

``run_suite`` is the one entry point: CLI (``repro suite run``),
server (``suite_run`` op) and tests all share it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.suite.report import SuiteReport
from repro.suite.spec import SuiteSpec

from repro.baselines import (
    Ffl,
    Ffls,
    Flightplan,
    HermesHeuristic,
    HermesOptimal,
    MinStage,
    Mtp,
    P4All,
    Sonata,
    Speed,
)

#: Spec-name -> framework class; axis kwargs pass straight through
#: the constructor.
FRAMEWORK_REGISTRY = {
    "minstage": MinStage,
    "sonata": Sonata,
    "speed": Speed,
    "mtp": Mtp,
    "flightplan": Flightplan,
    "p4all": P4All,
    "ffl": Ffl,
    "ffls": Ffls,
    "hermes": HermesHeuristic,
    "hermes-optimal": HermesOptimal,
}


def build_frameworks(spec: SuiteSpec) -> List[Any]:
    """Instantiate the frameworks axis (default: the paper set)."""
    from repro.experiments.harness import default_frameworks

    axis = spec.axes.get("frameworks")
    if axis is None:
        return default_frameworks()
    if isinstance(axis, dict):
        kwargs = {k: v for k, v in axis.items() if k != "set"}
        return default_frameworks(**kwargs)
    return [
        FRAMEWORK_REGISTRY[name](**kwargs) for name, kwargs in axis
    ]


def deployment_cells(
    spec: SuiteSpec,
    frameworks_override: Optional[Sequence[Any]] = None,
) -> List[Any]:
    """The resolved cell matrix of a ``deployment`` suite.

    Workloads and topologies materialize once per unique spec string;
    frameworks are built once and shared across cells (identical to
    the historical frameworks-passed path — the runner's cache key is
    content-addressed, so sharing instances cannot change results).
    """
    from repro.cli import parse_workload
    from repro.experiments.runner import Cell
    from repro.network.catalog import resolve

    if spec.kind != "deployment":
        raise ValueError(
            f"deployment_cells needs a deployment suite, got "
            f"{spec.kind!r}"
        )
    params = spec.params
    frameworks = (
        list(frameworks_override)
        if frameworks_override is not None
        else build_frameworks(spec)
    )
    workloads = [
        (entry, tuple(parse_workload(entry.spec)))
        for entry in spec.axes["workloads"]
    ]
    topologies = [
        (entry, resolve(entry.spec, seed=params["seed"]))
        for entry in spec.axes["topologies"]
    ]
    tag_axis = params["tag_axis"]
    cells: List[Any] = []
    for w_entry, programs in workloads:
        for t_entry, network in topologies:
            tag = w_entry.tag if tag_axis == "workload" else t_entry.tag
            for framework in frameworks:
                cells.append(
                    Cell(
                        programs=programs,
                        network=network,
                        framework=framework,
                        packet_payload_bytes=params[
                            "packet_payload_bytes"
                        ],
                        with_end_to_end=params["with_end_to_end"],
                        tag=tag,
                    )
                )
    return cells


def cell_plan(spec: SuiteSpec) -> List[Dict[str, Any]]:
    """The cell coordinates a suite would run, without materializing
    programs or networks — what ``repro suite validate`` prints."""
    if spec.kind == "deployment":
        frameworks = build_frameworks(spec)
        coords = []
        for w in spec.axes["workloads"]:
            for t in spec.axes["topologies"]:
                for f in frameworks:
                    coords.append(
                        {
                            "workload": w.tag,
                            "topology": t.tag,
                            "framework": f.name,
                        }
                    )
        return coords
    if spec.kind == "churn":
        return [{"seed": s} for s in spec.axes["seeds"]]
    if spec.kind == "resources":
        return [
            {"framework": f.name}
            for f in build_frameworks(spec)
        ]
    if spec.kind == "overhead_sweep":
        return [
            {"packet_size": p, "overhead": o}
            for p in spec.axes["packet_sizes"]
            for o in spec.axes["overheads"]
        ]
    return [
        {"hour": h, "overhead": o}
        for h in spec.axes["hours"]
        for o in spec.axes["overheads"]
    ]


def _traffic_point(job: Tuple) -> Dict[str, Any]:
    """Evaluate one (hour, overhead) traffic cell (pool-safe)."""
    (hour, overhead, flows, payload, message_bytes, hops,
     load_doc) = job
    from repro.simulation.engine import get_engine
    from repro.simulation.spec import DiurnalLoad, SimulationSpec

    load = DiurnalLoad.from_dict(dict(load_doc)).load_at(hour)
    sim = SimulationSpec.uniform(
        overhead,
        packet_payload_bytes=payload,
        hops=hops,
        message_bytes=message_bytes,
        flows=flows,
        offered_load=load,
    )
    result = get_engine("contention").evaluate(sim)
    return {
        "hour": hour,
        "overhead": overhead,
        "load": load,
        "fct_ratio": result.fct_ratio,
        "goodput_ratio": result.goodput_ratio,
        "mean_wait_us": result.mean_wait_us,
        "max_wait_us": result.max_wait_us,
        "contended_fraction": result.contended_fraction,
    }


def run_suite(
    spec: SuiteSpec,
    runner: Optional[Any] = None,
    frameworks_override: Optional[Sequence[Any]] = None,
) -> SuiteReport:
    """Run a suite end to end and aggregate it into a report.

    ``frameworks_override`` substitutes the instantiated frameworks of
    a deployment suite (the differential tests use it to run shipped
    specs at reduced cost); everything else comes from the spec.
    """
    from repro.suite.aggregate import AGGREGATORS, default_aggregators

    cells_meta: List[Dict[str, Any]] = []
    if spec.kind != "deployment":
        telemetry.emit(
            "suite.start", suite=spec.name, suite_kind=spec.kind,
            cells=len(cell_plan(spec)),
        )
    if spec.kind == "deployment":
        from repro.experiments.runner import execute_cells

        cells = deployment_cells(spec, frameworks_override)
        telemetry.emit(
            "suite.start", suite=spec.name, suite_kind=spec.kind,
            cells=len(cells),
        )
        results = execute_cells(cells, runner)
        outcome: Any = results
        workloads = spec.axes["workloads"]
        topologies = spec.axes["topologies"]
        per_point = len(cells) // (len(workloads) * len(topologies))
        coords = [
            {"workload": w.tag, "topology": t.tag}
            for w in workloads
            for t in topologies
            for _ in range(per_point)
        ]
        for i, (coord, res) in enumerate(zip(coords, results)):
            meta = dict(coord)
            meta.update(
                framework=res.cell.framework.name,
                cell=i,
                cached=res.cached,
                record=res.record.deterministic_fields(),
            )
            cells_meta.append(meta)
            telemetry.emit(
                "suite.cell",
                suite=spec.name,
                cell=i,
                tag=res.cell.tag,
                framework=res.cell.framework.name,
                cached=res.cached,
            )
    elif spec.kind == "churn":
        from repro.experiments import exp7_churn

        points = exp7_churn.run(
            seeds=spec.axes["seeds"],
            num_events=spec.params["events"],
            workload_spec=spec.params["workload"],
            runner=runner,
        )
        outcome = points
        for i, p in enumerate(points):
            cells_meta.append(
                {
                    "cell": i,
                    "seed": p.seed,
                    "topology": p.topology_spec,
                    "digest": p.report.history_digest,
                }
            )
            telemetry.emit(
                "suite.cell", suite=spec.name, cell=i, seed=p.seed,
                cached=False,
            )
    elif spec.kind == "resources":
        from repro.experiments import exp6_resources

        frameworks = (
            list(frameworks_override)
            if frameworks_override is not None
            else (
                build_frameworks(spec)
                if "frameworks" in spec.axes
                else None
            )
        )
        rows = exp6_resources.run(
            num_sketches=spec.params["num_sketches"],
            frameworks=frameworks,
            runner=runner,
        )
        outcome = rows
        for i, row in enumerate(rows):
            cells_meta.append(
                {
                    "cell": i,
                    "strategy": row.strategy,
                    "stage_units": row.total_stage_units,
                }
            )
            telemetry.emit(
                "suite.cell", suite=spec.name, cell=i,
                strategy=row.strategy, cached=False,
            )
    elif spec.kind == "overhead_sweep":
        from repro.experiments import fig2_motivation

        rows = fig2_motivation.run(
            overheads=spec.axes["overheads"],
            packet_sizes=spec.axes["packet_sizes"],
            message_bytes=spec.params["message_bytes"],
            hops=spec.params["hops"],
            use_des=spec.params["engine"] == "exact",
            runner=runner,
        )
        outcome = rows
        for i, row in enumerate(rows):
            cells_meta.append(
                {
                    "cell": i,
                    "packet_size": row.packet_size,
                    "overhead": row.overhead_bytes,
                }
            )
        telemetry.emit(
            "suite.cell", suite=spec.name, cell=0,
            rows=len(rows), cached=False,
        )
    else:  # traffic
        jobs = [
            (
                hour,
                overhead,
                spec.params["flows"],
                spec.params["packet_payload_bytes"],
                spec.params["message_bytes"],
                spec.params["hops"],
                dict(spec.params["load"]),
            )
            for hour in spec.axes["hours"]
            for overhead in spec.axes["overheads"]
        ]
        if runner is not None:
            rows = runner.map(_traffic_point, jobs)
        else:
            rows = [_traffic_point(job) for job in jobs]
        outcome = rows
        for i, row in enumerate(rows):
            cells_meta.append({"cell": i, **row})
            telemetry.emit(
                "suite.cell", suite=spec.name, cell=i,
                hour=row["hour"], overhead=row["overhead"],
                cached=False,
            )

    aggregate = spec.aggregate or default_aggregators(spec.kind)
    tables = [AGGREGATORS[name](spec, outcome) for name in aggregate]

    cached_cells = sum(1 for c in cells_meta if c.get("cached"))
    telemetry.emit(
        "suite.done",
        suite=spec.name,
        cells=len(cells_meta),
        cached=cached_cells,
    )
    return SuiteReport(
        name=spec.name,
        kind=spec.kind,
        title=spec.title,
        spec=spec.to_dict(),
        cells=cells_meta,
        tables=tables,
        meta={
            "num_cells": len(cells_meta),
            "cached_cells": cached_cells,
            "aggregators": list(aggregate),
        },
    )


__all__ = [
    "FRAMEWORK_REGISTRY",
    "build_frameworks",
    "cell_plan",
    "deployment_cells",
    "run_suite",
]
