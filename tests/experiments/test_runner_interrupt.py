"""Tests for graceful pool shutdown on interrupt.

A ``KeyboardInterrupt`` mid-pool used to propagate straight through
``ExperimentRunner.run_cells``, abandoning the worker pool (processes
die noisily) and throwing away every cell that had already finished.
The runner now catches it, shuts the pool down cleanly and surfaces
the completed results through :class:`RunnerInterrupted`.

The tests inject a thread pool (the ``_executor_factory`` hook) and a
fake cell worker so the interrupt lands deterministically — the
handling code under test is identical for threads and processes.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.baselines import HermesHeuristic
from repro.experiments.harness import DeploymentRecord
from repro.experiments.runner import (
    Cell,
    ExperimentRunner,
    RunnerInterrupted,
)
from repro.experiments.runner import executor as executor_module


def _record(tag: str) -> DeploymentRecord:
    return DeploymentRecord(
        framework="fake",
        overhead_bytes=8,
        solve_time_s=0.0,
        timed_out=False,
        occupied_switches=1,
    )


class _ScriptedWorker:
    """A `_pool_cell_worker` stand-in driven by the cell tag.

    ``interrupt`` tags raise KeyboardInterrupt; ``block`` tags wait on
    the release event (so the test controls which cells are in flight
    when the interrupt lands); everything else completes immediately.
    """

    def __init__(self) -> None:
        self.release = threading.Event()

    def __call__(self, cell: Cell):
        if cell.tag == "interrupt":
            raise KeyboardInterrupt
        if cell.tag == "block":
            self.release.wait(timeout=30)
        return _record(cell.tag), [{"kind": "fake", "tag": cell.tag}], {
            "tag": cell.tag
        }


@pytest.fixture
def cells(six_programs, small_line):
    framework = HermesHeuristic()

    def make(tag: str) -> Cell:
        # Distinct program tuples keep the cache keys distinct.
        n = {"ok": 2, "interrupt": 3, "block": 4}.get(tag, 5)
        return Cell(
            programs=tuple(six_programs[:n]),
            network=small_line,
            framework=framework,
            tag=tag,
        )

    return make


@pytest.fixture
def scripted(monkeypatch):
    worker = _ScriptedWorker()
    monkeypatch.setattr(executor_module, "_pool_cell_worker", worker)
    monkeypatch.setattr(
        ExperimentRunner, "_executor_factory", staticmethod(ThreadPoolExecutor)
    )
    yield worker
    worker.release.set()  # never leave a blocked worker thread behind


class TestPoolInterrupt:
    def test_partial_results_surface(self, cells, scripted):
        runner = ExperimentRunner(workers=2)
        batch = [cells("ok"), cells("interrupt"), cells("block")]
        with pytest.raises(RunnerInterrupted) as excinfo:
            runner.run_cells(batch)
        scripted.release.set()
        err = excinfo.value
        assert err.total == 3
        assert [r.cell.tag for r in err.partial] == ["ok"]
        assert err.partial[0].record.framework == "fake"
        assert err.partial[0].events == [{"kind": "fake", "tag": "ok"}]
        assert "1 of 3" in str(err)

    def test_interrupt_chains_the_original(self, cells, scripted):
        runner = ExperimentRunner(workers=2)
        with pytest.raises(RunnerInterrupted) as excinfo:
            runner.run_cells([cells("interrupt")])
        assert isinstance(excinfo.value.__cause__, KeyboardInterrupt)

    def test_completed_cells_reach_the_cache(
        self, cells, scripted, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        runner = ExperimentRunner(workers=2, cache_dir=cache_dir)
        ok = cells("ok")
        with pytest.raises(RunnerInterrupted):
            runner.run_cells([ok, cells("interrupt")])
        scripted.release.set()
        # A rerun of the completed cell is a pure cache hit: the fake
        # worker would raise on anything it executes, so a hit proves
        # the interrupt handler persisted the finished result.
        again = ExperimentRunner(workers=1, cache_dir=cache_dir)
        results = again.run_cells([ok])
        assert results[0].cached
        assert results[0].plan == {"tag": "ok"}

    def test_interrupt_journals_what_finished(
        self, cells, scripted, tmp_path
    ):
        journal = str(tmp_path / "journal.jsonl")
        runner = ExperimentRunner(workers=2, journal=journal)
        with pytest.raises(RunnerInterrupted):
            runner.run_cells([cells("ok"), cells("interrupt")])
        scripted.release.set()
        from repro.experiments.runner import read_journal

        kinds = [e["kind"] for e in read_journal(journal)]
        assert "cell.done" in kinds
        assert kinds[-1] == "runner.interrupted"

    def test_clean_runs_are_unchanged(self, cells, scripted):
        runner = ExperimentRunner(workers=2)
        results = runner.run_cells([cells("ok"), cells("other")])
        assert [r.cell.tag for r in results] == ["ok", "other"]
        assert all(not r.cached for r in results)
