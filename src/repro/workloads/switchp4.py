"""Ten "real" programs modeled on switch.p4 feature slices.

The paper's testbed deploys ten versions of switch.p4.  The upstream
program is a Tofino P4 artifact we cannot compile offline, but the
deployment problem only sees MAT-level structure: match keys, the
fields actions read/write, rule capacities and resource demands.  Each
program below reproduces one switch.p4 feature pipeline at that level,
with metadata flows (and thus inter-MAT byte counts) following Table I.

Resource demands are sized so ten concurrent programs exceed a single
12-stage switch (the regime the testbed experiment measures): switch.p4
alone nearly fills a Tofino pipeline, so each feature slice here
occupies a substantial fraction of one — the per-MAT base fractions
below are scaled by ``DEMAND_SCALE``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dataplane.actions import (
    Action,
    ActionPrimitive,
    counter_update,
    drop,
    forward,
    hash_compute,
    modify,
    no_op,
)
from repro.dataplane.fields import Field, metadata_field, standard_headers
from repro.dataplane.mat import Mat
from repro.dataplane.program import Program
from repro.workloads.metadata_catalog import (
    counter_index,
    queue_lengths,
    switch_identifier,
    timestamps,
)

_HDR = standard_headers()

#: Multiplier applied to every base demand: ten concurrent programs sum
#: to ~25 stage units, overflowing one 12-stage switch like the paper's
#: testbed deployment does.
DEMAND_SCALE = 3.0


def _d(base: float) -> float:
    """A MAT's normalized demand from its base fraction."""
    return base * DEMAND_SCALE


def _egress_spec(ns: str) -> Field:
    return metadata_field(f"{ns}.egress_spec", 16)


def l2_switching() -> Program:
    """MAC learning and forwarding: smac -> dmac -> vlan decision."""
    ns = "l2"
    egress = _egress_spec(ns)
    learned = metadata_field(f"{ns}.smac_hit", 8)
    smac = Mat(
        "smac",
        match_fields=[_HDR["ethernet.src_addr"], _HDR["vlan.vid"]],
        actions=[modify(learned, name="set_hit"), no_op("miss")],
        capacity=4096,
        resource_demand=_d(0.30),
    )
    dmac = Mat(
        "dmac",
        match_fields=[_HDR["ethernet.dst_addr"], _HDR["vlan.vid"]],
        actions=[forward(egress), drop("flood")],
        capacity=4096,
        resource_demand=_d(0.30),
    )
    learn_notify = Mat(
        "learn_notify",
        match_fields=[learned],
        actions=[no_op("notify"), no_op("skip")],
        capacity=2,
        resource_demand=_d(0.10),
    )
    return Program("l2_switching", [smac, dmac, learn_notify])


def l3_routing() -> Program:
    """IPv4 LPM -> next-hop resolution -> MAC rewrite."""
    ns = "l3"
    nexthop_idx = counter_index(ns)
    egress = _egress_spec(ns)
    lpm = Mat(
        "ipv4_lpm",
        match_fields=[_HDR["ipv4.dst_addr"]],
        actions=[modify(nexthop_idx, name="set_nexthop"), drop()],
        capacity=16384,
        resource_demand=_d(0.40),
    )
    nexthop = Mat(
        "nexthop",
        match_fields=[nexthop_idx],
        actions=[forward(egress)],
        capacity=1024,
        resource_demand=_d(0.25),
    )
    rewrite = Mat(
        "rewrite",
        match_fields=[egress],
        actions=[
            Action(
                "rewrite_macs",
                ActionPrimitive.MODIFY_FIELD,
                reads=(egress,),
                writes=(
                    _HDR["ethernet.src_addr"],
                    _HDR["ethernet.dst_addr"],
                ),
            )
        ],
        capacity=512,
        resource_demand=_d(0.20),
    )
    return Program("l3_routing", [lpm, nexthop, rewrite])


def acl_firewall() -> Program:
    """Ingress ACL producing a verdict applied by a later table."""
    ns = "acl"
    verdict = metadata_field(f"{ns}.verdict", 8)
    acl = Mat(
        "ingress_acl",
        match_fields=[
            _HDR["ipv4.src_addr"],
            _HDR["ipv4.dst_addr"],
            _HDR["tcp.dst_port"],
        ],
        actions=[modify(verdict, name="set_verdict")],
        capacity=2048,
        resource_demand=_d(0.35),
    )
    apply_verdict = Mat(
        "apply_verdict",
        match_fields=[verdict],
        actions=[no_op("permit"), drop("deny")],
        capacity=4,
        resource_demand=_d(0.10),
    )
    counter = Mat(
        "acl_counter",
        match_fields=[verdict],
        actions=[counter_update(verdict, name="count_verdict")],
        capacity=4,
        resource_demand=_d(0.15),
    )
    return Program("acl_firewall", [acl, apply_verdict, counter])


def nat() -> Program:
    """NAT lookup rewriting addresses, then checksum-affecting mark."""
    ns = "nat"
    xlate = counter_index(ns)
    lookup = Mat(
        "nat_lookup",
        match_fields=[_HDR["ipv4.src_addr"], _HDR["tcp.src_port"]],
        actions=[modify(xlate, name="set_xlate")],
        capacity=8192,
        resource_demand=_d(0.35),
    )
    rewrite = Mat(
        "nat_rewrite",
        match_fields=[xlate],
        actions=[
            Action(
                "rewrite_flow",
                ActionPrimitive.MODIFY_FIELD,
                reads=(xlate,),
                writes=(_HDR["ipv4.src_addr"], _HDR["tcp.src_port"]),
            )
        ],
        capacity=8192,
        resource_demand=_d(0.30),
    )
    return Program("nat", [lookup, rewrite])


def vxlan_tunnel() -> Program:
    """Tunnel termination: decap decision -> inner forwarding -> encap."""
    ns = "vxlan"
    tunnel_id = counter_index(ns)
    egress = _egress_spec(ns)
    term = Mat(
        "tunnel_term",
        match_fields=[_HDR["ipv4.dst_addr"], _HDR["udp.dst_port"]],
        actions=[modify(tunnel_id, name="set_tunnel"), no_op("bypass")],
        capacity=1024,
        resource_demand=_d(0.25),
    )
    inner_fwd = Mat(
        "inner_forward",
        match_fields=[tunnel_id, _HDR["ethernet.dst_addr"]],
        actions=[forward(egress)],
        capacity=4096,
        resource_demand=_d(0.30),
    )
    encap = Mat(
        "tunnel_encap",
        match_fields=[egress],
        actions=[modify(_HDR["ipv4.dst_addr"], name="set_outer")],
        capacity=1024,
        resource_demand=_d(0.20),
    )
    return Program("vxlan_tunnel", [term, inner_fwd, encap])


def ecmp_lb() -> Program:
    """ECMP: 5-tuple hash -> group member select -> next hop."""
    ns = "ecmp"
    hash_val = counter_index(ns)
    member = metadata_field(f"{ns}.member", 16)
    egress = _egress_spec(ns)
    compute = Mat(
        "ecmp_hash",
        match_fields=[_HDR["ipv4.dst_addr"]],
        actions=[
            hash_compute(
                hash_val,
                [
                    _HDR["ipv4.src_addr"],
                    _HDR["ipv4.dst_addr"],
                    _HDR["tcp.src_port"],
                    _HDR["tcp.dst_port"],
                    _HDR["ipv4.protocol"],
                ],
            )
        ],
        capacity=64,
        resource_demand=_d(0.20),
    )
    select = Mat(
        "ecmp_select",
        match_fields=[hash_val],
        actions=[modify(member, name="pick_member")],
        capacity=1024,
        resource_demand=_d(0.25),
    )
    nexthop = Mat(
        "ecmp_nexthop",
        match_fields=[member],
        actions=[forward(egress)],
        capacity=1024,
        resource_demand=_d(0.20),
    )
    return Program("ecmp_lb", [compute, select, nexthop])


def qos_meter() -> Program:
    """QoS: classify -> meter (color) -> mark or police."""
    ns = "qos"
    tc = metadata_field(f"{ns}.traffic_class", 8)
    color = metadata_field(f"{ns}.color", 8)
    classify = Mat(
        "classify",
        match_fields=[_HDR["ipv4.dscp"], _HDR["tcp.dst_port"]],
        actions=[modify(tc, name="set_class")],
        capacity=512,
        resource_demand=_d(0.25),
    )
    meter = Mat(
        "meter",
        match_fields=[tc],
        actions=[modify(color, name="run_meter")],
        capacity=256,
        resource_demand=_d(0.30),
    )
    police = Mat(
        "police",
        match_fields=[color],
        actions=[modify(_HDR["ipv4.dscp"], name="remark"), drop("police_drop")],
        capacity=8,
        resource_demand=_d(0.15),
    )
    return Program("qos_meter", [classify, meter, police])


def int_telemetry() -> Program:
    """INT: source stamps telemetry, transit appends, sink extracts."""
    ns = "int"
    ts = timestamps(ns)
    qlen = queue_lengths(ns)
    sid = switch_identifier(ns)
    source = Mat(
        "int_source",
        match_fields=[_HDR["ipv4.dscp"]],
        actions=[
            Action(
                "stamp_telemetry",
                ActionPrimitive.MODIFY_FIELD,
                writes=(ts, sid),
            )
        ],
        capacity=64,
        resource_demand=_d(0.25),
    )
    transit = Mat(
        "int_transit",
        match_fields=[sid],
        actions=[modify(qlen, name="append_qdepth")],
        capacity=64,
        resource_demand=_d(0.25),
    )
    sink = Mat(
        "int_sink",
        match_fields=[qlen, ts],
        actions=[no_op("report"), no_op("skip")],
        capacity=64,
        resource_demand=_d(0.20),
    )
    return Program("int_telemetry", [source, transit, sink])


def heavy_hitter() -> Program:
    """Heavy-hitter detection: hash -> count-min update -> threshold."""
    ns = "hh"
    idx = counter_index(ns)
    count = metadata_field(f"{ns}.count", 32)
    compute = Mat(
        "hh_hash",
        match_fields=[_HDR["ipv4.src_addr"]],
        actions=[
            hash_compute(idx, [_HDR["ipv4.src_addr"], _HDR["ipv4.dst_addr"]])
        ],
        capacity=16,
        resource_demand=_d(0.20),
    )
    update = Mat(
        "hh_update",
        match_fields=[idx],
        actions=[counter_update(idx, count, name="cm_update")],
        capacity=65536,
        resource_demand=_d(0.45),
    )
    threshold = Mat(
        "hh_threshold",
        match_fields=[count],
        actions=[modify(_HDR["ipv4.dscp"], name="flag_hh"), no_op("pass")],
        capacity=16,
        resource_demand=_d(0.15),
    )
    return Program("heavy_hitter", [compute, update, threshold])


def stateful_firewall() -> Program:
    """Connection tracking: conn hash -> state table -> verdict."""
    ns = "sfw"
    conn = counter_index(ns)
    state = metadata_field(f"{ns}.state", 8)
    compute = Mat(
        "conn_hash",
        match_fields=[_HDR["ipv4.protocol"]],
        actions=[
            hash_compute(
                conn,
                [
                    _HDR["ipv4.src_addr"],
                    _HDR["ipv4.dst_addr"],
                    _HDR["tcp.src_port"],
                    _HDR["tcp.dst_port"],
                ],
            )
        ],
        capacity=16,
        resource_demand=_d(0.20),
    )
    table = Mat(
        "conn_table",
        match_fields=[conn, _HDR["tcp.flags"]],
        actions=[modify(state, name="update_state")],
        capacity=65536,
        resource_demand=_d(0.45),
    )
    verdict = Mat(
        "fw_verdict",
        match_fields=[state],
        actions=[no_op("allow"), drop("deny")],
        capacity=8,
        resource_demand=_d(0.10),
    )
    return Program("stateful_firewall", [compute, table, verdict])


def multicast() -> Program:
    """Multicast: group lookup -> replication -> per-port prune."""
    ns = "mcast"
    group = counter_index(ns)
    egress = _egress_spec(ns)
    lookup = Mat(
        "mcast_group",
        match_fields=[_HDR["ipv4.dst_addr"]],
        actions=[modify(group, name="set_group"), no_op("unicast")],
        capacity=1024,
        resource_demand=_d(0.25),
    )
    replicate = Mat(
        "mcast_replicate",
        match_fields=[group],
        actions=[forward(egress)],
        capacity=1024,
        resource_demand=_d(0.30),
    )
    prune = Mat(
        "mcast_prune",
        match_fields=[egress, _HDR["vlan.vid"]],
        actions=[no_op("keep"), drop("prune")],
        capacity=512,
        resource_demand=_d(0.15),
    )
    return Program("multicast", [lookup, replicate, prune])


def ipv6_routing() -> Program:
    """IPv6 LPM with neighbor discovery resolution."""
    ns = "v6"
    nexthop = counter_index(ns)
    egress = _egress_spec(ns)
    lpm = Mat(
        "ipv6_lpm",
        match_fields=[_HDR["ipv6.dst_addr"]],
        actions=[modify(nexthop, name="set_v6_nexthop"), drop()],
        capacity=8192,
        resource_demand=_d(0.45),
    )
    neighbor = Mat(
        "neighbor",
        match_fields=[nexthop],
        actions=[
            Action(
                "resolve",
                ActionPrimitive.MODIFY_FIELD,
                reads=(nexthop,),
                writes=(_HDR["ethernet.dst_addr"],),
            ),
            forward(egress),
        ],
        capacity=1024,
        resource_demand=_d(0.25),
    )
    return Program("ipv6_routing", [lpm, neighbor])


def mpls_lsr() -> Program:
    """MPLS label switching: label lookup -> swap/pop -> forward."""
    ns = "mpls"
    label_op = metadata_field(f"{ns}.label_op", 8)
    out_label = metadata_field(f"{ns}.out_label", 20)
    egress = _egress_spec(ns)
    lookup = Mat(
        "label_lookup",
        match_fields=[_HDR["ethernet.ether_type"], _HDR["ipv4.dst_addr"]],
        actions=[
            Action(
                "set_op",
                ActionPrimitive.MODIFY_FIELD,
                writes=(label_op, out_label),
            )
        ],
        capacity=4096,
        resource_demand=_d(0.35),
    )
    rewrite = Mat(
        "label_rewrite",
        match_fields=[label_op, out_label],
        actions=[modify(_HDR["ethernet.ether_type"], name="push_label")],
        capacity=4096,
        resource_demand=_d(0.25),
    )
    send = Mat(
        "mpls_forward",
        match_fields=[out_label],
        actions=[forward(egress)],
        capacity=1024,
        resource_demand=_d(0.15),
    )
    return Program("mpls_lsr", [lookup, rewrite, send])


def sflow_sampling() -> Program:
    """sFlow-style sampling: decide -> stamp -> export counter."""
    ns = "sflow"
    sampled = metadata_field(f"{ns}.sampled", 8)
    ts = timestamps(ns)
    decide = Mat(
        "sample_decide",
        match_fields=[_HDR["ipv4.protocol"]],
        actions=[
            hash_compute(sampled, [_HDR["ipv4.src_addr"], _HDR["tcp.src_port"]])
        ],
        capacity=16,
        resource_demand=_d(0.20),
    )
    stamp = Mat(
        "sample_stamp",
        match_fields=[sampled],
        actions=[modify(ts, name="stamp_sample"), no_op("skip")],
        capacity=8,
        resource_demand=_d(0.25),
    )
    export = Mat(
        "sample_export",
        match_fields=[sampled, ts],
        actions=[counter_update(sampled, name="count_sample")],
        capacity=8,
        resource_demand=_d(0.20),
    )
    return Program("sflow_sampling", [decide, stamp, export])


def ddos_mitigation() -> Program:
    """SYN-flood mitigation: per-source rate estimate -> verdict."""
    ns = "ddos"
    src_idx = counter_index(ns)
    rate = metadata_field(f"{ns}.rate", 32)
    verdict = metadata_field(f"{ns}.verdict", 8)
    index = Mat(
        "src_hash",
        match_fields=[_HDR["tcp.flags"]],
        actions=[hash_compute(src_idx, [_HDR["ipv4.src_addr"]])],
        capacity=16,
        resource_demand=_d(0.20),
    )
    estimate = Mat(
        "rate_estimate",
        match_fields=[src_idx],
        actions=[counter_update(src_idx, rate, name="rate_update")],
        capacity=65536,
        resource_demand=_d(0.45),
    )
    police = Mat(
        "ddos_verdict",
        match_fields=[rate],
        actions=[modify(verdict, name="set_ddos_verdict")],
        capacity=16,
        resource_demand=_d(0.15),
    )
    enforce = Mat(
        "ddos_enforce",
        match_fields=[verdict],
        actions=[no_op("pass"), drop("mitigate")],
        capacity=4,
        resource_demand=_d(0.10),
    )
    return Program("ddos_mitigation", [index, estimate, police, enforce])


def rate_limiter() -> Program:
    """Token-bucket rate limiting keyed by flow."""
    ns = "rl"
    bucket = counter_index(ns)
    tokens = metadata_field(f"{ns}.tokens", 32)
    classify = Mat(
        "rl_classify",
        match_fields=[_HDR["ipv4.src_addr"], _HDR["tcp.dst_port"]],
        actions=[modify(bucket, name="pick_bucket")],
        capacity=2048,
        resource_demand=_d(0.30),
    )
    debit = Mat(
        "rl_debit",
        match_fields=[bucket],
        actions=[counter_update(bucket, tokens, name="debit_tokens")],
        capacity=2048,
        resource_demand=_d(0.35),
    )
    gate = Mat(
        "rl_gate",
        match_fields=[tokens],
        actions=[no_op("conform"), drop("exceed")],
        capacity=4,
        resource_demand=_d(0.10),
    )
    return Program("rate_limiter", [classify, debit, gate])


_FACTORIES = (
    l2_switching,
    l3_routing,
    acl_firewall,
    nat,
    vxlan_tunnel,
    ecmp_lb,
    qos_meter,
    int_telemetry,
    heavy_hitter,
    stateful_firewall,
    multicast,
    ipv6_routing,
    mpls_lsr,
    sflow_sampling,
    ddos_mitigation,
    rate_limiter,
)


def real_programs(count: int = 10) -> List[Program]:
    """The first ``count`` (max 11) switch.p4-style programs."""
    if not 1 <= count <= len(_FACTORIES):
        raise ValueError(
            f"count must be in [1, {len(_FACTORIES)}], got {count}"
        )
    return [factory() for factory in _FACTORIES[:count]]


def program_catalog() -> Dict[str, Program]:
    """All bundled real programs keyed by name."""
    return {p.name: p for p in (f() for f in _FACTORIES)}
