"""Tests for plan rebasing and delta-solution splicing."""

import pytest

from repro.core import Hermes
from repro.network.generators import random_wan
from repro.network.topology import Network
from repro.plan.artifact import DeploymentError
from repro.plan.splice import rebase_plan, splice_plan


def drop_switch(network, victim):
    """The network without ``victim`` (switch and incident links)."""
    out = Network(network.name)
    for switch in network.switches:
        if switch.name != victim:
            out.add_switch(switch)
    for link in network.links:
        if victim not in link.key:
            out.add_link(link)
    return out


@pytest.fixture(scope="module")
def network():
    return random_wan(12, 18, seed=4, num_stages=4)


@pytest.fixture(scope="module")
def plan(network):
    from tests.conftest import make_sketch_program

    programs = [
        make_sketch_program(f"p{i}", index_bytes=2 + i) for i in range(6)
    ]
    return Hermes().deploy(programs, network).plan


class TestRebase:
    def test_rebase_preserves_placements_and_amax(self, plan, network):
        # Drop an unoccupied switch: every placement survives.
        occupied = set(plan.occupied_switches())
        victim = next(
            s.name for s in network.switches if s.name not in occupied
        )
        shrunk = drop_switch(network, victim)
        rebased = rebase_plan(plan, shrunk)
        assert rebased.placements == plan.placements
        assert rebased.max_metadata_bytes() == plan.max_metadata_bytes()
        rebased.validate()

    def test_rebase_fails_when_a_host_vanished(self, plan, network):
        victim = plan.occupied_switches()[0]
        shrunk = drop_switch(network, victim)
        with pytest.raises(DeploymentError):
            rebase_plan(plan, shrunk)


class TestSplice:
    def test_splice_moves_only_the_free_mats(self, plan, network):
        victim = plan.occupied_switches()[0]
        shrunk = drop_switch(network, victim)
        free = [
            name
            for name, p in plan.placements.items()
            if p.switch == victim
        ]
        target = sorted(
            s.name for s in shrunk.programmable_switches()
        )[0]
        spliced = splice_plan(plan, shrunk, {name: target for name in free})
        spliced.validate()
        for name, placement in plan.placements.items():
            if name in free:
                assert spliced.placements[name].switch == target
            else:
                assert spliced.placements[name] == placement

    def test_splice_rejects_unknown_mats(self, plan, network):
        with pytest.raises(DeploymentError, match="unknown MATs"):
            splice_plan(plan, network, {"nope.mat": "w0"})

    def test_splice_rejects_non_hostable_switch(self, plan, network):
        name = next(iter(plan.placements))
        with pytest.raises(DeploymentError, match="non-hostable"):
            splice_plan(plan, network, {name: "no-such-switch"})

    def test_busted_amax_cap_raises(self, plan, network):
        victim = plan.occupied_switches()[0]
        shrunk = drop_switch(network, victim)
        free = [
            name
            for name, p in plan.placements.items()
            if p.switch == victim
        ]
        target = sorted(
            s.name for s in shrunk.programmable_switches()
        )[0]
        assignment = {name: target for name in free}
        with pytest.raises(DeploymentError, match="A_max probe"):
            splice_plan(plan, shrunk, assignment, amax_cap=-1)

    def test_identity_splice_is_a_rebase(self, plan, network):
        # Re-assigning a MAT to its current host must reproduce the
        # plan's metrics (stages may legally differ).
        name, placement = next(iter(plan.placements.items()))
        spliced = splice_plan(plan, network, {name: placement.switch})
        assert spliced.max_metadata_bytes() == plan.max_metadata_bytes()
        assert spliced.placements[name].switch == placement.switch
