"""Mixed-integer linear programming substrate.

The paper solves its deployment problem P#1 with Gurobi.  Offline we
build the same capability from first principles: a small modeling API
(:class:`Model`, :class:`Var`, :class:`LinExpr`, :class:`Constraint`)
and an exact solver — best-first branch & bound over LP relaxations
solved by ``scipy.optimize.linprog`` (HiGHS).

The solver is exact on the model it is given (it proves optimality via
LP bounds), supports binary/integer/continuous variables, <=/>=/==
constraints, minimization and maximization, time limits and incumbent
callbacks.  It is deliberately a general-purpose component: both the
Hermes "Optimal" configuration and every ILP-based baseline build their
models against this API.

The solver runs one of two profiles (see
:mod:`repro.milp.branch_bound`): ``"fast"`` layers a presolve pass
(:mod:`repro.milp.presolve`), pseudo-cost branching and primal
heuristics (:mod:`repro.milp.heuristics`) on top of the search;
``"classic"`` is the historical most-fractional search kept as the
trusted differential baseline.  Both are exact and return identical
optimal objectives.
"""

from repro.milp.expr import LinExpr
from repro.milp.model import Constraint, Model, Sense, Var, VarType
from repro.milp.presolve import (
    PresolveCache,
    PresolvedModel,
    PresolveStats,
    PresolveStatus,
    model_signature,
    presolve,
)
from repro.milp.solution import Solution, SolveStatus
from repro.milp.branch_bound import (
    DEFAULT_PROFILE,
    SOLVER_PROFILES,
    BranchBoundSolver,
    solve,
)

__all__ = [
    "BranchBoundSolver",
    "Constraint",
    "DEFAULT_PROFILE",
    "LinExpr",
    "Model",
    "PresolveCache",
    "PresolveStats",
    "PresolveStatus",
    "PresolvedModel",
    "Sense",
    "Solution",
    "SolveStatus",
    "SOLVER_PROFILES",
    "Var",
    "VarType",
    "model_signature",
    "presolve",
    "solve",
]
