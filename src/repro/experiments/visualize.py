"""ASCII rendering of deployment plans.

Turns a plan into the diagram a paper whiteboard would hold: one box
per occupied switch listing its stage layout, joined by the
coordination channels with their byte weights — Figure 1 of the paper,
generated from real decisions.

    +- s0 ---------------+      +- s1 --------------+
    | 1: fc.hash         | =4B=>| 1: fc.count       |
    +--------------------+      +-------------------+
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.coordination import CoordinationAnalysis
from repro.core.deployment import DeploymentPlan


def switch_box(plan: DeploymentPlan, switch: str, width: int = 26) -> List[str]:
    """One switch rendered as a box of stage lines."""
    inner = width - 2
    title = f"- {switch} "
    top = "+" + title + "-" * max(inner - len(title), 0) + "+"
    lines = [top]
    by_stage: Dict[int, List[str]] = {}
    for mat_name in plan.mats_on(switch):
        placement = plan.placements[mat_name]
        label = mat_name if len(mat_name) <= inner - 4 else mat_name[: inner - 5] + "…"
        by_stage.setdefault(placement.first_stage, []).append(label)
    for stage in sorted(by_stage):
        for i, label in enumerate(by_stage[stage]):
            prefix = f"{stage}: " if i == 0 else "   "
            body = f" {prefix}{label}"
            lines.append("|" + body.ljust(inner) + "|")
    lines.append("+" + "-" * inner + "+")
    return lines


def render_plan(plan: DeploymentPlan, width: int = 26) -> str:
    """The whole deployment: switch boxes joined by labeled channels.

    Switches are laid out in coordination order (upstream first); each
    inter-switch channel is printed between/below the boxes with its
    byte count, e.g. ``s0 =4B=> s1``.
    """
    coordination = CoordinationAnalysis(plan)
    order = _chain_order(plan)
    blocks = {switch: switch_box(plan, switch, width) for switch in order}

    out: List[str] = []
    for switch in order:
        out.extend(blocks[switch])
        outgoing = [
            (v, channel)
            for (u, v), channel in sorted(coordination.channels.items())
            if u == switch
        ]
        for v, channel in outgoing:
            fields = ", ".join(channel.field_names)
            out.append(
                f"   ={channel.declared_bytes}B=> {v}"
                + (f"   [{fields}]" if fields else "")
            )
        out.append("")
    summary = (
        f"A_max = {plan.max_metadata_bytes()} B over "
        f"{plan.num_occupied_switches()} switches, "
        f"{len(coordination.channels)} channels"
    )
    out.append(summary)
    return "\n".join(out)


def _chain_order(plan: DeploymentPlan) -> List[str]:
    """Occupied switches, upstream-most first where flow is acyclic."""
    occupied = plan.occupied_switches()
    pairs = plan.pair_metadata_bytes()
    in_deg = {s: 0 for s in occupied}
    succ: Dict[str, List[str]] = {s: [] for s in occupied}
    for (u, v) in pairs:
        succ[u].append(v)
        in_deg[v] += 1
    ready = [s for s in occupied if in_deg[s] == 0]
    order: List[str] = []
    while ready:
        current = ready.pop(0)
        order.append(current)
        for nxt in sorted(succ[current]):
            in_deg[nxt] -= 1
            if in_deg[nxt] == 0:
                ready.append(nxt)
    # Cyclic remainders (recirculating plans) appended in stable order.
    order.extend(s for s in occupied if s not in order)
    return order
