"""The ``repro suite`` subcommands, end to end through ``main``."""

from legacy_oracles import fig2_render, fig2_rows

from repro.cli import main
from repro.suite import SuiteReport, load_spec, run_suite


class TestList:
    def test_lists_every_shipped_spec(self, capsys):
        assert main(["suite", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("exp1", "exp2", "exp7", "fig2", "smoke", "diurnal"):
            assert name in out
        assert "deployment" in out and "churn" in out


class TestValidate:
    def test_prints_the_cell_plan(self, capsys):
        assert main(["suite", "validate", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "valid: smoke (deployment), 8 cells" in out
        assert "workload=2 topology=linear-3 framework=Hermes" in out

    def test_unknown_spec_fails(self, capsys):
        assert main(["suite", "validate", "exp99"]) == 1
        assert "error:" in capsys.readouterr().out

    def test_bad_spec_file_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"suite": "repro.suite/v1", "kind": "nope"}')
        assert main(["suite", "validate", str(bad)]) == 1
        assert "error:" in capsys.readouterr().out


class TestRun:
    def test_fig2_tables_match_the_legacy_bytes(self, capsys):
        """The shipped fig2 spec through the CLI reproduces the
        pre-refactor stdout bit for bit (analytic: deterministic)."""
        assert main(["suite", "run", "fig2"]) == 0
        out = capsys.readouterr().out
        expected = fig2_render(fig2_rows())
        assert out.startswith(expected + "\n\n")
        assert "suite fig2 (overhead_sweep): 15 cells" in out

    def test_cache_rerun_and_report_round_trip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        report_path = str(tmp_path / "report.json")
        spec_path = str(tmp_path / "tiny.json")
        import json

        json.dump(
            {
                "suite": "repro.suite/v1",
                "name": "tiny",
                "kind": "deployment",
                "axes": {
                    "workloads": ["real:2"],
                    "topologies": ["linear-3"],
                    "frameworks": ["ffl", "ffls"],
                },
            },
            open(spec_path, "w"),
        )
        assert main(
            ["suite", "run", spec_path, "--cache-dir", cache,
             "--out", report_path]
        ) == 0
        cold = capsys.readouterr().out
        assert "suite tiny (deployment): 2 cells, 0 cached" in cold
        assert f"wrote report to {report_path}" in cold

        assert main(
            ["suite", "run", spec_path, "--cache-dir", cache]
        ) == 0
        warm = capsys.readouterr().out
        assert "suite tiny (deployment): 2 cells, 2 cached" in warm
        # the tables region is byte-identical across the rerun
        assert warm.split("\n\nsuite tiny")[0] == cold.split(
            "\n\nsuite tiny"
        )[0]

        report = SuiteReport.load(report_path)
        assert report.num_cells == 2
        assert main(["suite", "report", report_path]) == 0
        shown = capsys.readouterr().out
        assert report.render() in shown
        assert "suite tiny (deployment): 2 cells" in shown

    def test_report_missing_file(self, capsys):
        assert main(["suite", "report", "/no/such/report.json"]) == 1
        assert "cannot load report" in capsys.readouterr().out


class TestModuleEquivalence:
    def test_cli_run_matches_run_suite(self, tmp_path, capsys):
        """``repro suite run`` prints exactly ``report.render()`` plus
        the footer — cross-checked through a shared cache (execution
        times replay from cache, so the bytes can be compared)."""
        from repro.experiments.runner import ExperimentRunner

        cache = str(tmp_path / "cache")
        report = run_suite(
            load_spec("smoke"),
            runner=ExperimentRunner(cache_dir=cache),
        )
        assert main(
            ["suite", "run", "smoke", "--cache-dir", cache]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith(report.render() + "\n\n")
        assert "8 cells, 8 cached" in out
