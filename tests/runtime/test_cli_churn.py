"""CLI tests: the churn subcommands, the --seed flag and exp7."""

import json

import pytest

from repro.cli import main, parse_topology, parse_workload


class TestSeedFlag:
    def test_seed_threads_into_wan(self):
        a = parse_topology("wan:10:14", seed=9)
        b = parse_topology("wan:10:14:9")
        assert sorted(l.key for l in a.links) == sorted(
            l.key for l in b.links
        )
        c = parse_topology("wan:10:14", seed=10)
        assert sorted(l.key for l in a.links) != sorted(
            l.key for l in c.links
        )

    def test_spec_seed_wins_over_flag(self):
        pinned = parse_topology("wan:10:14:3", seed=9)
        expected = parse_topology("wan:10:14:3")
        assert sorted(l.key for l in pinned.links) == sorted(
            l.key for l in expected.links
        )

    def test_seed_threads_into_synthetic(self):
        a = parse_workload("synthetic:2", seed=11)
        b = parse_workload("synthetic:2:11")
        assert [
            (p.name, [m.name for m in p.mats]) for p in a
        ] == [(p.name, [m.name for m in p.mats]) for p in b]

    def test_deploy_accepts_seed(self, capsys):
        code = main(
            [
                "deploy",
                "--workload", "synthetic:2",
                "--topology", "wan:8:10",
                "--seed", "5",
            ]
        )
        assert code == 0
        assert "deployed" in capsys.readouterr().out


@pytest.fixture
def churn_artifacts(tmp_path, capsys):
    scenario = tmp_path / "scenario.json"
    report = tmp_path / "report.json"
    plans = tmp_path / "plans"
    code = main(
        [
            "churn", "run",
            "--workload", "sketches:6",
            "--topology", "wan:12:18",
            "--seed", "4",
            "--events", "3",
            "--scenario-out", str(scenario),
            "--report-out", str(report),
            "--plans-dir", str(plans),
        ]
    )
    out = capsys.readouterr().out
    return code, out, scenario, report, plans


class TestChurnRun:
    def test_run_produces_report_and_artifacts(self, churn_artifacts):
        code, out, scenario, report, plans = churn_artifacts
        assert code == 0
        assert "Per-batch disruption" in out
        assert scenario.exists()
        assert report.exists()
        assert (plans / "history.json").exists()
        doc = json.loads(report.read_text())
        assert doc["schema"] == "repro.disruption/v1"
        assert doc["num_events"] == 3

    def test_scenario_embeds_pinned_seeds(self, churn_artifacts):
        _, _, scenario, _, _ = churn_artifacts
        doc = json.loads(scenario.read_text())
        assert doc["topology_spec"] == "wan:12:18:4"
        assert doc["seed"] == 4

    def test_replay_is_deterministic(self, churn_artifacts, capsys):
        _, out, scenario, _, _ = churn_artifacts
        code = main(["churn", "replay", str(scenario)])
        replay_out = capsys.readouterr().out
        assert code == 0
        digest = next(
            line for line in out.splitlines() if "digest" in line
        )
        assert digest in replay_out

    def test_report_subcommand(self, churn_artifacts, capsys):
        _, _, _, report, _ = churn_artifacts
        code = main(["churn", "report", str(report)])
        assert code == 0
        assert "Per-batch disruption" in capsys.readouterr().out

    def test_report_rejects_junk(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        code = main(["churn", "report", str(bad)])
        assert code == 1
        assert "cannot load report" in capsys.readouterr().out

    def test_replay_rejects_missing_file(self, tmp_path, capsys):
        code = main(
            ["churn", "replay", str(tmp_path / "missing.json")]
        )
        assert code == 1
        assert "cannot load scenario" in capsys.readouterr().out


class TestExp7:
    def test_exp7_reduced(self, capsys, tmp_path):
        rows = tmp_path / "rows.json"
        journal = tmp_path / "journal.jsonl"
        code = main(
            [
                "exp7",
                "--seeds", "0", "1",
                "--events", "3",
                "--workload", "real:6",
                "--journal", str(journal),
                "--json", str(rows),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Exp#7" in out
        exported = json.loads(rows.read_text())
        assert len(exported) == 2
        assert all("history_digest" in row for row in exported)
        lines = [
            json.loads(line)
            for line in journal.read_text().splitlines()
        ]
        kinds = {line["kind"] for line in lines}
        assert "runtime.scenario.start" in kinds
        assert "runtime.converged" in kinds
