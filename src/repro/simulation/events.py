"""A minimal discrete-event engine.

Events are ``(time, callback)`` pairs in a priority queue; a monotonic
sequence number breaks ties so same-time events run in scheduling
order, keeping runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

Callback = Callable[[], None]


class EventQueue:
    """Time-ordered event queue with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._seq = itertools.count()

    def push(self, when: float, callback: Callback) -> None:
        if when < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, (when, next(self._seq), callback))

    def pop(self) -> Tuple[float, Callback]:
        when, _seq, callback = heapq.heappop(self._heap)
        return when, callback

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulator:
    """Runs events until the queue drains (or a horizon is reached)."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self._events_processed = 0

    def schedule(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` at ``now + delay``."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.queue.push(self.now + delay, callback)

    def schedule_at(self, when: float, callback: Callback) -> None:
        if when < self.now:
            raise ValueError(
                f"cannot schedule in the past ({when} < {self.now})"
            )
        self.queue.push(when, callback)

    def run(self, until: Optional[float] = None) -> float:
        """Process events; returns the final simulation time."""
        while self.queue:
            when, callback = self.queue.pop()
            if until is not None and when > until:
                # Leave the horizon-crossing event unprocessed.
                self.queue.push(when, callback)
                self.now = until
                return self.now
            self.now = when
            callback()
            self._events_processed += 1
        return self.now

    @property
    def events_processed(self) -> int:
        return self._events_processed
