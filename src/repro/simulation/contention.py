"""Per-link output-queue contention at millions of flows.

The three original engines (exact DES, analytic, batch) all model
flows *independently*: every flow gets a private copy of its path, so
"heavy traffic" is additive arithmetic — no queueing, no shared-link
contention.  :class:`ContentionEngine` is the fourth engine: flows
bound to the same path contend for that path's bottleneck output
queue, the way a VOQ drains one (input, output) pair's traffic through
a single serializing port.

The model, in two layers:

1. **Uncontended base** — every flow's solo transmission, reproduced
   from the per-packet DES in closed form.  For ``N`` equal packets
   over hops with serialization times ``t_h`` and latencies ``l_h``,
   packet ``k`` departs hop ``h`` at ``sum(t) + sum(l) + (k-1) *
   max(t)`` (cumulative over the prefix of hops); the short last
   packet then follows an O(hops) max/add recurrence against the
   previous packet's departures.  This is *bit-compatible* with
   :class:`~repro.simulation.netsim.FlowSimulator` (worst observed
   relative delta ~5e-14, locked at 1e-6 by the differential suite)
   while vectorizing over every flow at once.

2. **Queueing wait** — each path's flows share one FIFO output queue
   at the path's bottleneck hop.  Flow ``i`` offers ``T_i`` seconds of
   serialization work (its total wire bytes at the bottleneck rate)
   and arrives ``T_{i-1} / load * u_i`` after its predecessor, where
   ``u_i`` is seeded jitter in ``[JITTER_LOW, JITTER_HIGH]`` (mean 1,
   so the long-run offered utilization is exactly ``load``).  The
   FIFO busy-period recurrence ``c_i = max(s_i, c_{i-1}) + T_i``
   vectorizes as a cumulative max over ``s_i - cumsum(T)`` — the
   NumPy event calendar — and the wait ``c_i - T_i - s_i`` adds to the
   flow's base FCT.

Because ``u_i >= JITTER_LOW``, any ``load <= JITTER_LOW`` spaces every
arrival beyond its predecessor's full service time: waits are exactly
zero and the engine degrades to the DES *structurally*, not just
approximately.  That threshold is exported as
:data:`CONTENTION_FREE_LOAD` and is what the differential tests pin.
Above it, bursts (runs of ``u_i < 1``) queue; waits grow monotonically
in ``load`` (arrival times scale as ``1/load`` with the jitter
sequence held fixed) and without bound past saturation.

The zero-overhead baseline twins ride the *same* arrival calendar with
their smaller work, so ``fct_ratio`` isolates what coordination
metadata costs *under congestion*: extra wire bytes inflate the queue,
not just the pipeline — the new result class this engine opens.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.simulation.engine import (
    ENGINES,
    Engine,
    EngineUnavailableError,
    SimulationResult,
)
from repro.simulation.flow import MIN_PAYLOAD_BYTES
from repro.simulation.spec import SimulationSpec

#: Offered bottleneck utilization used when neither the engine nor the
#: spec's :class:`~repro.simulation.spec.TrafficModel` pins one.
DEFAULT_LOAD = 0.5

#: Arrival jitter bounds.  The low bound doubles as the structural
#: contention-free threshold: at ``load <= JITTER_LOW`` every gap is at
#: least the predecessor's full service time, so no flow ever waits.
JITTER_LOW = 0.1
JITTER_HIGH = 1.9

#: Loads at or below this are provably wait-free: the engine's per-flow
#: FCT equals the exact DES (within float reassociation, far inside
#: 1e-6 relative).  The differential suite evaluates here.
CONTENTION_FREE_LOAD = JITTER_LOW

#: Relative tolerance of the contention engine's uncontended base FCT
#: against the per-packet exact DES (same contract style as
#: :data:`~repro.simulation.engine.BATCH_REL_TOLERANCE`).
CONTENTION_REL_TOLERANCE = 1e-6


class ContentionEngine(Engine):
    """Vectorized per-path output-queue contention.

    Args:
        load: Offered bottleneck utilization per path.  ``None`` defers
            to the spec's ``traffic.offered_load``, then
            :data:`DEFAULT_LOAD`.  Values above 1 model overload
            (queues grow without bound over the trace).
        seed: Seeds the arrival-jitter sequence; evaluation is a pure
            function of ``(spec, load, seed)``.

    Requires NumPy; raises :class:`EngineUnavailableError` without it
    (the exact DES is the semantic fallback at small scale).
    """

    name = "contention"

    def __init__(self, load: Optional[float] = None, seed: int = 0) -> None:
        if load is not None and load <= 0:
            raise ValueError("load must be positive")
        self.load = load
        self.seed = seed

    def resolved_load(self, spec: SimulationSpec) -> float:
        """The utilization this evaluation runs at."""
        if self.load is not None:
            return self.load
        spec_load = getattr(spec.traffic, "offered_load", None)
        if spec_load:
            return spec_load
        return DEFAULT_LOAD

    def _evaluate(self, spec: SimulationSpec) -> SimulationResult:
        try:
            import numpy as np
        except ImportError as exc:  # pragma: no cover - env dependent
            raise EngineUnavailableError(
                "the contention engine needs numpy; use --engine exact "
                "for uncontended per-packet semantics"
            ) from exc

        load = self.resolved_load(spec)
        tm = spec.traffic
        payload, hdr, mtu = tm.packet_payload_bytes, tm.header_bytes, tm.mtu

        num_hops = max(len(path) for path in spec.paths)
        num_paths = len(spec.paths)
        # Per-path hop constants, padded with one inert hop (tx factor
        # and latency 0) past every real chain so the runt recurrence
        # below delivers every flow on a padded column regardless of
        # its path length.
        txf = np.zeros((num_paths, num_hops + 1))
        lat = np.zeros((num_paths, num_hops + 1))
        for p, path in enumerate(spec.paths):
            for h, hop in enumerate(path):
                txf[p, h] = 8.0 / (hop.rate_gbps * 1000.0)
                lat[p, h] = hop.latency_us

        pid = np.fromiter(
            (f.path_id for f in spec.flows), dtype=np.int64,
            count=len(spec.flows),
        )
        msg = np.fromiter(
            (f.message_bytes for f in spec.flows), dtype=np.int64,
            count=len(spec.flows),
        )
        ov = np.fromiter(
            (f.overhead_bytes for f in spec.flows), dtype=np.int64,
            count=len(spec.flows),
        )

        txf_g = txf[pid]  # (flows, hops+1) gathers
        lat_g = lat[pid]
        bottleneck = txf_g.max(axis=1)

        # Measured packetization (MTU widening per the shared rule).
        widened = np.maximum(mtu, ov + hdr + MIN_PAYLOAD_BYTES)
        eff_m = np.minimum(payload, widened - ov - hdr)
        base_m, n_m, wire_m = self._solo(
            np.asarray(eff_m), ov + hdr, msg, txf_g, lat_g, np
        )
        # Zero-overhead baseline twins.
        eff_b = np.full_like(msg, min(payload, mtu - hdr))
        base_b, _n_b, _wire_b = self._solo(
            eff_b, np.full_like(msg, hdr), msg, txf_g, lat_g, np
        )

        # Bottleneck work per flow: total wire bytes through the
        # path's slowest port.
        work_m = wire_m * bottleneck
        work_b = _wire_b * bottleneck

        wait_m = np.zeros(len(spec.flows))
        wait_b = np.zeros(len(spec.flows))
        jitter = np.random.default_rng(self.seed).uniform(
            JITTER_LOW, JITTER_HIGH, len(spec.flows)
        )
        order = np.argsort(pid, kind="stable")  # spec order within path
        bounds = np.searchsorted(pid[order], np.arange(num_paths + 1))
        for p in range(num_paths):
            idx = order[bounds[p]:bounds[p + 1]]
            if len(idx) < 2:
                continue
            t_m = work_m[idx]
            # Arrivals: predecessor's work over load, jittered.
            gaps = np.empty(len(idx))
            gaps[0] = 0.0
            gaps[1:] = t_m[:-1] / load * jitter[idx[1:]]
            starts = np.cumsum(gaps)
            wait_m[idx] = self._fifo_wait(starts, t_m, np)
            wait_b[idx] = self._fifo_wait(starts, work_b[idx], np)

        fct_m = base_m + wait_m
        fct_b = base_b + wait_b
        gp_m = msg * 8.0 / (fct_m * 1000.0)
        gp_b = msg * 8.0 / (fct_b * 1000.0)
        return SimulationResult(
            engine=self.name,
            source=spec.source,
            fct_us=fct_m.tolist(),
            goodput_gbps=gp_m.tolist(),
            num_packets=n_m.tolist(),
            wire_bytes=wire_m.tolist(),
            baseline_fct_us=fct_b.tolist(),
            baseline_goodput_gbps=gp_b.tolist(),
            wait_us=wait_m.tolist(),
            load=load,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _solo(eff, extra, msg, txf_g, lat_g, np) -> Tuple:
        """Uncontended DES-exact (fct, packets, wire) per flow.

        ``eff`` is the effective payload per packet, ``extra`` the
        per-packet overhead + framing bytes; ``txf_g``/``lat_g`` are
        (flows, hops+1) per-hop serialization factors and latencies
        with the inert pad column last.
        """
        n = -(-msg // eff)
        w_full = eff + extra
        w_runt = (msg - (n - 1) * eff) + extra
        wire = (n - 1) * w_full + w_runt

        t_full = w_full[:, None] * txf_g
        t_runt = w_runt[:, None] * txf_g
        s_tx = np.cumsum(t_full, axis=1)
        m_tx = np.maximum.accumulate(t_full, axis=1)
        lat_before = np.concatenate(
            (np.zeros((lat_g.shape[0], 1)), np.cumsum(lat_g, axis=1)[:, :-1]),
            axis=1,
        )
        # Departure of packet N-1 from each hop prefix; -inf disables
        # the constraint for single-packet flows.
        d_prev = s_tx + lat_before + (n - 2)[:, None] * m_tx
        d_prev = np.where((n >= 2)[:, None], d_prev, -np.inf)

        # The runt threads the pipeline behind packet N-1.  Every real
        # chain ends before the pad column, whose zero latency/tx makes
        # the final iteration deliver (arrival past the last hop).
        fct = np.zeros(len(msg))
        for h in range(txf_g.shape[1]):
            arrive = fct + (lat_g[:, h - 1] if h > 0 else 0.0)
            fct = np.maximum(arrive, d_prev[:, h]) + t_runt[:, h]
        return fct, n, wire

    @staticmethod
    def _fifo_wait(starts, work, np):
        """FIFO waits for jobs (start, service) in arrival order.

        ``c_i = max(s_i, c_{i-1}) + T_i`` unrolled: ``c_i = cumT_i +
        running_max(s_j - cumT_{j-1})`` — one cumsum and one cumulative
        max instead of a Python-level scan.  The cumsum cancellation
        leaves ~1-ulp residues (of either sign) on wait-free flows;
        anything below a picosecond-scale fraction of the schedule is
        snapped to exactly zero so the structural contention-free
        guarantee (``load <= JITTER_LOW`` => all-zero waits) holds
        bit-true, not just approximately.
        """
        cum = np.cumsum(work)
        frontier = np.maximum.accumulate(starts - (cum - work))
        wait = cum - work + frontier - starts
        return np.where(wait > 1e-12 * np.maximum(starts, 1.0), wait, 0.0)


def congested_overhead_impact(
    overhead_bytes: int,
    load: Optional[float] = None,
    flows: int = 64,
    packet_payload_bytes: int = 1024,
    seed: int = 0,
    engine: Optional[ContentionEngine] = None,
) -> Tuple[float, float]:
    """Scalar overhead -> (fct_ratio, goodput_ratio) under congestion.

    The congestion-aware sibling of
    :func:`~repro.simulation.engine.overhead_impact`: ``flows``
    identical messages share the uniform 5-hop path's output queue at
    ``load`` utilization, so the worst per-flow ratios price the
    metadata's queueing amplification, not just its pipeline tax.
    """
    spec = SimulationSpec.uniform(
        overhead_bytes,
        packet_payload_bytes=packet_payload_bytes,
        flows=flows,
    )
    resolved = engine or ContentionEngine(load=load, seed=seed)
    result = resolved.evaluate(spec)
    return result.fct_ratio, result.goodput_ratio


ENGINES[ContentionEngine.name] = ContentionEngine

__all__ = [
    "CONTENTION_FREE_LOAD",
    "CONTENTION_REL_TOLERANCE",
    "DEFAULT_LOAD",
    "JITTER_HIGH",
    "JITTER_LOW",
    "ContentionEngine",
    "congested_overhead_impact",
]
