"""Unit tests for the presolve pass: each reduction in isolation.

The differential suite (``test_differential.py``) checks presolve
end-to-end through the solver; these tests pin each individual
transformation — bound rounding, singleton rows, activity arguments,
substitution, the objective offset — plus the telemetry event and the
guarantee that the input model is never mutated.
"""

import pytest

from repro.milp.expr import LinExpr
from repro.milp.model import Model
from repro.milp.presolve import PresolveStatus, presolve
from repro.telemetry import Recorder, attached


class TestIntegerBoundRounding:
    def test_fractional_bounds_snap_inward(self):
        m = Model()
        x = m.add_integer("x", 0.3, 2.7)
        m.add_constr(x + x >= 0)  # keep x out of the singleton path
        m.minimize(x)
        pres = presolve(m)
        assert pres.status == PresolveStatus.REDUCED
        rx = pres.var_map[x]
        assert (rx.lb, rx.ub) == (1.0, 2.0)

    def test_rounding_can_prove_infeasibility(self):
        m = Model()
        m.add_integer("x", 0.2, 0.8)  # no integer in [0.2, 0.8]
        m.minimize(LinExpr() + 0.0)
        assert presolve(m).status == PresolveStatus.INFEASIBLE


class TestSingletonRows:
    def test_singleton_le_becomes_upper_bound(self):
        m = Model()
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        m.add_constr(2 * x <= 7)
        m.add_constr(x + y >= 1)
        m.minimize(x + y)
        pres = presolve(m)
        assert pres.status == PresolveStatus.REDUCED
        assert pres.var_map[x].ub == 3.0  # floor(7/2)
        assert pres.stats.removed_constraints >= 1

    def test_singleton_ge_becomes_lower_bound(self):
        m = Model()
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        m.add_constr(3 * x >= 7)
        m.add_constr(x + y <= 12)
        m.minimize(x + y)
        pres = presolve(m)
        assert pres.var_map[x].lb == 3.0  # ceil(7/3)

    def test_singleton_eq_fixes_the_variable(self):
        m = Model()
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        m.add_constr(x == 4)
        m.add_constr(x + y <= 9)
        m.minimize(y)
        pres = presolve(m)
        assert pres.fixed == {x: 4.0}
        # Substitution folds the fixed value into the remaining row:
        # x + y <= 9 becomes y <= 5, a singleton, hence a bound.
        assert pres.var_map[y].ub == 5.0


class TestActivityArguments:
    def test_redundant_row_is_removed(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constr(x + y <= 10)  # max activity 2: never binds
        m.add_constr(x + 2 * y >= 1)
        m.minimize(x + y)
        pres = presolve(m)
        assert pres.status == PresolveStatus.REDUCED
        assert pres.stats.removed_constraints >= 1
        assert pres.model.num_constraints == 1

    def test_unreachable_row_proves_infeasibility(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constr(x + y >= 5)  # max activity 2
        m.minimize(x + y)
        assert presolve(m).status == PresolveStatus.INFEASIBLE

    def test_implied_bounds_tighten_integers(self):
        m = Model()
        x = m.add_integer("x", 0, 100)
        y = m.add_integer("y", 0, 100)
        m.add_constr(2 * x + 3 * y <= 12)
        m.minimize(-x - y)
        pres = presolve(m)
        assert pres.var_map[x].ub == 6.0  # floor(12/2)
        assert pres.var_map[y].ub == 4.0  # floor(12/3)
        assert pres.stats.tightened_bounds >= 2


class TestFixedSubstitution:
    def test_solved_model_reports_offset(self):
        m = Model()
        x = m.add_integer("x", 3, 3)
        y = m.add_integer("y", 2, 2)
        m.add_constr(x + y <= 5)
        m.minimize(4 * x + 5 * y)
        pres = presolve(m)
        assert pres.status == PresolveStatus.SOLVED
        assert pres.model is None
        assert pres.fixed == {x: 3.0, y: 2.0}
        assert pres.objective_offset == pytest.approx(22.0)

    def test_offset_respects_maximization_sense(self):
        m = Model()
        x = m.add_integer("x", 3, 3)
        m.maximize(4 * x)
        pres = presolve(m)
        assert pres.status == PresolveStatus.SOLVED
        assert pres.objective_offset == pytest.approx(12.0)

    def test_contradicting_fixed_value_is_infeasible(self):
        m = Model()
        x = m.add_integer("x", 2, 2)
        m.add_constr(x <= 1)
        m.minimize(x)
        assert presolve(m).status == PresolveStatus.INFEASIBLE

    def test_reduced_objective_carries_offset_as_constant(self):
        m = Model()
        x = m.add_integer("x", 3, 3)
        y = m.add_integer("y", 0, 9)
        m.add_constr(y + x >= 4)
        m.minimize(2 * x + y)
        pres = presolve(m)
        assert pres.status == PresolveStatus.REDUCED
        assert pres.objective_offset == pytest.approx(6.0)
        assert pres.model.objective.constant == pytest.approx(6.0)


class TestHygiene:
    def test_original_model_is_never_mutated(self):
        m = Model()
        x = m.add_integer("x", 0.3, 2.7)
        y = m.add_integer("y", 4, 4)
        m.add_constr(x + y <= 6)
        m.minimize(x + y)
        presolve(m)
        assert (x.lb, x.ub) == (0.3, 2.7)
        assert (y.lb, y.ub) == (4, 4)
        assert m.num_constraints == 1

    def test_reduced_model_keeps_var_names_and_types(self):
        m = Model()
        x = m.add_integer("x", 0, 5)
        w = m.add_var("w", 0.0, 1.5)
        m.add_constr(x + w <= 4)
        m.add_constr(x + 2 * w >= 1)
        m.minimize(x + w)
        pres = presolve(m)
        assert pres.var_map[x].name == "x"
        assert pres.var_map[x].is_integral
        assert not pres.var_map[w].is_integral

    def test_emits_one_presolve_event(self):
        m = Model()
        x = m.add_integer("x", 0, 5)
        y = m.add_integer("y", 2, 2)
        m.add_constr(x + y <= 6)
        m.minimize(x + y)
        rec = Recorder()
        with attached(rec):
            pres = presolve(m)
        events = rec.of_kind("solver.presolve")
        assert len(events) == 1
        (event,) = events
        assert event["status"] == pres.status
        assert event["vars"] == 2
        assert event["reduced_vars"] == pres.model.num_vars
        assert event["fixed"] == 1
        assert event["rounds"] == pres.stats.rounds

    def test_stats_payload_shape(self):
        m = Model()
        x = m.add_integer("x", 0, 5)
        m.add_constr(2 * x <= 7)
        m.minimize(x)
        pres = presolve(m)
        payload = pres.stats.as_payload()
        assert set(payload) == {"rounds", "fixed", "tightened", "removed"}
        assert all(isinstance(v, int) for v in payload.values())
