"""Exact MILP solving: best-first branch & bound over LP relaxations.

Every node relaxes integrality and solves the LP with HiGHS (through
``scipy.optimize.linprog``).  Fractional integral variables trigger two
child nodes (floor / ceil bound splits); nodes whose LP bound cannot
beat the incumbent are pruned.

The solver runs one of two **profiles**:

* ``"fast"`` (default) — the optimization layer: a presolve pass
  (:mod:`repro.milp.presolve`) shrinks the model before the search,
  **pseudo-cost branching** picks branching variables from observed
  LP-bound degradations instead of raw fractionality, and the primal
  heuristics (:mod:`repro.milp.heuristics`) supply early incumbents so
  pruning bites sooner.  Telemetry gains ``solver.presolve``,
  ``solver.branching`` and ``solver.heuristic`` events, and heuristic
  incumbents carry ``source="heuristic"``.
* ``"classic"`` — the historical search, byte-for-byte: no presolve,
  most-fractional branching, and the original heuristic event sources
  (``root_dive`` / ``dive`` / ``rounding``).  Kept as the trusted
  differential baseline; ``tests/milp/test_differential.py`` pins that
  both profiles return identical optimal objectives.

Both profiles are exact: they prove optimality through LP bounds and
differ only in how fast they get there.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from typing import Union

from repro.milp import heuristics as _heuristics
from repro.milp.model import Model, Var
from repro.milp.presolve import PresolveCache, PresolveStatus, presolve
from repro.milp.solution import Solution, SolveStatus
from repro.telemetry import emit

#: Warm-start input accepted by :meth:`BranchBoundSolver.solve`: either
#: a raw assignment over the model's own variables, or a prior
#: :class:`Solution` (whose values are remapped by *variable name*, so
#: an incumbent survives the model being rebuilt between replans).
WarmStart = Union[Dict[Var, float], Solution]

_INT_TOL = 1e-6
_OBJ_TOL = 1e-9

#: Search profiles accepted by :class:`BranchBoundSolver`.
PROFILE_FAST = "fast"
PROFILE_CLASSIC = "classic"
SOLVER_PROFILES = (PROFILE_FAST, PROFILE_CLASSIC)
DEFAULT_PROFILE = PROFILE_FAST


@dataclass(order=True)
class _Node:
    bound: float
    tie: int
    var_bounds: List[Tuple[float, float]] = field(compare=False)


class _PseudoCosts:
    """Per-variable branching statistics (fast profile only).

    For every branching on variable ``j`` at LP value ``v`` with
    fractionality ``f = v - floor(v)``, the observed LP-bound
    degradation of the floor child divided by ``f`` (respectively of
    the ceil child divided by ``1 - f``) updates the down
    (respectively up) pseudo-cost.  Unobserved directions fall back to
    the average observed pseudo-cost, the standard initialization.
    """

    def __init__(self, n: int) -> None:
        self._sums = [[0.0] * n, [0.0] * n]  # [down, up]
        self._counts = [[0] * n, [0] * n]
        self.observations = 0

    def update(self, idx: int, up: bool, degradation: float) -> None:
        side = 1 if up else 0
        self._sums[side][idx] += max(degradation, 0.0)
        self._counts[side][idx] += 1
        self.observations += 1

    def reliable(self, idx: int) -> bool:
        """Whether ``idx`` has been observed in both directions."""
        return bool(self._counts[0][idx] and self._counts[1][idx])

    def _average(self) -> float:
        total = sum(self._sums[0]) + sum(self._sums[1])
        count = sum(self._counts[0]) + sum(self._counts[1])
        return total / count if count else 1.0

    def score(self, idx: int, frac: float) -> float:
        """The product score of branching on ``idx`` (higher = better)."""
        fallback = self._average()
        down = (
            self._sums[0][idx] / self._counts[0][idx]
            if self._counts[0][idx]
            else fallback
        )
        up = (
            self._sums[1][idx] / self._counts[1][idx]
            if self._counts[1][idx]
            else fallback
        )
        eps = 1e-6
        return max(down * frac, eps) * max(up * (1.0 - frac), eps)


class BranchBoundSolver:
    """Exact solver for :class:`~repro.milp.model.Model` instances.

    Args:
        time_limit_s: Wall-clock budget; on expiry the best incumbent is
            returned with status FEASIBLE (or TIME_LIMIT if none).
        node_limit: Hard cap on explored nodes.
        gap_tolerance: Relative gap at which the search may stop early.
        profile: ``"fast"`` (presolve + pseudo-cost branching + primal
            heuristics) or ``"classic"`` (the historical search); see
            the module docstring.

    Telemetry: when a sink is attached via :mod:`repro.telemetry`, the
    solver emits one ``solver.lp`` event per LP relaxation solved, one
    ``solver.node`` per explored node, ``solver.prune`` on every pruned
    node/child, ``solver.incumbent`` (with objective, bound and
    relative gap) whenever the incumbent improves, and a final
    ``solver.done`` carrying the :meth:`Solution.summary`.  Event
    counts therefore match ``Solution.lp_solves`` and
    ``Solution.nodes_explored`` exactly, and the gap values across the
    ``solver.incumbent`` stream trace the convergence trajectory
    (monotone non-increasing: the proven gap only ever shrinks, so an
    emitted gap is clamped by its predecessor when the relative
    normalization would otherwise bounce it upward).  The fast profile
    additionally emits ``solver.presolve`` (model reduction),
    ``solver.branching`` (per branching decision) and
    ``solver.heuristic`` (per heuristic attempt) events.  Without a
    sink every emit is a no-op.
    """

    def __init__(
        self,
        time_limit_s: float = 300.0,
        node_limit: int = 200_000,
        gap_tolerance: float = 1e-6,
        profile: str = DEFAULT_PROFILE,
        presolve_cache: Optional[PresolveCache] = None,
    ) -> None:
        if time_limit_s <= 0:
            raise ValueError("time_limit_s must be positive")
        if profile not in SOLVER_PROFILES:
            raise ValueError(
                f"profile must be one of {SOLVER_PROFILES}, got {profile!r}"
            )
        self.time_limit_s = time_limit_s
        self.node_limit = node_limit
        self.gap_tolerance = gap_tolerance
        self.profile = profile
        #: Optional cross-solve presolve memo (fast profile only): when
        #: consecutive solves see structurally identical models (the
        #: reconciler's replan loop), the reduction is reused via
        #: :meth:`PresolveCache.fetch` instead of recomputed.
        self.presolve_cache = presolve_cache

    # ------------------------------------------------------------------
    def solve(
        self,
        model: Model,
        initial: Optional[WarmStart] = None,
    ) -> Solution:
        """Solve ``model``; ``initial`` optionally warm-starts the search.

        A feasible ``initial`` assignment becomes the first incumbent,
        so the search starts with a pruning bound instead of hunting
        for one; an infeasible assignment is silently ignored.  A prior
        :class:`Solution` is accepted directly: its values are remapped
        onto ``model``'s variables by name, so an incumbent from the
        previous replan survives the model being rebuilt (names the new
        model lacks are dropped; variables the solution lacks default
        to their encoding's zero).
        """
        start = time.perf_counter()
        warm = self._coerce_initial(model, initial)
        if self.profile == PROFILE_CLASSIC:
            return self._finish(self._search(model, warm, start))
        return self._finish(self._solve_fast(model, warm, start))

    @staticmethod
    def _coerce_initial(
        model: Model, initial: Optional[WarmStart]
    ) -> Optional[Dict[Var, float]]:
        """Normalize a warm start onto ``model``'s own variables."""
        if initial is None or not isinstance(initial, Solution):
            return initial
        if not initial.status.has_solution:
            return None
        remapped: Dict[Var, float] = {}
        for var, value in initial.values.items():
            try:
                remapped[model.var(var.name)] = value
            except KeyError:
                continue
        return remapped or None

    # ------------------------------------------------------------------
    def _solve_fast(
        self,
        model: Model,
        initial: Optional[Dict[Var, float]],
        start: float,
    ) -> Solution:
        """Fast profile: presolve, solve the reduction, lift back."""
        pres = (
            self.presolve_cache.fetch(model)
            if self.presolve_cache is not None
            else presolve(model)
        )
        if pres.status == PresolveStatus.INFEASIBLE:
            return Solution(
                SolveStatus.INFEASIBLE,
                wall_time_s=time.perf_counter() - start,
            )
        if pres.status == PresolveStatus.SOLVED:
            values = dict(pres.fixed)
            if not model.is_feasible(values):  # pragma: no cover - guard
                return Solution(
                    SolveStatus.INFEASIBLE,
                    wall_time_s=time.perf_counter() - start,
                )
            emit(
                "solver.incumbent",
                source="presolve",
                objective=pres.objective_offset,
                bound=pres.objective_offset,
                gap=0.0,
            )
            return Solution(
                SolveStatus.OPTIMAL,
                objective=pres.objective_offset,
                values=values,
                wall_time_s=time.perf_counter() - start,
                gap=0.0,
            )

        projected = (
            pres.project_values(initial) if initial is not None else None
        )
        inner = self._search(pres.model, projected, start)
        objective = inner.objective
        values = inner.values
        if inner.status.has_solution:
            objective = (
                inner.objective + pres.objective_offset
                if inner.objective is not None
                else None
            )
            values = pres.lift_values(inner.values)
        return Solution(
            inner.status,
            objective=objective,
            values=values,
            nodes_explored=inner.nodes_explored,
            lp_solves=inner.lp_solves,
            wall_time_s=time.perf_counter() - start,
            gap=inner.gap,
        )

    # ------------------------------------------------------------------
    def _search(
        self,
        model: Model,
        initial: Optional[Dict[Var, float]],
        start: float,
    ) -> Solution:
        """The branch & bound search itself (profile-parameterized)."""
        fast = self.profile == PROFILE_FAST
        c, a_ub, b_ub, a_eq, b_eq, root_bounds = model.to_arrays()
        int_indices = [v.index for v in model.variables if v.is_integral]
        sign = -1.0 if model.maximize_objective else 1.0

        lbs = np.array([b[0] for b in root_bounds])
        ubs = np.array([b[1] for b in root_bounds])
        int_mask = np.zeros(len(root_bounds), dtype=bool)
        int_mask[int_indices] = True

        def feasible(x: np.ndarray, tol: float = 1e-6) -> bool:
            """Vectorized feasibility of a candidate point."""
            if ((x < lbs - tol) | (x > ubs + tol)).any():
                return False
            if int_mask.any():
                xi = x[int_mask]
                if (np.abs(xi - np.round(xi)) > tol).any():
                    return False
            if a_ub is not None and (a_ub @ x > b_ub + tol).any():
                return False
            if a_eq is not None and (np.abs(a_eq @ x - b_eq) > tol).any():
                return False
            return True

        lp_solves = 0
        nodes_explored = 0
        incumbent: Optional[np.ndarray] = None
        incumbent_obj = math.inf  # in minimize space
        last_gap: Optional[float] = None

        def emit_incumbent(
            source: str,
            obj: float,
            bound: Optional[float],
            **extra: object,
        ) -> None:
            """Report an improved incumbent; gaps are clamped monotone
            (the proven gap only shrinks — a relative-gap bounce from
            the shrinking denominator is a normalization artifact, not
            a loosened proof)."""
            nonlocal last_gap
            gap = (
                self._relative_gap(obj, bound)
                if bound is not None
                else None
            )
            if gap is not None:
                if last_gap is not None:
                    gap = min(gap, last_gap)
                last_gap = gap
            emit(
                "solver.incumbent",
                source=source,
                objective=sign * obj,
                bound=sign * bound if bound is not None else None,
                gap=gap,
                **extra,
            )

        if initial is not None:
            candidate = np.zeros(len(model.variables))
            for var in model.variables:
                candidate[var.index] = float(initial.get(var, 0.0))
            for idx in int_indices:
                candidate[idx] = round(candidate[idx])
            if feasible(candidate):
                incumbent = candidate
                incumbent_obj = float(c @ candidate)
                emit_incumbent("warm_start", incumbent_obj, None)

        def lp(bounds: List[Tuple[float, float]]):
            nonlocal lp_solves
            lp_solves += 1
            emit("solver.lp")
            return linprog(
                c,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                method="highs",
            )

        root = lp(root_bounds)
        if root.status == 2:
            return Solution(
                SolveStatus.INFEASIBLE,
                lp_solves=lp_solves,
                wall_time_s=time.perf_counter() - start,
            )
        if root.status == 3:
            return Solution(
                SolveStatus.UNBOUNDED,
                lp_solves=lp_solves,
                wall_time_s=time.perf_counter() - start,
            )
        if root.status != 0:  # pragma: no cover - numerical trouble
            raise RuntimeError(f"LP solver failed: {root.message}")

        deadline = start + self.time_limit_s

        # Root dive: fix near-integral variables one at a time to seed
        # an incumbent early — essential for models whose LP relaxation
        # is weak (e.g. min-switch-count objectives).
        dive = _heuristics.bounded_dive(
            lp,
            root.x,
            root_bounds,
            int_indices,
            feasible,
            c,
            deadline,
            telemetry=fast,
            sign=sign,
        )
        if dive is not None and dive[1] < incumbent_obj:
            incumbent, incumbent_obj = dive
            emit_incumbent(
                "heuristic" if fast else "root_dive",
                incumbent_obj,
                root.fun,
                **({"heuristic": "diving"} if fast else {}),
            )

        tie = itertools.count()
        heap: List[_Node] = [_Node(root.fun, next(tie), root_bounds)]
        # Cache the root LP solution so the first pop skips a re-solve.
        cached: Dict[int, Tuple[np.ndarray, float]] = {
            id(root_bounds): (root.x, root.fun)
        }

        pseudo = _PseudoCosts(len(root_bounds)) if fast else None
        best_bound = root.fun
        timed_out = False

        while heap:
            if time.perf_counter() - start > self.time_limit_s:
                timed_out = True
                break
            if nodes_explored >= self.node_limit:
                timed_out = True
                break
            node = heapq.heappop(heap)
            if node.bound >= incumbent_obj - _OBJ_TOL:
                # Pruned: cannot improve the incumbent.
                emit("solver.prune", where="pop", bound=sign * node.bound)
                continue
            best_bound = min(node.bound, incumbent_obj)

            hit = cached.pop(id(node.var_bounds), None)
            if hit is not None:
                x, obj = hit
            else:
                res = lp(node.var_bounds)
                if res.status != 0:
                    # Infeasible/unbounded subproblem.
                    emit("solver.prune", where="node_infeasible")
                    continue
                x, obj = res.x, res.fun
            nodes_explored += 1
            emit("solver.node", bound=sign * obj)
            if obj >= incumbent_obj - _OBJ_TOL:
                emit("solver.prune", where="node_bound", bound=sign * obj)
                continue

            frac_var = self._select_branch_var(x, int_indices, pseudo)
            if frac_var is None:
                # Integral LP optimum: new incumbent.
                incumbent = x.copy()
                incumbent_obj = obj
                emit_incumbent("node", incumbent_obj, best_bound)
                continue

            # Periodic dive while no incumbent exists: weak relaxations
            # can otherwise branch for the whole budget without ever
            # reaching an integral vertex.
            if incumbent is None and nodes_explored % 50 == 1:
                dived = _heuristics.bounded_dive(
                    lp,
                    x,
                    node.var_bounds,
                    int_indices,
                    feasible,
                    c,
                    deadline,
                    telemetry=fast,
                    sign=sign,
                )
                if dived is not None:
                    incumbent, incumbent_obj = dived
                    emit_incumbent(
                        "heuristic" if fast else "dive",
                        incumbent_obj,
                        best_bound,
                        **({"heuristic": "diving"} if fast else {}),
                    )

            # Rounding heuristic: snap integral vars, re-check.
            rounded = _heuristics.round_to_feasible(
                x, int_indices, feasible, c, telemetry=fast, sign=sign
            )
            if rounded is not None:
                r_obj = float(c @ rounded)
                if r_obj < incumbent_obj - _OBJ_TOL:
                    incumbent = rounded
                    incumbent_obj = r_obj
                    emit_incumbent(
                        "heuristic" if fast else "rounding",
                        incumbent_obj,
                        best_bound,
                        **({"heuristic": "rounding"} if fast else {}),
                    )

            value = x[frac_var]
            frac = value - math.floor(value)
            for child_up, (lo, hi) in (
                (False, (node.var_bounds[frac_var][0], math.floor(value))),
                (True, (math.ceil(value), node.var_bounds[frac_var][1])),
            ):
                if lo > hi:
                    continue
                child_bounds = list(node.var_bounds)
                child_bounds[frac_var] = (float(lo), float(hi))
                res = lp(child_bounds)
                if res.status != 0:
                    emit("solver.prune", where="child_infeasible")
                    continue
                if pseudo is not None:
                    width = (1.0 - frac) if child_up else frac
                    if width > _INT_TOL:
                        pseudo.update(
                            frac_var,
                            child_up,
                            (res.fun - obj) / width,
                        )
                if res.fun >= incumbent_obj - _OBJ_TOL:
                    emit(
                        "solver.prune",
                        where="child_bound",
                        bound=sign * res.fun,
                    )
                    continue
                child = _Node(res.fun, next(tie), child_bounds)
                cached[id(child_bounds)] = (res.x, res.fun)
                heapq.heappush(heap, child)

        wall = time.perf_counter() - start
        if incumbent is None:
            status = (
                SolveStatus.TIME_LIMIT if timed_out else SolveStatus.INFEASIBLE
            )
            return Solution(
                status,
                nodes_explored=nodes_explored,
                lp_solves=lp_solves,
                wall_time_s=wall,
            )

        values = {
            var: (
                float(round(incumbent[var.index]))
                if var.is_integral
                else float(incumbent[var.index])
            )
            for var in model.variables
        }
        status = (
            SolveStatus.FEASIBLE
            if timed_out and heap
            else SolveStatus.OPTIMAL
        )
        # Gap invariant: an exhausted search proved optimality, so the
        # gap is exactly 0.0 (never None) on OPTIMAL; a truncated
        # search reports the true incumbent-vs-bound gap (clamped by
        # the emitted trajectory, which is itself a valid proven gap),
        # a finite float whenever an incumbent exists (the root LP
        # bound is finite).
        if status is SolveStatus.OPTIMAL:
            gap = 0.0
        else:
            gap = self._relative_gap(incumbent_obj, best_bound)
            if gap is not None and last_gap is not None:
                gap = min(gap, last_gap)
        return Solution(
            status,
            objective=sign * incumbent_obj,
            values=values,
            nodes_explored=nodes_explored,
            lp_solves=lp_solves,
            wall_time_s=wall,
            gap=gap,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _finish(solution: Solution) -> Solution:
        """Emit the terminal ``solver.done`` event and pass through."""
        emit("solver.done", **solution.summary())
        return solution

    # ------------------------------------------------------------------
    def _select_branch_var(
        self,
        x: np.ndarray,
        int_indices: List[int],
        pseudo: Optional[_PseudoCosts],
    ) -> Optional[int]:
        """Pick the branching variable, or None if ``x`` is integral.

        Classic profile: the most fractional variable.  Fast profile:
        reliability branching — most-fractional among variables not yet
        observed in both directions (initializing their statistics),
        then the best product score of up/down pseudo-costs once every
        fractional candidate is reliable.  Each fast-profile decision
        emits one ``solver.branching`` event.
        """
        if pseudo is None:
            return self._most_fractional(x, int_indices)
        # Reliability rule: while any fractional variable still lacks
        # observations in either direction, branch most-fractional
        # among the unreliable ones — the branching itself gathers the
        # missing statistics.  Trusting a half-empty pseudo-cost table
        # (average-initialized) measurably degrades assignment-style
        # models, where early observations mislead the product score.
        unreliable_idx: Optional[int] = None
        unreliable_dist = _INT_TOL
        best_idx: Optional[int] = None
        best_key: Optional[Tuple[float, float]] = None
        for idx in int_indices:
            frac = x[idx] - math.floor(x[idx])
            dist = abs(x[idx] - round(x[idx]))
            if dist <= _INT_TOL:
                continue
            if not pseudo.reliable(idx):
                if dist > unreliable_dist:
                    unreliable_dist = dist
                    unreliable_idx = idx
                continue
            key = (pseudo.score(idx, frac), dist)
            if best_key is None or key > best_key:
                best_key = key
                best_idx = idx
        if unreliable_idx is not None:
            emit(
                "solver.branching",
                rule="most_fractional",
                var=unreliable_idx,
                frac=unreliable_dist,
            )
            return unreliable_idx
        if best_idx is not None:
            emit(
                "solver.branching",
                rule="pseudo_cost",
                var=best_idx,
                frac=abs(x[best_idx] - round(x[best_idx])),
                score=best_key[0],
            )
        return best_idx

    @staticmethod
    def _most_fractional(
        x: np.ndarray, int_indices: List[int]
    ) -> Optional[int]:
        """The integral variable farthest from an integer, or None."""
        best_idx: Optional[int] = None
        best_dist = _INT_TOL
        for idx in int_indices:
            dist = abs(x[idx] - round(x[idx]))
            if dist > best_dist:
                best_dist = dist
                best_idx = idx
        return best_idx

    @staticmethod
    def _relative_gap(incumbent: float, bound: float) -> Optional[float]:
        """Relative incumbent-vs-bound gap in minimize space.

        The bound is a valid lower bound, so the numerator clamps at
        zero — a bound that numerically overshoots the incumbent proves
        a zero gap, not a negative one.
        """
        if math.isinf(bound):
            return None
        denom = max(abs(incumbent), 1e-9)
        return max(incumbent - bound, 0.0) / denom


def solve(
    model: Model,
    time_limit_s: float = 300.0,
    profile: str = DEFAULT_PROFILE,
) -> Solution:
    """Convenience wrapper: solve ``model`` with default settings."""
    return BranchBoundSolver(
        time_limit_s=time_limit_s, profile=profile
    ).solve(model)
