"""Tests for boundary-move local search refinement."""

import pytest

from repro.core.analyzer import ProgramAnalyzer
from repro.core.heuristic import GreedyHeuristic
from repro.core.refine import refine_plan
from repro.core.verification import verify_dataflow
from repro.network.generators import linear_topology
from repro.network.topozoo import topology_zoo_wan
from repro.workloads.switchp4 import real_programs
from repro.workloads.synthetic import synthetic_programs
from tests.conftest import make_sketch_program


@pytest.fixture(scope="module")
def midscale_unrefined():
    programs = real_programs(10) + synthetic_programs(10, seed=7)
    network = topology_zoo_wan(10)
    tdg = ProgramAnalyzer().analyze(programs)
    return GreedyHeuristic(refine=False).deploy(tdg, network)


class TestRefinePlan:
    def test_never_worse(self, midscale_unrefined):
        refined = refine_plan(midscale_unrefined)
        assert (
            refined.max_metadata_bytes()
            <= midscale_unrefined.max_metadata_bytes()
        )

    def test_improves_midscale(self, midscale_unrefined):
        refined = refine_plan(midscale_unrefined)
        assert (
            refined.max_metadata_bytes()
            < midscale_unrefined.max_metadata_bytes()
        )

    def test_result_validates_and_verifies(self, midscale_unrefined):
        refined = refine_plan(midscale_unrefined)
        refined.validate()
        verify_dataflow(refined)

    def test_input_plan_untouched(self, midscale_unrefined):
        before = {
            name: placement.switch
            for name, placement in midscale_unrefined.placements.items()
        }
        before_amax = midscale_unrefined.max_metadata_bytes()
        refine_plan(midscale_unrefined)
        after = {
            name: placement.switch
            for name, placement in midscale_unrefined.placements.items()
        }
        assert before == after
        assert midscale_unrefined.max_metadata_bytes() == before_amax

    def test_zero_overhead_plan_is_fixed_point(self, six_programs):
        network = linear_topology(3, num_stages=4, stage_capacity=1.0)
        tdg = ProgramAnalyzer().analyze(six_programs)
        plan = GreedyHeuristic(refine=False).deploy(tdg, network)
        assert plan.max_metadata_bytes() == 0
        refined = refine_plan(plan)
        assert refined.max_metadata_bytes() == 0

    def test_move_budget_respected(self, midscale_unrefined):
        # With a zero budget nothing changes.
        same = refine_plan(midscale_unrefined, max_moves=0)
        assert (
            same.max_metadata_bytes()
            == midscale_unrefined.max_metadata_bytes()
        )


class TestHeuristicRefineFlag:
    def test_flag_default_on_and_beats_off(self):
        programs = real_programs(10) + synthetic_programs(10, seed=7)
        network = topology_zoo_wan(10)
        tdg = ProgramAnalyzer().analyze(programs)
        refined = GreedyHeuristic().deploy(tdg, network)
        unrefined = GreedyHeuristic(refine=False).deploy(tdg, network)
        assert (
            refined.max_metadata_bytes()
            <= unrefined.max_metadata_bytes()
        )
