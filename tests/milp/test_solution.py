"""Unit tests for the Solution container."""

import pytest

from repro.milp.model import Model
from repro.milp.solution import Solution, SolveStatus


@pytest.fixture
def solved():
    model = Model()
    x = model.add_binary("x")
    y = model.add_var("y", 0, 5)
    solution = Solution(
        SolveStatus.OPTIMAL,
        objective=3.0,
        values={x: 1.0, y: 2.5},
        nodes_explored=4,
        lp_solves=9,
        wall_time_s=0.1,
        gap=0.0,
    )
    return model, x, y, solution


class TestSolution:
    def test_accessors(self, solved):
        _model, x, y, solution = solved
        assert solution[x] == 1.0
        assert solution.value(y) == 2.5
        assert solution.rounded(x) == 1

    def test_value_default(self, solved):
        model, *_vars, solution = solved
        ghost = model.add_var("ghost")
        assert solution.value(ghost, default=7.0) == 7.0

    def test_status_has_solution(self):
        assert SolveStatus.OPTIMAL.has_solution
        assert SolveStatus.FEASIBLE.has_solution
        assert not SolveStatus.INFEASIBLE.has_solution
        assert not SolveStatus.UNBOUNDED.has_solution
        assert not SolveStatus.TIME_LIMIT.has_solution

    def test_repr_handles_missing_objective(self):
        text = repr(Solution(SolveStatus.INFEASIBLE))
        assert "infeasible" in text
