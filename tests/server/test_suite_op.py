"""The ``suite_run`` op: params, dispatch, streaming, differential."""

import pytest

from repro.baselines import Ffl, Ffls
from repro.plan.serialize import canonical_dumps
from repro.server.client import ReproClient, ServerError
from repro.server.ops import OpError, deterministic_view, suite_op

TINY_SPEC = {
    "suite": "repro.suite/v1",
    "name": "tiny",
    "kind": "deployment",
    "axes": {
        "workloads": ["real:2"],
        "topologies": ["linear-3"],
        "frameworks": ["ffl", "ffls"],
    },
}


class TestParams:
    def test_needs_exactly_one_of_name_or_spec(self):
        with pytest.raises(OpError, match="exactly one"):
            suite_op({})
        with pytest.raises(OpError, match="exactly one"):
            suite_op({"name": "smoke", "spec": TINY_SPEC})

    def test_unknown_param_rejected(self):
        with pytest.raises(OpError, match="unknown params"):
            suite_op({"name": "smoke", "bogus": 1})

    def test_unknown_name_rejected(self):
        with pytest.raises(OpError, match="unknown suite spec"):
            suite_op({"name": "exp99"})

    def test_invalid_inline_spec_rejected(self):
        with pytest.raises(OpError, match="unknown suite kind"):
            suite_op({"spec": {**TINY_SPEC, "kind": "nope"}})
        with pytest.raises(OpError, match="document object"):
            suite_op({"spec": "smoke"})

    def test_local_run_produces_a_report_doc(self):
        doc = suite_op({"spec": TINY_SPEC})
        report = doc["report"]
        assert report["version"] == "repro.suite-report/v1"
        assert report["name"] == "tiny"
        assert len(report["cells"]) == 2


class TestServer:
    def test_differential_with_local_op(self, server):
        """Server and in-process runs agree on the deterministic view
        byte for byte (the cache-hit flags are excluded by design)."""
        local = suite_op({"spec": TINY_SPEC})
        with ReproClient.connect(server.address) as client:
            remote = client.request("suite_run", {"spec": TINY_SPEC})
        assert canonical_dumps(
            deterministic_view("suite_run", remote)
        ) == canonical_dumps(deterministic_view("suite_run", local))

    def test_shipped_name_resolves_server_side(self, server):
        with ReproClient.connect(server.address) as client:
            doc = client.request("suite_run", {"name": "smoke"})
        assert doc["report"]["name"] == "smoke"
        assert len(doc["report"]["cells"]) == 8

    def test_per_cell_telemetry_streams(self, server):
        events = []
        with ReproClient.connect(server.address) as client:
            client.subscribe()
            client.request(
                "suite_run",
                {"spec": TINY_SPEC},
                on_event=lambda frame: events.append(frame["data"]),
            )
        kinds = [e.get("kind") for e in events]
        assert "suite.start" in kinds
        assert kinds.count("suite.cell") == 2
        assert "suite.done" in kinds
        cells = [e for e in events if e.get("kind") == "suite.cell"]
        assert {c["framework"] for c in cells} == {
            Ffl().name, Ffls().name
        }

    def test_op_error_envelope(self, server):
        with ReproClient.connect(server.address) as client:
            with pytest.raises(ServerError) as err:
                client.request("suite_run", {"name": "exp99"})
            assert err.value.code == "invalid_params"
            assert client.ping()["pong"] is True
