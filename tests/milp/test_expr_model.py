"""Unit tests for the MILP modeling layer."""

import numpy as np
import pytest

from repro.milp.expr import LinExpr
from repro.milp.model import Constraint, Model, Sense, VarType


@pytest.fixture
def model():
    return Model("m")


class TestLinExpr:
    def test_arithmetic(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        expr = 2 * x + y - 3
        assert expr.coefs[x] == 2
        assert expr.coefs[y] == 1
        assert expr.constant == -3

    def test_nested_combination(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        expr = (x + y) * 2 - (x - 1) / 2
        assert expr.coefs[x] == pytest.approx(1.5)
        assert expr.coefs[y] == pytest.approx(2.0)
        assert expr.constant == pytest.approx(0.5)

    def test_negation_and_rsub(self, model):
        x = model.add_var("x")
        expr = 5 - x
        assert expr.coefs[x] == -1
        assert expr.constant == 5
        assert (-(x + 1)).constant == -1

    def test_total_linear_time_semantics(self, model):
        xs = [model.add_var(f"x{i}") for i in range(100)]
        expr = LinExpr.total(x * 2 for x in xs)
        assert len(expr.coefs) == 100
        assert all(c == 2 for c in expr.coefs.values())

    def test_total_mixed_terms(self, model):
        x = model.add_var("x")
        expr = LinExpr.total([x, 2 * x, 5, LinExpr(constant=1.0)])
        assert expr.coefs[x] == 3
        assert expr.constant == 6

    def test_total_rejects_garbage(self):
        with pytest.raises(TypeError):
            LinExpr.total(["nope"])

    def test_var_products_forbidden(self, model):
        x = model.add_var("x")
        with pytest.raises(TypeError, match="scalars"):
            (x + 1) * (x + 1)  # noqa: B018

    def test_value_evaluation(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        expr = 2 * x + 3 * y + 1
        assert expr.value({x: 2.0, y: 1.0}) == pytest.approx(8.0)

    def test_comparisons_build_constraints(self, model):
        x = model.add_var("x")
        le = x <= 5
        ge = x >= 1
        eq = x == 3
        assert isinstance(le, Constraint) and le.sense is Sense.LE
        assert isinstance(ge, Constraint) and ge.sense is Sense.GE
        assert isinstance(eq, Constraint) and eq.sense is Sense.EQ


class TestModel:
    def test_variable_kinds(self, model):
        x = model.add_var("x")
        b = model.add_binary("b")
        i = model.add_integer("i", 0, 9)
        assert x.var_type is VarType.CONTINUOUS
        assert b.var_type is VarType.BINARY and (b.lb, b.ub) == (0.0, 1.0)
        assert i.is_integral
        assert model.num_vars == 3
        assert model.num_integer_vars == 2

    def test_duplicate_names_rejected(self, model):
        model.add_var("x")
        with pytest.raises(ValueError, match="duplicate"):
            model.add_var("x")

    def test_anonymous_names(self, model):
        a = model.add_var()
        b = model.add_var()
        assert a.name != b.name

    def test_bad_bounds(self, model):
        with pytest.raises(ValueError):
            model.add_var("x", lb=2, ub=1)

    def test_lookup(self, model):
        x = model.add_var("x")
        assert model.var("x") is x
        with pytest.raises(KeyError):
            model.var("ghost")

    def test_add_constr_type_check(self, model):
        with pytest.raises(TypeError):
            model.add_constr(True)  # accidental boolean comparison

    def test_constraint_naming(self, model):
        x = model.add_var("x")
        c = model.add_constr(x <= 1, name="cap")
        assert c.name == "cap"

    def test_is_feasible(self, model):
        x = model.add_binary("x")
        y = model.add_var("y", 0, 10)
        model.add_constr(x + y <= 5)
        assert model.is_feasible({x: 1.0, y: 4.0})
        assert not model.is_feasible({x: 1.0, y: 5.0})  # violates constr
        assert not model.is_feasible({x: 0.5, y: 1.0})  # fractional binary
        assert not model.is_feasible({x: 0.0, y: 11.0})  # out of bounds

    def test_objective_value(self, model):
        x = model.add_var("x")
        model.minimize(3 * x + 2)
        assert model.objective_value({x: 2.0}) == pytest.approx(8.0)


class TestToArrays:
    def test_sparse_export_shapes(self, model):
        x = model.add_var("x", 0, 4)
        y = model.add_binary("y")
        model.add_constr(x + 2 * y <= 4)
        model.add_constr(x - y >= 1)
        model.add_constr(x + y == 3)
        model.minimize(x + y)
        c, a_ub, b_ub, a_eq, b_eq, bounds = model.to_arrays()
        assert c.tolist() == [1.0, 1.0]
        assert a_ub.shape == (2, 2)
        assert a_eq.shape == (1, 2)
        # GE row flipped: x - y >= 1 -> -x + y <= -1
        assert a_ub.toarray()[1].tolist() == [-1.0, 1.0]
        assert b_ub.tolist() == [4.0, -1.0]
        assert b_eq.tolist() == [3.0]
        assert bounds == [(0.0, 4.0), (0.0, 1.0)]

    def test_maximize_negates_objective(self, model):
        x = model.add_var("x")
        model.maximize(5 * x)
        c, *_ = model.to_arrays()
        assert c.tolist() == [-5.0]

    def test_empty_constraint_blocks_are_none(self, model):
        model.add_var("x")
        c, a_ub, b_ub, a_eq, b_eq, _bounds = model.to_arrays()
        assert a_ub is None and b_ub is None
        assert a_eq is None and b_eq is None
