"""Unit tests for churn scenarios: validity, determinism, round-trip."""

import pytest

from repro.network.generators import random_wan
from repro.runtime import (
    EventKind,
    NetworkEvent,
    Scenario,
    ScenarioError,
    batch_events,
    generate_scenario,
    read_scenario,
    write_scenario,
)


@pytest.fixture
def network():
    return random_wan(12, 18, seed=4)


class TestNetworkEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ScenarioError, match="unknown event kind"):
            NetworkEvent(1.0, "switch_explode", "s0")

    def test_rejects_negative_time(self):
        with pytest.raises(ScenarioError, match=">= 0"):
            NetworkEvent(-1.0, EventKind.SWITCH_FAIL, "s0")

    def test_link_target_parsing(self):
        event = NetworkEvent(1.0, EventKind.LINK_LATENCY, "a|b", 5.0)
        assert event.link == ("a", "b")
        with pytest.raises(ScenarioError, match="not a link"):
            _ = NetworkEvent(1.0, EventKind.SWITCH_FAIL, "a").link

    def test_round_trip(self):
        event = NetworkEvent(2.5, EventKind.SET_PROGRAMMABLE, "s3", 1.0)
        assert NetworkEvent.from_dict(event.to_dict()) == event


class TestScenario:
    def test_requires_sorted_events(self):
        events = (
            NetworkEvent(2.0, EventKind.SWITCH_FAIL, "a"),
            NetworkEvent(1.0, EventKind.SWITCH_FAIL, "b"),
        )
        with pytest.raises(ScenarioError, match="sorted"):
            Scenario("x", 0, "real:2", "linear:3", events)

    def test_file_round_trip(self, tmp_path, network):
        scenario = generate_scenario(network, num_events=6, seed=1)
        path = str(tmp_path / "scenario.json")
        write_scenario(scenario, path)
        loaded = read_scenario(path)
        assert loaded == scenario
        assert loaded.fingerprint() == scenario.fingerprint()

    def test_schema_gate(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/v9"}')
        with pytest.raises(ScenarioError, match="not a scenario"):
            read_scenario(str(path))

    def test_not_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            read_scenario(str(path))


class TestGenerator:
    def test_deterministic(self, network):
        a = generate_scenario(network, num_events=10, seed=5)
        b = generate_scenario(network, num_events=10, seed=5)
        assert a == b
        c = generate_scenario(network, num_events=10, seed=6)
        assert a != c

    def test_event_count_and_ordering(self, network):
        scenario = generate_scenario(network, num_events=15, seed=2)
        assert len(scenario.events) == 15
        times = [e.time_s for e in scenario.events]
        assert times == sorted(times)

    def test_events_valid_against_state(self, network):
        """The generator only emits events the live state admits."""
        scenario = generate_scenario(network, num_events=30, seed=3)
        live = set(network.switch_names)
        failed = set()
        deployed = set()
        for event in scenario.events:
            if event.kind == EventKind.SWITCH_FAIL:
                assert event.target in live
                live.discard(event.target)
                failed.add(event.target)
            elif event.kind == EventKind.SWITCH_RECOVER:
                assert event.target in failed
                failed.discard(event.target)
                live.add(event.target)
            elif event.kind == EventKind.LINK_LATENCY:
                u, v = event.link
                assert u in live and v in live
                assert event.value >= 0
            elif event.kind == EventKind.WORKLOAD_ADD:
                assert event.target not in deployed
                deployed.add(event.target)
            elif event.kind == EventKind.WORKLOAD_REMOVE:
                assert event.target in deployed
                deployed.discard(event.target)

    def test_keeps_two_hostable_switches(self, network):
        scenario = generate_scenario(network, num_events=40, seed=7)
        live = set(network.switch_names)
        drained = set()
        programmable = {
            s.name for s in network.programmable_switches()
        }
        for event in scenario.events:
            if event.kind == EventKind.SWITCH_FAIL:
                live.discard(event.target)
            elif event.kind == EventKind.SWITCH_RECOVER:
                live.add(event.target)
                drained.discard(event.target)
            elif event.kind == EventKind.SWITCH_DRAIN:
                drained.add(event.target)
            elif event.kind == EventKind.SET_PROGRAMMABLE:
                if event.value:
                    programmable.add(event.target)
                else:
                    programmable.discard(event.target)
            assert len((programmable & live) - drained) >= 2

    def test_rejects_negative_count(self, network):
        with pytest.raises(ValueError):
            generate_scenario(network, num_events=-1, seed=0)


class TestBatching:
    def events(self, *times):
        return [
            NetworkEvent(t, EventKind.SWITCH_FAIL, f"s{i}")
            for i, t in enumerate(times)
        ]

    def test_zero_debounce_isolates_events(self):
        batches = batch_events(self.events(1.0, 1.0, 2.0), 0.0)
        assert [len(b) for b in batches] == [1, 1, 1]

    def test_burst_coalesces(self):
        batches = batch_events(
            self.events(1.0, 1.05, 1.1, 5.0), debounce_s=0.2
        )
        assert [len(b) for b in batches] == [3, 1]

    def test_chained_gaps_extend_batch(self):
        # Each neighbor is within the window even though first-to-last
        # is not: debounce is hysteresis, not a fixed window.
        batches = batch_events(
            self.events(1.0, 1.15, 1.3, 1.45), debounce_s=0.2
        )
        assert [len(b) for b in batches] == [4]

    def test_empty(self):
        assert batch_events([], 1.0) == []
