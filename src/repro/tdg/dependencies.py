"""MAT dependency classification.

Given two MATs ``a`` and ``b`` where ``a`` executes before ``b`` in the
program's pipeline order, the dependency between them (if any) is one
of four types, following Jose et al. and the paper's §IV:

* **Match dependency (ℳ)** — ``b`` consumes a field whose value ``a``
  modified: ``F^a_a ∩ F^m_b ≠ ∅``, or ``b``'s actions read a field
  ``a`` wrote (write-then-read through action parameters is the same
  data dependency, just surfacing in the action phase).  The strictest
  kind: ``b`` must see ``a``'s output before using it.
* **Action dependency (𝔸)** — both modify a common field:
  ``F^a_a ∩ F^a_b ≠ ∅``.  Order of writes must be preserved.
* **Reverse-match dependency (ℝ)** — ``b`` modifies a field ``a``
  matches on: ``F^m_a ∩ F^a_b ≠ ∅``.  Ordering matters but no data
  flows downstream, so it contributes zero metadata bytes.
* **Successor dependency (𝕊)** — ``a``'s processing result decides
  whether ``b`` executes (conditional control flow).

When several types apply simultaneously the strictest wins, in the
order ℳ > 𝔸 > 𝕊 > ℝ.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.dataplane.mat import Mat


class DependencyType(enum.Enum):
    """The four TDG edge types."""

    MATCH = "M"
    ACTION = "A"
    REVERSE = "R"
    SUCCESSOR = "S"

    @property
    def carries_metadata(self) -> bool:
        """Whether edges of this type can contribute byte overhead."""
        return self is not DependencyType.REVERSE


def classify_dependency(
    upstream: Mat,
    downstream: Mat,
    conditional: bool = False,
) -> Optional[DependencyType]:
    """Classify the dependency from ``upstream`` to ``downstream``.

    Args:
        upstream: The MAT that executes first.
        downstream: The MAT that executes later.
        conditional: Whether ``upstream``'s result gates ``downstream``'s
            execution (program-level control flow).

    Returns:
        The strictest applicable :class:`DependencyType`, or ``None``
        when the two MATs are independent.
    """
    up_writes = upstream.modified_fields.names
    down_reads = downstream.read_fields.names  # match key + action reads
    down_writes = downstream.modified_fields.names
    up_matches = upstream.match_fields.names

    if up_writes & down_reads:
        return DependencyType.MATCH
    if up_writes & down_writes:
        return DependencyType.ACTION
    if conditional:
        return DependencyType.SUCCESSOR
    if up_matches & down_writes:
        return DependencyType.REVERSE
    return None
