"""Compatibility shim: the plan now lives in :mod:`repro.plan`.

The deployment-plan artifact grew into its own package —
:mod:`repro.plan.artifact` holds the immutable
:class:`~repro.plan.artifact.DeploymentPlan`,
:mod:`repro.plan.builder` the mutable incremental
:class:`~repro.plan.builder.PlanBuilder`, and
:mod:`repro.plan.serialize`/:mod:`repro.plan.diff` the canonical JSON
schema and structural diffing.  This module re-exports the historical
names so ``from repro.core.deployment import DeploymentPlan`` keeps
working; new code should import from :mod:`repro.plan` directly.
"""

from repro.plan.artifact import (
    DeploymentError,
    DeploymentPlan,
    MatPlacement,
)

__all__ = ["DeploymentError", "DeploymentPlan", "MatPlacement"]
