"""Synchronous client for the control-plane daemon.

:class:`ReproClient` speaks :mod:`repro.server.protocol` over TCP or
a Unix socket.  It is deliberately blocking — the CLI's ``--connect``
mode and the tests want a plain call-and-return surface, not another
event loop:

    with ReproClient.connect("127.0.0.1:7421") as client:
        doc = client.request("deploy", {"workload": "real:10"})

Telemetry events interleaved with a response (after ``subscribe``)
are handed to the ``on_event`` callback as they arrive, in order;
``seq`` gaps mean the server dropped frames (it never does today, but
the contract lets a client check).
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.server import protocol


class ServerError(RuntimeError):
    """An error envelope from the server, surfaced as an exception.

    Attributes:
        code: One of :data:`repro.server.protocol.ERROR_CODES`.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.server_message = message


def parse_address(address: str) -> Union[Tuple[str, int], str]:
    """``host:port`` -> a TCP tuple; anything path-like -> a Unix
    socket path (``unix:`` prefix optional)."""
    if address.startswith("unix:"):
        return address[len("unix:"):]
    if "/" in address or not (":" in address):
        return address
    host, port = address.rsplit(":", 1)
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        # "a:b" where b is not a port — treat as a relative path.
        return address


class ReproClient:
    """One connection to a :class:`~repro.server.service.ReproServer`."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._next_id = 0

    @classmethod
    def connect(
        cls, address: str, timeout: Optional[float] = None
    ) -> "ReproClient":
        target = parse_address(address)
        if isinstance(target, tuple):
            sock = socket.create_connection(target, timeout=timeout)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            if timeout is not None:
                sock.settimeout(timeout)
            sock.connect(target)
        return cls(sock)

    # ------------------------------------------------------------------
    def request(
        self,
        op: str,
        params: Optional[Mapping[str, Any]] = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Send one request and block until its response.

        Events arriving before the response are dispatched to
        ``on_event`` (full event frames: ``seq`` + ``data``).  Raises
        :class:`ServerError` on an error envelope.
        """
        request_id = self._next_id
        self._next_id += 1
        frame = protocol.request(request_id, op, params)
        self._sock.sendall(protocol.encode_frame(frame))
        while True:
            received = self._read_frame()
            if protocol.is_event(received):
                if on_event is not None:
                    on_event(received)
                continue
            if received.get("id") != request_id:
                # A response to a request this client never sent on
                # this connection — the stream is broken.
                raise ServerError(
                    "bad_frame",
                    f"response id {received.get('id')!r} does not "
                    f"match request id {request_id!r}",
                )
            if received.get("ok"):
                return received.get("result", {})
            err = received.get("error", {})
            raise ServerError(
                err.get("code", "internal"),
                err.get("message", "unspecified server error"),
            )

    def subscribe(
        self, on_event: Optional[Callable[[Dict[str, Any]], None]] = None
    ) -> Dict[str, Any]:
        return self.request("subscribe", on_event=on_event)

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def shutdown_server(self) -> Dict[str, Any]:
        """Ask the daemon to stop (it answers before it goes)."""
        return self.request("shutdown")

    # ------------------------------------------------------------------
    def _read_frame(self) -> Dict[str, Any]:
        line = self._rfile.readline(protocol.MAX_FRAME_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode_frame(line)

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
