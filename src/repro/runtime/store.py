"""Versioned history of deployment-plan artifacts.

Every plan the reconciler activates — the initial deployment and each
post-event re-deployment — is appended to a :class:`PlanStore` as an
immutable :class:`PlanVersion`, keyed by the plan's canonical
``repro.plan/v1`` fingerprint.  The store exposes the structural
:class:`~repro.plan.diff.PlanDiff` between consecutive versions and an
end-to-end diff, and digests the whole history into one hash so two
replays of the same scenario can be compared with a single string:
same events, same policies, same code ⇒ same ``history_digest()``.

Wall-clock timings deliberately never enter the store — versions carry
the *virtual* event time — so the determinism contract holds across
machines.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.plan.artifact import DeploymentPlan
from repro.plan.diff import PlanDiff, diff_plans
from repro.plan.serialize import canonical_dumps, read_plan, write_plan


class StoreReloadError(ValueError):
    """A written store directory cannot be reloaded faithfully."""


@dataclass(frozen=True)
class PlanVersion:
    """One entry of the plan history.

    Attributes:
        version: 0-based position in the history.
        fingerprint: SHA-256 of the plan's canonical serialization.
        time_s: Virtual time the plan became active.
        reason: Why it was produced: ``"initial"``, ``"incremental"``
            (warm rebase/splice), ``"replan"`` (cold full solve) or
            ``"patch"`` (the timeout fallback).
        plan: The plan artifact itself.
    """

    version: int
    fingerprint: str
    time_s: float
    reason: str
    plan: DeploymentPlan


class PlanStore:
    """Append-only plan history with consecutive-version diffs."""

    def __init__(self) -> None:
        self._versions: List[PlanVersion] = []
        self._by_fingerprint: Dict[str, DeploymentPlan] = {}
        self._diffs: List[PlanDiff] = []

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(
        self, plan: DeploymentPlan, time_s: float, reason: str
    ) -> PlanVersion:
        """Record ``plan`` as the next active version."""
        fingerprint = plan.fingerprint()
        entry = PlanVersion(
            version=len(self._versions),
            fingerprint=fingerprint,
            time_s=time_s,
            reason=reason,
            plan=plan,
        )
        if self._versions:
            self._diffs.append(diff_plans(self._versions[-1].plan, plan))
        self._versions.append(entry)
        self._by_fingerprint.setdefault(fingerprint, plan)
        return entry

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._versions)

    @property
    def versions(self) -> List[PlanVersion]:
        return list(self._versions)

    @property
    def latest(self) -> Optional[PlanVersion]:
        return self._versions[-1] if self._versions else None

    def get(self, fingerprint: str) -> DeploymentPlan:
        """The plan with this fingerprint (any version that had it)."""
        try:
            return self._by_fingerprint[fingerprint]
        except KeyError:
            raise KeyError(
                f"no plan with fingerprint {fingerprint[:12]}..."
            ) from None

    def fingerprints(self) -> List[str]:
        """Per-version fingerprints, oldest first."""
        return [v.fingerprint for v in self._versions]

    def diffs(self) -> List[PlanDiff]:
        """Structural deltas between consecutive versions."""
        return list(self._diffs)

    def end_to_end_diff(self) -> PlanDiff:
        """The delta from the first to the latest version."""
        if not self._versions:
            raise ValueError("empty plan store has no diff")
        return diff_plans(self._versions[0].plan, self._versions[-1].plan)

    def history_digest(self) -> str:
        """One hash over the whole history: fingerprints + diffs.

        Two reconciler runs that made the same decisions produce equal
        digests; anything that moved a MAT differently changes it.
        """
        doc = {
            "fingerprints": self.fingerprints(),
            "diffs": [d.to_dict() for d in self._diffs],
        }
        blob = canonical_dumps(doc)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable history summary (no embedded plans)."""
        return {
            "versions": [
                {
                    "version": v.version,
                    "fingerprint": v.fingerprint,
                    "time_s": v.time_s,
                    "reason": v.reason,
                    "a_max_bytes": v.plan.max_metadata_bytes(),
                    "occupied_switches": v.plan.num_occupied_switches(),
                }
                for v in self._versions
            ],
            "diffs": [d.to_dict() for d in self._diffs],
            "history_digest": self.history_digest(),
        }

    def write_dir(self, directory: str) -> List[str]:
        """Persist every version's full plan document plus the summary.

        Writes ``plan-<version>-<fp12>.json`` per version and
        ``history.json`` with the :meth:`to_dict` summary; returns the
        written paths.
        """
        os.makedirs(directory, exist_ok=True)
        paths: List[str] = []
        for v in self._versions:
            path = os.path.join(
                directory, f"plan-{v.version:03d}-{v.fingerprint[:12]}.json"
            )
            write_plan(v.plan, path)
            paths.append(path)
        history = os.path.join(directory, "history.json")
        with open(history, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(history)
        return paths

    @classmethod
    def read_dir(cls, directory: str) -> "PlanStore":
        """Rebuild a store from a :meth:`write_dir` directory.

        The server's session-recovery path: a reloaded store must be
        indistinguishable from the one that was written — same
        fingerprints, same per-step diffs, same ``history_digest()`` —
        and appending to it must continue the history seamlessly.
        Every plan document is re-read and re-fingerprinted, so a
        tampered or truncated directory raises
        :class:`StoreReloadError` instead of silently forking history.
        """
        history_path = os.path.join(directory, "history.json")
        try:
            with open(history_path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreReloadError(
                f"cannot read {history_path}: {exc}"
            ) from exc
        store = cls()
        for expected in doc.get("versions", []):
            version = int(expected["version"])
            fingerprint = expected["fingerprint"]
            path = os.path.join(
                directory, f"plan-{version:03d}-{fingerprint[:12]}.json"
            )
            try:
                # Appending re-fingerprints (and re-diffs) the loaded
                # plan, so a tampered document fails here rather than
                # poisoning the history.
                plan = read_plan(path)
                entry = store.append(
                    plan,
                    time_s=float(expected["time_s"]),
                    reason=expected["reason"],
                )
            except (OSError, ValueError, KeyError) as exc:
                raise StoreReloadError(
                    f"cannot load version {version}: {exc}"
                ) from exc
            if entry.fingerprint != fingerprint:
                raise StoreReloadError(
                    f"version {version} re-fingerprints to "
                    f"{entry.fingerprint[:12]}, history recorded "
                    f"{fingerprint[:12]}"
                )
        recorded = doc.get("history_digest")
        if recorded is not None and store.history_digest() != recorded:
            raise StoreReloadError(
                "reloaded history digest "
                f"{store.history_digest()[:12]} != recorded "
                f"{recorded[:12]}"
            )
        return store
