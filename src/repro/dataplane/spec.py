"""Declarative program specs: programs as plain dictionaries.

Lets workloads live in JSON/YAML files instead of Python code, and
round-trips every program the library can express:

    spec = program_to_dict(program)
    json.dump(spec, fh)
    ...
    program = program_from_dict(json.load(fh))

Spec shape (all sizes in bits)::

    {
      "name": "flow_counter",
      "fields": {
        "meta.idx": {"width": 32, "kind": "metadata"},
        "ipv4.src_addr": {"width": 32, "kind": "header"}
      },
      "mats": [
        {
          "name": "hash",
          "match": ["ipv4.src_addr"],
          "actions": [
            {"name": "h", "primitive": "hash",
             "reads": ["ipv4.src_addr"], "writes": ["meta.idx"]}
          ],
          "capacity": 16,
          "resource_demand": 0.3,
          "rules": [
            {"matches": [{"field": "ipv4.src_addr", "kind": "exact",
                          "value": 1}],
             "action": "h", "priority": 0,
             "action_data": {"meta.idx": 7}}
          ]
        }
      ],
      "conditional_edges": [["gate", "gated"]]
    }
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.dataplane.actions import Action, ActionPrimitive
from repro.dataplane.fields import Field, FieldKind
from repro.dataplane.mat import Mat
from repro.dataplane.program import Program
from repro.dataplane.rules import MatchKind, MatchSpec, Rule


class SpecError(ValueError):
    """The spec dictionary is malformed."""


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def program_to_dict(program: Program) -> Dict[str, Any]:
    """Serialize a program (inverse of :func:`program_from_dict`)."""
    fields: Dict[str, Dict[str, Any]] = {}

    def record_field(field: Field) -> None:
        fields[field.name] = {
            "width": field.width_bits,
            "kind": field.kind.value,
        }

    mats: List[Dict[str, Any]] = []
    for mat in program.mats:
        for field in mat.match_fields:
            record_field(field)
        actions = []
        for action in mat.actions:
            for field in action.reads + action.writes:
                record_field(field)
            actions.append(
                {
                    "name": action.name,
                    "primitive": action.primitive.value,
                    "reads": [f.name for f in action.reads],
                    "writes": [f.name for f in action.writes],
                }
            )
        rules = []
        for rule in mat.rules:
            rules.append(
                {
                    "matches": [
                        {
                            "field": spec.field_name,
                            "kind": spec.kind.value,
                            "value": spec.value,
                            **(
                                {"mask_or_prefix": spec.mask_or_prefix}
                                if spec.mask_or_prefix is not None
                                else {}
                            ),
                        }
                        for spec in rule.matches
                    ],
                    "action": rule.action_name,
                    "priority": rule.priority,
                    "action_data": dict(rule.action_data),
                }
            )
        mats.append(
            {
                "name": mat.name,
                "match": [f.name for f in mat.match_fields],
                "actions": actions,
                "capacity": mat.capacity,
                "resource_demand": mat.resource_demand,
                "rules": rules,
            }
        )
    return {
        "name": program.name,
        "fields": fields,
        "mats": mats,
        "conditional_edges": [
            list(edge) for edge in sorted(program.conditional_edges)
        ],
    }


# ----------------------------------------------------------------------
# Deserialization
# ----------------------------------------------------------------------
def _require(mapping: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in mapping:
        raise SpecError(f"{context}: missing required key {key!r}")
    return mapping[key]


def _parse_fields(spec: Mapping[str, Any]) -> Dict[str, Field]:
    fields: Dict[str, Field] = {}
    for name, body in _require(spec, "fields", "program spec").items():
        width = _require(body, "width", f"field {name!r}")
        kind_name = body.get("kind", "header")
        try:
            kind = FieldKind(kind_name)
        except ValueError:
            raise SpecError(
                f"field {name!r}: unknown kind {kind_name!r}"
            ) from None
        fields[name] = Field(name, int(width), kind)
    return fields


def _lookup(fields: Mapping[str, Field], name: str, context: str) -> Field:
    try:
        return fields[name]
    except KeyError:
        raise SpecError(
            f"{context}: references undeclared field {name!r}"
        ) from None


def _parse_action(
    body: Mapping[str, Any], fields: Mapping[str, Field]
) -> Action:
    name = _require(body, "name", "action")
    primitive_name = body.get("primitive", "no_op")
    try:
        primitive = ActionPrimitive(primitive_name)
    except ValueError:
        raise SpecError(
            f"action {name!r}: unknown primitive {primitive_name!r}"
        ) from None
    reads = tuple(
        _lookup(fields, f, f"action {name!r}") for f in body.get("reads", [])
    )
    writes = tuple(
        _lookup(fields, f, f"action {name!r}") for f in body.get("writes", [])
    )
    return Action(name, primitive, reads=reads, writes=writes)


def _parse_rule(body: Mapping[str, Any]) -> Rule:
    matches = []
    for m in body.get("matches", []):
        kind_name = m.get("kind", "exact")
        try:
            kind = MatchKind(kind_name)
        except ValueError:
            raise SpecError(
                f"rule: unknown match kind {kind_name!r}"
            ) from None
        matches.append(
            MatchSpec(
                _require(m, "field", "rule match"),
                kind,
                int(m.get("value", 0)),
                m.get("mask_or_prefix"),
            )
        )
    return Rule(
        matches=tuple(matches),
        action_name=body.get("action", "no_op"),
        priority=int(body.get("priority", 0)),
        action_data=tuple(
            (k, int(v)) for k, v in body.get("action_data", {}).items()
        ),
    )


def program_from_dict(spec: Mapping[str, Any]) -> Program:
    """Build a :class:`Program` from its spec dictionary.

    Raises:
        SpecError: On any structural problem (missing keys, undeclared
            fields, unknown enums); underlying model validation errors
            propagate as-is.
    """
    name = _require(spec, "name", "program spec")
    fields = _parse_fields(spec)
    mats: List[Mat] = []
    for body in _require(spec, "mats", "program spec"):
        mat_name = _require(body, "name", "mat spec")
        context = f"mat {mat_name!r}"
        match_fields = [
            _lookup(fields, f, context) for f in body.get("match", [])
        ]
        actions = [
            _parse_action(a, fields) for a in _require(body, "actions", context)
        ]
        rules = [_parse_rule(r) for r in body.get("rules", [])]
        mats.append(
            Mat(
                mat_name,
                match_fields=match_fields,
                actions=actions,
                capacity=int(body.get("capacity", 1024)),
                rules=rules,
                resource_demand=body.get("resource_demand"),
            )
        )
    edges = [tuple(e) for e in spec.get("conditional_edges", [])]
    return Program(name, mats, edges)
