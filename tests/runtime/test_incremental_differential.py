"""Differential correctness of warm incremental replanning.

The warm ladder's contract: on every seeded churn sequence the
incremental path's ``A_max`` trajectory must equal the cold full
replanning path's, batch by batch.  The workload is sized so each
program chain *cannot* colocate (two stages, 2.7 stage-units per
chain), forcing nonzero cross-switch overhead — a trajectory of zeros
would make the equality vacuous.  The event mix is topology-only;
workload churn deterministically escalates the warm rung to the same
cold solve the baseline runs, so those batches are trivially equal and
only dilute the comparison.

The rebase mode preserves ``A_max`` *by construction* (pair bytes
depend only on placements); the delta mode must reproduce it because
it minimizes the same objective over the blast radius.  Both modes
must appear in the corpus or the test is not exercising the claim.
"""

import pytest

from repro.network.generators import random_wan
from repro.runtime import (
    EventKind,
    Reconciler,
    ReconcilerPolicy,
    generate_scenario,
)
from repro.telemetry import Recorder, attached
from tests.conftest import make_sketch_program

#: Topology-only churn: no workload adds/removes.
TOPOLOGY_MIX = {
    EventKind.SWITCH_FAIL: 4,
    EventKind.SWITCH_RECOVER: 2,
    EventKind.SWITCH_DRAIN: 1,
    EventKind.LINK_LATENCY: 2,
    EventKind.SET_PROGRAMMABLE: 1,
}

#: Empirically verified seeds; every one yields a nonzero-A_max
#: trajectory and at least one delta-mode batch.
SEEDS = (3, 13, 17)


def build_world():
    network = random_wan(
        12,
        18,
        seed=4,
        num_stages=2,
        stage_capacity=1.0,
        programmable_fraction=0.75,
    )
    programs = [
        make_sketch_program(
            f"p{i}", index_bytes=2 + i, demands=(0.9, 0.9, 0.9)
        )
        for i in range(4)
    ]
    return network, programs


@pytest.mark.parametrize("seed", SEEDS)
def test_warm_amax_trajectory_equals_cold(seed):
    network, programs = build_world()
    scenario = generate_scenario(
        network, num_events=12, seed=seed, event_mix=TOPOLOGY_MIX
    )
    cold = Reconciler(programs, network).run(scenario)
    recorder = Recorder()
    with attached(recorder):
        warm = Reconciler(
            programs, network, policy=ReconcilerPolicy(incremental=True)
        ).run(scenario)

    assert len(cold.outcomes) == len(warm.outcomes)
    for cold_outcome, warm_outcome in zip(cold.outcomes, warm.outcomes):
        assert cold_outcome.converged == warm_outcome.converged
        assert (
            warm_outcome.new_amax_bytes == cold_outcome.new_amax_bytes
        ), (
            f"batch {cold_outcome.batch_index}: warm rung "
            f"{warm_outcome.rung!r} produced "
            f"{warm_outcome.new_amax_bytes} B, cold produced "
            f"{cold_outcome.new_amax_bytes} B"
        )
    assert (
        warm.final_plan.max_metadata_bytes()
        == cold.final_plan.max_metadata_bytes()
    )
    # The trajectory is nonzero (the equality is not vacuous) and the
    # warm path actually ran its incremental rung.
    assert any(o.new_amax_bytes > 0 for o in cold.outcomes)
    assert any(o.rung == "incremental" for o in warm.outcomes)
    warm.final_plan.validate()


def test_corpus_exercises_both_warm_modes():
    """Across the seed corpus, rebases AND delta solves must occur."""
    network, programs = build_world()
    modes = set()
    for seed in SEEDS:
        scenario = generate_scenario(
            network, num_events=12, seed=seed, event_mix=TOPOLOGY_MIX
        )
        recorder = Recorder()
        with attached(recorder):
            Reconciler(
                programs,
                network,
                policy=ReconcilerPolicy(incremental=True),
            ).run(scenario)
        modes.update(
            e["mode"]
            for e in recorder.of_kind("runtime.replan.incremental")
        )
    assert modes == {"rebase", "delta"}
