#!/usr/bin/env python3
"""Software-defined measurement: ten sketches, one WAN.

The SDM scenario from the paper's introduction: administrators deploy
ten sketch algorithms at once; no single switch can host them all.
This example deploys the bundled sketch suite on a Table III WAN with
Hermes and with a first-fit baseline, then compares the per-packet byte
overhead, the end-to-end impact, and the resources saved by TDG
merging.

Run:  python examples/sdm_deployment.py
"""

from repro.baselines import Ffls, HermesHeuristic
from repro.core import CoordinationAnalysis
from repro.experiments.harness import end_to_end_impact
from repro.network import topology_zoo_wan
from repro.workloads import sketch_programs


def main() -> None:
    programs = sketch_programs(10)
    network = topology_zoo_wan(3)
    standalone_units = sum(p.total_resource_demand for p in programs)

    print(
        f"deploying {len(programs)} sketches "
        f"({standalone_units:.1f} stage units) on {network.name} "
        f"({network.num_switches} switches, "
        f"{len(network.programmable_switches())} programmable)\n"
    )

    for framework in (HermesHeuristic(), Ffls()):
        result = framework.deploy(programs, network)
        plan = result.plan
        overhead = plan.max_metadata_bytes()
        fct_ratio, goodput_ratio = end_to_end_impact(overhead)
        merged_units = sum(m.resource_demand for m in result.tdg.mats)
        print(f"{framework.name}:")
        print(f"  per-packet byte overhead : {overhead} B")
        print(f"  occupied switches        : {plan.num_occupied_switches()}")
        print(f"  placement time           : {result.solve_time_s * 1e3:.1f} ms")
        print(f"  FCT impact (1024B pkts)  : {(fct_ratio - 1) * 100:+.1f}%")
        print(f"  goodput impact           : {(goodput_ratio - 1) * 100:+.1f}%")
        if framework.merges:
            saved = standalone_units - merged_units
            print(
                f"  merging saved            : {saved:.1f} stage units "
                f"({len(result.tdg)} MATs after dedup)"
            )
        channels = CoordinationAnalysis(plan)
        worst = max(
            channels.channels.values(),
            key=lambda ch: ch.declared_bytes,
            default=None,
        )
        if worst is not None:
            print(
                f"  busiest channel          : {worst.source} -> "
                f"{worst.destination} carrying {worst.declared_bytes} B"
            )
        print()


if __name__ == "__main__":
    main()
