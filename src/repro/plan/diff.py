"""Structural comparison of deployment plans.

:func:`diff_plans` compares two plans for the "same" logical workload
and reports what actually changed: which MATs moved to a different
switch, which were re-staged in place, which appeared/disappeared,
which switch pairs now exchange different byte totals and which routes
changed.  This is the artifact :mod:`repro.control.migration` exposes
to operators — a failure-triggered re-deployment is judged by its
disruption (rules to move, routes to replay), not just the scalar
overhead delta — and what ``repro plan diff`` prints on the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.plan.artifact import DeploymentPlan

Pair = Tuple[str, str]


@dataclass(frozen=True)
class PlacementChange:
    """One MAT whose placement differs between two plans."""

    mat_name: str
    old_switch: str
    new_switch: str
    old_stages: Tuple[int, ...]
    new_stages: Tuple[int, ...]

    @property
    def moved(self) -> bool:
        """Whether the MAT changed hosting switch (vs re-staged only)."""
        return self.old_switch != self.new_switch


@dataclass(frozen=True)
class PlanDiff:
    """The structural delta between an old and a new plan.

    Attributes:
        moved: MATs hosted by a different switch in the new plan.
        restaged: MATs on the same switch but different stages.
        added: MAT names present only in the new plan.
        removed: MAT names present only in the old plan.
        changed_pairs: Ordered switch pairs whose metadata byte total
            differs, mapped to ``(old_bytes, new_bytes)`` (0 for a pair
            absent on one side).
        rerouted: Pairs routed in both plans but over different paths.
        old_overhead_bytes: ``A_max`` of the old plan.
        new_overhead_bytes: ``A_max`` of the new plan.
    """

    moved: Tuple[PlacementChange, ...] = ()
    restaged: Tuple[PlacementChange, ...] = ()
    added: Tuple[str, ...] = ()
    removed: Tuple[str, ...] = ()
    changed_pairs: Dict[Pair, Tuple[int, int]] = field(default_factory=dict)
    rerouted: Tuple[Pair, ...] = ()
    old_overhead_bytes: int = 0
    new_overhead_bytes: int = 0

    @property
    def overhead_delta_bytes(self) -> int:
        """``A_max`` change; negative means the new plan is cheaper."""
        return self.new_overhead_bytes - self.old_overhead_bytes

    @property
    def is_empty(self) -> bool:
        """Whether the two plans are placement- and route-identical."""
        return not (
            self.moved
            or self.restaged
            or self.added
            or self.removed
            or self.changed_pairs
            or self.rerouted
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable rendering (for the CLI and journals)."""
        return {
            "moved": [
                {
                    "mat": c.mat_name,
                    "old_switch": c.old_switch,
                    "new_switch": c.new_switch,
                    "old_stages": list(c.old_stages),
                    "new_stages": list(c.new_stages),
                }
                for c in self.moved
            ],
            "restaged": [
                {
                    "mat": c.mat_name,
                    "switch": c.new_switch,
                    "old_stages": list(c.old_stages),
                    "new_stages": list(c.new_stages),
                }
                for c in self.restaged
            ],
            "added": list(self.added),
            "removed": list(self.removed),
            "changed_pairs": [
                {
                    "pair": list(pair),
                    "old_bytes": old,
                    "new_bytes": new,
                }
                for pair, (old, new) in sorted(self.changed_pairs.items())
            ],
            "rerouted": [list(pair) for pair in self.rerouted],
            "old_overhead_bytes": self.old_overhead_bytes,
            "new_overhead_bytes": self.new_overhead_bytes,
            "overhead_delta_bytes": self.overhead_delta_bytes,
            "identical": self.is_empty,
        }

    def summary(self) -> str:
        """A one-paragraph human rendering of the delta."""
        if self.is_empty:
            return (
                f"plans are identical (A_max={self.new_overhead_bytes} B)"
            )
        parts: List[str] = []
        if self.moved:
            parts.append(f"{len(self.moved)} MAT(s) moved")
        if self.restaged:
            parts.append(f"{len(self.restaged)} MAT(s) re-staged")
        if self.added:
            parts.append(f"{len(self.added)} MAT(s) added")
        if self.removed:
            parts.append(f"{len(self.removed)} MAT(s) removed")
        if self.changed_pairs:
            parts.append(f"{len(self.changed_pairs)} pair byte-total(s) changed")
        if self.rerouted:
            parts.append(f"{len(self.rerouted)} pair(s) rerouted")
        sign = "+" if self.overhead_delta_bytes >= 0 else ""
        parts.append(
            f"A_max {self.old_overhead_bytes} -> "
            f"{self.new_overhead_bytes} B ({sign}{self.overhead_delta_bytes})"
        )
        return ", ".join(parts)


def diff_plans(
    old: DeploymentPlan, new: Optional[DeploymentPlan]
) -> PlanDiff:
    """Structural delta from ``old`` to ``new``.

    ``new=None`` (a failed re-deployment) reports every old MAT as
    removed and a zero new overhead.
    """
    if new is None:
        return PlanDiff(
            removed=tuple(sorted(old.placements)),
            changed_pairs={
                pair: (bytes_, 0)
                for pair, bytes_ in old.pair_metadata_bytes().items()
                if bytes_
            },
            old_overhead_bytes=old.max_metadata_bytes(),
            new_overhead_bytes=0,
        )
    old_p = dict(old.placements)
    new_p = dict(new.placements)
    moved: List[PlacementChange] = []
    restaged: List[PlacementChange] = []
    for name in sorted(set(old_p) & set(new_p)):
        before, after = old_p[name], new_p[name]
        if before.switch == after.switch and before.stages == after.stages:
            continue
        change = PlacementChange(
            name, before.switch, after.switch, before.stages, after.stages
        )
        (moved if change.moved else restaged).append(change)
    old_pairs = old.pair_metadata_bytes()
    new_pairs = new.pair_metadata_bytes()
    changed_pairs = {
        pair: (old_pairs.get(pair, 0), new_pairs.get(pair, 0))
        for pair in set(old_pairs) | set(new_pairs)
        if old_pairs.get(pair, 0) != new_pairs.get(pair, 0)
    }
    rerouted = tuple(
        sorted(
            pair
            for pair in set(old.routing) & set(new.routing)
            if old.routing[pair].switches != new.routing[pair].switches
        )
    )
    return PlanDiff(
        moved=tuple(moved),
        restaged=tuple(restaged),
        added=tuple(sorted(set(new_p) - set(old_p))),
        removed=tuple(sorted(set(old_p) - set(new_p))),
        changed_pairs=changed_pairs,
        rerouted=rerouted,
        old_overhead_bytes=old.max_metadata_bytes(),
        new_overhead_bytes=new.max_metadata_bytes(),
    )
