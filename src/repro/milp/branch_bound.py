"""Exact MILP solving: best-first branch & bound over LP relaxations.

Every node relaxes integrality and solves the LP with HiGHS (through
``scipy.optimize.linprog``).  Fractional integral variables trigger two
child nodes (floor / ceil bound splits); nodes whose LP bound cannot
beat the incumbent are pruned.  A rounding heuristic at each node tries
to promote the LP solution into an incumbent early, which tightens
pruning dramatically on placement models where the relaxation is nearly
integral.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.milp.model import Model, Var
from repro.milp.solution import Solution, SolveStatus
from repro.telemetry import emit

_INT_TOL = 1e-6
_OBJ_TOL = 1e-9


@dataclass(order=True)
class _Node:
    bound: float
    tie: int
    var_bounds: List[Tuple[float, float]] = field(compare=False)


class BranchBoundSolver:
    """Exact solver for :class:`~repro.milp.model.Model` instances.

    Args:
        time_limit_s: Wall-clock budget; on expiry the best incumbent is
            returned with status FEASIBLE (or TIME_LIMIT if none).
        node_limit: Hard cap on explored nodes.
        gap_tolerance: Relative gap at which the search may stop early.

    Telemetry: when a sink is attached via :mod:`repro.telemetry`, the
    solver emits one ``solver.lp`` event per LP relaxation solved, one
    ``solver.node`` per explored node, ``solver.prune`` on every pruned
    node/child, ``solver.incumbent`` (with objective, bound and
    relative gap) whenever the incumbent improves, and a final
    ``solver.done`` carrying the :meth:`Solution.summary`.  Event
    counts therefore match ``Solution.lp_solves`` and
    ``Solution.nodes_explored`` exactly, and the gap values across the
    ``solver.incumbent`` stream trace the convergence trajectory.
    Without a sink every emit is a no-op.
    """

    def __init__(
        self,
        time_limit_s: float = 300.0,
        node_limit: int = 200_000,
        gap_tolerance: float = 1e-6,
    ) -> None:
        if time_limit_s <= 0:
            raise ValueError("time_limit_s must be positive")
        self.time_limit_s = time_limit_s
        self.node_limit = node_limit
        self.gap_tolerance = gap_tolerance

    # ------------------------------------------------------------------
    def solve(
        self,
        model: Model,
        initial: Optional[Dict[Var, float]] = None,
    ) -> Solution:
        """Solve ``model``; ``initial`` optionally warm-starts the search.

        A feasible ``initial`` assignment becomes the first incumbent,
        so the search starts with a pruning bound instead of hunting
        for one; an infeasible assignment is silently ignored.
        """
        start = time.perf_counter()
        c, a_ub, b_ub, a_eq, b_eq, root_bounds = model.to_arrays()
        int_indices = [v.index for v in model.variables if v.is_integral]
        sign = -1.0 if model.maximize_objective else 1.0

        lbs = np.array([b[0] for b in root_bounds])
        ubs = np.array([b[1] for b in root_bounds])
        int_mask = np.zeros(len(root_bounds), dtype=bool)
        int_mask[int_indices] = True

        def feasible(x: np.ndarray, tol: float = 1e-6) -> bool:
            """Vectorized feasibility of a candidate point."""
            if ((x < lbs - tol) | (x > ubs + tol)).any():
                return False
            if int_mask.any():
                xi = x[int_mask]
                if (np.abs(xi - np.round(xi)) > tol).any():
                    return False
            if a_ub is not None and (a_ub @ x > b_ub + tol).any():
                return False
            if a_eq is not None and (np.abs(a_eq @ x - b_eq) > tol).any():
                return False
            return True

        lp_solves = 0
        nodes_explored = 0
        incumbent: Optional[np.ndarray] = None
        incumbent_obj = math.inf  # in minimize space

        if initial is not None:
            candidate = np.zeros(len(model.variables))
            for var in model.variables:
                candidate[var.index] = float(initial.get(var, 0.0))
            for idx in int_indices:
                candidate[idx] = round(candidate[idx])
            if feasible(candidate):
                incumbent = candidate
                incumbent_obj = float(c @ candidate)
                emit(
                    "solver.incumbent",
                    source="warm_start",
                    objective=sign * incumbent_obj,
                    bound=None,
                    gap=None,
                )

        def lp(bounds: List[Tuple[float, float]]):
            nonlocal lp_solves
            lp_solves += 1
            emit("solver.lp")
            return linprog(
                c,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                method="highs",
            )

        root = lp(root_bounds)
        if root.status == 2:
            return self._finish(
                Solution(
                    SolveStatus.INFEASIBLE,
                    lp_solves=lp_solves,
                    wall_time_s=time.perf_counter() - start,
                )
            )
        if root.status == 3:
            return self._finish(
                Solution(
                    SolveStatus.UNBOUNDED,
                    lp_solves=lp_solves,
                    wall_time_s=time.perf_counter() - start,
                )
            )
        if root.status != 0:  # pragma: no cover - numerical trouble
            raise RuntimeError(f"LP solver failed: {root.message}")

        deadline = start + self.time_limit_s

        # Root dive: fix near-integral variables one at a time to seed
        # an incumbent early — essential for models whose LP relaxation
        # is weak (e.g. min-switch-count objectives).
        dive = self._dive(
            lp, root.x, root_bounds, int_indices, feasible, deadline, c
        )
        if dive is not None and dive[1] < incumbent_obj:
            incumbent, incumbent_obj = dive
            emit(
                "solver.incumbent",
                source="root_dive",
                objective=sign * incumbent_obj,
                bound=sign * root.fun,
                gap=self._relative_gap(incumbent_obj, root.fun),
            )

        tie = itertools.count()
        heap: List[_Node] = [_Node(root.fun, next(tie), root_bounds)]
        # Cache the root LP solution so the first pop skips a re-solve.
        cached: Dict[int, Tuple[np.ndarray, float]] = {
            id(root_bounds): (root.x, root.fun)
        }

        best_bound = root.fun
        timed_out = False

        while heap:
            if time.perf_counter() - start > self.time_limit_s:
                timed_out = True
                break
            if nodes_explored >= self.node_limit:
                timed_out = True
                break
            node = heapq.heappop(heap)
            if node.bound >= incumbent_obj - _OBJ_TOL:
                # Pruned: cannot improve the incumbent.
                emit("solver.prune", where="pop", bound=sign * node.bound)
                continue
            best_bound = min(node.bound, incumbent_obj)

            hit = cached.pop(id(node.var_bounds), None)
            if hit is not None:
                x, obj = hit
            else:
                res = lp(node.var_bounds)
                if res.status != 0:
                    # Infeasible/unbounded subproblem.
                    emit("solver.prune", where="node_infeasible")
                    continue
                x, obj = res.x, res.fun
            nodes_explored += 1
            emit("solver.node", bound=sign * obj)
            if obj >= incumbent_obj - _OBJ_TOL:
                emit("solver.prune", where="node_bound", bound=sign * obj)
                continue

            frac_var = self._most_fractional(x, int_indices)
            if frac_var is None:
                # Integral LP optimum: new incumbent.
                incumbent = x.copy()
                incumbent_obj = obj
                emit(
                    "solver.incumbent",
                    source="node",
                    objective=sign * incumbent_obj,
                    bound=sign * best_bound,
                    gap=self._relative_gap(incumbent_obj, best_bound),
                )
                continue

            # Periodic dive while no incumbent exists: weak relaxations
            # can otherwise branch for the whole budget without ever
            # reaching an integral vertex.
            if incumbent is None and nodes_explored % 50 == 1:
                dived = self._dive(
                    lp, x, node.var_bounds, int_indices, feasible, deadline, c
                )
                if dived is not None:
                    incumbent, incumbent_obj = dived
                    emit(
                        "solver.incumbent",
                        source="dive",
                        objective=sign * incumbent_obj,
                        bound=sign * best_bound,
                        gap=self._relative_gap(incumbent_obj, best_bound),
                    )

            # Rounding heuristic: snap integral vars, re-check.
            rounded = self._round_candidate(feasible, x, int_indices)
            if rounded is not None:
                r_obj = float(c @ rounded)
                if r_obj < incumbent_obj - _OBJ_TOL:
                    incumbent = rounded
                    incumbent_obj = r_obj
                    emit(
                        "solver.incumbent",
                        source="rounding",
                        objective=sign * incumbent_obj,
                        bound=sign * best_bound,
                        gap=self._relative_gap(incumbent_obj, best_bound),
                    )

            value = x[frac_var]
            for lo, hi in (
                (node.var_bounds[frac_var][0], math.floor(value)),
                (math.ceil(value), node.var_bounds[frac_var][1]),
            ):
                if lo > hi:
                    continue
                child_bounds = list(node.var_bounds)
                child_bounds[frac_var] = (float(lo), float(hi))
                res = lp(child_bounds)
                if res.status != 0:
                    emit("solver.prune", where="child_infeasible")
                    continue
                if res.fun >= incumbent_obj - _OBJ_TOL:
                    emit(
                        "solver.prune",
                        where="child_bound",
                        bound=sign * res.fun,
                    )
                    continue
                child = _Node(res.fun, next(tie), child_bounds)
                cached[id(child_bounds)] = (res.x, res.fun)
                heapq.heappush(heap, child)

        wall = time.perf_counter() - start
        if incumbent is None:
            status = SolveStatus.TIME_LIMIT if timed_out else SolveStatus.INFEASIBLE
            return self._finish(
                Solution(
                    status,
                    nodes_explored=nodes_explored,
                    lp_solves=lp_solves,
                    wall_time_s=wall,
                )
            )

        values = {
            var: (
                float(round(incumbent[var.index]))
                if var.is_integral
                else float(incumbent[var.index])
            )
            for var in model.variables
        }
        status = (
            SolveStatus.FEASIBLE
            if timed_out and heap
            else SolveStatus.OPTIMAL
        )
        # Gap invariant: an exhausted search proved optimality, so the
        # gap is exactly 0.0 (never None) on OPTIMAL; a truncated
        # search reports the true incumbent-vs-bound gap, which is a
        # finite float whenever an incumbent exists (the root LP bound
        # is finite).
        if status is SolveStatus.OPTIMAL:
            gap = 0.0
        else:
            gap = self._relative_gap(incumbent_obj, best_bound)
        return self._finish(
            Solution(
                status,
                objective=sign * incumbent_obj,
                values=values,
                nodes_explored=nodes_explored,
                lp_solves=lp_solves,
                wall_time_s=wall,
                gap=gap,
            )
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _finish(solution: Solution) -> Solution:
        """Emit the terminal ``solver.done`` event and pass through."""
        emit("solver.done", **solution.summary())
        return solution

    # ------------------------------------------------------------------
    def _dive(
        self,
        lp,
        x0: np.ndarray,
        root_bounds: List[Tuple[float, float]],
        int_indices: List[int],
        feasible,
        deadline: Optional[float] = None,
        c: Optional[np.ndarray] = None,
    ) -> Optional[Tuple[np.ndarray, float]]:
        """Iteratively fix the least-fractional variable and re-solve.

        Returns ``(solution, objective)`` in minimize space when the
        dive reaches an integral feasible point, else None.  Aborts
        when ``deadline`` (perf_counter seconds) passes.
        """
        bounds = list(root_bounds)
        x = x0
        max_rounds = 60
        for _step in range(max_rounds):
            if deadline is not None and time.perf_counter() > deadline:
                return None
            fractional = [
                idx
                for idx in int_indices
                if abs(x[idx] - round(x[idx])) > _INT_TOL
            ]
            if not fractional:
                candidate = x.copy()
                for idx in int_indices:
                    candidate[idx] = round(candidate[idx])
                if feasible(candidate):
                    return candidate, float(c @ candidate)
                return None
            # Fix every already-integral variable plus the single
            # least-fractional one, then re-solve: converges in a
            # handful of LP rounds rather than one per variable.
            for idx in int_indices:
                if abs(x[idx] - round(x[idx])) <= _INT_TOL:
                    value = float(round(x[idx]))
                    lo, hi = bounds[idx]
                    value = min(max(value, lo), hi)
                    bounds[idx] = (value, value)
            idx = min(fractional, key=lambda i: abs(x[i] - round(x[i])))
            lo, hi = bounds[idx]
            primary = min(max(float(round(x[idx])), lo), hi)
            # Degenerate relaxations (e.g. min-switch-count) sit on
            # plateaus where rounding toward zero is always infeasible;
            # when the primary fix fails, try the other side before
            # abandoning the dive.
            fallback = math.ceil(x[idx]) if primary <= x[idx] else math.floor(x[idx])
            fallback = min(max(float(fallback), lo), hi)
            res = None
            for value in dict.fromkeys((primary, fallback)):
                bounds[idx] = (value, value)
                res = lp(bounds)
                if res.status == 0:
                    break
            if res is None or res.status != 0:
                return None
            x = res.x
        return None

    @staticmethod
    def _most_fractional(
        x: np.ndarray, int_indices: List[int]
    ) -> Optional[int]:
        """The integral variable farthest from an integer, or None."""
        best_idx: Optional[int] = None
        best_dist = _INT_TOL
        for idx in int_indices:
            dist = abs(x[idx] - round(x[idx]))
            if dist > best_dist:
                best_dist = dist
                best_idx = idx
        return best_idx

    @staticmethod
    def _round_candidate(
        feasible, x: np.ndarray, int_indices: List[int]
    ) -> Optional[np.ndarray]:
        """Round integral vars of an LP point; keep it only if feasible."""
        candidate = x.copy()
        for idx in int_indices:
            candidate[idx] = round(candidate[idx])
        if feasible(candidate):
            return candidate
        return None

    @staticmethod
    def _relative_gap(incumbent: float, bound: float) -> Optional[float]:
        if math.isinf(bound):
            return None
        denom = max(abs(incumbent), 1e-9)
        return abs(incumbent - bound) / denom


def solve(model: Model, time_limit_s: float = 300.0) -> Solution:
    """Convenience wrapper: solve ``model`` with default settings."""
    return BranchBoundSolver(time_limit_s=time_limit_s).solve(model)
