"""Shared fixtures: a real daemon on a Unix socket, per test."""

import asyncio
import threading

import pytest

from repro.server.service import ReproServer


@pytest.fixture
def server_factory(tmp_path):
    """Start ReproServer instances on their own event-loop threads.

    Yields a ``start(**kwargs) -> ReproServer`` callable; every server
    it started is stopped (cleanly, through the loop) at teardown.
    """
    started = []

    def start(**kwargs):
        kwargs.setdefault(
            "socket_path", str(tmp_path / f"repro-{len(started)}.sock")
        )
        server = ReproServer(**kwargs)
        ready = threading.Event()

        def run():
            async def main():
                await server.start()
                ready.set()
                await server.serve_forever()

            asyncio.run(main())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(30), "server failed to start"
        started.append((server, thread))
        return server

    yield start

    for server, thread in started:
        if thread.is_alive():
            server.stop_threadsafe()
            thread.join(30)
        assert not thread.is_alive(), "server failed to stop"


@pytest.fixture
def server(server_factory):
    """One plain daemon (no persistence, serial cold solves)."""
    return server_factory()
