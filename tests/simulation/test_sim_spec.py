"""Tests for the simulation spec (repro.simulation.spec)."""

import pytest

from repro.network.generators import linear_topology, random_wan
from repro.network.paths import path_latency_us, shortest_path
from repro.plan.artifact import DeploymentError
from repro.simulation.flow import (
    MIN_PAYLOAD_BYTES,
    flow_pair,
    widened_mtu,
)
from repro.simulation.netsim import HopSpec, uniform_path
from repro.simulation.spec import (
    E2E_HOPS,
    E2E_MESSAGE_BYTES,
    FlowSpec,
    SimulationSpec,
    TrafficModel,
    hop_chain,
)
from repro.simulation.traces import TraceConfig, generate_trace


class TestWidenedMtu:
    def test_small_overhead_keeps_nominal_mtu(self):
        assert widened_mtu(0) == 1500
        assert widened_mtu(108) == 1500

    def test_large_overhead_opens_the_mtu(self):
        assert widened_mtu(1500) == 1500 + 54 + MIN_PAYLOAD_BYTES

    def test_boundary_is_exact(self):
        boundary = 1500 - 54 - MIN_PAYLOAD_BYTES
        assert widened_mtu(boundary) == 1500
        assert widened_mtu(boundary + 1) == 1501

    def test_flow_pair_baseline_is_overhead_free(self):
        baseline, measured = flow_pair(10_000, 1024, 300)
        assert baseline.overhead_bytes == 0
        assert baseline.mtu == 1500
        assert measured.overhead_bytes == 300
        assert measured.mtu == widened_mtu(300)

    def test_flow_pair_always_leaves_payload_room(self):
        # The payload floor guarantees constructability at any overhead.
        for overhead in (0, 1382, 1383, 5000, 100_000):
            _, measured = flow_pair(1_000, 1024, overhead)
            assert measured.effective_payload_bytes >= 1


class TestConstructors:
    def test_uniform_matches_e2e_defaults(self):
        spec = SimulationSpec.uniform(48)
        assert len(spec.paths) == 1
        assert len(spec.paths[0]) == E2E_HOPS
        assert spec.num_flows == 1
        assert spec.flows[0].message_bytes == E2E_MESSAGE_BYTES
        assert spec.flows[0].overhead_bytes == 48
        assert spec.source == "uniform"

    def test_uniform_sweep_shares_one_path(self):
        spec = SimulationSpec.uniform_sweep((28, 48, 68))
        assert len(spec.paths) == 1
        assert [f.overhead_bytes for f in spec.flows] == [28, 48, 68]

    def test_from_trace_binds_every_flow(self):
        trace = generate_trace(3, TraceConfig(num_flows=25))
        spec = SimulationSpec.from_trace(trace, uniform_path(5), 64)
        assert spec.num_flows == 25
        assert all(f.overhead_bytes == 64 for f in spec.flows)
        assert [f.message_bytes for f in spec.flows] == [
            t.message_bytes for t in trace
        ]

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            SimulationSpec.uniform_sweep(())
        with pytest.raises(ValueError):
            SimulationSpec.from_trace([], uniform_path(5), 0)
        with pytest.raises(ValueError):
            SimulationSpec(paths=(), flows=(FlowSpec(0, 1, 0),))
        with pytest.raises(ValueError):
            SimulationSpec(
                paths=(tuple(uniform_path(2)),), flows=()
            )

    def test_dangling_path_id_rejected(self):
        with pytest.raises(ValueError, match="unknown path"):
            SimulationSpec(
                paths=(tuple(uniform_path(2)),),
                flows=(FlowSpec(0, 1, 0, path_id=3),),
            )

    def test_flow_objects_follow_the_shared_rule(self):
        spec = SimulationSpec.uniform(2000, packet_payload_bytes=512)
        baseline, measured = spec.flow_objects(spec.flows[0])
        expected_baseline, expected_measured = flow_pair(
            E2E_MESSAGE_BYTES, 512, 2000
        )
        assert baseline.mtu == expected_baseline.mtu
        assert measured.mtu == expected_measured.mtu
        assert measured.effective_payload_bytes >= 1


class TestHopChain:
    def test_latency_equals_path_latency(self):
        network = random_wan(12, 20, seed=4)
        names = network.switch_names
        path = shortest_path(network, names[0], names[-1])
        hops = hop_chain(network, path.switches)
        assert len(hops) == len(path.switches) - 1
        assert sum(h.latency_us for h in hops) == pytest.approx(
            path_latency_us(network, path.switches)
        )

    def test_rates_come_from_links(self):
        network = linear_topology(3)
        hops = hop_chain(network, tuple(network.switch_names))
        for hop, (u, v) in zip(
            hops,
            zip(network.switch_names, network.switch_names[1:]),
        ):
            assert hop.rate_gbps == network.link(u, v).bandwidth_gbps

    def test_degenerate_single_switch(self):
        network = linear_topology(2)
        (hop,) = hop_chain(network, (network.switch_names[0],))
        assert hop.latency_us == network.switches[0].latency_us


class TestFromPlan:
    def _deploy(self):
        from repro.baselines import Ffl
        from repro.workloads import real_programs

        network = random_wan(10, 16, seed=2)
        plan = Ffl().deploy(real_programs(8), network).plan
        return plan, network

    def test_pairs_become_paths_and_flows(self):
        plan, network = self._deploy()
        pair_bytes = plan.pair_metadata_bytes()
        spec = SimulationSpec.from_plan(plan, network)
        assert len(spec.paths) == len(pair_bytes)
        assert spec.num_flows == len(pair_bytes)
        by_pair = {f.pair: f.overhead_bytes for f in spec.flows}
        assert by_pair == dict(pair_bytes)

    def test_hop_chains_follow_plan_routing(self):
        plan, network = self._deploy()
        spec = SimulationSpec.from_plan(plan, network)
        routing = plan.routing
        for flow in spec.flows:
            path = routing[flow.pair]
            hops = spec.paths[flow.path_id]
            assert len(hops) == len(path.switches) - 1

    def test_trace_spreads_round_robin(self):
        plan, network = self._deploy()
        trace = generate_trace(0, TraceConfig(num_flows=13))
        spec = SimulationSpec.from_plan(plan, network, trace=trace)
        assert spec.num_flows == 13
        npairs = len(plan.pair_metadata_bytes())
        for i, flow in enumerate(spec.flows):
            assert flow.path_id == i % npairs

    @staticmethod
    def _idle_plan(network):
        from repro.plan.artifact import DeploymentPlan
        from repro.tdg.graph import Tdg

        return DeploymentPlan(Tdg("idle"), network, {})

    def test_idle_plan_falls_back_to_uniform(self):
        network = random_wan(6, 9, seed=1)
        plan = self._idle_plan(network)
        spec = SimulationSpec.from_plan(plan, network)
        assert spec.source == "plan:idle"
        assert spec.num_flows == 1
        assert spec.flows[0].overhead_bytes == 0

    def test_idle_plan_still_evaluates_a_trace(self):
        network = random_wan(6, 9, seed=1)
        plan = self._idle_plan(network)
        trace = generate_trace(5, TraceConfig(num_flows=7))
        spec = SimulationSpec.from_plan(plan, network, trace=trace)
        assert spec.source == "plan:idle"
        assert spec.num_flows == 7

    def test_unrouted_coordinating_pair_raises(self):
        plan, network = self._deploy()
        stripped = plan.with_routing({})
        if not plan.pair_metadata_bytes():
            pytest.skip("workload produced no coordinating pairs")
        with pytest.raises(DeploymentError):
            SimulationSpec.from_plan(stripped, network)


class TestTrafficModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficModel(packet_payload_bytes=0)
        with pytest.raises(ValueError):
            TrafficModel(message_bytes=0)

    def test_spec_is_hashable_and_frozen(self):
        spec = SimulationSpec.uniform(10)
        with pytest.raises(AttributeError):
            spec.source = "other"
        assert hash(spec.traffic) == hash(TrafficModel())


def test_hopspec_reexported_shape():
    # The spec's paths are plain HopSpec chains, interchangeable with
    # hand-built uniform paths.
    assert SimulationSpec.uniform(0).paths[0][0] == HopSpec()
