"""First fit by level (FFL).

The classic greedy from Jose et al.: compute each MAT's *level* (the
longest dependency chain leading to it) and place MATs level by level
into the first stage with room.  Extended network-wide by running the
first-fit over the concatenated chain pipeline, programs one by one.
Fast — no ILP — but entirely oblivious to metadata sizes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.baselines.base import (
    DeploymentFramework,
    build_switch_chain,
    route_all_pairs,
    schedule_on_chain,
)
from repro.core.deployment import DeploymentPlan
from repro.dataplane.program import Program
from repro.network.paths import PathEnumerator
from repro.network.topology import Network
from repro.tdg.builder import qualified_name
from repro.tdg.graph import Tdg


def mat_levels(segment: Tdg) -> Dict[str, int]:
    """Longest-path level of every MAT (sources are level 0)."""
    levels: Dict[str, int] = {}
    for name in segment.topological_order():
        preds = segment.predecessors(name)
        levels[name] = (
            max(levels[p] for p in preds) + 1 if preds else 0
        )
    return levels


class Ffl(DeploymentFramework):
    """The FFL baseline: first fit by level over the switch chain."""

    name = "FFL"
    merges = False

    def level_order(self, segment: Tdg) -> List[str]:
        """MATs by (level, name) — plain first-fit-by-level order."""
        levels = mat_levels(segment)
        return sorted(segment.node_names, key=lambda a: (levels[a], a))

    def _place(
        self,
        tdg: Tdg,
        programs: Sequence[Program],
        network: Network,
        paths: PathEnumerator,
    ) -> Tuple[DeploymentPlan, bool]:
        chain = build_switch_chain(network, paths)
        order: List[str] = []
        for program in programs:
            node_names = [
                qualified_name(program.name, mat.name)
                for mat in program.mats
            ]
            segment = tdg.subgraph(node_names, name=program.name)
            order.extend(self.level_order(segment))
        placements = schedule_on_chain(tdg, order, network, chain)
        plan = route_all_pairs(DeploymentPlan(tdg, network, placements), paths)
        plan.validate()
        return plan, False
