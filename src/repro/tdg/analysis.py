"""Metadata-size analysis (Algorithm 1, ``TDG_ANALYSIS``).

For every TDG edge ``(a, b)`` the analysis computes ``A(a, b)``: the
number of bytes of *metadata* that must be piggybacked on each packet
if ``a`` and ``b`` end up on different switches.  Header fields already
ride in the packet and contribute nothing; only pipeline metadata costs
wire bytes.

Per the paper:

* **Match dependency (ℳ)** — ``a`` passes its processing results in
  ``F^a_a`` to ``b``; the metadata fields of ``F^a_a`` are summed.
* **Action dependency (𝔸)** — both tables touch the shared write set;
  the metadata fields of ``F^a_a ∪ F^a_b`` are summed.
* **Reverse-match dependency (ℝ)** — no data flows downstream: zero.
* **Successor dependency (𝕊)** — ``a``'s result gates ``b``; the
  metadata fields of ``F^a_a`` are summed.
"""

from __future__ import annotations

from repro.dataplane.mat import Mat
from repro.tdg.dependencies import DependencyType
from repro.tdg.graph import Tdg


def edge_metadata_bytes(
    upstream: Mat,
    downstream: Mat,
    dep_type: DependencyType,
) -> int:
    """``A(a, b)`` for one dependency, per Algorithm 1 lines 10-18."""
    if dep_type is DependencyType.MATCH:
        return upstream.modified_fields.metadata_bytes()
    if dep_type is DependencyType.ACTION:
        shared = upstream.modified_fields.union(downstream.modified_fields)
        return shared.metadata_bytes()
    if dep_type is DependencyType.REVERSE:
        return 0
    if dep_type is DependencyType.SUCCESSOR:
        return upstream.modified_fields.metadata_bytes()
    raise AssertionError(f"unhandled dependency type {dep_type}")


def annotate_metadata_sizes(tdg: Tdg) -> Tdg:
    """Fill in ``metadata_bytes`` on every edge of ``tdg`` (in place).

    Returns the same graph for chaining, mirroring the paper's
    ``TDG_ANALYSIS(T_m)`` which returns the annotated ``T_m``.
    """
    for edge in tdg.edges:
        upstream = tdg.node(edge.upstream)
        downstream = tdg.node(edge.downstream)
        edge.metadata_bytes = edge_metadata_bytes(
            upstream, downstream, edge.dep_type
        )
    return tdg
