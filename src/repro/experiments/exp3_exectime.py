"""Exp#3 (Fig. 7): execution time in the large-scale simulation.

Reads the same runs as Exp#2 and reports each framework's placement
time per topology.  Following the paper's rendering, ILP runs that
exceeded their budget are reported as the off-scale ``1e7`` ms bar.

The shared :func:`run` accepts Exp#2's ``runner=`` argument; note that
with a warm result cache the *recorded* ``solve_time_s`` is the one
measured when the cell was first solved (cached cells are not
re-timed), so execution-time studies should run cache-off.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.exp2_overhead import Exp2Point, pivot, run

__all__ = ["render", "run", "main"]


def render(points: List[Exp2Point]) -> str:
    """Fig. 7 as one table (what ``main`` prints; the suite's ``exp3``
    aggregator shares it)."""
    return pivot(
        points,
        "reported_time_ms",
        "Fig. 7: execution time (ms; 1e7 = exceeded limit)",
    ).render()


def main(points: Optional[List[Exp2Point]] = None) -> str:
    points = points if points is not None else run()
    output = render(points)
    print(output)
    return output


if __name__ == "__main__":
    main()
