"""Pluggable evaluation engines for :class:`SimulationSpec`.

One spec, four ways to evaluate it:

* :class:`ExactEngine` — the per-packet discrete-event
  :class:`~repro.simulation.netsim.FlowSimulator`; exact for short
  last packets and heterogeneous hops, and priced accordingly;
* :class:`AnalyticEngine` — the closed-form
  :func:`~repro.simulation.netsim.analytic_fct` pipeline model,
  evaluated flow by flow (this is the legacy semantics every
  experiment used, preserved bit-for-bit);
* :class:`BatchEngine` — the same closed form vectorized with NumPy
  over whole traces (10^5–10^6 flows in one shot); agrees with the
  analytic engine within :data:`BATCH_REL_TOLERANCE` (the summation
  order differs, nothing else);
* :class:`~repro.simulation.contention.ContentionEngine` — the only
  engine where flows *interact*: per-path output-queue contention at
  an ``--load`` utilization knob, vectorized to 10^6–10^7 flows, and
  differentially locked to the exact DES at contention-free loads
  (see :mod:`repro.simulation.contention`; it registers itself here
  on import).

Every evaluation emits a ``sim.evaluate`` telemetry event (engine
chosen, flows evaluated, wall time) so journals record which path
produced which numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from repro import telemetry
from repro.simulation.flow import MIN_PAYLOAD_BYTES
from repro.simulation.netsim import FlowSimulator, analytic_fct
from repro.simulation.spec import (
    E2E_HOPS,
    E2E_MESSAGE_BYTES,
    SimulationSpec,
)

#: Relative tolerance within which the batch engine's FCT/goodput agree
#: with the per-flow analytic engine.  Both evaluate the identical
#: closed form; the batch path hoists the per-hop sum out of the
#: per-flow loop (``w * sum(8/r)`` instead of ``sum(w * 8/r)``), which
#: reorders float additions — a last-ulp effect, bounded far below
#: this documented tolerance.
BATCH_REL_TOLERANCE = 1e-6


class EngineUnavailableError(RuntimeError):
    """The requested engine cannot run in this environment."""


@dataclass
class SimulationResult:
    """Columnar outcome of evaluating one spec.

    Per-flow columns are index-aligned with ``spec.flows``.  Every
    measured flow is paired with a zero-overhead baseline twin on the
    same path, so normalized ratios (Fig. 2's y-axes) are available
    per flow and in aggregate.
    """

    engine: str
    source: str
    fct_us: List[float]
    goodput_gbps: List[float]
    num_packets: List[int]
    wire_bytes: List[int]
    baseline_fct_us: List[float]
    baseline_goodput_gbps: List[float]
    wall_s: float = 0.0
    #: Per-flow queueing wait (µs) folded into ``fct_us``; ``None`` for
    #: the contention-oblivious engines, all-zero at contention-free
    #: loads.  ``load`` records the offered bottleneck utilization the
    #: contention engine evaluated at (0.0 = flows were independent).
    wait_us: Optional[List[float]] = None
    load: float = 0.0
    _fct_ratios: List[float] = field(
        default=None, repr=False, compare=False
    )  # type: ignore[assignment]

    @property
    def num_flows(self) -> int:
        return len(self.fct_us)

    @property
    def fct_ratios(self) -> List[float]:
        """Per-flow FCT inflation against the zero-overhead twin."""
        if self._fct_ratios is None:
            self._fct_ratios = [
                m / b for m, b in zip(self.fct_us, self.baseline_fct_us)
            ]
        return self._fct_ratios

    @property
    def goodput_ratios(self) -> List[float]:
        return [
            m / b
            for m, b in zip(self.goodput_gbps, self.baseline_goodput_gbps)
        ]

    @property
    def fct_ratio(self) -> float:
        """Worst per-flow FCT inflation (pairs carry A_max semantics)."""
        return max(self.fct_ratios)

    @property
    def goodput_ratio(self) -> float:
        """Worst per-flow goodput retention."""
        return min(self.goodput_ratios)

    @property
    def mean_fct_us(self) -> float:
        return sum(self.fct_us) / len(self.fct_us)

    @property
    def p99_fct_us(self) -> float:
        ordered = sorted(self.fct_us)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    @property
    def mean_slowdown(self) -> float:
        """Mean per-flow FCT ratio — the "small flows pay more" stat."""
        ratios = self.fct_ratios
        return sum(ratios) / len(ratios)

    @property
    def total_wire_bytes(self) -> int:
        return sum(self.wire_bytes)

    @property
    def mean_wait_us(self) -> float:
        """Mean queueing wait (0.0 for contention-oblivious engines)."""
        if not self.wait_us:
            return 0.0
        return sum(self.wait_us) / len(self.wait_us)

    @property
    def max_wait_us(self) -> float:
        if not self.wait_us:
            return 0.0
        return max(self.wait_us)

    @property
    def contended_fraction(self) -> float:
        """Fraction of flows that queued at all."""
        if not self.wait_us:
            return 0.0
        return sum(1 for w in self.wait_us if w > 0.0) / len(self.wait_us)


class Engine:
    """Evaluation strategy for a :class:`SimulationSpec`."""

    name = "abstract"

    def evaluate(self, spec: SimulationSpec) -> SimulationResult:
        """Evaluate the spec, with ``sim.evaluate`` telemetry."""
        start = time.perf_counter()
        result = self._evaluate(spec)
        result.wall_s = time.perf_counter() - start
        telemetry.emit(
            "sim.evaluate",
            engine=self.name,
            source=spec.source,
            flows=spec.num_flows,
            paths=len(spec.paths),
            wall_s=result.wall_s,
        )
        return result

    def _evaluate(self, spec: SimulationSpec) -> SimulationResult:
        raise NotImplementedError

    def _from_metrics_pairs(
        self, spec: SimulationSpec, pairs: Sequence[Tuple]
    ) -> SimulationResult:
        """Assemble columns from (measured, baseline) FlowMetrics."""
        return SimulationResult(
            engine=self.name,
            source=spec.source,
            fct_us=[m.fct_us for m, _ in pairs],
            goodput_gbps=[m.goodput_gbps for m, _ in pairs],
            num_packets=[m.num_packets for m, _ in pairs],
            wire_bytes=[m.wire_bytes_per_hop for m, _ in pairs],
            baseline_fct_us=[b.fct_us for _, b in pairs],
            baseline_goodput_gbps=[b.goodput_gbps for _, b in pairs],
        )


class AnalyticEngine(Engine):
    """Per-flow closed form — the legacy semantics, bit-for-bit."""

    name = "analytic"

    def _evaluate(self, spec: SimulationSpec) -> SimulationResult:
        pairs = []
        for flow in spec.flows:
            path = spec.paths[flow.path_id]
            baseline, measured = spec.flow_objects(flow)
            pairs.append(
                (analytic_fct(measured, path), analytic_fct(baseline, path))
            )
        return self._from_metrics_pairs(spec, pairs)


class ExactEngine(Engine):
    """Per-packet discrete-event simulation of every flow."""

    name = "exact"

    def _evaluate(self, spec: SimulationSpec) -> SimulationResult:
        simulators = [FlowSimulator(path) for path in spec.paths]
        pairs = []
        for flow in spec.flows:
            sim = simulators[flow.path_id]
            baseline, measured = spec.flow_objects(flow)
            pairs.append((sim.run(measured), sim.run(baseline)))
        return self._from_metrics_pairs(spec, pairs)


class BatchEngine(Engine):
    """Vectorized closed form over the whole spec in one shot.

    Requires NumPy; raises :class:`EngineUnavailableError` when the
    environment lacks it (the analytic engine is the drop-in
    fallback — identical model, per-flow loop).
    """

    name = "batch"

    def _evaluate(self, spec: SimulationSpec) -> SimulationResult:
        try:
            import numpy as np
        except ImportError as exc:  # pragma: no cover - env dependent
            raise EngineUnavailableError(
                "the batch engine needs numpy; use --engine analytic "
                "for the equivalent per-flow closed form"
            ) from exc

        tm = spec.traffic
        payload, hdr, mtu = tm.packet_payload_bytes, tm.header_bytes, tm.mtu
        # Per-path pipeline constants: for uniform per-flow wire size w,
        # FCT = w * sum(8/r) + sum(l) + (N - 1) * w * max(8/r).
        inv_rates = [
            [8.0 / (hop.rate_gbps * 1000.0) for hop in path]
            for path in spec.paths
        ]
        tx_sum = np.array([sum(r) for r in inv_rates])
        tx_max = np.array([max(r) for r in inv_rates])
        lat_sum = np.array(
            [sum(h.latency_us for h in p) for p in spec.paths]
        )
        pid = np.fromiter(
            (f.path_id for f in spec.flows), dtype=np.int64,
            count=len(spec.flows),
        )
        msg = np.fromiter(
            (f.message_bytes for f in spec.flows), dtype=np.int64,
            count=len(spec.flows),
        )
        ov = np.fromiter(
            (f.overhead_bytes for f in spec.flows), dtype=np.int64,
            count=len(spec.flows),
        )

        def pipeline(eff, extra):
            """FCT / goodput / packets / wire for one overhead column."""
            packets = -(-msg // eff)
            wire_pkt = eff + extra
            fct = (
                wire_pkt * tx_sum[pid]
                + lat_sum[pid]
                + (packets - 1) * (wire_pkt * tx_max[pid])
            )
            goodput = msg * 8.0 / (fct * 1000.0)
            wire = (packets - 1) * wire_pkt + (
                msg - (packets - 1) * eff
            ) + extra
            return fct, goodput, packets, wire

        widened = np.maximum(mtu, ov + hdr + MIN_PAYLOAD_BYTES)
        eff_measured = np.minimum(payload, widened - ov - hdr)
        fct_m, gp_m, n_m, wire_m = pipeline(eff_measured, ov + hdr)
        eff_baseline = min(payload, mtu - hdr)
        fct_b, gp_b, _n, _wire = pipeline(
            np.full_like(msg, eff_baseline), hdr
        )
        return SimulationResult(
            engine=self.name,
            source=spec.source,
            fct_us=fct_m.tolist(),
            goodput_gbps=gp_m.tolist(),
            num_packets=n_m.tolist(),
            wire_bytes=wire_m.tolist(),
            baseline_fct_us=fct_b.tolist(),
            baseline_goodput_gbps=gp_b.tolist(),
        )


ENGINES: Dict[str, Type[Engine]] = {
    AnalyticEngine.name: AnalyticEngine,
    ExactEngine.name: ExactEngine,
    BatchEngine.name: BatchEngine,
}

#: The default engine everywhere an ``--engine`` knob is not exposed.
DEFAULT_ENGINE = AnalyticEngine.name


def _ensure_plugins() -> None:
    """Import engines that live in their own modules.

    :class:`~repro.simulation.contention.ContentionEngine` registers
    itself in :data:`ENGINES` when its module loads; deferring that
    import keeps this module cycle-free (contention subclasses
    :class:`Engine`).
    """
    from repro.simulation import contention  # noqa: F401


def get_engine(
    engine: Union[str, Engine] = DEFAULT_ENGINE, **kwargs
) -> Engine:
    """Resolve an engine name (or pass an instance through).

    Keyword arguments go to the engine constructor — e.g.
    ``get_engine("contention", load=0.9)``.
    """
    if isinstance(engine, Engine):
        return engine
    if engine not in ENGINES:
        _ensure_plugins()
    try:
        return ENGINES[engine](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; choose from "
            f"{sorted(ENGINES)}"
        ) from None


def overhead_impact(
    overhead_bytes: int,
    packet_payload_bytes: int = 1024,
    hops: int = E2E_HOPS,
    message_bytes: int = E2E_MESSAGE_BYTES,
    engine: Union[str, Engine] = DEFAULT_ENGINE,
    flows: int = 1,
) -> Tuple[float, float]:
    """Scalar overhead -> (fct_ratio, goodput_ratio), uniform path.

    The spec+engine successor of the legacy ``end_to_end_impact``:
    same uniform 5-hop path, same MTU widening, same normalization —
    reproduced bit-for-bit by the analytic engine (locked in by the
    differential tests).  ``flows`` replicates the message into a
    population sharing the path — a no-op for the independent-flow
    engines, but what gives the contention engine a queue to fill
    (see :func:`repro.simulation.contention.congested_overhead_impact`).
    """
    spec = SimulationSpec.uniform(
        overhead_bytes,
        packet_payload_bytes=packet_payload_bytes,
        hops=hops,
        message_bytes=message_bytes,
        flows=flows,
    )
    result = get_engine(engine).evaluate(spec)
    return result.fct_ratio, result.goodput_ratio


__all__ = [
    "BATCH_REL_TOLERANCE",
    "DEFAULT_ENGINE",
    "ENGINES",
    "AnalyticEngine",
    "BatchEngine",
    "Engine",
    "EngineUnavailableError",
    "ExactEngine",
    "SimulationResult",
    "get_engine",
    "overhead_impact",
]
