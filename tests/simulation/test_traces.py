"""Tests for synthetic DCN flow traces."""

import pytest

from repro.simulation.netsim import uniform_path
from repro.simulation.traces import (
    TraceConfig,
    evaluate_trace,
    generate_trace,
)


class TestGenerateTrace:
    def test_deterministic_per_seed(self):
        a = generate_trace(seed=1)
        b = generate_trace(seed=1)
        assert [(f.arrival_us, f.message_bytes) for f in a] == [
            (f.arrival_us, f.message_bytes) for f in b
        ]

    def test_seeds_differ(self):
        a = generate_trace(seed=1)
        b = generate_trace(seed=2)
        assert [f.message_bytes for f in a] != [f.message_bytes for f in b]

    def test_arrivals_monotone(self):
        trace = generate_trace(seed=3)
        arrivals = [f.arrival_us for f in trace]
        assert arrivals == sorted(arrivals)

    def test_sizes_within_bounds(self):
        config = TraceConfig(max_bytes=10_000_000)
        trace = generate_trace(seed=4, config=config)
        assert all(64 <= f.message_bytes <= 10_000_000 for f in trace)

    def test_heavy_tail_present(self):
        trace = generate_trace(seed=5, config=TraceConfig(num_flows=2000))
        sizes = sorted(f.message_bytes for f in trace)
        median = sizes[len(sizes) // 2]
        p999 = sizes[int(0.999 * len(sizes))]
        assert p999 > 50 * median  # elephants dwarf the median mouse

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(num_flows=0)
        with pytest.raises(ValueError):
            TraceConfig(tail_probability=2.0)
        with pytest.raises(ValueError):
            TraceConfig(tail_alpha=1.0)
        with pytest.raises(ValueError):
            TraceConfig(flows_per_second=0)


class TestEvaluateTrace:
    def test_overhead_raises_mean_fct(self):
        trace = generate_trace(seed=6, config=TraceConfig(num_flows=300))
        path = uniform_path(5)
        clean = evaluate_trace(trace, path, overhead_bytes=0)
        loaded = evaluate_trace(trace, path, overhead_bytes=108)
        assert loaded.mean_fct_us > clean.mean_fct_us
        assert loaded.total_wire_bytes > clean.total_wire_bytes
        assert clean.mean_slowdown == pytest.approx(1.0)
        assert loaded.mean_slowdown > 1.0

    def test_p99_at_least_mean(self):
        trace = generate_trace(seed=7, config=TraceConfig(num_flows=300))
        metrics = evaluate_trace(trace, uniform_path(5), 48)
        assert metrics.p99_fct_us >= metrics.mean_fct_us

    def test_slowdown_monotone_in_overhead(self):
        trace = generate_trace(seed=8, config=TraceConfig(num_flows=200))
        path = uniform_path(5)
        slowdowns = [
            evaluate_trace(trace, path, ov).mean_slowdown
            for ov in (0, 28, 68, 108)
        ]
        assert slowdowns == sorted(slowdowns)

    def test_serialization_bound_flows_pay_the_full_tax(self):
        mice = generate_trace(
            seed=9,
            config=TraceConfig(
                num_flows=200, median_bytes=1024, tail_probability=0.0
            ),
        )
        elephants = generate_trace(
            seed=9,
            config=TraceConfig(
                num_flows=200,
                median_bytes=10 * 1024 * 1024,
                sigma=0.2,
                tail_probability=0.0,
            ),
        )
        path = uniform_path(5)
        mice_slow = evaluate_trace(mice, path, 108).mean_slowdown
        elephant_slow = evaluate_trace(elephants, path, 108).mean_slowdown
        # Elephants are serialization-bound: their slowdown approaches
        # the full wire inflation (108 extra bytes on ~1078-byte
        # packets, ~10%).  Mice are propagation-bound and dilute it.
        assert elephant_slow > mice_slow
        assert elephant_slow == pytest.approx(1.10, abs=0.02)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            evaluate_trace([], uniform_path(3), 0)
