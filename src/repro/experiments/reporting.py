"""Plain-text tables and series for experiment output."""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell and (abs(cell) >= 1e5 or abs(cell) < 1e-3):
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


class Table:
    """A fixed-width text table (the shape the paper's figures report).

    Usage:
        table = Table("Exp#2", ["topology", "Hermes", "FFL"])
        table.add_row([1, 24, 156])
        print(table.render())
    """

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> None:
        rendered = [_render(c) for c in cells]
        if len(rendered) != len(self.headers):
            raise ValueError(
                f"row has {len(rendered)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(rendered)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

        divider = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = [self.title, divider, line(self.headers), divider]
        out.extend(line(row) for row in self.rows)
        out.append(divider)
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_series(name: str, values: Sequence[Cell]) -> str:
    """One named series on one line: ``name: v1, v2, ...``."""
    return f"{name}: " + ", ".join(_render(v) for v in values)


def pivot_records(
    points: Sequence[tuple],
    attr: str,
    title: str,
    col_label: Callable[[object], str] = str,
) -> Table:
    """Framework x coordinate table of one record attribute.

    ``points`` are ``(coordinate, record)`` pairs — the shape every
    deployment experiment produces.  Rows are frameworks in
    first-seen order; columns are the sorted distinct coordinates,
    headed by ``col_label(coordinate)`` (e.g. ``lambda c: f"n={c}"``).
    This is the one pivot behind exp1/exp2/exp5's figures and the
    suite compiler's generic ``pivot`` aggregator.
    """
    coords = sorted({coord for coord, _ in points})
    names: List[str] = []
    for _, record in points:
        if record.framework not in names:
            names.append(record.framework)
    table = Table(title, ["framework"] + [col_label(c) for c in coords])
    for name in names:
        row: List[Cell] = [name]
        for coord in coords:
            record = next(
                rec
                for c, rec in points
                if rec.framework == name and c == coord
            )
            row.append(getattr(record, attr))
        table.add_row(row)
    return table
