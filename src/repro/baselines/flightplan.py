"""Flightplan (Sultana et al., NSDI'21).

Flightplan disaggregates one program across heterogeneous devices to
satisfy per-device resource constraints.  It plans each program
independently (no cross-program merging) and favours plans touching as
few devices as possible; we model it as the switch-count-minimizing ILP
over the unmerged TDG.
"""

from __future__ import annotations

from repro.baselines.speed import Speed
from repro.core.formulation import OBJECTIVE_SWITCHES


class Flightplan(Speed):
    """The Flightplan baseline: unmerged TDG, device-count objective."""

    name = "FP"
    merges = False
    objective = OBJECTIVE_SWITCHES
