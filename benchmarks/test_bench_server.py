"""Benchmark: control-plane daemon vs one-shot CLI.

Measures the point of ``repro serve``: a resident control plane keeps
parsed workloads, plan history and warm-start state alive, so a repeat
deploy costs an incremental rebase (sub-10ms) instead of a cold
interpreter start + parse + solve (seconds).  Three measurements on
the wan16/real10 instance:

* **repeat-deploy latency** — per-request wall time of warm deploys,
  p50/p99, at 1, 8 and 64 concurrent sessions (each session first
  primes itself with one cold deploy, then the timed warm repeats);
* **throughput** — warm requests/s over each concurrency level;
* **cold CLI baseline** — ``python -m repro deploy`` as a subprocess,
  the cost every scripted repeat-deploy loop pays today.

The contract test asserts the daemon's warm p50 beats the cold CLI by
>=5x.  Results are written to ``BENCH_server.json`` at the repo root
(the weekly solver-sweep workflow uploads it as an artifact).
"""

import asyncio
import json
import os
import statistics
import subprocess
import sys
import threading
import time

import pytest

from repro.server.client import ReproClient
from repro.server.service import ReproServer

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPORT_PATH = os.path.join(_REPO_ROOT, "BENCH_server.json")

#: The golden instance: the paper-scale WAN + real switch.p4 slices.
PARAMS = {"workload": "real:10", "topology": "wan:16:24", "seed": 1}

#: (concurrent sessions, timed warm deploys per session).
LEVELS = [(1, 40), (8, 10), (64, 4)]

CLI_REPS = 3


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _session_loop(address, repeats, latencies, barrier, errors):
    """One client session: prime cold, then timed warm repeats."""
    try:
        with ReproClient.connect(address) as client:
            primed = client.request("deploy", PARAMS)
            assert primed["session"]["source"] == "cold"
            barrier.wait(timeout=300)
            for _ in range(repeats):
                start = time.perf_counter()
                doc = client.request("deploy", PARAMS)
                latencies.append(time.perf_counter() - start)
                assert doc["session"]["source"].startswith("warm")
    except Exception as exc:  # surfaced by the fixture
        errors.append(exc)


def _run_level(address, sessions, repeats):
    latencies = []
    errors = []
    barrier = threading.Barrier(sessions + 1)
    threads = [
        threading.Thread(
            target=_session_loop,
            args=(address, repeats, latencies, barrier, errors),
        )
        for _ in range(sessions)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=300)  # every session primed: start the clock
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=600)
    wall_s = time.perf_counter() - start
    if errors:
        raise errors[0]
    assert len(latencies) == sessions * repeats
    return {
        "sessions": sessions,
        "requests": len(latencies),
        "wall_s": round(wall_s, 4),
        "requests_per_s": round(len(latencies) / max(wall_s, 1e-9), 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "mean_ms": round(statistics.mean(latencies) * 1e3, 3),
    }


def _cold_cli_seconds():
    """Best-of-N one-shot ``repro deploy`` on the same instance."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    command = [
        sys.executable,
        "-m",
        "repro",
        "deploy",
        "--workload",
        PARAMS["workload"],
        "--topology",
        PARAMS["topology"],
        "--seed",
        str(PARAMS["seed"]),
    ]
    best = float("inf")
    for _ in range(CLI_REPS):
        start = time.perf_counter()
        completed = subprocess.run(
            command,
            env=env,
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=300,
        )
        elapsed = time.perf_counter() - start
        assert completed.returncode == 0, completed.stderr
        best = min(best, elapsed)
    return best


@pytest.fixture(scope="module")
def server_records(tmp_path_factory):
    socket_path = str(
        tmp_path_factory.mktemp("server-bench") / "repro.sock"
    )
    server = ReproServer(socket_path=socket_path)
    ready = threading.Event()

    def run():
        async def main():
            await server.start()
            ready.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(60), "daemon failed to start"

    levels = [
        _run_level(server.address, sessions, repeats)
        for sessions, repeats in LEVELS
    ]
    cold_cli_s = _cold_cli_seconds()

    server.stop_threadsafe()
    thread.join(60)

    single = levels[0]
    payload = {
        "instance": "wan16/real10",
        "params": PARAMS,
        "levels": levels,
        "cold_cli_s": round(cold_cli_s, 4),
        "summary": {
            "warm_p50_ms": single["p50_ms"],
            "cold_cli_ms": round(cold_cli_s * 1e3, 1),
            "repeat_deploy_speedup": round(
                (cold_cli_s * 1e3) / max(single["p50_ms"], 1e-9), 1
            ),
            "peak_requests_per_s": max(
                level["requests_per_s"] for level in levels
            ),
        },
    }
    with open(_REPORT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def test_bench_server_all_levels_complete(server_records):
    for level in server_records["levels"]:
        assert level["requests"] == level["sessions"] * dict(LEVELS)[
            level["sessions"]
        ]
        assert level["p50_ms"] > 0


def test_bench_server_repeat_deploy_beats_cold_cli(server_records):
    """The headline: warm repeat deploys >=5x faster than cold CLI."""
    summary = server_records["summary"]
    assert summary["repeat_deploy_speedup"] >= 5.0, summary


def test_bench_server_scales_past_single_session(server_records):
    """More sessions must raise aggregate throughput over one session
    (warm deploys serialize on the GIL, but protocol + dispatch
    overlap; a regression here means dispatch went serial)."""
    by_sessions = {
        level["sessions"]: level for level in server_records["levels"]
    }
    assert (
        by_sessions[8]["requests_per_s"]
        > by_sessions[1]["requests_per_s"] * 0.8
    ), by_sessions


def test_bench_server_report(server_records):
    from conftest import record_report

    rows = [
        "Control-plane daemon: warm repeat deploys (wan16/real10)",
        f"{'sessions':>8} {'reqs':>5} {'req/s':>8} {'p50 ms':>8} "
        f"{'p99 ms':>8}",
    ]
    for level in server_records["levels"]:
        rows.append(
            f"{level['sessions']:>8} {level['requests']:>5} "
            f"{level['requests_per_s']:>8.1f} {level['p50_ms']:>8.2f} "
            f"{level['p99_ms']:>8.2f}"
        )
    summary = server_records["summary"]
    rows.append(
        f"cold CLI {summary['cold_cli_ms']:.0f} ms vs warm p50 "
        f"{summary['warm_p50_ms']:.2f} ms -> "
        f"{summary['repeat_deploy_speedup']:.0f}x"
    )
    record_report("\n".join(rows))
    assert os.path.exists(_REPORT_PATH)
