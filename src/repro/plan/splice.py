"""Splicing delta solutions into an existing deployment plan.

The warm replanning path never rebuilds a plan from scratch: a churn
event leaves most placements untouched, so the new plan is the old one
*rebased* onto the current network (same placements, routing re-derived)
with only the blast-radius MATs re-homed by the delta solve
(:mod:`repro.core.delta`).  This module is the plan-layer half of that
contract:

* :func:`rebase_plan` — the empty-blast-radius case: every placement
  survives verbatim; only the routing is recomputed on the current
  substrate.
* :func:`splice_plan` — apply a delta assignment (``MAT -> switch`` for
  the free MATs) on top of the surviving placements through a
  :class:`~repro.plan.builder.PlanBuilder`, fitting stages with the
  same window search the cheapest-patch fallback uses, probing the
  result with the builder's exact incremental ``A_max`` and undoing
  every applied placement when the splice proves infeasible or blows an
  optional ``amax_cap``.

The stage-fitting helpers (:func:`stage_window`, :func:`fit_stages`,
:func:`cross_bytes`, :func:`neighbors_reachable`,
:func:`free_capacity`) live here so the plan layer owns them;
:mod:`repro.runtime.patch` imports them for its orphan re-homing.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.network.paths import PathEnumerator
from repro.network.switch import Switch
from repro.network.topology import Network
from repro.plan.artifact import (
    DeploymentError,
    DeploymentPlan,
    MatPlacement,
)
from repro.plan.builder import PlanBuilder
from repro.tdg.graph import Tdg


def free_capacity(
    tdg: Tdg,
    hostable: Dict[str, Switch],
    placements: Mapping[str, MatPlacement],
) -> Dict[str, List[float]]:
    """Per-switch, per-stage capacity left after ``placements``."""
    free = {
        name: [switch.stage_capacity] * switch.num_stages
        for name, switch in hostable.items()
    }
    for placement in placements.values():
        if placement.switch not in free:
            continue
        share = tdg.node(placement.mat_name).resource_demand / len(
            placement.stages
        )
        stages = free[placement.switch]
        for stage in placement.stages:
            stages[stage - 1] -= share
    return free


def stage_window(
    tdg: Tdg,
    name: str,
    switch_name: str,
    switch: Switch,
    placements: Mapping[str, MatPlacement],
) -> Optional[Tuple[int, int]]:
    """Stage bounds (lo, hi) honoring same-switch dependency order."""
    lo, hi = 1, switch.num_stages
    for pred in tdg.predecessors(name):
        placement = placements.get(pred)
        if placement is not None and placement.switch == switch_name:
            lo = max(lo, placement.last_stage + 1)
    for succ in tdg.successors(name):
        placement = placements.get(succ)
        if placement is not None and placement.switch == switch_name:
            hi = min(hi, placement.first_stage - 1)
    if lo > hi:
        return None
    return lo, hi


def fit_stages(
    demand: float,
    free: List[float],
    lo: int,
    hi: int,
    tol: float = 1e-9,
) -> Optional[Tuple[int, ...]]:
    """Smallest consecutive stage window in [lo, hi] holding ``demand``.

    The demand splits evenly across the window (matching
    :func:`repro.core.stages.assign_stages` semantics); the earliest
    smallest window wins for determinism.
    """
    for width in range(1, hi - lo + 2):
        share = demand / width
        for start in range(lo, hi - width + 2):
            if all(
                free[stage - 1] + tol >= share
                for stage in range(start, start + width)
            ):
                return tuple(range(start, start + width))
    return None


def cross_bytes(
    tdg: Tdg,
    name: str,
    switch_name: str,
    placements: Mapping[str, MatPlacement],
) -> int:
    """Metadata bytes this placement sends across switch boundaries."""
    total = 0
    for edge in tdg.in_edges(name):
        placement = placements.get(edge.upstream)
        if placement is not None and placement.switch != switch_name:
            total += edge.metadata_bytes
    for edge in tdg.out_edges(name):
        placement = placements.get(edge.downstream)
        if placement is not None and placement.switch != switch_name:
            total += edge.metadata_bytes
    return total


def neighbors_reachable(
    tdg: Tdg,
    name: str,
    switch_name: str,
    placements: Mapping[str, MatPlacement],
    paths: PathEnumerator,
) -> bool:
    """Whether every placed TDG neighbor can still route to ``name``."""
    for pred in tdg.predecessors(name):
        placement = placements.get(pred)
        if placement is not None and not paths.reachable(
            placement.switch, switch_name
        ):
            return False
    for succ in tdg.successors(name):
        placement = placements.get(succ)
        if placement is not None and not paths.reachable(
            switch_name, placement.switch
        ):
            return False
    return True


def rebase_plan(
    old_plan: DeploymentPlan,
    network: Network,
    paths: Optional[PathEnumerator] = None,
    validate: bool = True,
) -> DeploymentPlan:
    """Carry every placement onto the current network unchanged.

    The empty-blast-radius replan: when no placement lost its host, the
    old plan is already placement-feasible on the new substrate and
    only the routing needs re-deriving (links may have changed).
    ``A_max`` is invariant under rebasing — pair bytes depend only on
    placements, never on links.

    Raises:
        DeploymentError: When validation fails (a placement actually
            did lose its host, or a communicating pair is now
            disconnected) — the caller escalates to a full replan.
    """
    paths = paths or PathEnumerator(network)
    try:
        builder = PlanBuilder(old_plan.tdg, network, old_plan.placements)
        builder.route_shortest(paths)
        return builder.build(validate=validate)
    except KeyError as exc:
        # The builder and validator index hosts by name; a vanished one
        # surfaces as a KeyError, which is this function's
        # infeasibility.
        raise DeploymentError(f"rebase: {exc.args[0]}") from exc


def splice_plan(
    old_plan: DeploymentPlan,
    network: Network,
    assignment: Mapping[str, str],
    paths: Optional[PathEnumerator] = None,
    amax_cap: Optional[int] = None,
    validate: bool = True,
) -> DeploymentPlan:
    """Apply a delta solution on top of the surviving placements.

    Every MAT outside ``assignment`` keeps its old placement verbatim;
    each MAT in ``assignment`` is re-homed onto its assigned switch in
    TDG-topological order, stages chosen by the same dependency-window
    search the patch fallback uses.  The placements are applied through
    a :class:`PlanBuilder`, whose incremental metrics give an exact
    O(degree) ``A_max`` probe; when the probe exceeds ``amax_cap`` (the
    delta model's predicted objective, when the caller knows it) every
    applied placement is undone and the splice fails — the model and
    the plan disagreeing means the delta abstraction leaked, and the
    caller must escalate rather than activate a mispriced plan.

    Args:
        old_plan: The currently active plan; its TDG must still be the
            live workload (the caller escalates on workload change).
        network: The current substrate.
        assignment: ``MAT name -> switch name`` for the free MATs.
        paths: Optional shared enumerator for ``network``.
        amax_cap: Optional upper bound on the spliced plan's ``A_max``.
        validate: Validate the frozen artifact (default).

    Raises:
        DeploymentError: Unknown MATs/switches in the assignment, no
            feasible stage window, an unreachable placed neighbor, a
            busted ``amax_cap``, or artifact validation failure.
    """
    tdg = old_plan.tdg
    paths = paths or PathEnumerator(network)
    free = set(assignment)
    unknown = free - set(old_plan.placements)
    if unknown:
        raise DeploymentError(
            f"splice: assignment names unknown MATs {sorted(unknown)}"
        )
    hostable = {s.name: s for s in network.programmable_switches()}
    fixed = {
        name: placement
        for name, placement in old_plan.placements.items()
        if name not in free
    }
    builder = PlanBuilder(tdg, network, fixed)
    capacity = free_capacity(tdg, hostable, fixed)
    placements: Dict[str, MatPlacement] = dict(fixed)
    applied = []
    try:
        for name in tdg.topological_order():
            if name not in free:
                continue
            switch_name = assignment[name]
            host = hostable.get(switch_name)
            if host is None:
                raise DeploymentError(
                    f"splice: {name!r} assigned to non-hostable "
                    f"switch {switch_name!r}"
                )
            window = stage_window(tdg, name, switch_name, host, placements)
            if window is None:
                raise DeploymentError(
                    f"splice: no stage window for {name!r} on "
                    f"{switch_name!r}"
                )
            stages = fit_stages(
                tdg.node(name).resource_demand,
                capacity[switch_name],
                window[0],
                window[1],
            )
            if stages is None:
                raise DeploymentError(
                    f"splice: {name!r} does not fit on {switch_name!r}"
                )
            if not neighbors_reachable(
                tdg, name, switch_name, placements, paths
            ):
                raise DeploymentError(
                    f"splice: {name!r} on {switch_name!r} cannot reach "
                    "a placed neighbor"
                )
            applied.append(builder.place(name, switch_name, stages))
            placements[name] = MatPlacement(name, switch_name, tuple(stages))
            share = tdg.node(name).resource_demand / len(stages)
            for stage in stages:
                capacity[switch_name][stage - 1] -= share
        if (
            amax_cap is not None
            and builder.max_metadata_bytes() > amax_cap
        ):
            raise DeploymentError(
                f"splice: incremental A_max probe "
                f"{builder.max_metadata_bytes()} B exceeds the delta "
                f"model's prediction {amax_cap} B"
            )
    except DeploymentError:
        for token in reversed(applied):
            builder.undo(token)
        raise
    builder.route_shortest(paths)
    return builder.build(validate=validate)
